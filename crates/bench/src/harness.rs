//! Experiment harness reproducing every subplot of Fig. 5.
//!
//! Each `fig5x` function regenerates one subplot as a [`FigureResult`]: the
//! same x-axis sweep, the same competing methods, the same y quantity
//! (runtime for (a)–(d), compaction ratio for (e)–(h)). Absolute numbers
//! differ from the paper's 2018 testbed; the reproduction target is the
//! *shape* — method ordering, growth trends, DNF points (see
//! `EXPERIMENTS.md`).
//!
//! Methods that the paper reports as failing (Cypher beyond ~10² vertices,
//! CflrB out-of-memory at `Pd50k`, SimProvAlg's plain-bitset tables at
//! `Pd100k`) are capped per series; points beyond the cap are emitted as
//! `DNF`, mirroring the paper's missing data points.

use prov_bitset::SetBackend;
use prov_model::{VertexId, VertexKind};
use prov_segment::{
    evaluate_similarity, similar_alg, similar_alg_par, similar_alg_reference, similar_tst,
    AlgConfig, MaskedGraph, NaiveBudget, PgSegOptions, SimilarEvaluator, TstConfig,
};
use prov_store::hash::FxHashMap;
use prov_store::{ProvGraph, ProvIndex};
use prov_summary::simulation::{simulation, simulation_par, SimDirection};
use prov_summary::{build_g0, PgSumQuery, PropertyAggregation, SegmentRef};
use prov_workload::{
    generate_pd, generate_sd, pd_segments, sources_at_percentile, standard_query, PdParams,
    SdParams,
};
use std::rc::Rc;
use std::time::Instant;

/// Experiment scale: `Quick` for smoke runs and `cargo bench` sanity,
/// `Full` for regenerating the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes, single repetition (seconds).
    Quick,
    /// Paper-like sizes (minutes).
    Full,
}

/// One measured point of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Sweep coordinate.
    pub x: f64,
    /// y value (runtime seconds or compaction ratio); `None` = DNF.
    pub y: Option<f64>,
    /// Evaluator work units (derived facts) when the y value is a runtime.
    pub work: Option<u64>,
}

impl Point {
    /// A point with no work counter (ratio sweeps, DNF entries).
    pub fn plain(x: f64, y: Option<f64>) -> Point {
        Point { x, y, work: None }
    }
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name (matches the paper's).
    pub name: String,
    /// Measured points in sweep order.
    pub points: Vec<Point>,
}

/// One reproduced subplot.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure id, e.g. `5a`.
    pub id: &'static str,
    /// Title (the paper's caption).
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// All series.
    pub series: Vec<Series>,
}

impl FigureResult {
    /// Render the figure as an aligned text table (one row per x value).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Fig. {} — {}\n", self.id, self.title));
        out.push_str(&format!("{:<14}", self.x_label));
        for s in &self.series {
            out.push_str(&format!("{:>18}", s.name));
        }
        out.push('\n');
        let xs: Vec<f64> = self.series[0].points.iter().map(|p| p.x).collect();
        for (i, x) in xs.iter().enumerate() {
            out.push_str(&format!("{:<14}", trim_float(*x)));
            for s in &self.series {
                match s.points.get(i).and_then(|p| p.y) {
                    Some(y) => out.push_str(&format!("{:>18}", format_y(&self.y_label, y))),
                    None => out.push_str(&format!("{:>18}", "DNF")),
                }
            }
            out.push('\n');
        }
        out
    }
}

fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e9 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn format_y(label: &str, y: f64) -> String {
    if label.contains("ratio") {
        format!("{y:.3}")
    } else if y < 0.001 {
        format!("{:.1}us", y * 1e6)
    } else if y < 1.0 {
        format!("{:.2}ms", y * 1e3)
    } else {
        format!("{y:.2}s")
    }
}

/// Time one similarity evaluation; `y` is None on naive DNF.
fn time_eval(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    evaluator: SimilarEvaluator,
) -> (Option<f64>, Option<u64>) {
    let opts = PgSegOptions {
        evaluator,
        naive_budget: NaiveBudget { max_paths: 400_000, max_expansions: 4_000_000 },
        ..PgSegOptions::default()
    };
    let t0 = Instant::now();
    let out = evaluate_similarity(view, vsrc, vdst, &opts);
    let secs = t0.elapsed().as_secs_f64();
    if out.stats.dnf {
        (None, None)
    } else {
        (Some(secs), Some(out.stats.work))
    }
}

/// A generated `Pd` workload frozen once: graph, CSR snapshot, and the
/// paper's standard first/last-entity query.
pub struct PdInstance {
    graph: ProvGraph,
    index: ProvIndex,
    vsrc: Vec<VertexId>,
    vdst: Vec<VertexId>,
}

impl PdInstance {
    /// The generated graph.
    pub fn graph(&self) -> &ProvGraph {
        &self.graph
    }

    /// The frozen CSR snapshot of [`PdInstance::graph`].
    pub fn index(&self) -> &ProvIndex {
        &self.index
    }

    /// The paper's standard first/last-entity query `(Vsrc, Vdst)`.
    pub fn query(&self) -> (&[VertexId], &[VertexId]) {
        (&self.vsrc, &self.vdst)
    }
}

/// Cache key: the exact `PdParams` bits (f64 fields by `to_bits`).
type PdKey = (usize, u64, u64, u64, u64, u64);

fn pd_key(p: &PdParams) -> PdKey {
    (p.n, p.sw.to_bits(), p.lambda_in.to_bits(), p.lambda_out.to_bits(), p.se.to_bits(), p.seed)
}

/// Largest `N` worth retaining in the cache: quick-scale workloads (where
/// cross-figure reuse happens) are all at or below this; the full-scale 50k
/// and 100k graphs would otherwise stay resident for the rest of the run.
const PD_CACHE_MAX_N: usize = 10_000;

/// Cache of frozen `Pd` instances shared across the `fig5x` sweeps, so the
/// same workload is generated and CSR-frozen exactly once per bench run
/// rather than once per figure/method (ISSUE 3). Workloads beyond the
/// quick scales (`N` > 10k) bypass the cache: the caller's `Rc` is the only
/// handle, so they free as soon as their sweep point finishes (matching the
/// seed's drop-after-use behaviour at paper scale).
#[derive(Default)]
pub struct PdCache {
    map: FxHashMap<PdKey, Rc<PdInstance>>,
}

impl PdCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct instances retained.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True before the first instance is retained.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Fetch (or generate + freeze) the instance for `params`.
    pub fn instance(&mut self, params: &PdParams) -> Rc<PdInstance> {
        let build = |params: &PdParams| {
            let graph = generate_pd(params);
            let index = ProvIndex::build(&graph);
            let (vsrc, vdst) = standard_query(&graph, 2);
            Rc::new(PdInstance { graph, index, vsrc, vdst })
        };
        if params.n > PD_CACHE_MAX_N {
            return build(params);
        }
        Rc::clone(self.map.entry(pd_key(params)).or_insert_with(|| build(params)))
    }
}

/// Fig. 5(a): runtime vs graph size `N`, all methods.
pub fn fig5a(scale: Scale) -> FigureResult {
    fig5a_cached(scale, &mut PdCache::new())
}

/// [`fig5a`] against a shared instance cache.
pub fn fig5a_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[50, 100, 1_000, 5_000],
        Scale::Full => &[50, 100, 1_000, 10_000, 50_000, 100_000],
    };
    // Caps reproducing the paper's DNF entries.
    let naive_cap = 200;
    let cflr_cap = match scale {
        Scale::Quick => 1_000,
        Scale::Full => 10_000,
    };
    let alg_bit_cap = 50_000; // paper: OOM at Pd100k with 32-bit BitSet tables

    let methods: Vec<(String, SimilarEvaluator, usize)> = vec![
        ("Cypher".into(), SimilarEvaluator::Naive, naive_cap),
        ("CflrB".into(), SimilarEvaluator::CflrB(SetBackend::Bit), cflr_cap),
        ("CflrB wCBM".into(), SimilarEvaluator::CflrB(SetBackend::Compressed), cflr_cap),
        ("SimProvAlg".into(), SimilarEvaluator::SimProvAlg(SetBackend::Bit), alg_bit_cap),
        ("Alg wCBM".into(), SimilarEvaluator::SimProvAlg(SetBackend::Compressed), usize::MAX),
        ("SimProvTst".into(), SimilarEvaluator::SimProvTst, usize::MAX),
    ];

    let mut series: Vec<Series> =
        methods.iter().map(|(n, ..)| Series { name: n.clone(), points: Vec::new() }).collect();
    let mut tst_cbm = Series { name: "Tst wCBM".into(), points: Vec::new() };

    for &n in sizes {
        let inst = cache.instance(&PdParams::with_size(n));
        let view = MaskedGraph::unmasked(&inst.index);
        for ((name, evaluator, cap), serie) in methods.iter().zip(series.iter_mut()) {
            let (y, work) = if n <= *cap {
                time_eval(&view, &inst.vsrc, &inst.vdst, *evaluator)
            } else {
                (None, None)
            };
            let _ = name;
            serie.points.push(Point { x: n as f64, y, work });
        }
        // SimProvTst with compressed level sets.
        let t0 = Instant::now();
        let out = similar_tst(
            &view,
            &inst.vsrc,
            &inst.vdst,
            &TstConfig { compressed_sets: true, ..TstConfig::default() },
        );
        tst_cbm.points.push(Point {
            x: n as f64,
            y: Some(t0.elapsed().as_secs_f64()),
            work: Some(out.stats.work),
        });
    }
    series.push(tst_cbm);

    FigureResult {
        id: "5a",
        title: "Varying graph size N (Pd graphs, standard first/last-entity query)".into(),
        x_label: "N".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

fn sweep_pd<F: Fn(f64) -> PdParams>(
    cache: &mut PdCache,
    xs: &[f64],
    make_params: F,
    methods: &[(&str, SimilarEvaluator)],
) -> Vec<Series> {
    let mut series: Vec<Series> =
        methods.iter().map(|(n, _)| Series { name: n.to_string(), points: Vec::new() }).collect();
    for &x in xs {
        let inst = cache.instance(&make_params(x));
        let view = MaskedGraph::unmasked(&inst.index);
        for ((_, evaluator), serie) in methods.iter().zip(series.iter_mut()) {
            let (y, work) = time_eval(&view, &inst.vsrc, &inst.vdst, *evaluator);
            serie.points.push(Point { x, y, work });
        }
    }
    series
}

/// Fig. 5(b): runtime vs input-selection skew `se` on `Pd10k`.
pub fn fig5b(scale: Scale) -> FigureResult {
    fig5b_cached(scale, &mut PdCache::new())
}

/// [`fig5b`] against a shared instance cache.
pub fn fig5b_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let n = match scale {
        Scale::Quick => 2_000,
        Scale::Full => 10_000,
    };
    let xs = [1.1, 1.3, 1.5, 1.7, 1.9, 2.1];
    let methods = [
        ("CflrB", SimilarEvaluator::CflrB(SetBackend::Bit)),
        ("SimProvAlg", SimilarEvaluator::SimProvAlg(SetBackend::Bit)),
        ("SimProvTst", SimilarEvaluator::SimProvTst),
    ];
    let series = sweep_pd(cache, &xs, |se| PdParams { se, ..PdParams::with_size(n) }, &methods);
    FigureResult {
        id: "5b",
        title: format!("Varying selection skew se (Pd{n})"),
        x_label: "se".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

/// Fig. 5(c): runtime vs activity input mean `λi` on `Pd10k`.
pub fn fig5c(scale: Scale) -> FigureResult {
    fig5c_cached(scale, &mut PdCache::new())
}

/// [`fig5c`] against a shared instance cache.
pub fn fig5c_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let n = match scale {
        Scale::Quick => 2_000,
        Scale::Full => 10_000,
    };
    let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
    let methods = [
        ("CflrB", SimilarEvaluator::CflrB(SetBackend::Bit)),
        ("SimProvAlg", SimilarEvaluator::SimProvAlg(SetBackend::Bit)),
        ("SimProvTst", SimilarEvaluator::SimProvTst),
    ];
    let series =
        sweep_pd(cache, &xs, |li| PdParams { lambda_in: li, ..PdParams::with_size(n) }, &methods);
    FigureResult {
        id: "5c",
        title: format!("Varying activity input mean λi (Pd{n})"),
        x_label: "λi".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

/// Fig. 5(d): effectiveness of early stopping — runtime vs the percentile at
/// which `Vsrc` starts, on `Pd50k`.
pub fn fig5d(scale: Scale) -> FigureResult {
    fig5d_cached(scale, &mut PdCache::new())
}

/// [`fig5d`] against a shared instance cache.
pub fn fig5d_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let n = match scale {
        Scale::Quick => 5_000,
        Scale::Full => 50_000,
    };
    let inst = cache.instance(&PdParams::with_size(n));
    let view = MaskedGraph::unmasked(&inst.index);
    let xs = [0.0, 20.0, 40.0, 60.0, 80.0];
    let configs: [(&str, SimilarEvaluator, bool); 4] = [
        ("SimProvAlg", SimilarEvaluator::SimProvAlg(SetBackend::Bit), true),
        ("Alg w/oPrune", SimilarEvaluator::SimProvAlg(SetBackend::Bit), false),
        ("SimProvTst", SimilarEvaluator::SimProvTst, true),
        ("Tst w/oPrune", SimilarEvaluator::SimProvTst, false),
    ];
    let mut series: Vec<Series> = configs
        .iter()
        .map(|(name, ..)| Series { name: name.to_string(), points: Vec::new() })
        .collect();
    for &pct in &xs {
        let vsrc = sources_at_percentile(&inst.graph, pct, 2);
        for ((_, evaluator, early), serie) in configs.iter().zip(series.iter_mut()) {
            let opts = PgSegOptions {
                evaluator: *evaluator,
                early_stop: *early,
                ..PgSegOptions::default()
            };
            let t0 = Instant::now();
            let out = evaluate_similarity(&view, &vsrc, &inst.vdst, &opts);
            serie.points.push(Point {
                x: pct,
                y: Some(t0.elapsed().as_secs_f64()),
                work: Some(out.stats.work),
            });
        }
    }
    FigureResult {
        id: "5d",
        title: format!("Early stopping: varying Vsrc starting rank (Pd{n})"),
        x_label: "src rank (%)".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

/// The PgSum experiments share one sweep skeleton: generate `Sd` segment
/// sets, compute compaction ratios for PgSum and pSum, average over seeds.
fn sweep_sd<F: Fn(f64) -> SdParams>(xs: &[f64], make_params: F, seeds: &[u64]) -> Vec<Series> {
    let query = PgSumQuery::new(
        PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]),
        0,
    );
    let mut psum_series = Series { name: "pSum".into(), points: Vec::new() };
    let mut pgsum_series = Series { name: "PGSum Alg".into(), points: Vec::new() };
    for &x in xs {
        let mut cr_pg = 0.0;
        let mut cr_ps = 0.0;
        for &seed in seeds {
            let out = generate_sd(&SdParams { seed, ..make_params(x) });
            let segments: Vec<SegmentRef> = out
                .segments
                .iter()
                .map(|s| SegmentRef::new(s.vertices.clone(), s.edges.clone()))
                .collect();
            let psg = prov_summary::pgsum(&out.graph, &segments, &query);
            let ps = prov_summary::psum_baseline(&out.graph, &segments, &query);
            cr_pg += psg.compaction_ratio();
            cr_ps += ps.compaction_ratio;
        }
        let k = seeds.len() as f64;
        pgsum_series.points.push(Point::plain(x, Some(cr_pg / k)));
        psum_series.points.push(Point::plain(x, Some(cr_ps / k)));
    }
    vec![psum_series, pgsum_series]
}

fn sd_seeds(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => vec![42],
        Scale::Full => vec![42, 1042, 2042],
    }
}

/// Fig. 5(e): compaction ratio vs transition concentration `α`.
pub fn fig5e(scale: Scale) -> FigureResult {
    let xs = [0.025, 0.05, 0.1, 0.25, 0.5, 1.0];
    let series = sweep_sd(&xs, |alpha| SdParams { alpha, ..SdParams::default() }, &sd_seeds(scale));
    FigureResult {
        id: "5e",
        title: "Varying concentration α (Sd: k=5, n=20, |S|=10)".into(),
        x_label: "α".into(),
        y_label: "compaction ratio".into(),
        series,
    }
}

/// Fig. 5(f): compaction ratio vs number of activity types `k`.
pub fn fig5f(scale: Scale) -> FigureResult {
    let xs = [3.0, 5.0, 10.0, 15.0, 20.0, 25.0];
    let series =
        sweep_sd(&xs, |k| SdParams { k: k as usize, ..SdParams::default() }, &sd_seeds(scale));
    FigureResult {
        id: "5f",
        title: "Varying activity types k (Sd: α=0.1, n=20, |S|=10)".into(),
        x_label: "k".into(),
        y_label: "compaction ratio".into(),
        series,
    }
}

/// Fig. 5(g): compaction ratio vs segment size `n`.
pub fn fig5g(scale: Scale) -> FigureResult {
    let xs = [5.0, 10.0, 20.0, 30.0, 40.0, 50.0];
    let series =
        sweep_sd(&xs, |n| SdParams { n: n as usize, ..SdParams::default() }, &sd_seeds(scale));
    FigureResult {
        id: "5g",
        title: "Varying number of activities n (Sd: α=0.1, k=5, |S|=10)".into(),
        x_label: "n".into(),
        y_label: "compaction ratio".into(),
        series,
    }
}

/// Fig. 5(h): compaction ratio vs number of segments `|S|`.
pub fn fig5h(scale: Scale) -> FigureResult {
    let xs = [5.0, 10.0, 20.0, 30.0, 40.0];
    let series = sweep_sd(
        &xs,
        |s| SdParams { alpha: 0.25, num_segments: s as usize, ..SdParams::default() },
        &sd_seeds(scale),
    );
    FigureResult {
        id: "5h",
        title: "Varying number of segments |S| (Sd: α=0.25, k=5, n=20)".into(),
        x_label: "|S|".into(),
        y_label: "compaction ratio".into(),
        series,
    }
}

/// Worklist ablation (`wl`): the pair-encoded SimProvAlg inner loop against
/// the seed `VecDeque` loop it replaced, on both fact-table backends, over
/// the paper's standard `Pd` query. This is the series the committed
/// `BENCH_fig5.json` tracks for the rewrite's speedup claim.
pub fn figwl(scale: Scale) -> FigureResult {
    figwl_cached(scale, &mut PdCache::new())
}

/// [`figwl`] against a shared instance cache.
pub fn figwl_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[1_000, 2_000, 5_000],
        Scale::Full => &[1_000, 10_000, 50_000],
    };
    let reps = match scale {
        Scale::Quick => 5,
        Scale::Full => 3,
    };
    figwl_sized(cache, sizes, reps)
}

fn figwl_sized(cache: &mut PdCache, sizes: &[usize], reps: usize) -> FigureResult {
    type Loop =
        fn(&MaskedGraph<'_>, &[VertexId], &[VertexId], &AlgConfig) -> prov_segment::SimilarOutcome;
    let methods: [(&str, Loop); 4] = [
        ("SeedLoop", similar_alg_reference::<prov_bitset::FixedBitSet>),
        ("PairEncoded", similar_alg::<prov_bitset::FixedBitSet>),
        ("SeedLoop wCBM", similar_alg_reference::<prov_bitset::CompressedBitmap>),
        ("PairEncoded wCBM", similar_alg::<prov_bitset::CompressedBitmap>),
    ];
    let cfg = AlgConfig::default();
    let mut series: Vec<Series> = methods
        .iter()
        .map(|(name, _)| Series { name: name.to_string(), points: Vec::new() })
        .collect();
    for &n in sizes {
        let inst = cache.instance(&PdParams::with_size(n));
        let view = MaskedGraph::unmasked(&inst.index);
        for ((_, eval), serie) in methods.iter().zip(series.iter_mut()) {
            // Best-of-`reps` to keep the committed trajectory noise-resistant.
            let mut best = f64::INFINITY;
            let mut work = 0u64;
            for _ in 0..reps {
                let t0 = Instant::now();
                let out = eval(&view, &inst.vsrc, &inst.vdst, &cfg);
                best = best.min(t0.elapsed().as_secs_f64());
                work = out.stats.work;
            }
            serie.points.push(Point { x: n as f64, y: Some(best), work: Some(work) });
        }
    }
    FigureResult {
        id: "wl",
        title: "Pair-encoded worklist vs seed VecDeque loop (SimProvAlg, Pd standard query)".into(),
        x_label: "N".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

/// Chunk counts swept by the `5t`/`6t`/`7t` thread-scaling figures.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Fig. 5(t): SimProvAlg thread scaling — the BSP-round parallel worklist
/// drain at x chunks against the sequential pair-encoded loop on the same
/// frozen `Pd` query. The `work` column is the derived-fact count, identical
/// across every point by the exactly-once enqueue argument (a divergence in
/// the committed JSON means the parallel merge broke).
pub fn fig5t(scale: Scale) -> FigureResult {
    fig5t_cached(scale, &mut PdCache::new())
}

/// [`fig5t`] against a shared `Pd` instance cache.
pub fn fig5t_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let (n, reps) = match scale {
        Scale::Quick => (5_000, 3),
        Scale::Full => (50_000, 2),
    };
    let inst = cache.instance(&PdParams::with_size(n));
    let view = MaskedGraph::unmasked(&inst.index);
    let cfg = AlgConfig::default();
    let mut series = [
        Series { name: "Sequential".into(), points: Vec::new() },
        Series { name: "Parallel".into(), points: Vec::new() },
    ];
    for &threads in &THREAD_SWEEP {
        // The sequential reference is re-timed at every x so the flat line
        // is measured data, not a copied point.
        let mut best = [f64::INFINITY; 2];
        let mut work = [0u64; 2];
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = similar_alg::<prov_bitset::FixedBitSet>(&view, &inst.vsrc, &inst.vdst, &cfg);
            best[0] = best[0].min(t0.elapsed().as_secs_f64());
            work[0] = out.stats.work;
            let t0 = Instant::now();
            let out = similar_alg_par::<prov_bitset::FixedBitSet>(
                &view, &inst.vsrc, &inst.vdst, &cfg, threads,
            );
            best[1] = best[1].min(t0.elapsed().as_secs_f64());
            work[1] = out.stats.work;
        }
        for i in 0..2 {
            series[i].points.push(Point {
                x: threads as f64,
                y: Some(best[i]),
                work: Some(work[i]),
            });
        }
    }
    FigureResult {
        id: "5t",
        title: format!(
            "SimProvAlg thread scaling: BSP-round parallel drain at x chunks vs the sequential \
             loop (Pd{n} standard query)"
        ),
        x_label: "threads".into(),
        y_label: "runtime (s)".into(),
        series: series.to_vec(),
    }
}

/// Fig. 6(t): counting-simulation thread scaling — the chunk-parallel sweep
/// ([`simulation_par`]) at x chunks against the sequential counting loop on
/// one frozen `Sd` union graph. `work` is the size of the computed relation
/// (the number of `le` pairs), identical everywhere by fixpoint uniqueness.
pub fn fig6t(scale: Scale) -> FigureResult {
    fig6t_cached(scale, &mut SdCache::new())
}

/// [`fig6t`] against a shared `Sd` instance cache.
pub fn fig6t_cached(scale: Scale, cache: &mut SdCache) -> FigureResult {
    let (num_segments, n, reps) = match scale {
        Scale::Quick => (20, 20, 3),
        Scale::Full => (80, 40, 2),
    };
    let inst = cache.instance(&SdParams { num_segments, n, ..SdParams::default() });
    let g0 = build_g0(&inst.graph, &inst.segments, &fig6_query().aggregation, 1);
    let relation_size = |rel: &prov_summary::simulation::SimRelation| {
        (0..g0.len() as u32).map(|v| rel.row(v).ones().count() as u64).sum::<u64>()
    };
    let mut series = [
        Series { name: "Sequential".into(), points: Vec::new() },
        Series { name: "Parallel".into(), points: Vec::new() },
    ];
    for &threads in &THREAD_SWEEP {
        let mut best = [f64::INFINITY; 2];
        let mut work = [0u64; 2];
        for _ in 0..reps {
            // Both directions per rep: the sweep is the kernel the PgSum
            // merge phase calls twice.
            let t0 = Instant::now();
            let rel_out = simulation(&g0, SimDirection::Out);
            let rel_in = simulation(&g0, SimDirection::In);
            best[0] = best[0].min(t0.elapsed().as_secs_f64());
            work[0] = relation_size(&rel_out) + relation_size(&rel_in);
            let t0 = Instant::now();
            let rel_out = simulation_par(&g0, SimDirection::Out, threads);
            let rel_in = simulation_par(&g0, SimDirection::In, threads);
            best[1] = best[1].min(t0.elapsed().as_secs_f64());
            work[1] = relation_size(&rel_out) + relation_size(&rel_in);
        }
        for i in 0..2 {
            series[i].points.push(Point {
                x: threads as f64,
                y: Some(best[i]),
                work: Some(work[i]),
            });
        }
    }
    FigureResult {
        id: "6t",
        title: format!(
            "Counting-simulation thread scaling: chunk-parallel sweep at x chunks vs the \
             sequential loop (Sd: n={n}, |S|={num_segments}, both directions)"
        ),
        x_label: "threads".into(),
        y_label: "runtime (s)".into(),
        series: series.to_vec(),
    }
}

/// A generated `Sd` segment set frozen once: backing graph + segment refs.
pub struct SdInstance {
    graph: ProvGraph,
    segments: Vec<SegmentRef>,
}

/// Cache key: the exact `SdParams` bits (f64 fields by `to_bits`).
type SdKey = (u64, usize, usize, usize, u64, u64, u64, u64);

fn sd_key(p: &SdParams) -> SdKey {
    (
        p.alpha.to_bits(),
        p.k,
        p.n,
        p.num_segments,
        p.lambda_in.to_bits(),
        p.lambda_out.to_bits(),
        p.se.to_bits(),
        p.seed,
    )
}

/// Cache of frozen `Sd` segment sets shared across the `fig6` sweeps (the
/// summarization counterpart of [`PdCache`]): each parameterization is
/// generated once per bench run, so every method of every figure times the
/// same input.
#[derive(Default)]
pub struct SdCache {
    map: FxHashMap<SdKey, Rc<SdInstance>>,
}

impl SdCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct instances retained.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True before the first instance is retained.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Fetch (or generate + freeze) the instance for `params`.
    pub fn instance(&mut self, params: &SdParams) -> Rc<SdInstance> {
        Rc::clone(self.map.entry(sd_key(params)).or_insert_with(|| {
            let out = generate_sd(params);
            let segments = out
                .segments
                .iter()
                .map(|s| SegmentRef::new(s.vertices.clone(), s.edges.clone()))
                .collect();
            Rc::new(SdInstance { graph: out.graph, segments })
        }))
    }
}

/// The `fig6` query: aggregate activities by command, `k = 1` provenance
/// types — exercises the rank-space WL refinement on top of the merge phase.
fn fig6_query() -> PgSumQuery {
    PgSumQuery::new(
        PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]),
        1,
    )
}

/// Time the three summarizers on one frozen segment set. `work` carries the
/// output size (pSum blocks / Psg vertices), so a run where the rewrite and
/// the frozen seed pipeline diverge is visible in the committed JSON.
fn time_summarizers(
    graph: &ProvGraph,
    segments: &[SegmentRef],
    x: f64,
    reps: usize,
    series: &mut [Series; 3],
) {
    let query = fig6_query();
    // Best-of-`reps` per method, like the `wl` trajectory series.
    let mut best = [f64::INFINITY; 3];
    let mut work = [0u64; 3];
    for _ in 0..reps {
        let t0 = Instant::now();
        let ps = prov_summary::psum_baseline(graph, segments, &query);
        best[0] = best[0].min(t0.elapsed().as_secs_f64());
        work[0] = ps.block_count as u64;

        let t0 = Instant::now();
        let seed = prov_summary::pgsum_reference(graph, segments, &query);
        best[1] = best[1].min(t0.elapsed().as_secs_f64());
        work[1] = seed.vertex_count() as u64;

        let t0 = Instant::now();
        let new = prov_summary::pgsum(graph, segments, &query);
        best[2] = best[2].min(t0.elapsed().as_secs_f64());
        work[2] = new.vertex_count() as u64;
    }
    for i in 0..3 {
        series[i].points.push(Point { x, y: Some(best[i]), work: Some(work[i]) });
    }
}

fn fig6_series() -> [Series; 3] {
    ["pSum", "PGSum Seed", "PGSum Alg"]
        .map(|name| Series { name: name.to_string(), points: Vec::new() })
}

fn fig6_reps(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 3,
        Scale::Full => 2,
    }
}

/// Fig. 6(a): summarization runtime vs segment count `|S|` on `Sd` sets.
pub fn fig6a(scale: Scale) -> FigureResult {
    fig6a_cached(scale, &mut SdCache::new())
}

/// [`fig6a`] against a shared `Sd` instance cache.
pub fn fig6a_cached(scale: Scale, cache: &mut SdCache) -> FigureResult {
    let counts: &[usize] = match scale {
        Scale::Quick => &[5, 10, 20, 40],
        Scale::Full => &[10, 20, 40, 80],
    };
    let mut series = fig6_series();
    for &s in counts {
        let inst = cache.instance(&SdParams { num_segments: s, ..SdParams::default() });
        time_summarizers(&inst.graph, &inst.segments, s as f64, fig6_reps(scale), &mut series);
    }
    FigureResult {
        id: "6a",
        title: "Summarization runtime: varying segment count |S| (Sd: α=0.1, k=5, n=20)".into(),
        x_label: "|S|".into(),
        y_label: "runtime (s)".into(),
        series: series.to_vec(),
    }
}

/// Fig. 6(b): summarization runtime vs segment size `n` on `Sd` sets.
pub fn fig6b(scale: Scale) -> FigureResult {
    fig6b_cached(scale, &mut SdCache::new())
}

/// [`fig6b`] against a shared `Sd` instance cache.
pub fn fig6b_cached(scale: Scale, cache: &mut SdCache) -> FigureResult {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[10, 20, 40],
        Scale::Full => &[20, 40, 80],
    };
    let mut series = fig6_series();
    for &n in sizes {
        let inst = cache.instance(&SdParams { n, ..SdParams::default() });
        time_summarizers(&inst.graph, &inst.segments, n as f64, fig6_reps(scale), &mut series);
    }
    FigureResult {
        id: "6b",
        title: "Summarization runtime: varying activities per segment n (Sd: α=0.1, k=5, |S|=10)"
            .into(),
        x_label: "n".into(),
        y_label: "runtime (s)".into(),
        series: series.to_vec(),
    }
}

/// Fig. 6(c): summarization runtime vs segment count on segments carved out
/// of a frozen `Pd` graph (12-activity windows) — PgSum on the same topology
/// the Fig. 5 segmentation sweeps use.
pub fn fig6c(scale: Scale) -> FigureResult {
    fig6c_cached(scale, &mut PdCache::new())
}

/// [`fig6c`] against the shared `Pd` instance cache.
pub fn fig6c_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let (n, counts): (usize, &[usize]) = match scale {
        Scale::Quick => (2_000, &[4, 8, 16, 32]),
        Scale::Full => (10_000, &[8, 16, 32, 64]),
    };
    const WINDOW: usize = 12;
    let inst = cache.instance(&PdParams::with_size(n));
    let mut series = fig6_series();
    for &count in counts {
        let segments: Vec<SegmentRef> = pd_segments(&inst.graph, WINDOW, count)
            .into_iter()
            .map(|s| SegmentRef::new(s.vertices, s.edges))
            .collect();
        time_summarizers(&inst.graph, &segments, count as f64, fig6_reps(scale), &mut series);
    }
    FigureResult {
        id: "6c",
        title: format!(
            "Summarization runtime: varying segment count (Pd{n}, {WINDOW}-activity windows)"
        ),
        x_label: "|S|".into(),
        y_label: "runtime (s)".into(),
        series: series.to_vec(),
    }
}

/// Run one figure by id.
pub fn run_figure(id: &str, scale: Scale) -> Option<FigureResult> {
    run_figure_cached(id, scale, &mut PdCache::new())
}

/// Run one figure by id against a shared `Pd` instance cache, so a batch of
/// `Pd`-backed figures freezes each workload once. The `Sd`-backed figures
/// (`6a`/`6b`) get a throwaway cache here — batch callers that mix them in
/// should use [`run_figure_with_caches`] to share both cache families (the
/// `figure` binary does).
pub fn run_figure_cached(id: &str, scale: Scale, cache: &mut PdCache) -> Option<FigureResult> {
    run_figure_with_caches(id, scale, cache, &mut SdCache::new())
}

/// [`run_figure_cached`] with the `Sd` cache shared too (the fig6 batch).
pub fn run_figure_with_caches(
    id: &str,
    scale: Scale,
    pd: &mut PdCache,
    sd: &mut SdCache,
) -> Option<FigureResult> {
    Some(match id {
        "5a" => fig5a_cached(scale, pd),
        "5b" => fig5b_cached(scale, pd),
        "5c" => fig5c_cached(scale, pd),
        "5d" => fig5d_cached(scale, pd),
        "5e" => fig5e(scale),
        "5f" => fig5f(scale),
        "5g" => fig5g(scale),
        "5h" => fig5h(scale),
        "wl" => figwl_cached(scale, pd),
        "5t" => fig5t_cached(scale, pd),
        "6a" => fig6a_cached(scale, sd),
        "6b" => fig6b_cached(scale, sd),
        "6c" => fig6c_cached(scale, pd),
        "6t" => fig6t_cached(scale, sd),
        "7a" => crate::fig7::fig7a_cached(scale, pd),
        "7b" => crate::fig7::fig7b_cached(scale, pd),
        "7c" => crate::fig7::fig7c_cached(scale, pd),
        "7t" => crate::fig7::fig7t_cached(scale, pd),
        "8a" => crate::fig8::fig8a_cached(scale, pd),
        "8b" => crate::fig8::fig8b_cached(scale, pd),
        "8t" => crate::fig8::fig8t_cached(scale, pd),
        "cs" => crate::coldstart::figcs(scale),
        "10a" => crate::fig10::fig10a(scale),
        "10b" => crate::fig10::fig10b(scale),
        _ => return None,
    })
}

/// All figure ids in paper order (plus the worklist ablation, the
/// summarization runtime sweeps, the serving-loop sweeps, the query-layer
/// sweeps, and the thread-scaling sweeps).
pub const ALL_FIGURES: [&str; 24] = [
    "5a", "5b", "5c", "5d", "5e", "5f", "5g", "5h", "wl", "5t", "6a", "6b", "6c", "6t", "7a", "7b",
    "7c", "7t", "8a", "8b", "8t", "cs", "10a", "10b",
];

/// The ids the JSON bench mode runs by default: the runtime sweeps
/// Fig. 5(a)–(d), the worklist ablation, and the SimProvAlg thread sweep —
/// the repo's per-PR perf trajectory committed as `BENCH_fig5.json`.
pub const BENCH_FIGURES: [&str; 6] = ["5a", "5b", "5c", "5d", "wl", "5t"];

/// The summarization trajectory committed as `BENCH_fig6.json`: pSum vs the
/// frozen seed PgSum pipeline vs the counting/quotient-incremental rewrite,
/// plus the simulation thread sweep.
pub const FIG6_FIGURES: [&str; 4] = ["6a", "6b", "6c", "6t"];

/// The serving-loop trajectory committed as `BENCH_fig7.json`: the
/// ingest/query interleave (rebuild-every-batch vs incremental refresh),
/// the lineage latency sweep (seed walk vs epoch-scratch BFS), the
/// session-open acquisition sweep, and the lineage thread sweep.
pub const FIG7_FIGURES: [&str; 4] = ["7a", "7b", "7c", "7t"];

/// The query-layer trajectory committed as `BENCH_fig8.json`: IR pipeline
/// latency by depth, the paginated cursor walk vs one-shot evaluation, and
/// the chunked-frontier thread sweep.
pub const FIG8_FIGURES: [&str; 3] = ["8a", "8b", "8t"];

/// The cold-start trajectory committed as `BENCH_coldstart.json`: time back
/// to a serving state after a restart — snapshot+tail recovery vs full WAL
/// replay vs in-memory re-ingest (ISSUE 9).
pub const COLDSTART_FIGURES: [&str; 1] = ["cs"];

/// The durable-ingest trajectory committed as `BENCH_fig10.json`: group-commit
/// ingest throughput sweeping the flush window, and eager-vs-lazy snapshot
/// decode cold starts (ISSUE 10).
pub const FIG10_FIGURES: [&str; 2] = ["10a", "10b"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pgsum_figures_have_expected_shapes() {
        let fig = fig5e(Scale::Quick);
        assert_eq!(fig.series.len(), 2);
        let psum = &fig.series[0];
        let pgsum = &fig.series[1];
        for (ps, pg) in psum.points.iter().zip(pgsum.points.iter()) {
            let (ps, pg) = (ps.y.unwrap(), pg.y.unwrap());
            assert!(pg <= ps + 1e-12, "PgSum never worse than pSum");
            assert!(pg > 0.0 && ps <= 1.0);
        }
        // cr grows with α (allow small non-monotonic noise at single seed).
        let first = pgsum.points.first().unwrap().y.unwrap();
        let last = pgsum.points.last().unwrap().y.unwrap();
        assert!(last >= first - 0.05, "cr should trend upward with α");
    }

    #[test]
    fn render_formats_dnf_and_values() {
        let fig = FigureResult {
            id: "5a",
            title: "t".into(),
            x_label: "N".into(),
            y_label: "runtime (s)".into(),
            series: vec![Series {
                name: "m".into(),
                points: vec![
                    Point { x: 50.0, y: Some(0.25), work: Some(7) },
                    Point::plain(100.0, None),
                ],
            }],
        };
        let text = fig.render();
        assert!(text.contains("DNF"));
        assert!(text.contains("250.00ms"));
    }

    #[test]
    fn pd_cache_freezes_each_workload_once_across_figures() {
        let mut cache = PdCache::new();
        let a = cache.instance(&PdParams::with_size(500));
        let b = cache.instance(&PdParams::with_size(500));
        assert!(Rc::ptr_eq(&a, &b), "same params must share one frozen instance");
        assert_eq!(cache.len(), 1);
        let c = cache.instance(&PdParams { se: 1.7, ..PdParams::with_size(500) });
        assert!(!Rc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        // The default-parameter overlap the bench mode exploits: fig5b's
        // se=1.5 point is exactly `with_size(n)`.
        let d = cache.instance(&PdParams { se: 1.5, ..PdParams::with_size(500) });
        assert!(Rc::ptr_eq(&a, &d));
        assert_eq!(cache.len(), 2);
        // Paper-scale workloads bypass the cache so they free after use.
        let _big = cache.instance(&PdParams::with_size(PD_CACHE_MAX_N + 1));
        assert_eq!(cache.len(), 2, "oversized instances are not retained");
    }

    #[test]
    fn worklist_ablation_runs_all_four_series() {
        // Tiny sizes, one rep: shapes only, no timing assertions (the real
        // sweep runs in release through the bench binary).
        let mut cache = PdCache::new();
        let fig = figwl_sized(&mut cache, &[200, 400], 1);
        assert_eq!(fig.id, "wl");
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points.iter().all(|p| p.y.is_some() && p.work.is_some()));
        }
        // Same derived facts regardless of loop or backend.
        let works: Vec<u64> = fig.series.iter().map(|s| s.points[0].work.unwrap()).collect();
        assert!(works.windows(2).all(|w| w[0] == w[1]), "{works:?}");
    }

    #[test]
    fn unknown_figure_id_is_none() {
        assert!(run_figure("9z", Scale::Quick).is_none());
        for id in ALL_FIGURES {
            // Only check resolvability, not execution (expensive).
            assert!([
                "5a", "5b", "5c", "5d", "5e", "5f", "5g", "5h", "wl", "5t", "6a", "6b", "6c", "6t",
                "7a", "7b", "7c", "7t", "8a", "8b", "8t", "cs", "10a", "10b"
            ]
            .contains(&id));
        }
        for id in BENCH_FIGURES {
            assert!(ALL_FIGURES.contains(&id), "bench subset must stay resolvable");
        }
        for id in FIG6_FIGURES {
            assert!(ALL_FIGURES.contains(&id), "fig6 subset must stay resolvable");
        }
        for id in FIG7_FIGURES {
            assert!(ALL_FIGURES.contains(&id), "fig7 subset must stay resolvable");
        }
        for id in FIG8_FIGURES {
            assert!(ALL_FIGURES.contains(&id), "fig8 subset must stay resolvable");
        }
        for id in COLDSTART_FIGURES {
            assert!(ALL_FIGURES.contains(&id), "coldstart subset must stay resolvable");
        }
        for id in FIG10_FIGURES {
            assert!(ALL_FIGURES.contains(&id), "fig10 subset must stay resolvable");
        }
    }

    #[test]
    fn sd_cache_freezes_each_segment_set_once() {
        let mut cache = SdCache::new();
        assert!(cache.is_empty());
        let a = cache.instance(&SdParams::default());
        let b = cache.instance(&SdParams::default());
        assert!(Rc::ptr_eq(&a, &b), "same params must share one frozen instance");
        assert_eq!(cache.len(), 1);
        let c = cache.instance(&SdParams { num_segments: 20, ..SdParams::default() });
        assert!(!Rc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        assert_eq!(a.segments.len(), SdParams::default().num_segments);
    }

    #[test]
    fn fig6_sweep_times_all_three_summarizers() {
        // Tiny sizes, one rep: shapes only (the real sweep runs in release
        // through the bench binary).
        let mut cache = SdCache::new();
        let mut series = fig6_series();
        for &s in &[2usize, 3] {
            let inst = cache.instance(&SdParams { num_segments: s, n: 4, ..SdParams::default() });
            time_summarizers(&inst.graph, &inst.segments, s as f64, 1, &mut series);
        }
        for s in &series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points.iter().all(|p| p.y.is_some() && p.work.is_some()));
        }
        // The frozen seed pipeline and the rewrite summarize to the same
        // number of groups; pSum never compacts further than PgSum.
        for i in 0..2 {
            let seed = series[1].points[i].work.unwrap();
            let new = series[2].points[i].work.unwrap();
            let psum = series[0].points[i].work.unwrap();
            assert_eq!(seed, new, "rewrite must match the reference |M|");
            assert!(new <= psum, "PgSum at least as compact as pSum");
        }
    }
}
