//! Terminal and nonterminal symbols of path-label grammars.
//!
//! A path word over a provenance graph concatenates vertex labels, edge labels
//! and — for segmentation queries — the identifiers of destination vertices
//! (Sec. III-A: "Σ = {E,A,U} ∪ {U,G,S,A,D} ∪ Vdst"). Ancestry edges (`used`,
//! `wasGeneratedBy`) additionally appear with *inverse* labels `U⁻¹`, `G⁻¹`
//! when a path traverses them against their stored orientation.

use prov_model::{EdgeKind, VertexId, VertexKind};

/// Orientation of an edge-label terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Orientation {
    /// The edge is traversed as stored (label `X`).
    Forward,
    /// The edge is traversed against its orientation (label `X⁻¹`).
    Inverse,
}

/// A terminal symbol of a path-label grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminal {
    /// An edge label, possibly inverted (e.g. `G`, `U⁻¹`).
    Edge(EdgeKind, Orientation),
    /// A vertex type label (`E`, `A`, `U`); matched as a self-loop.
    VertexLabel(VertexKind),
    /// A specific vertex identifier (the `v_j ∈ Vdst` anchors); a self-loop on
    /// exactly that vertex.
    VertexIs(VertexId),
}

impl Terminal {
    /// Forward edge label.
    pub fn fwd(kind: EdgeKind) -> Terminal {
        Terminal::Edge(kind, Orientation::Forward)
    }

    /// Inverse edge label.
    pub fn inv(kind: EdgeKind) -> Terminal {
        Terminal::Edge(kind, Orientation::Inverse)
    }

    /// Paper-style rendering (`G⁻¹`, `E`, `v17`).
    pub fn render(&self) -> String {
        match self {
            Terminal::Edge(k, Orientation::Forward) => k.letter().to_string(),
            Terminal::Edge(k, Orientation::Inverse) => format!("{}⁻¹", k.letter()),
            Terminal::VertexLabel(k) => k.letter().to_string(),
            Terminal::VertexIs(v) => v.to_string(),
        }
    }
}

impl std::fmt::Display for Terminal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// A nonterminal, interned per grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NonTerminal(pub u16);

impl NonTerminal {
    /// Array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A grammar symbol: terminal or nonterminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symbol {
    /// Terminal symbol.
    T(Terminal),
    /// Nonterminal symbol.
    N(NonTerminal),
}

impl From<Terminal> for Symbol {
    fn from(t: Terminal) -> Symbol {
        Symbol::T(t)
    }
}

impl From<NonTerminal> for Symbol {
    fn from(n: NonTerminal) -> Symbol {
        Symbol::N(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_paper_notation() {
        assert_eq!(Terminal::fwd(EdgeKind::WasGeneratedBy).render(), "G");
        assert_eq!(Terminal::inv(EdgeKind::Used).render(), "U⁻¹");
        assert_eq!(Terminal::VertexLabel(VertexKind::Activity).render(), "A");
        assert_eq!(Terminal::VertexIs(VertexId::new(17)).render(), "v17");
    }

    #[test]
    fn symbols_convert() {
        let t: Symbol = Terminal::fwd(EdgeKind::Used).into();
        assert!(matches!(t, Symbol::T(_)));
        let n: Symbol = NonTerminal(3).into();
        assert!(matches!(n, Symbol::N(NonTerminal(3))));
    }
}
