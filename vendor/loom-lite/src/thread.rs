//! Modeled threads: real OS threads under the scheduler's baton protocol.

use crate::exec::{self, Op, Tid};
use std::any::Any;
use std::marker::PhantomData;

/// Spawn a modeled thread. Not itself a decision point — the child simply
/// joins the candidate set at the parent's next yield.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_inner(None, f)
}

/// [`spawn`] with a thread name, used in traces and failure reports.
pub fn spawn_named<F, T>(name: impl Into<String>, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_inner(Some(name.into()), f)
}

fn spawn_inner<F, T>(name: Option<String>, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = exec::spawn_thread(name, Box::new(move || Box::new(f()) as Box<dyn Any + Send>));
    JoinHandle { tid, _marker: PhantomData }
}

/// An explicit yield point with no effect — exposes a pure scheduling
/// decision, useful for widening exploration around lock-free sections.
pub fn yield_now() {
    exec::yield_point(Op::Yield);
}

pub struct JoinHandle<T> {
    tid: Tid,
    _marker: PhantomData<T>,
}

impl<T: 'static> JoinHandle<T> {
    /// Join the modeled thread. Enabled only once the target has finished,
    /// so a join cycle surfaces as a model deadlock rather than a hang.
    ///
    /// Always `Ok` in the model: a panic inside a modeled thread aborts the
    /// whole execution and is reported as a check failure with its schedule
    /// trace, which subsumes std's per-thread `Err` propagation.
    pub fn join(self) -> std::thread::Result<T> {
        let boxed = exec::join_thread(self.tid);
        Ok(*boxed.downcast::<T>().expect("modeled thread result has the joined type"))
    }
}
