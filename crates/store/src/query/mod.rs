//! Composable query IR over frozen CSR snapshots (DESIGN.md §9).
//!
//! Every fixed-shape read path of the reproduction — lineage closures,
//! k-hop rings, property lookups, star-pattern reachability — is one
//! instance of the same step pipeline:
//!
//! ```text
//! StartSet → (Traverse | Filter | Limit)* → Project
//! ```
//!
//! * [`ir`] — the pipeline grammar itself: serde-ready value types with no
//!   behaviour, so a pipeline can cross the wire verbatim;
//! * [`plan`] — validation/normalization ([`Plan::compile`]) plus the
//!   lowering constructors that translate each legacy read path into a
//!   pipeline ([`Pipeline::find_by_prop`], [`plan::lower_pattern`]; the
//!   lineage lowering lives next to its bound types in `prov-core`);
//! * [`eval`] — the single traversal engine: epoch-stamped scratch, chunked
//!   level-parallel frontiers (byte-identical at any chunk count), and a
//!   bounded-replay mode that re-evaluates a pipeline against an older
//!   snapshot watermark of the same append-only log;
//! * [`cursor`] — stable resumable cursors: a snapshot watermark plus a
//!   rank watermark over the sorted row set, so pagination survives
//!   concurrent ingest.
//!
//! The legacy paths stay alive as *differential references* (the
//! `alg_reference` pattern): `lineage_over` / `ProvGraph::find_by_prop` /
//! `pattern::match_paths` are never deleted, and proptests pin the IR
//! evaluation byte-identical to each of them.

pub mod cursor;
pub mod eval;
pub mod ir;
pub mod plan;

pub use cursor::{paginate, Page, QueryCursor};
pub use eval::{evaluate, evaluate_at, evaluate_with_frontier_min, QueryOutput, QueryStats};
pub use ir::{Pipeline, Project, PropFilter, StartSet, Step, Traverse};
pub use plan::{lower_pattern, Plan};
