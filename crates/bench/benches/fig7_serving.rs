//! Fig. 7 kernel benchmark: the serving-loop primitives in isolation —
//! incremental `ProvIndex` refresh vs full rebuild after a streamed delta,
//! and the epoch-scratch lineage BFS vs the frozen seed walk. The committed
//! trajectory (`BENCH_fig7.json`) is produced by the `figure` binary; here
//! Criterion keeps the kernels compiling (`cargo bench --no-run`) and
//! profilable (`cargo bench`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_core::{lineage_over, lineage_reference, LineageBound, LineageDirection};
use prov_model::{EdgeKind, VertexKind};
use prov_store::{ProvGraph, ProvIndex};
use prov_workload::{generate_pd, ActivityStream, PdParams, StreamParams};
use std::time::Duration;

/// A frozen `Pd` graph plus a copy grown by `delta` streamed activities,
/// with the snapshot frozen at the preload cursor.
fn grown(n: usize, delta: usize) -> (ProvGraph, ProvIndex) {
    let base = generate_pd(&PdParams::with_size(n));
    let stale = ProvIndex::build(&base);
    let mut graph = base;
    let mut pool = graph.vertices_of_kind(VertexKind::Entity).to_vec();
    let mut stream = ActivityStream::new(StreamParams::default(), n * 4);
    for record in stream.batch(pool.len(), delta) {
        let a = graph.add_activity(&record.command);
        for &r in &record.input_ranks {
            graph.add_edge(EdgeKind::Used, a, pool[pool.len() - r]).unwrap();
        }
        for out in &record.outputs {
            let e = graph.add_entity(&format!("s-{out}"));
            graph.add_edge(EdgeKind::WasGeneratedBy, e, a).unwrap();
            pool.push(e);
        }
    }
    (graph, stale)
}

fn bench_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_refresh");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    for (label, n) in [("n2k", 2_000usize), ("n10k", 10_000)] {
        let (graph, stale) = grown(n, 64);
        group.bench_with_input(BenchmarkId::new("refresh", label), &label, |b, _| {
            b.iter(|| stale.refreshed(&graph))
        });
        group.bench_with_input(BenchmarkId::new("rebuild", label), &label, |b, _| {
            b.iter(|| ProvIndex::build(&graph))
        });
    }
    group.finish();
}

fn bench_lineage(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_lineage");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    for (label, n) in [("n2k", 2_000usize), ("n10k", 10_000)] {
        let graph = generate_pd(&PdParams::with_size(n));
        let index = ProvIndex::build(&graph);
        let entities = graph.vertices_of_kind(VertexKind::Entity);
        let probe = entities[entities.len() * 9 / 10];
        group.bench_with_input(BenchmarkId::new("epoch_bfs", label), &label, |b, _| {
            b.iter(|| {
                lineage_over(&index, probe, LineageDirection::Ancestors, LineageBound::Unbounded)
            })
        });
        group.bench_with_input(BenchmarkId::new("seed", label), &label, |b, _| {
            b.iter(|| lineage_reference(&index, probe, LineageDirection::Ancestors))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refresh, bench_lineage);
criterion_main!(benches);
