//! Model-checked proofs of the executor's three load-bearing properties,
//! run under `RUSTFLAGS="--cfg prov_loom"` (`just model-check`): the `sync`
//! facade swaps every primitive in this crate for the loom-lite doubles, and
//! each test below re-runs its closure under every thread interleaving the
//! scheduler can produce (DFS with sleep-set pruning, optionally
//! preemption-bounded).
//!
//! 1. **StealDeque exactly-once delivery** — concurrent owner pops and thief
//!    steals partition the pushed items: nothing lost, nothing doubled.
//! 2. **`scope` terminates only at `pending == 0`** — the soundness
//!    condition for the scope's lifetime-erased job boxes: in every
//!    schedule, all spawned tasks have run by the time `scope()` returns.
//! 3. **No lost wakeups in generation-counted parking** — the re-scan-under-
//!    the-generation-lock protocol `worker_loop` parks with can never sleep
//!    through a push, whereas the naive check-then-wait variant (seeded bug)
//!    deadlocks and is reported with its schedule trace.
//!
//! The exploration is deterministic, so the per-test schedule counts are
//! exact and stable; the floors asserted below sum past 10,000 completed
//! schedules across the three properties. The seeded-bug tests double as
//! proof that the checker *finds* bugs of this class — deterministically,
//! trace included — rather than vacuously passing.
#![cfg(prov_loom)]

use loom_lite::sync::atomic::{AtomicUsize, Ordering};
use loom_lite::sync::{Arc, Condvar, Mutex};
use loom_lite::{Builder, Report};
use rayon_core::{StealDeque, ThreadPool};

fn assert_explored(report: Report, floor: usize, what: &str) {
    println!("{what}: {report:?}");
    assert!(report.schedules >= floor, "{what}: expected >= {floor} schedules, got {report:?}");
}

// ---------------------------------------------------------------------------
// Property 1: StealDeque owner/thief exactly-once delivery.
// ---------------------------------------------------------------------------

/// The owner drains from the back while three thieves drain from the front;
/// every pushed item is delivered to exactly one drain in every
/// interleaving. (~6.1k schedules, exhaustive.)
#[test]
fn steal_deque_exactly_once_delivery() {
    let report = loom_lite::model(|| {
        let deque = Arc::new(StealDeque::new());
        for v in 1..=4u64 {
            deque.push(v);
        }
        let thieves: Vec<_> = (0..3)
            .map(|i| {
                let deque = Arc::clone(&deque);
                loom_lite::thread::spawn_named(format!("thief{i}"), move || {
                    let mut got = Vec::new();
                    while let Some(v) = deque.steal() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut all = Vec::new();
        while let Some(v) = deque.pop() {
            all.push(v);
        }
        for thief in thieves {
            all.extend(thief.join().unwrap());
        }
        // Exactly-once: the four drains partition {1..4}. (A drain loop only
        // stops on `None`, which under the shared lock means truly empty —
        // so the union is total, and duplication would show as len > 4.)
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4], "items lost or duplicated");
    });
    assert!(report.complete, "deque model must exhaust: {report:?}");
    assert_explored(report, 6_000, "deque drain");
}

/// Delivery stays exactly-once when the owner is still pushing while the
/// thief steals — the publish/steal race on a fresh deque.
#[test]
fn steal_deque_concurrent_push_and_steal() {
    let report = loom_lite::model(|| {
        let deque = Arc::new(StealDeque::new());
        let thief_deque = Arc::clone(&deque);
        let thief = loom_lite::thread::spawn_named("thief", move || {
            let mut got = Vec::new();
            // Two attempts racing the pushes; None just means "not yet".
            for _ in 0..2 {
                if let Some(v) = thief_deque.steal() {
                    got.push(v);
                }
            }
            got
        });
        deque.push(1u64);
        deque.push(2);
        let stolen = thief.join().unwrap();
        let mut all = stolen;
        while let Some(v) = deque.pop() {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, vec![1, 2], "items lost or duplicated across the push/steal race");
    });
    assert!(report.complete, "push/steal model must exhaust: {report:?}");
    assert_explored(report, 5, "deque push/steal race");
}

// ---------------------------------------------------------------------------
// Property 2: scope() returns only once pending == 0.
// ---------------------------------------------------------------------------

/// The whole real code path — pool, injector, worker parking, latch,
/// helping — explored *exhaustively* (no preemption bound). If any schedule
/// let `scope()` return before both tasks ran, the counter assert fails —
/// which is exactly the unsoundness the lifetime-erased job transmute in
/// `Scope::spawn` would turn into a use-after-free. (~2.5k schedules.)
#[test]
fn scope_waits_for_pending_zero() {
    let report = loom_lite::model(|| {
        let pool = ThreadPool::new(1);
        let hits = Arc::new(AtomicUsize::new(0));
        let (a, b) = (Arc::clone(&hits), Arc::clone(&hits));
        pool.scope(|s| {
            s.spawn(move || {
                a.fetch_add(1, Ordering::SeqCst);
            });
            s.spawn(move || {
                b.fetch_add(1, Ordering::SeqCst);
            });
        });
        // The soundness condition: by the time scope() returns, pending hit
        // zero and therefore every spawned task has fully run.
        assert_eq!(hits.load(Ordering::SeqCst), 2, "scope returned before tasks finished");
        // Drop stops the worker so the execution can terminate.
        drop(pool);
    });
    assert!(report.complete, "1-worker scope model must exhaust: {report:?}");
    assert_explored(report, 2_400, "scope pending==0 (1 worker, exhaustive)");
}

/// The same property over a 2-worker pool, where tasks can also be stolen
/// worker-to-worker; preemption-bounded (the CHESS result: most concurrency
/// bugs need <= 2 preemptions) to keep the larger model tractable.
#[test]
fn scope_waits_for_pending_zero_two_workers() {
    let mut builder = Builder::new();
    builder.preemption_bound = Some(2);
    builder.max_schedules = 100_000;
    let report = builder.check(|| {
        let pool = ThreadPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let (a, b) = (Arc::clone(&hits), Arc::clone(&hits));
        pool.scope(|s| {
            s.spawn(move || {
                a.fetch_add(1, Ordering::SeqCst);
            });
            s.spawn(move || {
                b.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2, "scope returned before tasks finished");
        drop(pool);
    });
    assert_explored(report, 650, "scope pending==0 (2 workers, bound 2)");
}

// ---------------------------------------------------------------------------
// Property 3: generation-counted parking has no lost wakeups.
// ---------------------------------------------------------------------------

/// The parking protocol `worker_loop` uses, isolated: consumers that must
/// each receive one produced item park by re-scanning *with the generation
/// lock held*, so a push (which bumps the generation under the same lock
/// before notifying) either lands before the re-scan or wakes the consumer
/// after its wait. The waits are untimed — correctness cannot lean on the
/// `wait_timeout` safety net — so any lost wakeup would deadlock some
/// schedule. Two producers x two consumers, exhaustive (~1.7k schedules).
#[test]
fn generation_parking_never_loses_a_wakeup() {
    fn consume(queue: &StealDeque<u64>, generation: &Mutex<u64>, wake: &Condvar) -> u64 {
        loop {
            if let Some(v) = queue.steal() {
                return v;
            }
            let mut generation = generation.lock().unwrap();
            loop {
                if let Some(v) = queue.steal() {
                    return v;
                }
                generation = wake.wait(generation).unwrap();
            }
        }
    }

    let report = loom_lite::model(|| {
        let queue = Arc::new(StealDeque::new());
        let generation = Arc::new(Mutex::new(0u64));
        let wake = Arc::new(Condvar::new());

        for i in 0..2u64 {
            let (q, g, w) = (Arc::clone(&queue), Arc::clone(&generation), Arc::clone(&wake));
            loom_lite::thread::spawn_named(format!("producer{i}"), move || {
                q.push(i);
                // Inner::notify — bump the generation under the lock, wake.
                let mut generation = g.lock().unwrap();
                *generation = generation.wrapping_add(1);
                drop(generation);
                w.notify_all();
            });
        }

        let (q, g, w) = (Arc::clone(&queue), Arc::clone(&generation), Arc::clone(&wake));
        let other = loom_lite::thread::spawn_named("consumer1", move || consume(&q, &g, &w));
        let mut got = vec![consume(&queue, &generation, &wake), other.join().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![0, 1], "a consumer slept through its item");
    });
    assert!(report.complete, "parking model must exhaust: {report:?}");
    assert_explored(report, 1_600, "generation parking");
}

/// Seeded bug #1: the same consumer *without* the re-scan under the lock
/// (check, then lock, then wait). The schedule where the push and notify
/// land between the check and the wait loses the wakeup — the model reports
/// it as a deadlock with the schedule trace, deterministically.
#[test]
fn seeded_check_then_wait_loses_wakeup() {
    let check = || {
        Builder::new().check_result(|| {
            let queue = Arc::new(StealDeque::new());
            let generation = Arc::new(Mutex::new(0u64));
            let wake = Arc::new(Condvar::new());

            let (q2, g2, w2) = (Arc::clone(&queue), Arc::clone(&generation), Arc::clone(&wake));
            let producer = loom_lite::thread::spawn_named("producer", move || {
                q2.push(42u64);
                let mut generation = g2.lock().unwrap();
                *generation = generation.wrapping_add(1);
                drop(generation);
                w2.notify_all();
            });

            let got = loop {
                if let Some(v) = queue.steal() {
                    break v;
                }
                // BUG (seeded): waits without re-scanning under the lock, so
                // a push+notify landing right here is lost forever.
                let generation = generation.lock().unwrap();
                drop(wake.wait(generation).unwrap());
                if let Some(v) = queue.steal() {
                    break v;
                }
            };
            assert_eq!(got, 42);
            producer.join().unwrap();
        })
    };
    let err = check().expect_err("the lost wakeup must be found");
    assert!(err.contains("deadlock"), "reported as a deadlock: {err}");
    assert!(err.contains("schedule trace"), "trace printed: {err}");
    assert!(err.contains("waiting on cv"), "stuck waiter identified: {err}");
    // Deterministic DFS: the same bug reproduces with the same schedule.
    assert_eq!(check().expect_err("again"), err, "reproduction is deterministic");
}

/// Seeded bug #2 (the ISSUE's example): a latch whose worker notifies
/// *before* decrementing `pending`. The waiter wakes, re-checks `pending`
/// (still 1), parks again — and the decrement that follows carries no
/// notify. Lost wakeup, reported as a deadlock with the trace. The real
/// `Latch::decrement` orders it the other way (fetch_sub, then lock+notify).
#[test]
fn seeded_broken_latch_decrement_ordering() {
    let check = || {
        Builder::new().check_result(|| {
            let pending = Arc::new(AtomicUsize::new(1));
            let lock = Arc::new(Mutex::new(()));
            let done = Arc::new(Condvar::new());

            let (p2, l2, d2) = (Arc::clone(&pending), Arc::clone(&lock), Arc::clone(&done));
            let worker = loom_lite::thread::spawn_named("worker", move || {
                // BUG (seeded): notify first, decrement after. The waiter
                // that wakes between the two sees pending == 1 and re-parks
                // with no further notify coming.
                {
                    let _guard = l2.lock().unwrap();
                    d2.notify_all();
                }
                p2.fetch_sub(1, Ordering::SeqCst);
            });

            let mut guard = lock.lock().unwrap();
            while pending.load(Ordering::SeqCst) != 0 {
                guard = done.wait(guard).unwrap();
            }
            drop(guard);
            worker.join().unwrap();
        })
    };
    let err = check().expect_err("the broken decrement ordering must be found");
    assert!(err.contains("deadlock"), "reported as a deadlock: {err}");
    assert!(err.contains("schedule trace"), "trace printed: {err}");
    assert_eq!(check().expect_err("again"), err, "reproduction is deterministic");
}

/// The corrected latch protocol from `scope.rs` (decrement first; take the
/// waiter's lock before notifying) passes exhaustively — the pair proves
/// the checker distinguishes the real ordering from the seeded one.
#[test]
fn correct_latch_decrement_ordering_is_clean() {
    let report = loom_lite::model(|| {
        let pending = Arc::new(AtomicUsize::new(1));
        let lock = Arc::new(Mutex::new(()));
        let done = Arc::new(Condvar::new());

        let (p2, l2, d2) = (Arc::clone(&pending), Arc::clone(&lock), Arc::clone(&done));
        let worker = loom_lite::thread::spawn_named("worker", move || {
            // Latch::decrement: drop the count, then notify under the lock.
            if p2.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = l2.lock().unwrap();
                d2.notify_all();
            }
        });

        let mut guard = lock.lock().unwrap();
        while pending.load(Ordering::SeqCst) != 0 {
            guard = done.wait(guard).unwrap();
        }
        drop(guard);
        worker.join().unwrap();
    });
    assert!(report.complete, "latch model must exhaust: {report:?}");
    assert_explored(report, 3, "correct latch");
}
