//! Simulation preorders `≤s_in` / `≤s_out` (Sec. IV-B).
//!
//! Trace equivalence is PSPACE-complete (Theorem 4), so PgSum approximates it
//! with similarity in the style of Henzinger–Henzinger–Kopke: `u ≤s_out v`
//! iff `ρ(u) = ρ(v)` and every labeled child of `u` is out-simulate-dominated
//! by some equally-labeled child of `v`. Simulation implies trace containment
//! (Lemma 5 direction), which is all the merge step needs.
//!
//! The implementation is a bitset fixpoint refinement: `sim[v]` holds the
//! candidates that may simulate `v`; candidates are struck out until stable.
//! Worst case `O(n² · m / w)` with word-parallel checks — comfortably fast at
//! segment-summary scale (hundreds to a few thousand nodes).

use crate::union::G0;
use prov_bitset::{FastSet, FixedBitSet};

/// A computed simulation preorder over `g0` nodes.
#[derive(Debug, Clone)]
pub struct SimRelation {
    /// `sim[v]` = set of `u` such that `u` simulates `v` (i.e. `v ≤ u`).
    sim: Vec<FixedBitSet>,
}

impl SimRelation {
    /// Is `u ≤ v` (does `v` simulate `u`)?
    #[inline]
    pub fn le(&self, u: u32, v: u32) -> bool {
        self.sim[u as usize].contains(v)
    }

    /// Are `u` and `v` simulation-equivalent (`u ≃ v`)?
    #[inline]
    pub fn equiv(&self, u: u32, v: u32) -> bool {
        self.le(u, v) && self.le(v, u)
    }

    /// All nodes simulating `u` (including `u`).
    pub fn above(&self, u: u32) -> Vec<u32> {
        self.sim[u as usize].to_vec()
    }
}

/// Direction of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimDirection {
    /// Children = out-neighbors (`≤s_out`).
    Out,
    /// Children = in-neighbors (`≤s_in`).
    In,
}

/// Compute the simulation preorder over `g0` in the given direction.
#[allow(clippy::needless_range_loop)] // v indexes three parallel arrays
pub fn simulation(g0: &G0, direction: SimDirection) -> SimRelation {
    let n = g0.len();
    let adj = match direction {
        SimDirection::Out => &g0.out_adj,
        SimDirection::In => &g0.in_adj,
    };

    // children_by_kind[v][kind] = bitset of v's children via edges of `kind`.
    const KINDS: usize = 5;
    let mut children_by_kind: Vec<[Option<Box<FixedBitSet>>; KINDS]> = Vec::with_capacity(n);
    for v in 0..n {
        let mut per: [Option<Box<FixedBitSet>>; KINDS] = Default::default();
        for &(k, c) in &adj[v] {
            per[k as usize].get_or_insert_with(|| Box::new(FixedBitSet::new(n))).insert(c);
        }
        children_by_kind.push(per);
    }

    // Init: sim[v] = all nodes with v's class.
    let mut by_class: std::collections::HashMap<crate::union::ClassId, FixedBitSet> =
        std::collections::HashMap::new();
    for v in 0..n as u32 {
        by_class.entry(g0.class(v)).or_insert_with(|| FixedBitSet::new(n)).insert(v);
    }
    let mut sim: Vec<FixedBitSet> = (0..n as u32).map(|v| by_class[&g0.class(v)].clone()).collect();

    // Fixpoint: strike u from sim[v] when some labeled child of v has no
    // simulating counterpart among u's equally-labeled children.
    let mut changed = true;
    let mut strike: Vec<u32> = Vec::new();
    while changed {
        changed = false;
        for v in 0..n {
            strike.clear();
            'candidates: for u in sim[v].ones() {
                if u as usize == v {
                    continue;
                }
                for &(k, c) in &adj[v] {
                    let ok = match &children_by_kind[u as usize][k as usize] {
                        None => false,
                        Some(uc) => !uc.is_disjoint(&sim[c as usize]),
                    };
                    if !ok {
                        strike.push(u);
                        continue 'candidates;
                    }
                }
            }
            if !strike.is_empty() {
                changed = true;
                for &u in &strike {
                    sim[v].remove(u);
                }
            }
        }
    }
    SimRelation { sim }
}

/// Reference implementation used by property tests: the naive fixpoint over
/// explicit pair checks (`O(n⁴)`-ish, tiny inputs only).
#[doc(hidden)]
#[allow(clippy::needless_range_loop)] // pairwise index loops mirror the math
pub fn simulation_naive(g0: &G0, direction: SimDirection) -> Vec<Vec<bool>> {
    let n = g0.len();
    let adj = match direction {
        SimDirection::Out => &g0.out_adj,
        SimDirection::In => &g0.in_adj,
    };
    let mut le = vec![vec![false; n]; n];
    for v in 0..n {
        for u in 0..n {
            le[v][u] = g0.class(v as u32) == g0.class(u as u32);
        }
    }
    loop {
        let mut changed = false;
        for v in 0..n {
            for u in 0..n {
                if !le[v][u] {
                    continue;
                }
                let ok = adj[v].iter().all(|&(k, c)| {
                    adj[u].iter().any(|&(k2, c2)| k2 == k && le[c as usize][c2 as usize])
                });
                if !ok {
                    le[v][u] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            return le;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::PropertyAggregation;
    use crate::segment_ref::SegmentRef;
    use crate::union::build_g0;
    use prov_model::EdgeKind;
    use prov_store::ProvGraph;

    /// One segment: d <-U- t <-G- w ; second segment: d' <-U- t' (no output).
    fn asymmetric() -> G0 {
        let mut g = ProvGraph::new();
        let d1 = g.add_entity("d");
        let t1 = g.add_activity("t");
        let w1 = g.add_entity("w");
        let e1 = g.add_edge(EdgeKind::Used, t1, d1).unwrap();
        let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
        let d2 = g.add_entity("d");
        let t2 = g.add_activity("t");
        let e3 = g.add_edge(EdgeKind::Used, t2, d2).unwrap();
        let s1 = SegmentRef::new(vec![d1, t1, w1], vec![e1, e2]);
        let s2 = SegmentRef::new(vec![d2, t2], vec![e3]);
        // k = 0 so both activities share a class despite different shapes.
        build_g0(&g, &[s1, s2], &PropertyAggregation::ignore_all(), 0)
    }

    #[test]
    fn out_simulation_dominance_is_directional() {
        let g0 = asymmetric();
        // Node ids: 0=d1, 1=t1, 2=w1, 3=d2, 4=t2.
        let out = simulation(&g0, SimDirection::Out);
        // t2's out-children (d2) ⊂ t1's (d1): t2 ≤out t1.
        assert!(out.le(4, 1), "t2 ≤out t1");
        assert!(out.le(1, 4), "t1 also ≤out t2: both only use one entity");
        // w1 has no out-children: it out-simulates nothing more than entities
        // with no children; every entity class-mate with no children works.
        assert!(out.le(2, 2));
    }

    #[test]
    fn in_simulation_separates_generated_entities() {
        let g0 = asymmetric();
        let inn = simulation(&g0, SimDirection::In);
        // Stored orientation: w1's G edge is OUTgoing (w1 -> t1), so w1 has no
        // in-edges and is vacuously in-dominated by any entity; d1 has an
        // in-edge (t1 -U-> d1) and therefore is NOT in-dominated by w1.
        assert!(inn.le(2, 0), "w1 (no in-edges) ≤in d1 vacuously");
        assert!(!inn.le(0, 2), "d1 (used by t1) not in-dominated by w1");
        // d2 ≤in d1 (t2's parent set is a vacuous subset of t1's behaviour),
        // but not conversely: d1's parent t1 is fed by a generated entity
        // while d2's parent t2 has no parents at all.
        assert!(inn.le(3, 0));
        assert!(!inn.le(0, 3));
    }

    #[test]
    fn optimized_matches_naive_on_fixture() {
        let g0 = asymmetric();
        for dir in [SimDirection::Out, SimDirection::In] {
            let fast = simulation(&g0, dir);
            let slow = simulation_naive(&g0, dir);
            for v in 0..g0.len() as u32 {
                for u in 0..g0.len() as u32 {
                    assert_eq!(
                        fast.le(v, u),
                        slow[v as usize][u as usize],
                        "dir={dir:?} v={v} u={u}"
                    );
                }
            }
        }
    }

    #[test]
    fn simulation_is_reflexive_and_class_respecting() {
        let g0 = asymmetric();
        let out = simulation(&g0, SimDirection::Out);
        for v in 0..g0.len() as u32 {
            assert!(out.le(v, v), "reflexive at {v}");
            for u in out.above(v) {
                assert_eq!(g0.class(u), g0.class(v));
            }
        }
    }
}
