//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods the
//! workload generators use: `gen::<f64>()`, `gen::<u64>()`, `gen_bool`, and
//! `gen_range` over primitive integer and float ranges. Deterministic per
//! seed, like the real crate, though the streams differ from upstream rand.

use std::ops::Range;

/// Core source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable "uniformly at random" by [`Rng::gen`] (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Sample a value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 means the full
                // u64 range, which the $ty widths here never produce.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let raw = rng.next_u64();
                    if raw <= zone {
                        return self.start.wrapping_add((raw % span) as $ty);
                    }
                }
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard RNG: xoshiro256++ (not the ChaCha12 of real rand,
    /// but deterministic per seed and statistically solid for tests).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}
