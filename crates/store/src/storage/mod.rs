//! Durable storage: a checksummed write-ahead log with snapshot compaction
//! and crash recovery, behind an injectable I/O layer.
//!
//! ## Architecture
//!
//! ```text
//!   ProvDb ──journal (Vec<WalOp>)──▶ dyn Storage (CommitPipeline ▶ WalStorage)
//!                                        │
//!                                        ├─ pipeline.rs  group commit: batches/fsync
//!                                        ├─ wal.rs       record framing + recovery scan
//!                                        ├─ snapshot.rs  whole-image entry points
//!                                        ├─ column.rs    segmented image + lazy decode
//!                                        ├─ codec.rs     LE primitives + CRC-32
//!                                        └─ dyn Io ──▶ StdIo (real fs) | MemIo | FailpointIo
//! ```
//!
//! ## Commit protocol
//!
//! Every mutation batch drains the graph's op journal into
//! [`Storage::commit`], which appends one contiguous `[ops record][commit
//! marker]` pair to the current WAL file and (by default) fsyncs before
//! acknowledging. A batch is durable iff its commit marker is intact on
//! disk; commit sequence numbers increase by exactly 1 and survive
//! compaction, so a spliced or replayed log is detected, never folded in.
//!
//! Under a grouped [`DurabilityPolicy`] the [`CommitPipeline`] buffers
//! encoded batches and flushes several of them as **one** contiguous WAL
//! append + one fsync. Each batch keeps its own commit marker, so recovery
//! is byte-for-byte the same protocol; durability is acknowledged at flush
//! boundaries (see `pipeline.rs` for the leader/waiter protocol).
//!
//! ## On-disk layout
//!
//! One directory, generation-numbered files:
//!
//! ```text
//!   wal-0000000000                       generation 0: log only, empty base
//!   snapshot-0000000003  wal-0000000003  generation 3: image + log suffix
//!   snapshot.tmp                         in-flight compaction (ignored)
//! ```
//!
//! Compaction writes `snapshot.tmp`, fsyncs, atomically renames it to
//! `snapshot-{g+1}`, creates an empty `wal-{g+1}`, then deletes the old
//! generation. The rename is the commit point of a compaction: before it the
//! old generation is authoritative, after it the new one is. Recovery makes
//! every intermediate crash state well-defined (stale files are swept, a
//! missing `wal-{g+1}` is created empty).
//!
//! ## Recovery invariants
//!
//! Opening a directory yields a graph equal to some committed-batch prefix of
//! the pre-crash history — never a partial batch, never silently less than
//! the committed prefix:
//!
//! 1. torn tails (structurally damaged suffix of the WAL) are truncated back
//!    to the last intact commit marker;
//! 2. CRC-valid bytes that decode to garbage or commit out of sequence are
//!    **corruption** and fail the open with
//!    [`StoreError::CorruptLog`](crate::StoreError) — corruption is loud,
//!    truncation is only for torn writes;
//! 3. replay drives the ordinary graph mutators, and the recovered secondary
//!    index is caught up with `ProvIndex::refresh_in_place`, so recovered
//!    state is bit-for-bit the state the mutators would rebuild.
//!
//! After any I/O error the engine is *poisoned*: in-memory state may be ahead
//! of durable state, so every later commit fails with
//! [`StoreError::StorageUnavailable`](crate::StoreError) until the process
//! reopens the directory.

pub mod codec;
pub mod column;
pub mod failpoint;
pub mod io;
pub mod pipeline;
pub mod snapshot;
pub mod wal;

pub use column::LazyStats;
pub use failpoint::{FailpointIo, FaultPlan};
pub use io::{ColumnSource, Io, IoError, IoResult, MemIo, StdIo};
pub use pipeline::CommitPipeline;
pub use wal::WalScan;

use crate::error::{StoreError, StoreResult};
use crate::graph::{ProvGraph, WalOp};
use crate::snapshot::ProvIndex;

/// Name of the in-flight compaction temp file.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// WAL file name for generation `gen`.
pub fn wal_file_name(gen: u64) -> String {
    format!("wal-{gen:010}")
}

/// Snapshot file name for generation `gen`.
pub fn snapshot_file_name(gen: u64) -> String {
    format!("snapshot-{gen:010}")
}

fn parse_gen(name: &str, prefix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?;
    if digits.len() == 10 && digits.bytes().all(|b| b.is_ascii_digit()) {
        digits.parse().ok()
    } else {
        None
    }
}

/// How `recover()` materializes the snapshot base image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotDecode {
    /// Decode every column at open — full integrity check up front
    /// (default).
    #[default]
    Eager,
    /// Decode only the structural columns at open; defer the property
    /// columns behind a [`ColumnSource`] until first touch. Cold start is
    /// O(structural columns); corruption inside a deferred column surfaces
    /// at first touch instead of at open.
    Lazy,
}

/// When to fsync, when to compact, how to group commits, how to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// Fsync the WAL before acknowledging each commit (default `true`).
    /// Turning this off trades the durability of the latest commits for
    /// throughput; recovery still yields a committed prefix.
    pub fsync_on_commit: bool,
    /// Compact (snapshot + truncate the log) once the WAL exceeds this many
    /// bytes (default 1 MiB). `u64::MAX` disables automatic compaction.
    /// Buffered-but-unflushed group bytes count toward the threshold.
    pub compact_after_wal_bytes: u64,
    /// Group up to this many op-batches into one WAL append + one fsync
    /// (default 1 — every batch flushes immediately, exactly the ungrouped
    /// protocol). With a larger window, a batch is *accepted* on submit and
    /// *durable* once the flush covering it returns (window full, byte
    /// window reached, or explicit [`Storage::flush`]).
    pub group_max_batches: u32,
    /// Also flush once the buffered group reaches this many encoded bytes
    /// (default 0 — no byte trigger; the batch window alone decides).
    pub group_window_bytes: u64,
    /// Snapshot decode mode at open (default [`SnapshotDecode::Eager`]).
    pub decode: SnapshotDecode,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy {
            fsync_on_commit: true,
            compact_after_wal_bytes: 1 << 20,
            group_max_batches: 1,
            group_window_bytes: 0,
            decode: SnapshotDecode::Eager,
        }
    }
}

impl DurabilityPolicy {
    /// A policy that never auto-compacts (explicit [`Storage::compact`] only).
    pub fn never_compact() -> DurabilityPolicy {
        DurabilityPolicy { compact_after_wal_bytes: u64::MAX, ..DurabilityPolicy::default() }
    }

    /// Group up to `n` batches per WAL flush (clamped to at least 1).
    pub fn with_group_batches(mut self, n: u32) -> DurabilityPolicy {
        self.group_max_batches = n.max(1);
        self
    }

    /// Also flush once the buffered group reaches `bytes` encoded bytes.
    pub fn with_group_window_bytes(mut self, bytes: u64) -> DurabilityPolicy {
        self.group_window_bytes = bytes;
        self
    }

    /// Defer property-column decode until first touch at recovery.
    pub fn with_lazy_decode(mut self) -> DurabilityPolicy {
        self.decode = SnapshotDecode::Lazy;
        self
    }
}

/// Monotone counters describing the durability subsystem's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityCounters {
    /// Batches appended to the WAL.
    pub wal_appends: u64,
    /// Fsync calls issued (commits, snapshot writes).
    pub fsyncs: u64,
    /// Cold-start recoveries performed.
    pub recoveries: u64,
    /// Torn-tail bytes truncated during recovery.
    pub truncated_tail_bytes: u64,
    /// Snapshot images written by compaction.
    pub snapshots_written: u64,
    /// Committed batches replayed from the WAL during recovery.
    pub batches_replayed: u64,
    /// Grouped WAL flushes performed by the commit pipeline.
    pub group_flushes: u64,
    /// Batches covered by those grouped flushes.
    pub group_flushed_batches: u64,
    /// Property segments whose decode was deferred at open (lazy mode).
    pub lazy_segments_deferred: u64,
    /// Bytes of snapshot payload not read at open (lazy mode).
    pub lazy_deferred_bytes: u64,
    /// Deferred segments loaded on first touch.
    pub lazy_segment_loads: u64,
    /// Bytes range-read by first-touch loads.
    pub lazy_bytes_loaded: u64,
}

/// The durable backend the database layer (`prov-core`) commits through.
///
/// Object-safe so the database holds a `Box<dyn Storage>`; [`WalStorage`] is
/// the one real implementation, tests substitute instrumented ones.
pub trait Storage: std::fmt::Debug + Send + Sync {
    /// Durably commit one batch of ops (one mutation call's journal).
    fn commit(&mut self, ops: &[WalOp]) -> StoreResult<()>;

    /// Compact if the policy says the WAL has grown past its threshold.
    /// Returns whether a compaction ran. `graph` must reflect every batch
    /// committed so far.
    fn maybe_compact(&mut self, graph: &ProvGraph) -> StoreResult<bool>;

    /// Unconditionally compact: write a snapshot of `graph`, start a fresh
    /// WAL generation, delete the old one.
    fn compact(&mut self, graph: &ProvGraph) -> StoreResult<()>;

    /// Durably flush any buffered-but-unflushed commits. A no-op for
    /// engines that flush on every commit.
    fn flush(&mut self) -> StoreResult<()> {
        Ok(())
    }

    /// Activity counters (monotone since open).
    fn counters(&self) -> DurabilityCounters;

    /// Bytes in the current WAL generation.
    fn wal_bytes(&self) -> u64;
}

/// What a cold-start recovery produced.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered graph: snapshot base + committed WAL suffix.
    pub graph: ProvGraph,
    /// A secondary index over `graph`, built from the snapshot base and
    /// caught up with `refresh_in_place` over the replayed suffix.
    pub index: ProvIndex,
}

/// The WAL + snapshot storage engine. See the module docs for the protocol.
#[derive(Debug)]
pub struct WalStorage {
    io: Box<dyn Io>,
    policy: DurabilityPolicy,
    /// Current file generation (`wal-{gen}` is the live log).
    gen: u64,
    /// Sequence number of the last committed batch (0 = none ever).
    seq: u64,
    wal_bytes: u64,
    counters: DurabilityCounters,
    /// Lazy-decode activity, shared with the deferred loader attached to the
    /// recovered graph (which outlives `recover()` and loads on first touch).
    lazy_stats: std::sync::Arc<LazyStats>,
    poisoned: Option<String>,
}

impl WalStorage {
    /// Open (or create) a storage directory behind `io`, recovering whatever
    /// committed state it holds.
    pub fn open(io: Box<dyn Io>, policy: DurabilityPolicy) -> StoreResult<(WalStorage, Recovered)> {
        let mut engine = WalStorage {
            io,
            policy,
            gen: 0,
            seq: 0,
            wal_bytes: 0,
            counters: DurabilityCounters::default(),
            lazy_stats: std::sync::Arc::default(),
            poisoned: None,
        };
        let recovered = engine.recover()?;
        Ok((engine, recovered))
    }

    fn io_err(e: IoError) -> StoreError {
        StoreError::StorageUnavailable(e.to_string())
    }

    fn recover(&mut self) -> StoreResult<Recovered> {
        // Survey the directory.
        let names = self.io.list().map_err(Self::io_err)?;
        let mut wal_gens = Vec::new();
        let mut snap_gens = Vec::new();
        let mut had_tmp = false;
        for name in &names {
            if let Some(g) = parse_gen(name, "wal-") {
                wal_gens.push(g);
            } else if let Some(g) = parse_gen(name, "snapshot-") {
                snap_gens.push(g);
            } else if name == SNAPSHOT_TMP {
                had_tmp = true;
            }
            // Unknown names are left alone (foreign files in the directory).
        }
        if had_tmp {
            // An interrupted compaction that never reached its rename commit
            // point — the old generation is authoritative.
            self.io.remove(SNAPSHOT_TMP).map_err(Self::io_err)?;
        }

        // Pick the generation: the newest snapshot wins (renames are atomic,
        // so a present snapshot is complete — decode failures below are real
        // corruption, not crash artifacts).
        let snap_gen = snap_gens.iter().copied().max();
        let gen = snap_gen.unwrap_or(0);
        if let Some(&orphan) = wal_gens.iter().find(|&&g| g > gen) {
            return Err(StoreError::CorruptLog(format!(
                "wal generation {orphan} has no snapshot (newest snapshot generation: {gen})",
            )));
        }

        // Load the base image through a column source: eager mode reads the
        // whole image, lazy mode decodes only the structural segments and
        // leaves the property columns addressable behind the source.
        let (mut graph, base_seq) = match snap_gen {
            Some(g) => {
                let source = column::source_for(self.io.as_ref(), &snapshot_file_name(g))
                    .map_err(Self::io_err)?
                    .ok_or_else(|| {
                        StoreError::StorageUnavailable(format!(
                            "snapshot generation {g} vanished during recovery"
                        ))
                    })?;
                column::recover_snapshot(source, self.policy.decode, &self.lazy_stats)
                    .map_err(|e| StoreError::CorruptLog(format!("snapshot generation {g}: {e}")))?
            }
            None => (ProvGraph::new(), 0),
        };

        // Index over the base, *before* replay: the replayed suffix is then
        // folded in with `refresh_in_place`, exactly as a live process would.
        let mut index = ProvIndex::build(&graph);

        // Scan the live WAL; truncate the torn tail; replay the committed
        // batches.
        let wal_name = wal_file_name(gen);
        let bytes = match self.io.read(&wal_name).map_err(Self::io_err)? {
            Some(bytes) => bytes,
            None => {
                // Crash window between a compaction's rename and its fresh
                // WAL creation — finish the job.
                self.io.write(&wal_name, &[]).map_err(Self::io_err)?;
                Vec::new()
            }
        };
        let scan = wal::scan(&bytes, base_seq + 1)
            .map_err(|e| StoreError::CorruptLog(format!("{wal_name}: {e}")))?;
        if scan.committed_len < bytes.len() {
            let torn = (bytes.len() - scan.committed_len) as u64;
            self.io.truncate(&wal_name, scan.committed_len as u64).map_err(Self::io_err)?;
            self.io.sync(&wal_name).map_err(Self::io_err)?;
            self.counters.truncated_tail_bytes += torn;
        }
        for (i, batch) in scan.batches.iter().enumerate() {
            for op in batch {
                graph.apply_wal_op(op).map_err(|e| {
                    StoreError::CorruptLog(format!(
                        "{wal_name}: batch {} (seq {}) does not replay: {e}",
                        i,
                        base_seq + 1 + i as u64,
                    ))
                })?;
            }
        }
        self.counters.batches_replayed += scan.batches.len() as u64;
        index.refresh_in_place(&graph);

        // Sweep stale older generations (crash window after a compaction's
        // rename, before its deletes).
        for &g in wal_gens.iter().filter(|&&g| g < gen) {
            self.io.remove(&wal_file_name(g)).map_err(Self::io_err)?;
        }
        for &g in snap_gens.iter().filter(|&&g| g < gen) {
            self.io.remove(&snapshot_file_name(g)).map_err(Self::io_err)?;
        }

        self.gen = gen;
        self.seq = scan.last_seq;
        self.wal_bytes = scan.committed_len as u64;
        self.counters.recoveries += 1;
        Ok(Recovered { graph, index })
    }

    /// Fails every future commit with the given reason; recovery by reopen.
    fn poison<T>(&mut self, err: StoreError) -> StoreResult<T> {
        self.poisoned = Some(err.to_string());
        Err(err)
    }

    fn check_poisoned(&self) -> StoreResult<()> {
        match &self.poisoned {
            Some(msg) => Err(StoreError::StorageUnavailable(format!(
                "storage poisoned by an earlier failure ({msg}); reopen to recover"
            ))),
            None => Ok(()),
        }
    }

    /// True once an I/O failure has poisoned the engine.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Current file generation.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Sequence number of the last committed batch.
    pub fn last_seq(&self) -> u64 {
        self.seq
    }

    /// The engine's durability policy.
    pub fn policy(&self) -> &DurabilityPolicy {
        &self.policy
    }

    /// Append a pre-encoded group of `batches` already-framed commit batches
    /// (each its own `[ops record][commit marker]` pair, seqs continuing at
    /// `last_seq() + 1` and ending at `last_seq`) as **one** contiguous write
    /// and at most one fsync. This is the group-commit fast path the
    /// [`CommitPipeline`] flushes through; on-disk bytes are identical to
    /// `batches` individual commits.
    pub fn append_group(&mut self, bytes: &[u8], batches: u64, last_seq: u64) -> StoreResult<()> {
        self.check_poisoned()?;
        debug_assert_eq!(self.seq + batches, last_seq, "group seqs must be gapless");
        let wal_name = wal_file_name(self.gen);
        if let Err(e) = self.io.append(&wal_name, bytes) {
            // A short write tears at most the group's tail — recovery
            // truncates back to the last intact commit marker, which can only
            // drop batches whose flush was never acknowledged.
            return self.poison(Self::io_err(e));
        }
        if self.policy.fsync_on_commit {
            if let Err(e) = self.io.sync(&wal_name) {
                return self.poison(Self::io_err(e));
            }
            self.counters.fsyncs += 1;
        }
        self.counters.wal_appends += batches;
        self.counters.group_flushes += 1;
        self.counters.group_flushed_batches += batches;
        self.wal_bytes += bytes.len() as u64;
        self.seq = last_seq;
        Ok(())
    }
}

impl Storage for WalStorage {
    fn commit(&mut self, ops: &[WalOp]) -> StoreResult<()> {
        self.check_poisoned()?;
        let wal_name = wal_file_name(self.gen);
        let bytes = wal::encode_batch(ops, self.seq + 1);
        if let Err(e) = self.io.append(&wal_name, &bytes) {
            // The append may have partially landed (short write) — that torn
            // tail is exactly what recovery truncates. Until then, nothing
            // more may be acknowledged.
            return self.poison(Self::io_err(e));
        }
        if self.policy.fsync_on_commit {
            if let Err(e) = self.io.sync(&wal_name) {
                // The batch is written but not durable; acknowledging it
                // would lie, so the engine poisons itself.
                return self.poison(Self::io_err(e));
            }
            self.counters.fsyncs += 1;
        }
        self.counters.wal_appends += 1;
        self.wal_bytes += bytes.len() as u64;
        self.seq += 1;
        Ok(())
    }

    fn maybe_compact(&mut self, graph: &ProvGraph) -> StoreResult<bool> {
        if self.wal_bytes < self.policy.compact_after_wal_bytes {
            return Ok(false);
        }
        self.compact(graph)?;
        Ok(true)
    }

    fn compact(&mut self, graph: &ProvGraph) -> StoreResult<()> {
        self.check_poisoned()?;
        let old_gen = self.gen;
        let new_gen = old_gen + 1;
        let image = snapshot::encode(graph, self.seq);
        let result = (|| -> Result<(), IoError> {
            self.io.write(SNAPSHOT_TMP, &image)?;
            self.io.sync(SNAPSHOT_TMP)?;
            // The commit point: after this rename the new generation is
            // authoritative; before it, a crash leaves only a tmp file that
            // recovery sweeps.
            self.io.rename(SNAPSHOT_TMP, &snapshot_file_name(new_gen))?;
            self.io.write(&wal_file_name(new_gen), &[])?;
            self.io.sync(&wal_file_name(new_gen))?;
            self.io.remove(&wal_file_name(old_gen))?;
            // Generation 0 has no snapshot; remove is idempotent either way.
            self.io.remove(&snapshot_file_name(old_gen))?;
            Ok(())
        })();
        if let Err(e) = result {
            return self.poison(Self::io_err(e));
        }
        self.counters.fsyncs += 2; // tmp + fresh wal
        self.counters.snapshots_written += 1;
        self.gen = new_gen;
        self.wal_bytes = 0;
        Ok(())
    }

    fn counters(&self) -> DurabilityCounters {
        use std::sync::atomic::Ordering;
        let mut c = self.counters;
        c.lazy_segments_deferred = self.lazy_stats.segments_deferred.load(Ordering::Relaxed);
        c.lazy_deferred_bytes = self.lazy_stats.deferred_bytes.load(Ordering::Relaxed);
        c.lazy_segment_loads = self.lazy_stats.segment_loads.load(Ordering::Relaxed);
        c.lazy_bytes_loaded = self.lazy_stats.bytes_loaded.load(Ordering::Relaxed);
        c
    }

    fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::VertexKind;

    /// Run `n` mutation batches against `graph` (journaling on), committing
    /// each drained journal through `storage`. Mirrors what ProvDb does.
    fn ingest(graph: &mut ProvGraph, storage: &mut WalStorage, n: usize, tag: &str) {
        graph.set_journaling(true);
        for i in 0..n {
            let v = graph.add_entity(&format!("{tag}-{i}"));
            graph.set_vprop(v, "version", i as i64);
            if i % 3 == 0 {
                graph.create_vprop_index(VertexKind::Entity, "version");
            }
            let ops = graph.take_journal();
            storage.commit(&ops).unwrap();
        }
    }

    fn open_mem(disk: &MemIo) -> (WalStorage, Recovered) {
        WalStorage::open(Box::new(disk.clone()), DurabilityPolicy::never_compact()).unwrap()
    }

    #[test]
    fn commit_reopen_recovers_the_exact_graph_and_index() {
        let disk = MemIo::new();
        let (mut storage, rec) = open_mem(&disk);
        assert_eq!(rec.graph, ProvGraph::new());
        let mut graph = rec.graph;
        ingest(&mut graph, &mut storage, 7, "e");
        assert_eq!(storage.last_seq(), 7);
        assert_eq!(storage.counters().wal_appends, 7);
        assert_eq!(storage.counters().fsyncs, 7);

        let (storage2, rec2) = open_mem(&disk);
        assert_eq!(rec2.graph, graph);
        rec2.graph.validate().unwrap();
        rec2.index.validate().unwrap();
        assert_eq!(rec2.index, ProvIndex::build(&rec2.graph), "refresh == rebuild");
        assert_eq!(storage2.last_seq(), 7);
        assert_eq!(storage2.counters().recoveries, 1);
        assert_eq!(storage2.counters().batches_replayed, 7);
        assert_eq!(storage2.counters().truncated_tail_bytes, 0);
    }

    #[test]
    fn torn_tails_truncate_and_recover_a_committed_prefix() {
        let disk = MemIo::new();
        let (mut storage, rec) = open_mem(&disk);
        let mut graph = rec.graph;
        ingest(&mut graph, &mut storage, 3, "e");
        let wal = wal_file_name(storage.generation());
        let full = disk.file(&wal).unwrap();
        // Simulate a crash mid-append of a 4th batch: stray trailing bytes
        // are a torn tail.
        let torn = disk.fork();
        torn.set_file(&wal, [full.as_slice(), &[0x55; 11]].concat());
        let (storage2, rec2) = open_mem(&torn);
        assert_eq!(rec2.graph, graph);
        assert_eq!(storage2.counters().truncated_tail_bytes, 11);
        assert_eq!(torn.file(&wal).unwrap(), full, "tail physically truncated");

        // Reopening the truncated disk again finds nothing left to truncate.
        let (storage3, rec3) = open_mem(&torn);
        assert_eq!(storage3.counters().truncated_tail_bytes, 0);
        assert_eq!(rec3.graph, graph);
    }

    #[test]
    fn crc_valid_garbage_is_corruption_not_truncation() {
        let disk = MemIo::new();
        let (mut storage, rec) = open_mem(&disk);
        let mut graph = rec.graph;
        ingest(&mut graph, &mut storage, 2, "e");
        let wal = wal_file_name(storage.generation());
        // Splice a batch whose commit seq skips ahead — every frame is
        // CRC-clean, so this must fail loudly, not truncate silently.
        let mut bytes = disk.file(&wal).unwrap();
        bytes.extend_from_slice(&wal::encode_batch(&[], 9));
        disk.set_file(&wal, bytes);
        let err =
            WalStorage::open(Box::new(disk.clone()), DurabilityPolicy::default()).unwrap_err();
        assert!(matches!(&err, StoreError::CorruptLog(m) if m.contains("commit seq 9")), "{err}");
    }

    #[test]
    fn corrupt_snapshots_fail_loudly() {
        let disk = MemIo::new();
        let (mut storage, rec) = open_mem(&disk);
        let mut graph = rec.graph;
        ingest(&mut graph, &mut storage, 4, "e");
        storage.compact(&graph).unwrap();
        let snap = snapshot_file_name(storage.generation());
        let mut bytes = disk.file(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        disk.set_file(&snap, bytes);
        let err =
            WalStorage::open(Box::new(disk.clone()), DurabilityPolicy::default()).unwrap_err();
        assert!(matches!(err, StoreError::CorruptLog(_)), "{err}");
    }

    #[test]
    fn compaction_starts_a_fresh_generation_and_recovers_identically() {
        let disk = MemIo::new();
        let (mut storage, rec) = open_mem(&disk);
        let mut graph = rec.graph;
        ingest(&mut graph, &mut storage, 5, "a");
        storage.compact(&graph).unwrap();
        assert_eq!(storage.generation(), 1);
        assert_eq!(storage.wal_bytes(), 0);
        assert_eq!(storage.counters().snapshots_written, 1);
        // Old generation files are gone; new snapshot + empty wal exist.
        assert_eq!(disk.file(&wal_file_name(0)), None);
        assert!(disk.file(&snapshot_file_name(1)).is_some());
        assert_eq!(disk.file(&wal_file_name(1)).unwrap(), b"");

        // Keep committing into the new generation; seq continues monotone.
        ingest(&mut graph, &mut storage, 3, "b");
        assert_eq!(storage.last_seq(), 8);

        let (storage2, rec2) = open_mem(&disk);
        assert_eq!(rec2.graph, graph);
        assert_eq!(rec2.index, ProvIndex::build(&rec2.graph));
        assert_eq!(storage2.last_seq(), 8);
        assert_eq!(storage2.generation(), 1);
        assert_eq!(storage2.counters().batches_replayed, 3, "only the suffix replays");
    }

    #[test]
    fn maybe_compact_honors_the_policy_threshold() {
        let disk = MemIo::new();
        let (mut storage, rec) = WalStorage::open(
            Box::new(disk.clone()),
            DurabilityPolicy { compact_after_wal_bytes: 64, ..DurabilityPolicy::default() },
        )
        .unwrap();
        let mut graph = rec.graph;
        graph.set_journaling(true);
        graph.add_entity("tiny");
        let ops = graph.take_journal();
        storage.commit(&ops).unwrap();
        assert!(!storage.maybe_compact(&graph).unwrap(), "below threshold");
        while storage.wal_bytes() < 64 {
            graph.add_entity("more");
            let ops = graph.take_journal();
            storage.commit(&ops).unwrap();
        }
        assert!(storage.maybe_compact(&graph).unwrap(), "above threshold");
        assert_eq!(storage.wal_bytes(), 0);
        let (_, rec2) = open_mem(&disk);
        assert_eq!(rec2.graph, graph);
    }

    #[test]
    fn every_compaction_crash_window_recovers() {
        // Build a disk mid-history, compact it for real, then reconstruct
        // each intermediate crash state by rewinding the final disk.
        let disk = MemIo::new();
        let (mut storage, rec) = open_mem(&disk);
        let mut graph = rec.graph;
        ingest(&mut graph, &mut storage, 4, "e");
        let before = disk.fork(); // state before compaction started
        let old_wal = before.file(&wal_file_name(0)).unwrap();
        storage.compact(&graph).unwrap();
        let after = disk.fork(); // state after a complete compaction
        let image = after.file(&snapshot_file_name(1)).unwrap();

        // Window A: crashed after writing snapshot.tmp, before the rename.
        // The old generation is authoritative; the tmp is swept.
        let a = before.fork();
        a.set_file(SNAPSHOT_TMP, image.clone());
        let (sa, ra) = open_mem(&a);
        assert_eq!(ra.graph, graph);
        assert_eq!(sa.generation(), 0);
        assert!(a.file(SNAPSHOT_TMP).is_none(), "tmp swept");

        // Window B: crashed after the rename, before creating wal-1 or
        // deleting generation 0. The new snapshot is authoritative.
        let b = before.fork();
        b.set_file(&snapshot_file_name(1), image.clone());
        let (sb, rb) = open_mem(&b);
        assert_eq!(rb.graph, graph);
        assert_eq!(sb.generation(), 1);
        assert_eq!(sb.last_seq(), 4);
        assert!(b.file(&wal_file_name(0)).is_none(), "stale wal swept");
        assert_eq!(b.file(&wal_file_name(1)), Some(Vec::new()), "fresh wal created");

        // Window C: crashed after creating wal-1, before deleting gen 0.
        let c = after.fork();
        c.set_file(&wal_file_name(0), old_wal.clone());
        let (sc, rc) = open_mem(&c);
        assert_eq!(rc.graph, graph);
        assert_eq!(sc.generation(), 1);
        assert!(c.file(&wal_file_name(0)).is_none(), "stale wal swept");

        // And a second compaction from a recovered window still works.
        let (mut sd, rd) = open_mem(&b);
        let mut g2 = rd.graph;
        ingest(&mut g2, &mut sd, 2, "later");
        sd.compact(&g2).unwrap();
        assert_eq!(sd.generation(), 2);
        let (_, re) = open_mem(&b);
        assert_eq!(re.graph, g2);
    }

    #[test]
    fn orphan_wal_generations_are_corruption() {
        let disk = MemIo::new();
        disk.set_file(&wal_file_name(3), Vec::new());
        let err =
            WalStorage::open(Box::new(disk.clone()), DurabilityPolicy::default()).unwrap_err();
        assert!(matches!(&err, StoreError::CorruptLog(m) if m.contains("generation 3")), "{err}");
    }

    #[test]
    fn fsync_failure_poisons_until_reopen() {
        let disk = MemIo::new();
        let (mut storage, rec) = open_mem(&disk);
        let mut graph = rec.graph;
        ingest(&mut graph, &mut storage, 2, "e"); // syncs #0, #1
        let committed = graph.clone();

        // Rebuild the engine over a failpoint io whose next sync fails.
        let fp = FailpointIo::new(disk.clone(), FaultPlan::fail_sync(0));
        let (mut storage, rec) =
            WalStorage::open(Box::new(fp), DurabilityPolicy::never_compact()).unwrap();
        let mut graph = rec.graph;
        graph.set_journaling(true);
        graph.add_entity("doomed");
        let ops = graph.take_journal();
        let err = storage.commit(&ops).unwrap_err();
        assert!(matches!(err, StoreError::StorageUnavailable(_)), "{err}");
        assert!(storage.is_poisoned());
        // Every later commit fails too, even though later syncs would work.
        graph.add_entity("also-doomed");
        let ops = graph.take_journal();
        let err = storage.commit(&ops).unwrap_err();
        assert!(
            matches!(&err, StoreError::StorageUnavailable(m) if m.contains("poisoned")),
            "{err}"
        );
        // Compaction is refused as well.
        assert!(storage.compact(&graph).is_err());

        // Reopen: the unacknowledged batch is on disk but recovery keeps it
        // only because it is structurally complete — either way the result
        // is a committed prefix plus nothing torn.
        let (_, rec2) = open_mem(&disk);
        rec2.graph.validate().unwrap();
        assert!(
            rec2.graph == committed || rec2.graph.vertex_count() == committed.vertex_count() + 1
        );
    }

    #[test]
    fn crash_mid_append_recovers_the_prior_prefix() {
        let disk = MemIo::new();
        let (mut storage, rec) = open_mem(&disk);
        let mut graph = rec.graph;
        ingest(&mut graph, &mut storage, 2, "e");
        let committed = graph.clone();

        // Engine whose disk dies 5 bytes into the next append (the budget
        // counts bytes appended through this handle; recovery appends none).
        let fp = FailpointIo::new(disk.fork(), FaultPlan::crash_after(5));
        let crashed_disk = fp.disk();
        let (mut storage, rec) =
            WalStorage::open(Box::new(fp), DurabilityPolicy::never_compact()).unwrap();
        let mut graph = rec.graph;
        graph.set_journaling(true);
        graph.add_entity("lost");
        let ops = graph.take_journal();
        assert!(storage.commit(&ops).is_err());
        assert!(storage.is_poisoned());

        // Reboot from the crashed disk: the 5 stray bytes are a torn tail.
        let (s2, rec2) = open_mem(&crashed_disk);
        assert_eq!(rec2.graph, committed);
        assert_eq!(s2.counters().truncated_tail_bytes, 5);
        assert_eq!(s2.last_seq(), 2);
    }

    #[test]
    fn policy_defaults_are_as_documented() {
        let p = DurabilityPolicy::default();
        assert!(p.fsync_on_commit);
        assert_eq!(p.compact_after_wal_bytes, 1 << 20);
        assert_eq!(p.group_max_batches, 1, "ungrouped by default");
        assert_eq!(p.group_window_bytes, 0);
        assert_eq!(p.decode, SnapshotDecode::Eager);
        assert_eq!(DurabilityPolicy::never_compact().compact_after_wal_bytes, u64::MAX);
        assert_eq!(p.clone().with_group_batches(0).group_max_batches, 1, "clamped");
        assert_eq!(p.clone().with_group_batches(8).group_max_batches, 8);
        assert_eq!(p.clone().with_group_window_bytes(512).group_window_bytes, 512);
        assert_eq!(p.clone().with_lazy_decode().decode, SnapshotDecode::Lazy);
        assert_eq!(wal_file_name(3), "wal-0000000003");
        assert_eq!(snapshot_file_name(12), "snapshot-0000000012");
        assert_eq!(parse_gen("wal-0000000003", "wal-"), Some(3));
        assert_eq!(parse_gen("wal-3", "wal-"), None);
        assert_eq!(parse_gen("snapshot.tmp", "snapshot-"), None);
    }

    #[test]
    fn no_fsync_policy_skips_syncs_but_still_recovers() {
        let disk = MemIo::new();
        let (mut storage, rec) = WalStorage::open(
            Box::new(disk.clone()),
            DurabilityPolicy { fsync_on_commit: false, ..DurabilityPolicy::never_compact() },
        )
        .unwrap();
        let mut graph = rec.graph;
        ingest(&mut graph, &mut storage, 3, "e");
        assert_eq!(storage.counters().fsyncs, 0);
        let (_, rec2) = open_mem(&disk);
        assert_eq!(rec2.graph, graph);
    }
}
