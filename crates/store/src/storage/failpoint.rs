//! Deterministic fault injection for the storage engine.
//!
//! [`FailpointIo`] wraps a [`MemIo`] disk and injects faults according to a
//! [`FaultPlan`] — no randomness, no timing: the same plan always fails at
//! the same byte. Three fault families cover the failure modes a WAL must
//! survive:
//!
//! - **Crash / short write** (`crash_after_append_bytes`): a budget of bytes
//!   the "process" may still append. An append that overruns the budget
//!   writes only the prefix that fits (a torn write), then this handle is
//!   crashed: every later operation fails with [`IoError::Crashed`]. The
//!   underlying disk keeps exactly the bytes that made it down — reopen it
//!   with a fresh engine to model the reboot.
//! - **Fsync failure** (`fail_sync_at`): the nth sync (0-based, counted
//!   across all files) fails with [`IoError::Failed`]. Unlike a crash the
//!   process lives on, and the storage engine must poison itself rather than
//!   acknowledge unsynced commits.
//! - **Read bit flip** (`flip_bit_on_read`): one bit of one file flips on
//!   every read — modeling at-rest corruption that CRCs must catch during
//!   recovery. The disk itself is untouched.

use super::io::{Io, IoError, IoResult, MemIo};

/// A deterministic schedule of injected faults. `Default` injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash after this many more appended bytes reach the disk (the
    /// overrunning append becomes a short write). `None` = never crash.
    pub crash_after_append_bytes: Option<u64>,
    /// Fail the nth `sync` call (0-based, counted across files). `None` =
    /// syncs always succeed.
    pub fail_sync_at: Option<u64>,
    /// Flip bit 0 of the byte at `(file, offset)` on every read of `file`.
    pub flip_bit_on_read: Option<(String, u64)>,
}

impl FaultPlan {
    /// Crash once `budget` more appended bytes have hit the disk.
    pub fn crash_after(budget: u64) -> FaultPlan {
        FaultPlan { crash_after_append_bytes: Some(budget), ..FaultPlan::default() }
    }

    /// Fail the nth sync call.
    pub fn fail_sync(nth: u64) -> FaultPlan {
        FaultPlan { fail_sync_at: Some(nth), ..FaultPlan::default() }
    }

    /// Corrupt reads of `file` at byte `offset`.
    pub fn flip_bit(file: impl Into<String>, offset: u64) -> FaultPlan {
        FaultPlan { flip_bit_on_read: Some((file.into(), offset)), ..FaultPlan::default() }
    }
}

/// A [`MemIo`] disk behind a deterministic fault injector.
#[derive(Debug)]
pub struct FailpointIo {
    inner: MemIo,
    plan: FaultPlan,
    appended: u64,
    syncs: u64,
    crashed: bool,
}

impl FailpointIo {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: MemIo, plan: FaultPlan) -> FailpointIo {
        FailpointIo { inner, plan, appended: 0, syncs: 0, crashed: false }
    }

    /// The wrapped disk (shared handle — clones see the same bytes).
    pub fn disk(&self) -> MemIo {
        self.inner.clone()
    }

    /// True once an injected crash has fired; the handle is dead.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    fn gate(&self) -> IoResult<()> {
        if self.crashed {
            Err(IoError::Crashed)
        } else {
            Ok(())
        }
    }
}

impl Io for FailpointIo {
    fn list(&self) -> IoResult<Vec<String>> {
        self.gate()?;
        self.inner.list()
    }

    fn read(&self, name: &str) -> IoResult<Option<Vec<u8>>> {
        self.gate()?;
        let mut bytes = self.inner.read(name)?;
        if let (Some(buf), Some((file, offset))) = (&mut bytes, &self.plan.flip_bit_on_read) {
            if name == file {
                if let Some(b) = buf.get_mut(*offset as usize) {
                    *b ^= 1;
                }
            }
        }
        Ok(bytes)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> IoResult<()> {
        self.gate()?;
        if let Some(budget) = self.plan.crash_after_append_bytes {
            let left = budget.saturating_sub(self.appended);
            if (data.len() as u64) > left {
                // Torn write: only the prefix that fits the budget lands,
                // then the process is dead.
                self.inner.append(name, &data[..left as usize])?;
                self.appended += left;
                self.crashed = true;
                return Err(IoError::Crashed);
            }
        }
        self.inner.append(name, data)?;
        self.appended += data.len() as u64;
        Ok(())
    }

    fn write(&mut self, name: &str, data: &[u8]) -> IoResult<()> {
        self.gate()?;
        self.inner.write(name, data)
    }

    fn truncate(&mut self, name: &str, len: u64) -> IoResult<()> {
        self.gate()?;
        self.inner.truncate(name, len)
    }

    fn sync(&mut self, name: &str) -> IoResult<()> {
        self.gate()?;
        let this = self.syncs;
        self.syncs += 1;
        if self.plan.fail_sync_at == Some(this) {
            return Err(IoError::Failed(format!("injected fsync failure (sync #{this}, {name})")));
        }
        self.inner.sync(name)
    }

    fn rename(&mut self, from: &str, to: &str) -> IoResult<()> {
        self.gate()?;
        self.inner.rename(from, to)
    }

    fn remove(&mut self, name: &str) -> IoResult<()> {
        self.gate()?;
        self.inner.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_budget_tears_the_overrunning_append() {
        let disk = MemIo::new();
        let mut io = FailpointIo::new(disk.clone(), FaultPlan::crash_after(5));
        io.append("wal", b"abc").unwrap(); // 3 of 5
        assert_eq!(io.append("wal", b"defg"), Err(IoError::Crashed)); // 2 fit
        assert!(io.is_crashed());
        assert_eq!(disk.file("wal").unwrap(), b"abcde", "exactly the budget landed");
        // Everything after the crash fails, nothing else leaks to disk.
        assert_eq!(io.append("wal", b"x"), Err(IoError::Crashed));
        assert_eq!(io.sync("wal"), Err(IoError::Crashed));
        assert_eq!(io.read("wal"), Err(IoError::Crashed));
        assert_eq!(io.list(), Err(IoError::Crashed));
        assert_eq!(disk.file("wal").unwrap(), b"abcde");
    }

    #[test]
    fn crash_budget_zero_tears_immediately_and_exact_fit_survives() {
        let mut io = FailpointIo::new(MemIo::new(), FaultPlan::crash_after(0));
        assert_eq!(io.append("wal", b"x"), Err(IoError::Crashed));
        assert_eq!(io.disk().file("wal").unwrap(), b"");

        let mut io = FailpointIo::new(MemIo::new(), FaultPlan::crash_after(3));
        io.append("wal", b"abc").unwrap(); // exact fit: not a crash
        assert!(!io.is_crashed());
        assert_eq!(io.append("wal", b""), Ok(())); // zero-byte append still fits
        assert_eq!(io.append("wal", b"d"), Err(IoError::Crashed));
    }

    #[test]
    fn nth_sync_fails_without_killing_the_handle() {
        let mut io = FailpointIo::new(MemIo::new(), FaultPlan::fail_sync(1));
        io.append("wal", b"abc").unwrap();
        io.sync("wal").unwrap(); // #0 fine
        let err = io.sync("wal").unwrap_err(); // #1 injected
        assert!(matches!(&err, IoError::Failed(m) if m.contains("injected fsync")), "{err:?}");
        assert!(!io.is_crashed());
        io.sync("wal").unwrap(); // #2 fine again — the engine decides to poison, not the io
    }

    #[test]
    fn read_bit_flip_corrupts_the_view_not_the_disk() {
        let disk = MemIo::new();
        let mut io = FailpointIo::new(disk.clone(), FaultPlan::flip_bit("wal", 1));
        io.append("wal", b"abc").unwrap();
        assert_eq!(io.read("wal").unwrap().unwrap(), b"a\x63c", "bit 0 of 'b' flipped");
        assert_eq!(io.read("other"), Ok(None));
        io.append("other", b"xy").unwrap();
        assert_eq!(io.read("other").unwrap().unwrap(), b"xy", "other files untouched");
        assert_eq!(disk.file("wal").unwrap(), b"abc", "disk itself is clean");
        // Offset past EOF flips nothing.
        let io2 = FailpointIo::new(disk.clone(), FaultPlan::flip_bit("wal", 99));
        assert_eq!(io2.read("wal").unwrap().unwrap(), b"abc");
    }
}
