#!/usr/bin/env bash
# Regenerate every committed benchmark trajectory, thread sweeps included.
#
# Runs the exact quick-scale invocations CI gates against, overwriting the
# committed BENCH_*.json in place — run this when a PR intentionally moves a
# perf point (the gate compares fresh runs against these files). The thread
# sweeps (5t/6t/7t/8t) record whatever parallelism the host has;
# `host_threads` in each JSON says what the numbers mean (1 = the parallel
# series measures pure fan-out overhead).
#
# Usage: scripts/bench-sweep.sh [--full]
#   --full   drop --quick and run the paper-scale sweeps (much slower)

set -euo pipefail
cd "$(dirname "$0")/.."

scale="--quick"
if [[ "${1:-}" == "--full" ]]; then
    scale=""
fi

run() {
    echo "==> cargo run -q -p prov-bench --release --bin figure -- $*" >&2
    cargo run -q -p prov-bench --release --bin figure -- "$@"
}

# shellcheck disable=SC2086  # $scale is intentionally word-split (may be empty)
run $scale --json BENCH_fig5.json
# shellcheck disable=SC2086
run $scale fig6 --json BENCH_fig6.json
# shellcheck disable=SC2086
run $scale fig7 --json BENCH_fig7.json
# shellcheck disable=SC2086
run $scale fig8 --json BENCH_fig8.json
# shellcheck disable=SC2086
run $scale coldstart --json BENCH_coldstart.json
# shellcheck disable=SC2086
run $scale fig10 --json BENCH_fig10.json

echo "regenerated BENCH_fig5.json BENCH_fig6.json BENCH_fig7.json BENCH_fig8.json BENCH_coldstart.json BENCH_fig10.json" >&2
