//! Modeled atomics. Every access is a scheduler decision; all orderings
//! execute sequentially consistently (the `Ordering` argument is accepted
//! for source compatibility and ignored).

use crate::exec::{self, ObjState, Op, RmwKind};

pub use std::sync::atomic::Ordering;

macro_rules! atomic_int {
    ($name:ident, $ty:ty) => {
        pub struct $name {
            id: usize,
        }

        impl $name {
            pub fn new(value: $ty) -> Self {
                Self { id: exec::register_object(ObjState::Atomic { value: value as u64 }) }
            }

            pub fn load(&self, _order: Ordering) -> $ty {
                exec::yield_point(Op::Load(self.id)) as $ty
            }

            pub fn store(&self, value: $ty, _order: Ordering) {
                exec::yield_point(Op::Store(self.id, value as u64));
            }

            pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                exec::yield_point(Op::Rmw(self.id, RmwKind::Swap, value as u64)) as $ty
            }

            pub fn fetch_add(&self, value: $ty, _order: Ordering) -> $ty {
                exec::yield_point(Op::Rmw(self.id, RmwKind::Add, value as u64)) as $ty
            }

            pub fn fetch_sub(&self, value: $ty, _order: Ordering) -> $ty {
                exec::yield_point(Op::Rmw(self.id, RmwKind::Sub, value as u64)) as $ty
            }

            pub fn fetch_or(&self, value: $ty, _order: Ordering) -> $ty {
                exec::yield_point(Op::Rmw(self.id, RmwKind::Or, value as u64)) as $ty
            }

            pub fn fetch_and(&self, value: $ty, _order: Ordering) -> $ty {
                exec::yield_point(Op::Rmw(self.id, RmwKind::And, value as u64)) as $ty
            }
        }
    };
}

atomic_int!(AtomicUsize, usize);
atomic_int!(AtomicU64, u64);
atomic_int!(AtomicU32, u32);

pub struct AtomicBool {
    id: usize,
}

impl AtomicBool {
    pub fn new(value: bool) -> Self {
        Self { id: exec::register_object(ObjState::Atomic { value: value as u64 }) }
    }

    pub fn load(&self, _order: Ordering) -> bool {
        exec::yield_point(Op::Load(self.id)) != 0
    }

    pub fn store(&self, value: bool, _order: Ordering) {
        exec::yield_point(Op::Store(self.id, value as u64));
    }

    pub fn swap(&self, value: bool, _order: Ordering) -> bool {
        exec::yield_point(Op::Rmw(self.id, RmwKind::Swap, value as u64)) != 0
    }
}
