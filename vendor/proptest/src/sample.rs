//! `prop::sample` — indirect indexing into runtime-sized collections.

/// A random index usable against any slice length (`prop::sample::Index`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Build from raw entropy (used by `any::<Index>()`).
    pub(crate) fn from_raw(raw: usize) -> Self {
        Index { raw }
    }

    /// Map to a concrete index in `0..len`. Panics if `len == 0`, like the
    /// real crate.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index called with an empty collection");
        self.raw % len
    }

    /// Select an element of the slice.
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}
