//! Ablation tests for the design choices DESIGN.md calls out: each
//! optimization must (a) not change answers and (b) measurably reduce work.

use prov_bitset::SetBackend;
use prov_segment::{
    evaluate_similarity, similar_alg_bitset, similar_cflr, similar_tst, AlgConfig, GrammarForm,
    MaskedGraph, PgSegOptions, SimilarEvaluator, TstConfig,
};
use prov_store::ProvIndex;
use prov_workload::{generate_pd, standard_query, PdParams};

fn instance(n: usize) -> (prov_store::ProvGraph, ProvIndex) {
    let graph = generate_pd(&PdParams::with_size(n));
    let index = ProvIndex::build(&graph);
    (graph, index)
}

#[test]
fn grammar_rewriting_reduces_worklist_traffic() {
    // CflrB on the Fig. 6 normal form derives Lg/Rg/La/Ra/Lu/Ru/Le
    // intermediates; SimProvAlg on the rewritten Fig. 4 grammar only ever
    // enqueues Ee/Aa pairs. Same answers, far fewer worklist pops.
    let (graph, index) = instance(600);
    let view = MaskedGraph::unmasked(&index);
    let (vsrc, vdst) = standard_query(&graph, 2);

    let cflr = similar_cflr(&view, &vsrc, &vdst, GrammarForm::NormalFig6, SetBackend::Bit);
    // Disable SimProvAlg's pruning/early stopping to isolate the pure
    // grammar-rewriting effect.
    let alg = similar_alg_bitset(
        &view,
        &vsrc,
        &vdst,
        &AlgConfig { symmetric_prune: false, early_stop: false, constraint: None },
    );
    assert_eq!(cflr.answer, alg.answer);
    assert!(
        alg.stats.work < cflr.stats.work,
        "rewriting should cut worklist traffic: alg={} cflr={}",
        alg.stats.work,
        cflr.stats.work
    );
}

#[test]
fn symmetry_pruning_halves_alg_work() {
    let (graph, index) = instance(1500);
    let view = MaskedGraph::unmasked(&index);
    let (vsrc, vdst) = standard_query(&graph, 2);
    let pruned = similar_alg_bitset(
        &view,
        &vsrc,
        &vdst,
        &AlgConfig { symmetric_prune: true, early_stop: false, constraint: None },
    );
    let unpruned = similar_alg_bitset(
        &view,
        &vsrc,
        &vdst,
        &AlgConfig { symmetric_prune: false, early_stop: false, constraint: None },
    );
    assert_eq!(pruned.answer, unpruned.answer);
    assert!(
        (pruned.stats.work as f64) < 0.75 * unpruned.stats.work as f64,
        "canonical pairs should cut roughly half the facts: {} vs {}",
        pruned.stats.work,
        unpruned.stats.work
    );
}

#[test]
fn early_stopping_prunes_late_source_queries() {
    let (graph, index) = instance(4000);
    let view = MaskedGraph::unmasked(&index);
    let (_, vdst) = standard_query(&graph, 2);
    let late = prov_workload::sources_at_percentile(&graph, 85.0, 2);
    let on = similar_alg_bitset(&view, &late, &vdst, &AlgConfig::paper_default());
    let off = similar_alg_bitset(
        &view,
        &late,
        &vdst,
        &AlgConfig { symmetric_prune: true, early_stop: false, constraint: None },
    );
    assert_eq!(on.answer, off.answer);
    assert!(
        on.stats.work <= off.stats.work,
        "early stopping never increases work: {} vs {}",
        on.stats.work,
        off.stats.work
    );
}

#[test]
fn per_destination_transitivity_beats_pair_facts_at_scale() {
    // The SimProvTst vs SimProvAlg trade-off (Fig. 5(a)'s crossover): at a
    // few thousand vertices the level-set evaluation does not trail the pair
    // relation by more than a small factor, and both answer identically.
    let (graph, index) = instance(3000);
    let view = MaskedGraph::unmasked(&index);
    let (vsrc, vdst) = standard_query(&graph, 2);
    let t0 = std::time::Instant::now();
    let tst = similar_tst(&view, &vsrc, &vdst, &TstConfig::default());
    let tst_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    let alg = similar_alg_bitset(&view, &vsrc, &vdst, &AlgConfig::paper_default());
    let alg_time = t0.elapsed();
    assert_eq!(tst.answer, alg.answer);
    // Generous bound: Tst should not be an order of magnitude slower.
    assert!(tst_time < alg_time * 10 + std::time::Duration::from_millis(50));
}

#[test]
fn compressed_tables_memory_advantage_grows_with_scale() {
    // Roaring-style tables pay fixed per-container overhead, so on small rank
    // universes the dense bitset rows are cheaper; the compressed variant's
    // relative footprint falls as the universe grows (measured ratios on Pd:
    // 8.4× at 3k vertices, 7.0× at 10k, 3.3× at 30k, 1.8× at 60k). The test
    // asserts identical answers plus that falling trend.
    let ratio_at = |n: usize| {
        let (graph, index) = instance(n);
        let view = MaskedGraph::unmasked(&index);
        let (vsrc, vdst) = standard_query(&graph, 2);
        let opts_bit = PgSegOptions {
            evaluator: SimilarEvaluator::SimProvAlg(SetBackend::Bit),
            ..PgSegOptions::default()
        };
        let opts_cbm = PgSegOptions {
            evaluator: SimilarEvaluator::SimProvAlg(SetBackend::Compressed),
            ..PgSegOptions::default()
        };
        let bit = evaluate_similarity(&view, &vsrc, &vdst, &opts_bit);
        let cbm = evaluate_similarity(&view, &vsrc, &vdst, &opts_cbm);
        assert_eq!(bit.answer, cbm.answer, "backends must agree at n={n}");
        cbm.stats.memory_bytes as f64 / bit.stats.memory_bytes.max(1) as f64
    };
    let small = ratio_at(2000);
    let large = ratio_at(8000);
    assert!(
        large < small,
        "compressed/bitset memory ratio should fall with scale: {small:.2} -> {large:.2}"
    );
}
