//! Provenance types `Rk` (Sec. IV-A.1).
//!
//! `Rk(v)` maps a vertex to its k-hop neighborhood *within its own segment*;
//! two vertices are only combinable when those neighborhoods are isomorphic
//! w.r.t. the aggregate labels. We compute the type as `k` rounds of
//! Weisfeiler–Leman-style refinement — Moreau's recursive edge-label
//! concatenation \[25\], extended (as the paper demands) to be degree-aware by
//! hashing the *sorted multiset* of (edge kind, direction, neighbor type)
//! triples rather than the concatenation alone.
//!
//! Soundness: differing fingerprints imply non-isomorphic neighborhoods, so
//! refinement never merges what isomorphism would keep apart... up to 64-bit
//! hash collisions, which the equivalence key mitigates by also carrying the
//! aggregate label (see `DESIGN.md` §1, substitution notes). The standard WL
//! incompleteness (rare non-isomorphic but WL-equal neighborhoods) is
//! accepted; on the tree-like neighborhoods of provenance segments the
//! refinement is exact.

use crate::aggregation::PropertyAggregation;
use crate::segment_ref::SegmentRef;
use prov_model::VertexId;
use prov_store::hash::{fx_hash64, FxHashMap};
use prov_store::ProvGraph;

/// Per-vertex provenance-type fingerprints for one segment.
#[derive(Debug, Clone)]
pub struct ProvTypes {
    /// `type_k` fingerprint per segment vertex.
    pub fingerprint: FxHashMap<VertexId, u64>,
}

/// Compute `Rk` fingerprints for the vertices of `segment`.
///
/// `k = 0` means vertices compare by aggregate label alone; `k = 1` is the
/// Fig. 2(e) setting (1-hop neighborhood).
pub fn provenance_types(
    graph: &ProvGraph,
    segment: &SegmentRef,
    aggregation: &PropertyAggregation,
    k: usize,
) -> ProvTypes {
    // Local adjacency restricted to the segment's edges.
    let mut out_adj: FxHashMap<VertexId, Vec<(u8, VertexId)>> = FxHashMap::default();
    let mut in_adj: FxHashMap<VertexId, Vec<(u8, VertexId)>> = FxHashMap::default();
    for &v in &segment.vertices {
        out_adj.entry(v).or_default();
        in_adj.entry(v).or_default();
    }
    for &e in &segment.edges {
        let rec = graph.edge(e);
        out_adj.entry(rec.src).or_default().push((rec.kind.as_index() as u8, rec.dst));
        in_adj.entry(rec.dst).or_default().push((rec.kind.as_index() as u8, rec.src));
    }

    // Round 0: aggregate labels.
    let mut current: FxHashMap<VertexId, u64> =
        segment.vertices.iter().map(|&v| (v, fx_hash64(&aggregation.label(graph, v)))).collect();

    // Rounds 1..=k: refine by neighbor multisets.
    let mut scratch: Vec<(u8, u8, u64)> = Vec::new();
    for _ in 0..k {
        let mut next: FxHashMap<VertexId, u64> = FxHashMap::default();
        for &v in &segment.vertices {
            scratch.clear();
            for &(kind, n) in &out_adj[&v] {
                scratch.push((0, kind, current[&n]));
            }
            for &(kind, n) in &in_adj[&v] {
                scratch.push((1, kind, current[&n]));
            }
            scratch.sort_unstable();
            next.insert(v, fx_hash64(&(current[&v], &scratch)));
        }
        current = next;
    }
    ProvTypes { fingerprint: current }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{EdgeKind, VertexKind};

    /// Two `update` activities with different shapes: u1 uses 1 entity,
    /// u2 uses 2 (the paper's update-v2 vs update-v3 example).
    fn shapes() -> (ProvGraph, SegmentRef, VertexId, VertexId) {
        let mut g = ProvGraph::new();
        let e1 = g.add_entity("e1");
        let e2 = g.add_entity("e2");
        let e3 = g.add_entity("e3");
        let u1 = g.add_activity("update");
        let u2 = g.add_activity("update");
        g.set_vprop(u1, "command", "update");
        g.set_vprop(u2, "command", "update");
        let a = g.add_edge(EdgeKind::Used, u1, e1).unwrap();
        let b = g.add_edge(EdgeKind::Used, u2, e2).unwrap();
        let c = g.add_edge(EdgeKind::Used, u2, e3).unwrap();
        let seg = SegmentRef::new(vec![e1, e2, e3, u1, u2], vec![a, b, c]);
        (g, seg, u1, u2)
    }

    #[test]
    fn k0_ignores_structure() {
        let (g, seg, u1, u2) = shapes();
        let agg = PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]);
        let t = provenance_types(&g, &seg, &agg, 0);
        assert_eq!(t.fingerprint[&u1], t.fingerprint[&u2]);
    }

    #[test]
    fn k1_separates_different_degrees() {
        let (g, seg, u1, u2) = shapes();
        let agg = PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]);
        let t = provenance_types(&g, &seg, &agg, 1);
        assert_ne!(
            t.fingerprint[&u1], t.fingerprint[&u2],
            "degree-aware types must distinguish 1-input from 2-input updates"
        );
    }

    #[test]
    fn identical_shapes_share_types_across_rounds() {
        // Two isomorphic train rounds in one segment.
        let mut g = ProvGraph::new();
        let d1 = g.add_entity("d");
        let t1 = g.add_activity("train");
        let w1 = g.add_entity("w");
        let d2 = g.add_entity("d");
        let t2 = g.add_activity("train");
        let w2 = g.add_entity("w");
        let e1 = g.add_edge(EdgeKind::Used, t1, d1).unwrap();
        let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
        let e3 = g.add_edge(EdgeKind::Used, t2, d2).unwrap();
        let e4 = g.add_edge(EdgeKind::WasGeneratedBy, w2, t2).unwrap();
        let seg = SegmentRef::new(vec![d1, t1, w1, d2, t2, w2], vec![e1, e2, e3, e4]);
        let agg = PropertyAggregation::ignore_all();
        for k in 0..4 {
            let t = provenance_types(&g, &seg, &agg, k);
            assert_eq!(t.fingerprint[&t1], t.fingerprint[&t2], "k={k}");
            assert_eq!(t.fingerprint[&d1], t.fingerprint[&d2], "k={k}");
            assert_eq!(t.fingerprint[&w1], t.fingerprint[&w2], "k={k}");
            // Input vs output entities differ structurally for k >= 1.
            if k >= 1 {
                assert_ne!(t.fingerprint[&d1], t.fingerprint[&w1], "k={k}");
            }
        }
    }

    #[test]
    fn segment_locality_edges_outside_ignored() {
        // Same vertices, but the segment omits u2's second edge: then u1 and
        // u2 look identical at k=1.
        let (g, _, u1, u2) = shapes();
        let seg = SegmentRef::new(
            vec![VertexId::new(0), VertexId::new(1), u1, u2],
            vec![prov_model::EdgeId::new(0), prov_model::EdgeId::new(1)],
        );
        let agg = PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]);
        let t = provenance_types(&g, &seg, &agg, 1);
        assert_eq!(t.fingerprint[&u1], t.fingerprint[&u2]);
    }

    #[test]
    fn direction_matters() {
        // a uses e  vs  e' generated-by a': same degree, opposite direction.
        let mut g = ProvGraph::new();
        let e1 = g.add_entity("x");
        let a1 = g.add_activity("f");
        let e2 = g.add_entity("x");
        let a2 = g.add_activity("f");
        let ed1 = g.add_edge(EdgeKind::Used, a1, e1).unwrap();
        let ed2 = g.add_edge(EdgeKind::WasGeneratedBy, e2, a2).unwrap();
        let seg = SegmentRef::new(vec![e1, a1, e2, a2], vec![ed1, ed2]);
        let t = provenance_types(&g, &seg, &PropertyAggregation::ignore_all(), 1);
        assert_ne!(t.fingerprint[&e1], t.fingerprint[&e2]);
        assert_ne!(t.fingerprint[&a1], t.fingerprint[&a2]);
    }
}
