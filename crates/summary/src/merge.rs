//! Lemma-5 merging: collapse `g0` under simulation while preserving paths.
//!
//! Merging `u` into `v` preserves the Psg path invariant when
//!
//! 1. `u ≃s_in v`, or
//! 2. `u ≃s_out v`, or
//! 3. `u ≤s_in v ∧ u ≤s_out v`,
//!
//! because simulation implies trace containment and any in-path of a vertex
//! concatenates with any of its out-paths (Lemma 3 / Lemma 5).
//!
//! **Round discipline.** Merges justified by *different* conditions do not
//! commute in general (an `≃in` merge grows the group's out-language, which
//! can invalidate a pending `≃out` justification against a member). Merges of
//! the *same* condition are jointly sound: condition-1 groups share their
//! in-language exactly; condition-3 unions only ever point languages at a
//! dominating target. The algorithm therefore alternates rounds — all `≃in`
//! classes, then all `≃out` classes, then all `≤in∧≤out` dominations — until
//! a full cycle performs no merge.
//!
//! **Quotient-incremental rounds** (ISSUE 4). The seed recomputed *both*
//! simulation preorders from scratch on the current quotient before every
//! round (frozen as [`mod@crate::merge_reference`]). But quotienting by
//! simulation equivalence is exact for the *same* direction: `[u] ≤ [v]` on
//! the quotient iff `u ≤ v` on the pre-merge graph (see `DESIGN.md` §5 for
//! the two-inclusion proof). So after an `≃in` round the maintained `≤in`
//! relation is *projected* onto the surviving representatives — rows and
//! columns shrunk in place through the group map — and only the `≤out`
//! relation (whose languages the merge really changed) is marked stale and
//! recomputed lazily. Symmetrically for `≃out` rounds. Condition-3 rounds
//! change both languages of the absorbed node, so they invalidate both
//! relations and fall back to full recompute. A full cycle that used to cost
//! four fixpoints now costs at most three, almost all on already-shrunk
//! quotients.

use crate::simulation::{simulation, SimDirection, SimRelation};
use crate::union::{G0Node, G0};
use prov_store::hash::FxHashSet;

/// Union-find over g0 node ids, with union-by-size and path compression.
///
/// The union *direction* is semantically irrelevant for the merge phase: the
/// quotient's group ids and representatives are assigned by
/// first-appearance order over the original nodes ([`apply_unions`] /
/// [`quotient`]), never by DSU root. So `union` is free to pick the larger
/// side as root — callers that conceptually merge "u into v" (condition 3)
/// lose nothing when the tree roots at u instead.
pub(crate) struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    pub(crate) fn new(n: usize) -> Self {
        Dsu { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    pub(crate) fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        let mut c = x;
        while self.parent[c as usize] != r {
            let next = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = next;
        }
        r
    }

    /// Union the two groups; returns false when already joined. The larger
    /// tree absorbs the smaller (union-by-size keeps find paths `O(α(n))`
    /// together with compression).
    pub(crate) fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut a, mut b) = (self.find(a), self.find(b));
        if a == b {
            return false;
        }
        if self.size[a as usize] > self.size[b as usize] {
            std::mem::swap(&mut a, &mut b);
        }
        self.parent[a as usize] = b;
        self.size[b as usize] += self.size[a as usize];
        true
    }
}

/// Result of the merge phase: a mapping from original `g0` nodes to quotient
/// groups, plus the quotient graph itself (as a new `G0` whose `segment` /
/// `vertex` fields hold a representative member).
#[derive(Debug, Clone)]
pub struct MergeResult {
    /// Quotient group of each original node.
    pub group_of: Vec<u32>,
    /// Members of each group (original node ids).
    pub members: Vec<Vec<u32>>,
    /// How many rounds ran (diagnostics).
    pub rounds: usize,
}

/// Build the quotient `G0` induced by `group_of` (dedup multi-edges).
/// `group_of` values must be dense in `0..group_count`.
pub fn quotient(g0: &G0, group_of: &[u32], group_count: usize) -> G0 {
    let mut nodes: Vec<Option<G0Node>> = vec![None; group_count];
    for (i, node) in g0.nodes.iter().enumerate() {
        let slot = group_of[i] as usize;
        if nodes[slot].is_none() {
            nodes[slot] =
                Some(G0Node { segment: node.segment, vertex: node.vertex, class: node.class });
        }
    }
    let nodes: Vec<G0Node> = nodes.into_iter().map(|n| n.expect("group non-empty")).collect();
    let n = nodes.len();
    let mut out_adj: Vec<Vec<(u8, u32)>> = vec![Vec::new(); n];
    let mut in_adj: Vec<Vec<(u8, u32)>> = vec![Vec::new(); n];
    let mut seen: FxHashSet<(u32, u8, u32)> = FxHashSet::default();
    for (i, adj) in g0.out_adj.iter().enumerate() {
        let s = group_of[i];
        for &(k, d) in adj {
            let d2 = group_of[d as usize];
            if seen.insert((s, k, d2)) {
                out_adj[s as usize].push((k, d2));
                in_adj[d2 as usize].push((k, s));
            }
        }
    }
    G0 {
        nodes,
        out_adj,
        in_adj,
        segment_count: g0.segment_count,
        class_labels: g0.class_labels.clone(),
        class_names: g0.class_names.clone(),
    }
}

/// Collect all ≃-equivalence groups of a simulation relation and union them.
fn merge_equiv_classes(g: &G0, rel: &SimRelation, dsu: &mut Dsu) -> bool {
    let mut merged = false;
    for v in 0..g.len() as u32 {
        for u in rel.row(v).ones() {
            if u > v && rel.equiv(u, v) {
                merged |= dsu.union(u, v);
            }
        }
    }
    merged
}

/// Union condition-3 pairs: `u ≤in v ∧ u ≤out v` (u strictly dominated).
fn merge_dominated(g: &G0, le_in: &SimRelation, le_out: &SimRelation, dsu: &mut Dsu) -> bool {
    let mut merged = false;
    for u in 0..g.len() as u32 {
        for v in le_in.row(u).ones() {
            if v != u && le_out.le(u, v) {
                merged |= dsu.union(u, v);
                break; // one dominating target suffices for u
            }
        }
    }
    merged
}

/// Apply a round's unions: rewrite `group_of` (original node → new dense
/// quotient id) and return `(new_count, node_map)` where `node_map[old
/// quotient id] = new quotient id`. Dense ids follow first-appearance order
/// over the original nodes, exactly like the seed's `dsu.find` + [`densify`]
/// composition, so the resulting partition (and its labeling) is identical.
fn apply_unions(group_of: &mut [u32], dsu: &mut Dsu, old_count: usize) -> (usize, Vec<u32>) {
    let mut root_id: Vec<u32> = vec![u32::MAX; old_count];
    let mut next = 0u32;
    for g in group_of.iter_mut() {
        let r = dsu.find(*g) as usize;
        if root_id[r] == u32::MAX {
            root_id[r] = next;
            next += 1;
        }
        *g = root_id[r];
    }
    // Complete the old-quotient-id → new-id map for non-root members.
    let node_map: Vec<u32> = (0..old_count as u32).map(|c| root_id[dsu.find(c) as usize]).collect();
    (next as usize, node_map)
}

/// Run the full merge phase on `g0`.
pub fn merge(g0: &G0) -> MergeResult {
    let n0 = g0.len();
    // group_of maps ORIGINAL node -> current quotient node id (kept dense).
    let mut group_of: Vec<u32> = (0..n0 as u32).collect();
    let mut gcount = n0;
    let mut current = quotient(g0, &group_of, gcount);
    let mut rounds = 0usize;

    // Maintained preorders of `current`; `None` = stale (must recompute).
    let mut sim_in: Option<SimRelation> = None;
    let mut sim_out: Option<SimRelation> = None;

    enum Round {
        InEquiv,
        OutEquiv,
        Dominated,
    }

    loop {
        rounds += 1;
        let mut any = false;
        for round in [Round::InEquiv, Round::OutEquiv, Round::Dominated] {
            let mut dsu = Dsu::new(current.len());
            let merged = match round {
                Round::InEquiv => {
                    let rel = sim_in.get_or_insert_with(|| simulation(&current, SimDirection::In));
                    merge_equiv_classes(&current, rel, &mut dsu)
                }
                Round::OutEquiv => {
                    let rel =
                        sim_out.get_or_insert_with(|| simulation(&current, SimDirection::Out));
                    merge_equiv_classes(&current, rel, &mut dsu)
                }
                Round::Dominated => {
                    let le_in =
                        sim_in.take().unwrap_or_else(|| simulation(&current, SimDirection::In));
                    let le_out =
                        sim_out.take().unwrap_or_else(|| simulation(&current, SimDirection::Out));
                    let m = merge_dominated(&current, &le_in, &le_out, &mut dsu);
                    if !m {
                        // No merge: the quotient is unchanged, keep both.
                        sim_in = Some(le_in);
                        sim_out = Some(le_out);
                    }
                    m
                }
            };
            if merged {
                any = true;
                let (new_count, node_map) = apply_unions(&mut group_of, &mut dsu, gcount);
                gcount = new_count;
                current = quotient(g0, &group_of, gcount);
                // Shrink-in-place vs full recompute: quotienting by ≃ is
                // exact for the merged direction only; a condition-3 merge
                // (or the opposite direction) is invalidated.
                match round {
                    Round::InEquiv => {
                        sim_in = sim_in.take().map(|rel| rel.project(&node_map, gcount));
                        sim_out = None;
                    }
                    Round::OutEquiv => {
                        sim_out = sim_out.take().map(|rel| rel.project(&node_map, gcount));
                        sim_in = None;
                    }
                    Round::Dominated => {
                        sim_in = None;
                        sim_out = None;
                    }
                }
            }
        }
        if !any {
            break;
        }
    }

    let mut members: Vec<Vec<u32>> = vec![Vec::new(); gcount];
    for (i, &g) in group_of.iter().enumerate() {
        members[g as usize].push(i as u32);
    }
    MergeResult { group_of, members, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::PropertyAggregation;
    use crate::segment_ref::SegmentRef;
    use crate::union::build_g0;
    use prov_model::EdgeKind;
    use prov_store::ProvGraph;

    /// Two identical segments: d <-U- t <-G- w.
    fn twins() -> G0 {
        let mut g = ProvGraph::new();
        let mut segs = Vec::new();
        for i in 0..2 {
            let d = g.add_entity(&format!("d{i}"));
            let t = g.add_activity("t");
            let w = g.add_entity(&format!("w{i}"));
            let e1 = g.add_edge(EdgeKind::Used, t, d).unwrap();
            let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
            segs.push(SegmentRef::new(vec![d, t, w], vec![e1, e2]));
        }
        build_g0(&g, &segs, &PropertyAggregation::ignore_all(), 1)
    }

    #[test]
    fn identical_segments_collapse_completely() {
        let g0 = twins();
        let res = merge(&g0);
        // 6 instances -> 3 groups (d, t, w).
        assert_eq!(res.members.len(), 3);
        assert_eq!(res.group_of[0], res.group_of[3]);
        assert_eq!(res.group_of[1], res.group_of[4]);
        assert_eq!(res.group_of[2], res.group_of[5]);
        assert!(res.rounds >= 1);
    }

    #[test]
    fn quotient_dedups_edges() {
        let g0 = twins();
        let res = merge(&g0);
        let q = quotient(&g0, &res.group_of, res.members.len());
        assert_eq!(q.len(), 3);
        let total: usize = q.out_adj.iter().map(|a| a.len()).sum();
        assert_eq!(total, 2, "U and G edges once each");
    }

    #[test]
    fn divergent_suffixes_do_not_merge_sources() {
        // Segment 1: d <-U- t <-G- w ; segment 2: d' <-U- t' (no output).
        // k=0 so classes allow merging; but the trace structures differ:
        // t and t' are NOT out-equivalent... they are: out(t)=out(t')={(U,d)}.
        // They differ in IN: t has a generated child w... in(t) = {(G,w)}.
        // Merging t' into t is allowed by condition 3 (t' ≤in t vacuously,
        // t' ≤out t), which preserves paths. The two d's merge as ≃.
        let mut g = ProvGraph::new();
        let d1 = g.add_entity("d");
        let t1 = g.add_activity("t");
        let w1 = g.add_entity("w");
        let e1 = g.add_edge(EdgeKind::Used, t1, d1).unwrap();
        let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
        let d2 = g.add_entity("d");
        let t2 = g.add_activity("t");
        let e3 = g.add_edge(EdgeKind::Used, t2, d2).unwrap();
        let s1 = SegmentRef::new(vec![d1, t1, w1], vec![e1, e2]);
        let s2 = SegmentRef::new(vec![d2, t2], vec![e3]);
        let g0 = build_g0(&g, &[s1, s2], &PropertyAggregation::ignore_all(), 0);
        let res = merge(&g0);
        // Everything class-compatible merges here: {d1,d2}, {t1,t2}, {w1}.
        assert_eq!(res.members.len(), 3);
    }

    #[test]
    fn different_classes_never_merge() {
        let g0 = twins();
        let res = merge(&g0);
        for group in &res.members {
            let class = g0.class(group[0]);
            for &m in group {
                assert_eq!(g0.class(m), class);
            }
        }
    }

    #[test]
    fn matches_reference_discipline_on_fixtures() {
        for g0 in [twins(), {
            let mut g = ProvGraph::new();
            let d1 = g.add_entity("d");
            let t1 = g.add_activity("t");
            let w1 = g.add_entity("w");
            let e1 = g.add_edge(EdgeKind::Used, t1, d1).unwrap();
            let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
            let d2 = g.add_entity("d");
            let t2 = g.add_activity("t");
            let e3 = g.add_edge(EdgeKind::Used, t2, d2).unwrap();
            let s1 = SegmentRef::new(vec![d1, t1, w1], vec![e1, e2]);
            let s2 = SegmentRef::new(vec![d2, t2], vec![e3]);
            build_g0(&g, &[s1, s2], &PropertyAggregation::ignore_all(), 0)
        }] {
            let new = merge(&g0);
            let old = crate::merge_reference::merge_reference(&g0);
            assert_eq!(new.group_of, old.group_of, "identical partition and labeling");
        }
    }

    #[test]
    fn dsu_behaves() {
        let mut d = Dsu::new(4);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(2, 3));
        assert!(d.union(0, 3));
        assert_eq!(d.find(1), d.find(2));
    }

    #[test]
    fn dsu_unions_by_size() {
        let mut d = Dsu::new(6);
        // Build a 3-element group {0,1,2}.
        d.union(0, 1);
        d.union(1, 2);
        let big = d.find(0);
        // Union a singleton "into" the big group in the caller's direction:
        // by-size keeps the big root regardless.
        assert!(d.union(big, 5));
        assert_eq!(d.find(5), big);
        assert_eq!(d.size[big as usize], 4);
    }

    #[test]
    fn dsu_path_compression_flattens_chains() {
        let mut d = Dsu::new(8);
        for i in 0..7u32 {
            d.union(i, i + 1);
        }
        let root = d.find(0);
        for i in 0..8u32 {
            d.find(i);
            assert_eq!(d.parent[i as usize], root, "find must compress {i} to the root");
        }
    }

    #[test]
    fn dsu_find_union_invariants() {
        let mut d = Dsu::new(10);
        // find is idempotent and reflexive before any union.
        for i in 0..10u32 {
            assert_eq!(d.find(i), i);
        }
        d.union(2, 7);
        d.union(7, 9);
        // Connectivity is an equivalence: symmetric + transitive.
        assert_eq!(d.find(2), d.find(9));
        assert_eq!(d.find(9), d.find(2));
        // Unrelated elements stay apart, and sizes account for every member.
        assert_ne!(d.find(0), d.find(2));
        let root = d.find(2) as usize;
        assert_eq!(d.size[root], 3);
        // union returns false exactly on already-joined pairs.
        assert!(!d.union(9, 2));
    }
}
