//! Context-free-language reachability (CFLR) over provenance graphs.
//!
//! Parts of the segmentation operator require a context-free language to
//! express their semantics (the `SimProv` palindrome language of Sec. III-A,
//! which no regular path query can capture). This crate provides:
//!
//! * [`symbol`] / [`grammar`] — path-label alphabets and CFGs with a CYK
//!   recognizer for testing grammar constructions;
//! * [`normal`] — binary normal form (what CflrB requires);
//! * [`solver`] — the generic CflrB worklist solver with pluggable fast-set
//!   fact tables (hash / bitset / compressed bitmap);
//! * [`graphs`] — the adapter exposing a `prov-store` snapshot as a
//!   terminal-labeled graph (virtual inverse edges, vertex-label self-loops);
//! * [`simprov`] — the SimProv grammar in its surface, Fig. 6 normal, and
//!   Fig. 4 rewritten forms.
//!
//! The specialized `SimProvAlg` / `SimProvTst` evaluators that *beat* CflrB by
//! exploiting grammar properties live in `prov-segment`; this crate is the
//! general-purpose engine and baseline.

pub mod derivation;
pub mod grammar;
pub mod graphs;
pub mod normal;
pub mod simprov;
pub mod solver;
pub mod symbol;

pub use derivation::{Derivation, DerivationTable, FactKey, NoTrace, Tracer};
pub use grammar::{Grammar, Production};
pub use graphs::IndexedProvGraph;
pub use normal::{normalize, NormalGrammar};
pub use solver::{
    solve, solve_bitset, solve_cbm, solve_hash, solve_traced, solve_with_tracer, CflrResult,
    SolveStats, TerminalEdges,
};
pub use symbol::{NonTerminal, Orientation, Symbol, Terminal};
