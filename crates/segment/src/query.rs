//! The PgSeg operator: query type and two-step evaluation driver.
//!
//! A PgSeg query is the 3-tuple `(Vsrc, Vdst, B)` of Sec. III-A. Evaluation
//! follows the paper's two-step scheme (Sec. III-B.1):
//!
//! 1. **induce** — build the induced subgraph from `Vsrc`/`Vdst` under the
//!    exclusion part of `B`;
//! 2. **adjust** — interactively refine the *cached* induced graph: apply
//!    further exclusions without re-inducing, or pull more vertices from the
//!    backing store via expansion specifications `Bx`.
//!
//! [`SimilarEvaluator`] selects which `L(SimProv)` algorithm answers the
//! similarity part — the benchmark figures 5(a)–(d) sweep exactly this choice.

use crate::alg::{similar_alg_bitset, similar_alg_cbm, AlgConfig};
use crate::boundary::Boundary;
use crate::cflr_baseline::{similar_cflr, GrammarForm};
use crate::induce::{expansion_vertices, induce, InduceResult};
use crate::naive::{similar_naive, NaiveBudget};
use crate::outcome::SimilarOutcome;
use crate::segment_graph::{Categories, SegmentGraph};
use crate::tst::{similar_tst, TstConfig};
use crate::view::MaskedGraph;
use prov_bitset::SetBackend;
use prov_model::{VertexId, VertexKind};
use prov_store::hash::FxHashMap;
use prov_store::{ProvGraph, ProvIndex, StoreError, StoreResult};

/// A PgSeg query `(Vsrc, Vdst, B)`.
#[derive(Debug, Clone, Default)]
pub struct PgSegQuery {
    /// Source entities the user believes are ancestors.
    pub vsrc: Vec<VertexId>,
    /// Destination entities of interest.
    pub vdst: Vec<VertexId>,
    /// Boundary criteria.
    pub boundary: Boundary,
}

impl PgSegQuery {
    /// Query between two entity sets with no boundary.
    pub fn between(vsrc: Vec<VertexId>, vdst: Vec<VertexId>) -> Self {
        PgSegQuery { vsrc, vdst, boundary: Boundary::none() }
    }

    /// Attach boundary criteria.
    pub fn with_boundary(mut self, boundary: Boundary) -> Self {
        self.boundary = boundary;
        self
    }

    /// Validate that the query vertices exist and are entities.
    pub fn validate(&self, graph: &ProvGraph) -> StoreResult<()> {
        for &v in self.vsrc.iter().chain(self.vdst.iter()) {
            let rec = graph.try_vertex(v)?;
            if rec.kind != VertexKind::Entity {
                return Err(StoreError::Import(format!(
                    "PgSeg query vertices must be entities; {v} is {:?}",
                    rec.kind
                )));
            }
        }
        Ok(())
    }
}

/// Which algorithm evaluates `L(SimProv)`-reachability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarEvaluator {
    /// Naive Cypher-style enumerate-and-join (with a DNF budget).
    Naive,
    /// Generic CflrB on the Fig. 6 normal form with the given fact tables.
    CflrB(SetBackend),
    /// SimProvAlg with the given fact tables.
    SimProvAlg(SetBackend),
    /// SimProvTst (the default; also the only evaluator that induces the
    /// exact `VC2` vertex set).
    SimProvTst,
}

/// Tuning knobs for PgSeg evaluation.
#[derive(Debug, Clone, Copy)]
pub struct PgSegOptions {
    /// Similarity evaluator (benchmarks sweep this; `SimProvTst` by default).
    pub evaluator: SimilarEvaluator,
    /// Temporal early stopping (SimProvAlg/SimProvTst).
    pub early_stop: bool,
    /// Symmetric-pair pruning (SimProvAlg).
    pub symmetric_prune: bool,
    /// Budget for the naive evaluator.
    pub naive_budget: NaiveBudget,
}

impl Default for PgSegOptions {
    fn default() -> Self {
        PgSegOptions {
            evaluator: SimilarEvaluator::SimProvTst,
            early_stop: true,
            symmetric_prune: true,
            naive_budget: NaiveBudget::default(),
        }
    }
}

/// Run just the similarity evaluation (`L(SimProv)`-reachability) with the
/// configured evaluator — the benchmark kernel of Fig. 5(a)–(d).
pub fn evaluate_similarity(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    opts: &PgSegOptions,
) -> SimilarOutcome {
    match opts.evaluator {
        SimilarEvaluator::Naive => similar_naive(view, vsrc, vdst, opts.naive_budget),
        SimilarEvaluator::CflrB(backend) => {
            similar_cflr(view, vsrc, vdst, GrammarForm::NormalFig6, backend)
        }
        SimilarEvaluator::SimProvAlg(backend) => {
            let cfg = AlgConfig {
                symmetric_prune: opts.symmetric_prune,
                early_stop: opts.early_stop,
                constraint: None,
            };
            match backend {
                SetBackend::Compressed => similar_alg_cbm(view, vsrc, vdst, &cfg),
                // Hash and Bit share the bitset implementation; the paper only
                // reports BitSet and CBM variants for SimProvAlg.
                _ => similar_alg_bitset(view, vsrc, vdst, &cfg),
            }
        }
        SimilarEvaluator::SimProvTst => similar_tst(
            view,
            vsrc,
            vdst,
            &TstConfig { early_stop: opts.early_stop, max_levels: None, compressed_sets: false },
        ),
    }
}

/// A PgSeg evaluation session: owns the compiled mask and caches the induced
/// segment so boundary adjustments are interactive (the adjust step).
pub struct PgSegSession<'a> {
    graph: &'a ProvGraph,
    index: &'a ProvIndex,
    query: PgSegQuery,
    mask: Option<crate::boundary::Mask>,
    cached: InduceResult,
}

impl<'a> PgSegSession<'a> {
    /// Evaluate the induce step and open a session for adjustments.
    pub fn open(
        graph: &'a ProvGraph,
        index: &'a ProvIndex,
        query: PgSegQuery,
        opts: &PgSegOptions,
    ) -> StoreResult<Self> {
        query.validate(graph)?;
        let mask = if query.boundary.has_exclusions() {
            Some(query.boundary.compile(graph))
        } else {
            None
        };
        let view = MaskedGraph::new(index, mask.as_ref());
        let tst_cfg =
            TstConfig { early_stop: opts.early_stop, max_levels: None, compressed_sets: false };
        let mut cached = induce(graph, &view, &query.vsrc, &query.vdst, mask.as_ref(), &tst_cfg);
        // Apply the query's own expansion boundaries immediately.
        for exp in &query.boundary.expansions {
            apply_expansion(graph, &view, &mut cached, &exp.roots, exp.k, mask.as_ref());
        }
        Ok(PgSegSession { graph, index, query, mask, cached })
    }

    /// The induced (and possibly adjusted) segment.
    pub fn segment(&self) -> &SegmentGraph {
        &self.cached.segment
    }

    /// Evaluator statistics of the similarity part.
    pub fn similar_outcome(&self) -> &SimilarOutcome {
        &self.cached.similar
    }

    /// The query this session answers.
    pub fn query(&self) -> &PgSegQuery {
        &self.query
    }

    /// Adjust step: grow the cached segment with an expansion `bx(Vx, k)`
    /// without re-running induction.
    pub fn expand(&mut self, roots: &[VertexId], k: u32) {
        let view = MaskedGraph::new(self.index, self.mask.as_ref());
        apply_expansion(self.graph, &view, &mut self.cached, roots, k, self.mask.as_ref());
    }

    /// Adjust step: filter the cached segment with additional exclusion
    /// criteria (applied linearly to the cached vertices/edges, Sec. III-B.3).
    pub fn restrict(&mut self, extra: &Boundary) {
        let mask = extra.compile(self.graph);
        let seg = &self.cached.segment;
        let mut cat_map: FxHashMap<VertexId, Categories> = FxHashMap::default();
        for (&v, &c) in seg.vertices.iter().zip(seg.categories.iter()) {
            if mask.vertex(v) {
                cat_map.insert(v, c);
            }
        }
        let prior_mask = self.mask.clone();
        let edge_ok = |e| mask.edge(e) && prior_mask.as_ref().is_none_or(|m| m.edge(e));
        self.cached.segment = SegmentGraph::assemble(
            self.graph,
            &self.query.vsrc,
            &self.query.vdst,
            &cat_map,
            edge_ok,
        );
    }
}

fn apply_expansion(
    graph: &ProvGraph,
    view: &MaskedGraph<'_>,
    cached: &mut InduceResult,
    roots: &[VertexId],
    k: u32,
    mask: Option<&crate::boundary::Mask>,
) {
    let added = expansion_vertices(view, roots, k);
    let seg = &cached.segment;
    let mut cat_map: FxHashMap<VertexId, Categories> =
        seg.vertices.iter().zip(seg.categories.iter()).map(|(&v, &c)| (v, c)).collect();
    for v in added {
        let entry = cat_map.entry(v).or_insert_with(Categories::none);
        *entry = entry.union(Categories::EXPANDED);
    }
    let edge_ok = |e| mask.is_none_or(|m| m.edge(e));
    cached.segment =
        SegmentGraph::assemble(graph, &seg.vsrc.clone(), &seg.vdst.clone(), &cat_map, edge_ok);
}

/// One-shot convenience: evaluate a PgSeg query end to end.
pub fn pgseg(
    graph: &ProvGraph,
    index: &ProvIndex,
    query: PgSegQuery,
    opts: &PgSegOptions,
) -> StoreResult<SegmentGraph> {
    Ok(PgSegSession::open(graph, index, query, opts)?.segment().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::Boundary;
    use prov_model::EdgeKind;

    fn chain() -> (ProvGraph, ProvIndex, Vec<VertexId>) {
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let m = g.add_entity("m");
        let t2 = g.add_activity("t2");
        let w = g.add_entity("w");
        let alice = g.add_agent("alice");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, m).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t2).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, t2, alice).unwrap();
        let idx = ProvIndex::build(&g);
        (g, idx, vec![d, t1, m, t2, w, alice])
    }

    #[test]
    fn validation_rejects_non_entities() {
        let (g, _, ids) = chain();
        let q = PgSegQuery::between(vec![ids[1]], vec![ids[4]]);
        assert!(q.validate(&g).is_err());
        let q = PgSegQuery::between(vec![ids[0]], vec![VertexId::new(99)]);
        assert!(q.validate(&g).is_err());
        let q = PgSegQuery::between(vec![ids[0]], vec![ids[4]]);
        assert!(q.validate(&g).is_ok());
    }

    #[test]
    fn one_shot_pgseg_produces_connected_segment() {
        let (g, idx, ids) = chain();
        let seg = pgseg(
            &g,
            &idx,
            PgSegQuery::between(vec![ids[0]], vec![ids[4]]),
            &PgSegOptions::default(),
        )
        .unwrap();
        assert!(seg.contains(ids[1]) && seg.contains(ids[3]));
        assert!(seg.contains(ids[5]), "agent included via VC4");
        assert!(seg.edge_count() >= 4);
    }

    #[test]
    fn all_evaluators_available_through_options() {
        let (g, idx, ids) = chain();
        let view = MaskedGraph::unmasked(&idx);
        let mut answers = Vec::new();
        for evaluator in [
            SimilarEvaluator::Naive,
            SimilarEvaluator::CflrB(SetBackend::Bit),
            SimilarEvaluator::CflrB(SetBackend::Compressed),
            SimilarEvaluator::SimProvAlg(SetBackend::Bit),
            SimilarEvaluator::SimProvAlg(SetBackend::Compressed),
            SimilarEvaluator::SimProvTst,
        ] {
            let opts = PgSegOptions { evaluator, ..PgSegOptions::default() };
            answers.push(evaluate_similarity(&view, &[ids[0]], &[ids[4]], &opts).answer);
        }
        for pair in answers.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
        let _ = g;
    }

    #[test]
    fn session_expand_adds_vertices() {
        let (g, idx, ids) = chain();
        // Restrict query to the last hop: src=m, dst=w.
        let mut session = PgSegSession::open(
            &g,
            &idx,
            PgSegQuery::between(vec![ids[2]], vec![ids[4]]),
            &PgSegOptions::default(),
        )
        .unwrap();
        assert!(!session.segment().contains(ids[0]), "d beyond the segment");
        session.expand(&[ids[2]], 1);
        assert!(session.segment().contains(ids[0]), "expansion pulls d in");
        assert!(session.segment().category(ids[0]).unwrap().contains(Categories::EXPANDED));
    }

    #[test]
    fn session_restrict_filters_cached_segment() {
        let (g, idx, ids) = chain();
        let mut session = PgSegSession::open(
            &g,
            &idx,
            PgSegQuery::between(vec![ids[0]], vec![ids[4]]),
            &PgSegOptions::default(),
        )
        .unwrap();
        assert!(session.segment().contains(ids[5]));
        session.restrict(
            &Boundary::none()
                .with_vertex_pred(crate::boundary::VertexPred::ExcludeKind(VertexKind::Agent)),
        );
        assert!(!session.segment().contains(ids[5]));
        // Associated edge disappears with its endpoint.
        for &e in &session.segment().edges {
            assert_ne!(g.edge(e).kind, EdgeKind::WasAssociatedWith);
        }
    }

    #[test]
    fn query_boundary_expansions_apply_at_open() {
        let (g, idx, ids) = chain();
        let q = PgSegQuery::between(vec![ids[2]], vec![ids[4]])
            .with_boundary(Boundary::none().expand(vec![ids[2]], 1));
        let session = PgSegSession::open(&g, &idx, q, &PgSegOptions::default()).unwrap();
        assert!(session.segment().contains(ids[0]));
    }
}
