//! Write-ahead-log record codec: framing, op encoding, commit markers, and
//! the recovery scan with torn-tail detection.
//!
//! ## Record format
//!
//! Every record is length-prefixed and checksummed:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! ```
//!
//! Two payload types exist, distinguished by their first byte:
//!
//! * `0x01` **ops** — `[0x01][u32 count][count × encoded WalOp]`: the
//!   mutations of one batch;
//! * `0x02` **commit** — `[0x02][u64 seq]`: the batch commit marker. `seq`
//!   increases by exactly 1 per committed batch (monotone across snapshot
//!   generations), so recovery can detect a spliced or replayed log.
//!
//! One [`encode_batch`] call emits the ops record immediately followed by its
//! commit marker; the storage engine appends both in a single write and then
//! fsyncs. A batch is durable iff its commit marker survives intact.
//!
//! ## Recovery scan
//!
//! [`scan`] walks records from the start. A structurally invalid record
//! (incomplete header, length past end-of-file, CRC mismatch) ends the scan:
//! everything from the last intact commit marker onward is the *torn tail*,
//! which recovery truncates. A record that passes its CRC but decodes to
//! garbage (unknown tag, bad op, out-of-order commit seq) is *corruption*,
//! not a torn write — that surfaces as an error instead of silent data loss.

use super::codec::{crc32, put_prop_value, put_str, put_u32, put_u64, put_u8, Reader};
use crate::graph::WalOp;
use prov_model::{EdgeId, EdgeKind, VertexId, VertexKind};

const PAYLOAD_OPS: u8 = 0x01;
const PAYLOAD_COMMIT: u8 = 0x02;

/// Byte overhead of one record frame (length + CRC words).
pub const FRAME_HEADER_BYTES: usize = 8;

fn put_op(out: &mut Vec<u8>, op: &WalOp) {
    match op {
        WalOp::AddVertex { kind, name } => {
            put_u8(out, 1);
            // lint-ok(narrowing-cast): VertexKind::as_index is 0..3.
            put_u8(out, kind.as_index() as u8);
            match name {
                Some(n) => {
                    put_u8(out, 1);
                    put_str(out, n);
                }
                None => put_u8(out, 0),
            }
        }
        WalOp::AddEdge { kind, src, dst } => {
            put_u8(out, 2);
            // lint-ok(narrowing-cast): EdgeKind::as_index is 0..5.
            put_u8(out, kind.as_index() as u8);
            put_u32(out, src.raw());
            put_u32(out, dst.raw());
        }
        WalOp::SetVProp { v, key, value } => {
            put_u8(out, 3);
            put_u32(out, v.raw());
            put_str(out, key);
            put_prop_value(out, value);
        }
        WalOp::UnsetVProp { v, key } => {
            put_u8(out, 4);
            put_u32(out, v.raw());
            put_str(out, key);
        }
        WalOp::SetEProp { e, key, value } => {
            put_u8(out, 5);
            put_u32(out, e.raw());
            put_str(out, key);
            put_prop_value(out, value);
        }
        WalOp::CreateVPropIndex { kind, key } => {
            put_u8(out, 6);
            // lint-ok(narrowing-cast): VertexKind::as_index is 0..3.
            put_u8(out, kind.as_index() as u8);
            put_str(out, key);
        }
        WalOp::InternKey { key } => {
            put_u8(out, 7);
            put_str(out, key);
        }
    }
}

fn vertex_kind(r: &mut Reader<'_>) -> Result<VertexKind, String> {
    let raw = r.u8("vertex kind")?;
    VertexKind::from_index(raw as usize).ok_or_else(|| format!("unknown vertex kind {raw}"))
}

fn edge_kind(r: &mut Reader<'_>) -> Result<EdgeKind, String> {
    let raw = r.u8("edge kind")?;
    EdgeKind::from_index(raw as usize).ok_or_else(|| format!("unknown edge kind {raw}"))
}

fn read_op(r: &mut Reader<'_>) -> Result<WalOp, String> {
    match r.u8("op tag")? {
        1 => {
            let kind = vertex_kind(r)?;
            let name = match r.u8("name flag")? {
                0 => None,
                1 => Some(r.str("vertex name")?),
                f => return Err(format!("bad name flag {f}")),
            };
            Ok(WalOp::AddVertex { kind, name })
        }
        2 => Ok(WalOp::AddEdge {
            kind: edge_kind(r)?,
            src: VertexId::new(r.u32("edge src")?),
            dst: VertexId::new(r.u32("edge dst")?),
        }),
        3 => Ok(WalOp::SetVProp {
            v: VertexId::new(r.u32("vprop vertex")?),
            key: r.str("vprop key")?,
            value: r.prop_value("vprop value")?,
        }),
        4 => Ok(WalOp::UnsetVProp {
            v: VertexId::new(r.u32("unset vertex")?),
            key: r.str("unset key")?,
        }),
        5 => Ok(WalOp::SetEProp {
            e: EdgeId::new(r.u32("eprop edge")?),
            key: r.str("eprop key")?,
            value: r.prop_value("eprop value")?,
        }),
        6 => Ok(WalOp::CreateVPropIndex { kind: vertex_kind(r)?, key: r.str("index key")? }),
        7 => Ok(WalOp::InternKey { key: r.str("intern key")? }),
        tag => Err(format!("unknown op tag {tag}")),
    }
}

fn frame(payload: &[u8], out: &mut Vec<u8>) {
    // lint-ok(narrowing-cast): one mutation call's journal stays far below 4 GiB.
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Encode one committed batch: its ops record followed by the commit marker
/// carrying `seq`. Appended (and fsynced) as a single contiguous write.
pub fn encode_batch(ops: &[WalOp], seq: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + ops.len() * 24);
    put_u8(&mut payload, PAYLOAD_OPS);
    // lint-ok(narrowing-cast): one batch is one mutation call's journal.
    put_u32(&mut payload, ops.len() as u32);
    for op in ops {
        put_op(&mut payload, op);
    }
    let mut out = Vec::with_capacity(payload.len() + 2 * FRAME_HEADER_BYTES + 9);
    frame(&payload, &mut out);
    let mut commit = Vec::with_capacity(9);
    put_u8(&mut commit, PAYLOAD_COMMIT);
    put_u64(&mut commit, seq);
    frame(&commit, &mut out);
    out
}

/// The outcome of scanning a WAL file.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// The committed batches, in commit order.
    pub batches: Vec<Vec<WalOp>>,
    /// Byte offset just past the last intact commit marker — the length the
    /// file must be truncated to. Everything beyond is the torn tail.
    pub committed_len: usize,
    /// Byte offset just past each intact commit marker, in order (the
    /// kill-point sweep uses these to predict which prefix must survive a
    /// crash at any offset).
    pub commit_offsets: Vec<usize>,
    /// The sequence number of the last committed batch (`first_seq - 1` when
    /// no batch is committed).
    pub last_seq: u64,
}

/// Scan a WAL file's bytes, expecting the first commit marker to carry
/// `first_seq`.
///
/// Returns `Err` only for *corruption*: CRC-valid records that decode to
/// garbage or commit out of sequence. Structural damage (a torn write at the
/// tail) is not an error — the scan simply stops and reports the salvageable
/// committed prefix.
pub fn scan(bytes: &[u8], first_seq: u64) -> Result<WalScan, String> {
    let mut scan = WalScan {
        batches: Vec::new(),
        committed_len: 0,
        commit_offsets: Vec::new(),
        last_seq: first_seq.wrapping_sub(1),
    };
    let mut pos = 0usize;
    let mut pending: Option<Vec<WalOp>> = None;
    let mut next_seq = first_seq;
    loop {
        // Structural validation: anything short or checksum-broken here is a
        // torn tail — stop scanning, keep what is committed.
        if bytes.len() - pos < FRAME_HEADER_BYTES {
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc =
            u32::from_le_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        let body_start = pos + FRAME_HEADER_BYTES;
        if len == 0 || bytes.len() - body_start < len {
            break;
        }
        let payload = &bytes[body_start..body_start + len];
        if crc32(payload) != crc {
            break;
        }
        // From here on the record is intact; decode failures are corruption.
        let mut r = Reader::new(payload);
        match r.u8("payload type").map_err(|e| format!("record at {pos}: {e}"))? {
            PAYLOAD_OPS => {
                if pending.is_some() {
                    return Err(format!("record at {pos}: ops record without commit marker"));
                }
                let count = r.u32("op count").map_err(|e| format!("record at {pos}: {e}"))?;
                let mut ops = Vec::with_capacity(count as usize);
                for i in 0..count {
                    ops.push(read_op(&mut r).map_err(|e| format!("record at {pos}, op {i}: {e}"))?);
                }
                if !r.is_exhausted() {
                    return Err(format!("record at {pos}: {} trailing bytes", r.remaining()));
                }
                pending = Some(ops);
            }
            PAYLOAD_COMMIT => {
                let seq = r.u64("commit seq").map_err(|e| format!("record at {pos}: {e}"))?;
                if seq != next_seq {
                    return Err(format!("record at {pos}: commit seq {seq}, expected {next_seq}"));
                }
                let Some(ops) = pending.take() else {
                    return Err(format!("record at {pos}: commit marker without ops record"));
                };
                scan.batches.push(ops);
                scan.last_seq = seq;
                next_seq += 1;
                scan.committed_len = body_start + len;
                scan.commit_offsets.push(scan.committed_len);
            }
            other => return Err(format!("record at {pos}: unknown payload type {other}")),
        }
        pos = body_start + len;
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::PropValue;
    use std::sync::Arc;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::AddVertex { kind: VertexKind::Entity, name: Some(Arc::from("data-v1")) },
            WalOp::AddVertex { kind: VertexKind::Activity, name: None },
            WalOp::AddEdge { kind: EdgeKind::Used, src: VertexId::new(1), dst: VertexId::new(0) },
            WalOp::SetVProp {
                v: VertexId::new(0),
                key: Arc::from("acc"),
                value: PropValue::from(0.75),
            },
            WalOp::UnsetVProp { v: VertexId::new(0), key: Arc::from("acc") },
            WalOp::SetEProp {
                e: EdgeId::new(0),
                key: Arc::from("role"),
                value: PropValue::from("input"),
            },
            WalOp::CreateVPropIndex { kind: VertexKind::Entity, key: Arc::from("filename") },
            WalOp::InternKey { key: Arc::from("spare") },
        ]
    }

    #[test]
    fn every_op_round_trips_through_a_batch() {
        let ops = sample_ops();
        let bytes = encode_batch(&ops, 1);
        let scan = scan(&bytes, 1).unwrap();
        assert_eq!(scan.batches, vec![ops]);
        assert_eq!(scan.committed_len, bytes.len());
        assert_eq!(scan.commit_offsets, vec![bytes.len()]);
        assert_eq!(scan.last_seq, 1);
    }

    #[test]
    fn torn_tail_at_every_offset_yields_a_committed_prefix() {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for seq in 1..=3u64 {
            let ops = vec![WalOp::AddVertex {
                kind: VertexKind::Entity,
                name: Some(Arc::from(format!("v{seq}").as_str())),
            }];
            bytes.extend_from_slice(&encode_batch(&ops, seq));
            boundaries.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let scan = scan(&bytes[..cut], 1).unwrap();
            // The committed prefix is the largest batch boundary at or below
            // the cut — never a partial batch, never a later one.
            let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.batches.len(), expect, "cut at {cut}");
            assert_eq!(scan.committed_len, boundaries[expect], "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_are_never_silently_committed() {
        let ops = sample_ops();
        let bytes = encode_batch(&ops, 1);
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            // Either the scan refuses the record (CRC broken → torn tail,
            // nothing committed), or a CRC-colliding frame decodes
            // inconsistently and errors as corruption. (With a single
            // flipped bit CRC32 always catches it; Err guards multi-bit
            // damage.)
            if let Ok(s) = scan(&flipped, 1) {
                assert_eq!(s.batches.len(), 0, "bit {bit} silently committed");
            }
        }
    }

    #[test]
    fn commit_seq_splices_are_corruption() {
        let a = encode_batch(&[WalOp::InternKey { key: Arc::from("k") }], 1);
        let b = encode_batch(&[WalOp::InternKey { key: Arc::from("k") }], 3);
        let mut spliced = a.clone();
        spliced.extend_from_slice(&b);
        let err = scan(&spliced, 1).unwrap_err();
        assert!(err.contains("commit seq 3, expected 2"), "{err}");
        // A log that starts at the wrong seq is caught the same way.
        assert!(scan(&a, 5).unwrap_err().contains("expected 5"));
    }

    #[test]
    fn orphan_records_are_corruption() {
        // Ops record followed by another ops record (commit lost but a later
        // intact record follows — cannot be a torn tail).
        let full = encode_batch(&[WalOp::InternKey { key: Arc::from("k") }], 1);
        let ops_only = &full[..full.len() - (FRAME_HEADER_BYTES + 9)];
        let mut doubled = ops_only.to_vec();
        doubled.extend_from_slice(ops_only);
        assert!(scan(&doubled, 1).unwrap_err().contains("without commit marker"));
        // Commit marker with no ops record before it.
        let commit_only = &full[ops_only.len()..];
        assert!(scan(commit_only, 1).unwrap_err().contains("without ops record"));
    }

    #[test]
    fn empty_batches_and_empty_logs_scan_cleanly() {
        let scan0 = scan(&[], 1).unwrap();
        assert!(scan0.batches.is_empty());
        assert_eq!(scan0.committed_len, 0);
        assert_eq!(scan0.last_seq, 0);
        let bytes = encode_batch(&[], 7);
        let s = scan(&bytes, 7).unwrap();
        assert_eq!(s.batches, vec![Vec::new()]);
        assert_eq!(s.last_seq, 7);
    }
}
