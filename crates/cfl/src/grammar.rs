//! Context-free grammars over path-label alphabets, with a CYK recognizer.
//!
//! A CFG here is the 6-tuple of Sec. III-A: alphabet (edge labels, vertex
//! labels, `Vdst` ids), nonterminals, productions, and a start symbol. The
//! solver ([`crate::solver`]) requires the *binary normal form* produced by
//! [`crate::normal::normalize`]; this module stores grammars in the general
//! form with arbitrary-length right-hand sides, as written in the paper
//! (Fig. 4 deliberately uses productions with more than two RHS symbols).

use crate::symbol::{NonTerminal, Symbol, Terminal};

/// A production `lhs → rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Production {
    /// Left-hand side nonterminal.
    pub lhs: NonTerminal,
    /// Right-hand side symbols (non-empty: we never need ε-productions).
    pub rhs: Vec<Symbol>,
}

/// A context-free grammar over path labels.
#[derive(Debug, Clone, Default)]
pub struct Grammar {
    names: Vec<String>,
    productions: Vec<Production>,
    start: Option<NonTerminal>,
}

impl Grammar {
    /// Empty grammar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern (or look up) a nonterminal by name.
    pub fn nonterminal(&mut self, name: &str) -> NonTerminal {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return NonTerminal(i as u16);
        }
        assert!(self.names.len() < u16::MAX as usize, "too many nonterminals");
        self.names.push(name.to_string());
        NonTerminal((self.names.len() - 1) as u16)
    }

    /// Look up an existing nonterminal by name.
    pub fn find(&self, name: &str) -> Option<NonTerminal> {
        self.names.iter().position(|n| n == name).map(|i| NonTerminal(i as u16))
    }

    /// Name of a nonterminal.
    pub fn name(&self, nt: NonTerminal) -> &str {
        &self.names[nt.index()]
    }

    /// Number of nonterminals.
    pub fn nonterminal_count(&self) -> usize {
        self.names.len()
    }

    /// Add a production `lhs → rhs`.
    pub fn rule(&mut self, lhs: NonTerminal, rhs: impl IntoIterator<Item = Symbol>) {
        let rhs: Vec<Symbol> = rhs.into_iter().collect();
        assert!(!rhs.is_empty(), "ε-productions are not supported");
        self.productions.push(Production { lhs, rhs });
    }

    /// Set the start symbol.
    pub fn set_start(&mut self, start: NonTerminal) {
        self.start = Some(start);
    }

    /// The start symbol.
    pub fn start(&self) -> NonTerminal {
        self.start.expect("grammar start symbol not set")
    }

    /// All productions.
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// Pretty-print the grammar in paper notation (for docs and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for nt in 0..self.names.len() {
            let nt = NonTerminal(nt as u16);
            let alts: Vec<String> = self
                .productions
                .iter()
                .filter(|p| p.lhs == nt)
                .map(|p| {
                    p.rhs
                        .iter()
                        .map(|s| match s {
                            Symbol::T(t) => t.render(),
                            Symbol::N(n) => self.name(*n).to_string(),
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            if !alts.is_empty() {
                out.push_str(&format!("{} → {}\n", self.name(nt), alts.join(" | ")));
            }
        }
        out
    }

    /// CYK recognition: does `word` belong to `L(nt)`?
    ///
    /// Used by tests to validate grammar constructions against hand-built path
    /// words. Runs on the general grammar by normalizing on the fly, so it is
    /// `O(|word|³ · |P|)` — fine for the short words in tests.
    pub fn accepts(&self, nt: NonTerminal, word: &[Terminal]) -> bool {
        let normal = crate::normal::normalize(self);
        normal.accepts_word(normal.map_nonterminal(nt), word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{EdgeKind, VertexId, VertexKind};

    /// A toy palindrome-ish grammar: S → U⁻¹ S U | v0 (matched literally).
    fn toy() -> (Grammar, NonTerminal) {
        let mut g = Grammar::new();
        let s = g.nonterminal("S");
        let u_inv = Terminal::inv(EdgeKind::Used);
        let u = Terminal::fwd(EdgeKind::Used);
        g.rule(s, [Symbol::T(u_inv), Symbol::N(s), Symbol::T(u)]);
        g.rule(s, [Symbol::T(Terminal::VertexIs(VertexId::new(0)))]);
        g.set_start(s);
        (g, s)
    }

    #[test]
    fn interning_is_stable() {
        let mut g = Grammar::new();
        let a = g.nonterminal("A");
        let b = g.nonterminal("B");
        assert_eq!(g.nonterminal("A"), a);
        assert_ne!(a, b);
        assert_eq!(g.name(a), "A");
        assert_eq!(g.find("B"), Some(b));
        assert_eq!(g.find("C"), None);
    }

    #[test]
    fn cyk_accepts_palindrome_words() {
        let (g, s) = toy();
        let u_inv = Terminal::inv(EdgeKind::Used);
        let u = Terminal::fwd(EdgeKind::Used);
        let v0 = Terminal::VertexIs(VertexId::new(0));
        assert!(g.accepts(s, &[v0]));
        assert!(g.accepts(s, &[u_inv, v0, u]));
        assert!(g.accepts(s, &[u_inv, u_inv, v0, u, u]));
        // Unbalanced words rejected.
        assert!(!g.accepts(s, &[u_inv, v0]));
        assert!(!g.accepts(s, &[u_inv, v0, u, u]));
        assert!(!g.accepts(s, &[u, v0, u_inv]));
        assert!(!g.accepts(s, &[]));
    }

    #[test]
    fn cyk_distinguishes_vertex_ids() {
        let (g, s) = toy();
        let v1 = Terminal::VertexIs(VertexId::new(1));
        assert!(!g.accepts(s, &[v1]));
    }

    #[test]
    fn render_is_readable() {
        let (g, _) = toy();
        let text = g.render();
        assert!(text.contains("S →"), "got: {text}");
        assert!(text.contains("U⁻¹ S U"), "got: {text}");
    }

    #[test]
    fn vertex_label_terminals_render() {
        let mut g = Grammar::new();
        let s = g.nonterminal("S");
        g.rule(
            s,
            [
                Symbol::T(Terminal::VertexLabel(VertexKind::Entity)),
                Symbol::T(Terminal::fwd(EdgeKind::WasGeneratedBy)),
            ],
        );
        g.set_start(s);
        assert!(g.render().contains("E G"));
    }

    #[test]
    #[should_panic(expected = "ε-productions")]
    fn empty_rhs_rejected() {
        let mut g = Grammar::new();
        let s = g.nonterminal("S");
        g.rule(s, []);
    }
}
