//! Multi-threaded serving smoke test (ISSUE 5 satellite): N reader threads
//! hammer lineage and segment queries while a writer ingests batches through
//! `record_activity` and `with_graph_mut`. Asserts:
//!
//! * pinned sessions stay byte-stable on the snapshot they opened against,
//!   across every concurrent mutation;
//! * no refresh ever produces a torn index: after every batch the writer
//!   differentials the served snapshot against a full `ProvIndex::build` of
//!   the current graph;
//! * readers always see internally consistent snapshots (every lineage
//!   answer is sorted and in-bounds for the snapshot it was computed on).
//!
//! `ProvDb` mutation takes `&mut self`, so the database sits behind an
//! `RwLock` — but queries deliberately clone out `SharedIndex` handles and
//! run *outside* the lock, which is exactly the torn-read surface the test
//! is after.

use prov_core::{lineage_over, ActivityRecord, LineageBound, LineageDirection, OutputSpec, ProvDb};
use prov_model::EdgeKind;
use prov_segment::{PgSegOptions, PgSegQuery};
use prov_store::ProvIndex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

const READERS: usize = 4;
const BATCHES: usize = 12;
const BATCH_SIZE: usize = 8;

#[test]
fn readers_and_writer_interleave_without_torn_snapshots() {
    let mut db = ProvDb::new();
    let agent = db.add_agent("smoke").unwrap();
    let seed = db.add_artifact_version("dataset", Some(agent)).unwrap();
    // Enough prefix that per-batch deltas take the refresh path.
    for i in 0..20 {
        db.record_activity(ActivityRecord {
            command: format!("prep{i}"),
            agent: Some(agent),
            inputs: vec![seed],
            outputs: vec![OutputSpec::named("prep")],
            props: vec![],
        })
        .unwrap();
    }
    // A session pinned before any concurrent mutation: its snapshot and
    // segment must stay frozen for the whole run.
    let session = db
        .segment_session(
            PgSegQuery::between(vec![seed], vec![db.latest_version("prep").unwrap()]),
            &PgSegOptions::default(),
        )
        .unwrap();
    let pinned_vertices = session.index().vertex_count();
    let pinned_segment = session.segment().vertex_count();

    let db = Arc::new(RwLock::new(db));
    let stop = Arc::new(AtomicBool::new(false));
    let progress: Arc<Vec<AtomicUsize>> =
        Arc::new((0..READERS).map(|_| AtomicUsize::new(0)).collect());

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let progress = Arc::clone(&progress);
            // lint-ok(thread-spawn): smoke test deliberately drives the store from raw OS threads.
            std::thread::spawn(move || {
                let mut queries = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    // Clone the snapshot handle out, release the lock, then
                    // query — the reader must be safe on a handle the writer
                    // has since superseded.
                    let (snapshot, start) = {
                        let guard = db.read().expect("reader lock");
                        (guard.snapshot(), seed)
                    };
                    for hops in [2, 6] {
                        let within = lineage_over(
                            &snapshot,
                            start,
                            LineageDirection::Descendants,
                            LineageBound::Within(hops),
                        );
                        assert!(
                            within.windows(2).all(|w| w[0] < w[1]),
                            "reader {r}: unsorted lineage"
                        );
                        assert!(
                            within.iter().all(|v| v.index() < snapshot.vertex_count()),
                            "reader {r}: lineage escaped its snapshot"
                        );
                    }
                    let closure = lineage_over(
                        &snapshot,
                        start,
                        LineageDirection::Descendants,
                        LineageBound::Unbounded,
                    );
                    // Every traversed edge endpoint is typed sanely — a torn
                    // CSR would trip the kind check or the bounds above.
                    for &v in closure.iter().take(32) {
                        let _ = snapshot.kind(v);
                    }
                    queries += 1;
                    progress[r].fetch_add(1, Ordering::Relaxed);
                }
                queries
            })
        })
        .collect();

    // Writer: ingest batches, alternating the facade path and the raw
    // `with_graph_mut` path, and differential-check the served snapshot
    // against a full rebuild after every batch.
    for batch in 0..BATCHES {
        {
            let mut guard = db.write().expect("writer lock");
            for i in 0..BATCH_SIZE {
                if (batch + i) % 3 == 0 {
                    guard
                        .with_graph_mut(|g| {
                            let t = g.add_activity(&format!("bulk{batch}-{i}"));
                            let w = g.add_entity(&format!("bulk-out{batch}-{i}"));
                            g.add_edge(EdgeKind::Used, t, seed)?;
                            g.add_edge(EdgeKind::WasGeneratedBy, w, t)?;
                            Ok::<_, prov_store::StoreError>(())
                        })
                        .unwrap();
                } else {
                    guard
                        .record_activity(ActivityRecord {
                            command: format!("train{batch}-{i}"),
                            agent: Some(agent),
                            inputs: vec![seed],
                            outputs: vec![OutputSpec::named("weights")],
                            props: vec![],
                        })
                        .unwrap();
                }
            }
        }
        // Differential: whatever path served this batch's snapshot (refresh
        // in place, refresh on copy, rebuild), it must equal the reference.
        let guard = db.read().expect("verify lock");
        let served = guard.snapshot();
        assert_eq!(
            *served,
            ProvIndex::build(guard.graph()),
            "batch {batch}: served snapshot diverged from the reference build"
        );
    }
    // Keep serving until every reader has landed at least one query against
    // the fully-ingested store, then wind down. A reader that died (its
    // assertion tripped) ends the wait too — the join below surfaces its
    // panic instead of this loop spinning until the CI timeout.
    while progress.iter().any(|p| p.load(Ordering::Relaxed) == 0)
        && !readers.iter().any(|h| h.is_finished())
    {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for handle in readers {
        let queries = handle.join().expect("reader thread panicked");
        assert!(queries > 0, "a reader never got a query in");
    }

    // The pinned session never moved.
    assert_eq!(session.index().vertex_count(), pinned_vertices);
    assert_eq!(session.segment().vertex_count(), pinned_segment);
    let guard = db.read().unwrap();
    assert!(guard.graph().vertex_count() > pinned_vertices);
    // The serving loop actually exercised the incremental path.
    let counters = guard.snapshot_counters();
    assert!(counters.refreshes > 0, "no refresh happened: {counters:?}");
    assert!(counters.reuses > 0, "readers never reused: {counters:?}");
}
