//! `BENCH_fig5.json` / `BENCH_fig6.json` / `BENCH_fig7.json`: the
//! machine-readable benchmark trajectories.
//!
//! Every PR regenerates these reports — the quick-scale Fig. 5(a)–(d)
//! sweeps plus the worklist comparison (`wl`) in `BENCH_fig5.json`, the
//! summarization sweeps (`6a`–`6c`: pSum vs seed PgSum vs the rewritten
//! PgSum) in `BENCH_fig6.json`, and the serving-loop sweeps (`7a`–`7c`:
//! ingest/query interleave, lineage latency, session-open latency) in
//! `BENCH_fig7.json` — giving the repo perf trajectories the CI can gate
//! on: a fresh run is compared point-by-point against the committed
//! baseline and any series that regresses beyond the configured factor
//! fails the build. [`BenchReport::summary_table`] renders the same data as
//! a compact per-figure table for the job log.

use crate::harness::{FigureResult, Scale};
use serde::{Deserialize, Serialize};

/// Schema version of the report layout (bump on breaking changes).
pub const BENCH_SCHEMA: u32 = 1;

/// Regression gate: a point fails when its slowdown against the baseline
/// exceeds `REGRESSION_FACTOR ×` the run's median slowdown (the median
/// calibrates away machine-speed differences between the committing machine
/// and the CI runner — see [`BenchReport::regressions_against`]).
pub const REGRESSION_FACTOR: f64 = 2.0;

/// Points whose baseline wall-clock is below this floor are exempt from the
/// gate — sub-5ms timings on shared CI runners are dominated by noise.
pub const REGRESSION_FLOOR_SECS: f64 = 0.005;

/// One measured point of one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointJson {
    /// Sweep coordinate (graph size, skew, percentile, …).
    pub x: f64,
    /// Wall-clock seconds; absent = DNF.
    pub secs: Option<f64>,
    /// Evaluator work units (derived facts / level entries); absent when the
    /// quantity is not a runtime measurement (e.g. compaction ratios).
    pub work: Option<u64>,
}

/// One plotted series of one figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesJson {
    /// Legend name (matches the paper's).
    pub name: String,
    /// Measured points in sweep order.
    pub points: Vec<PointJson>,
}

/// One reproduced subplot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureJson {
    /// Figure id (`5a`…`5d`, `wl`).
    pub id: String,
    /// Caption.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// All series.
    pub series: Vec<SeriesJson>,
}

/// The whole benchmark report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Layout version ([`BENCH_SCHEMA`]).
    pub schema: u32,
    /// `quick` or `full`.
    pub scale: String,
    /// The command that regenerates this file.
    pub command: String,
    /// Hardware parallelism of the measuring machine (0 in reports written
    /// before the field existed). Thread-sweep points (`5t`/`6t`/`7t`) only
    /// show real speedups when this exceeds the swept chunk counts — a
    /// single-core runner timeshares the workers.
    #[serde(default)]
    pub host_threads: usize,
    /// Measured figures.
    pub figures: Vec<FigureJson>,
}

impl BenchReport {
    /// Assemble a report from harness results; `command` is the exact CLI
    /// invocation that regenerates the file (recorded for reproducibility —
    /// fig5 and fig6 trajectories differ only in the ids and target path).
    pub fn from_figures(scale: Scale, figures: &[FigureResult], command: String) -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA,
            scale: match scale {
                Scale::Quick => "quick".into(),
                Scale::Full => "full".into(),
            },
            command,
            host_threads: std::thread::available_parallelism().map_or(0, |n| n.get()),
            figures: figures
                .iter()
                .map(|f| FigureJson {
                    id: f.id.to_string(),
                    title: f.title.clone(),
                    x_label: f.x_label.clone(),
                    y_label: f.y_label.clone(),
                    series: f
                        .series
                        .iter()
                        .map(|s| SeriesJson {
                            name: s.name.clone(),
                            points: s
                                .points
                                .iter()
                                .map(|p| PointJson { x: p.x, secs: p.y, work: p.work })
                                .collect(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Serialize (pretty, stable field order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse a committed report.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        serde_json::from_str(text).map_err(|e| format!("unparsable benchmark report: {e}"))
    }

    /// Every `(now, then, label)` wall-clock pair matched by figure id,
    /// series name, and x coordinate, with `then` above the noise floor.
    fn matched_points(&self, baseline: &BenchReport) -> Vec<(f64, f64, String)> {
        let mut out = Vec::new();
        for fig in &self.figures {
            let Some(base_fig) = baseline.figures.iter().find(|f| f.id == fig.id) else {
                continue;
            };
            for series in &fig.series {
                let Some(base_series) = base_fig.series.iter().find(|s| s.name == series.name)
                else {
                    continue;
                };
                for point in &series.points {
                    let base_point =
                        base_series.points.iter().find(|p| (p.x - point.x).abs() < 1e-9);
                    let (Some(now), Some(then)) = (point.secs, base_point.and_then(|p| p.secs))
                    else {
                        continue;
                    };
                    if then >= REGRESSION_FLOOR_SECS {
                        out.push((
                            now,
                            then,
                            format!("fig {} / {} @ x={}", fig.id, series.name, point.x),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Compact per-figure trajectory summary: for every series, its
    /// largest-x measured point, the speedup against the figure's *first*
    /// series at that x (the reference/baseline method of the figure — e.g.
    /// `Rebuild` in 7a, `SeedLoop` in `wl`, `pSum` in fig6), and, when a
    /// committed `baseline` report is supplied, the speedup against the same
    /// point of that baseline. Printed into the CI job log so the perf
    /// history reads without downloading artifacts.
    pub fn summary_table(&self, baseline: Option<&BenchReport>) -> String {
        fn fmt_secs(secs: f64) -> String {
            if secs < 0.001 {
                format!("{:.1}us", secs * 1e6)
            } else if secs < 1.0 {
                format!("{:.2}ms", secs * 1e3)
            } else {
                format!("{secs:.2}s")
            }
        }
        fn fmt_ratio(r: Option<f64>) -> String {
            match r {
                Some(r) => format!("{r:.2}x"),
                None => "-".into(),
            }
        }
        let mut out = String::from("trajectory summary (largest measured point per series):\n");
        out.push_str(&format!(
            "{:<5}{:<20}{:>10}{:>12}{:>10}{:>14}\n",
            "fig", "series", "x", "secs", "vs-ref", "vs-baseline"
        ));
        for fig in &self.figures {
            // The figure's reference series: its first series' secs by x.
            let reference = fig.series.first();
            for series in &fig.series {
                // Largest x with a measured (non-DNF) timing.
                let Some(point) = series
                    .points
                    .iter()
                    .filter(|p| p.secs.is_some())
                    .max_by(|a, b| a.x.total_cmp(&b.x))
                else {
                    continue;
                };
                let secs = point.secs.expect("filtered on measured");
                let at_x = |s: &SeriesJson| {
                    s.points.iter().find(|p| (p.x - point.x).abs() < 1e-9).and_then(|p| p.secs)
                };
                let vs_ref = reference.and_then(at_x).map(|r| r / secs);
                let vs_baseline = baseline
                    .and_then(|b| b.figures.iter().find(|f| f.id == fig.id))
                    .and_then(|f| f.series.iter().find(|s| s.name == series.name))
                    .and_then(at_x)
                    .map(|then| then / secs);
                out.push_str(&format!(
                    "{:<5}{:<20}{:>10}{:>12}{:>10}{:>14}\n",
                    fig.id,
                    series.name,
                    point.x,
                    fmt_secs(secs),
                    fmt_ratio(vs_ref),
                    fmt_ratio(vs_baseline)
                ));
            }
        }
        out
    }

    /// Compare this (fresh) report against a committed baseline. Returns one
    /// message per regressed point; empty means the gate passes.
    ///
    /// The committed baseline was measured on whatever machine last
    /// regenerated it, while CI runs on shared runners of unknown speed, so
    /// raw wall-clock ratios gate on hardware, not code. The gate therefore
    /// calibrates: each point's slowdown `now / then` is divided by the
    /// run's median slowdown (lower median, so a lone regressed point can
    /// never raise its own allowance), and only a point slower than
    /// [`REGRESSION_FACTOR`]× *beyond that shared shift* fails. A uniformly
    /// slower runner passes; one series blowing up relative to the rest
    /// fails.
    ///
    /// Series or points present on only one side are ignored — adding a new
    /// sweep must not fail the gate, and DNF entries carry no timing.
    pub fn regressions_against(&self, baseline: &BenchReport) -> Vec<String> {
        if self.scale != baseline.scale {
            // Quick and full sweeps measure different workloads; comparing
            // them point-by-point would silently gate on the wrong data.
            return vec![format!(
                "scale mismatch: fresh run is `{}` but baseline is `{}` — regenerate the \
                 baseline at the same scale",
                self.scale, baseline.scale
            )];
        }
        let matched = self.matched_points(baseline);
        let mut ratios: Vec<f64> = matched.iter().map(|(now, then, _)| now / then).collect();
        ratios.sort_unstable_by(|a, b| a.total_cmp(b));
        let calibration = match ratios.as_slice() {
            [] => return Vec::new(),
            // Lower median, clamped to 1.0: calibration only ever *loosens*
            // the gate for slower runners — a run full of improvements must
            // not tighten the threshold and flag untouched series.
            rs => rs[(rs.len() - 1) / 2].max(1.0),
        };
        matched
            .into_iter()
            .filter(|(now, then, _)| now / then > REGRESSION_FACTOR * calibration)
            .map(|(now, then, label)| {
                format!(
                    "{label}: {now:.4}s vs baseline {then:.4}s \
                     (>{REGRESSION_FACTOR}x beyond the run's median slowdown {calibration:.2}x)"
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three series (one per secs value) plus a DNF point.
    fn report(secs: &[f64]) -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA,
            scale: "quick".into(),
            command: "x".into(),
            host_threads: 1,
            figures: vec![FigureJson {
                id: "5a".into(),
                title: "t".into(),
                x_label: "N".into(),
                y_label: "runtime (s)".into(),
                series: secs
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| SeriesJson {
                        name: format!("series{i}"),
                        points: vec![
                            PointJson { x: 1000.0, secs: Some(s), work: Some(42) },
                            PointJson { x: 5000.0, secs: None, work: None }, // DNF
                        ],
                    })
                    .collect(),
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report(&[0.25, 0.1]);
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn reports_without_host_threads_still_parse() {
        // Committed baselines predate the field; serde must default it to 0
        // rather than reject the file (which would break the CI perf gate on
        // the first PR that adds the field).
        let json = report(&[0.1]).to_json();
        let line = "\"host_threads\": 1,";
        assert!(json.contains(line), "{json}");
        let stripped: String =
            json.lines().filter(|l| !l.contains(line)).collect::<Vec<_>>().join("\n");
        let parsed = BenchReport::from_json(&stripped).unwrap();
        assert_eq!(parsed.host_threads, 0);
    }

    #[test]
    fn regression_gate_fires_only_past_factor_and_floor() {
        let baseline = report(&[0.1, 0.1, 0.1]);
        // 1.5x on one series (median slowdown 1.0) is within the factor.
        assert!(report(&[0.15, 0.1, 0.1]).regressions_against(&baseline).is_empty());
        // 2.5x on one series while the others hold fails exactly that series.
        let msgs = report(&[0.25, 0.1, 0.1]).regressions_against(&baseline);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("fig 5a / series0"), "{msgs:?}");
        // Sub-floor baselines never gate.
        let noisy_base = report(&[0.0001, 0.0001, 0.0001]);
        assert!(report(&[0.001, 0.001, 0.001]).regressions_against(&noisy_base).is_empty());
        // Unmatched series/figures are ignored.
        let mut renamed = report(&[9.0, 0.1, 0.1]);
        renamed.figures[0].series[0].name = "other".into();
        assert!(renamed.regressions_against(&baseline).is_empty());
    }

    #[test]
    fn summary_table_reports_largest_point_and_speedups() {
        // series0 = 0.2s (the reference), series1 = 0.05s at the largest
        // measured x (the 5000-point is DNF, so 1000 is the largest).
        let fresh = report(&[0.2, 0.05]);
        let table = fresh.summary_table(None);
        assert!(table.contains("trajectory summary"), "{table}");
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2 + 2, "header + one row per series: {table}");
        let s0 = lines[2];
        let s1 = lines[3];
        assert!(s0.contains("series0") && s0.contains("1.00x"), "{s0}");
        // 0.2 / 0.05 = 4x faster than the reference series.
        assert!(s1.contains("series1") && s1.contains("4.00x"), "{s1}");
        assert!(s1.contains("50.00ms"), "{s1}");
        // vs-baseline column: dash without a baseline...
        assert!(s0.trim_end().ends_with('-'), "{s0}");
        // ...and then/now with one (baseline 0.1 vs now 0.2 → 0.50x).
        let with_base = fresh.summary_table(Some(&report(&[0.1, 0.1])));
        let lines: Vec<&str> = with_base.lines().collect();
        assert!(lines[2].contains("0.50x"), "{}", lines[2]);
        assert!(lines[3].contains("2.00x"), "{}", lines[3]);
    }

    #[test]
    fn regression_gate_calibrates_for_machine_speed() {
        let baseline = report(&[0.1, 0.1, 0.1]);
        // A uniformly 3x slower runner is a hardware shift, not a regression.
        assert!(report(&[0.3, 0.3, 0.3]).regressions_against(&baseline).is_empty());
        // On that slower runner, one series an *additional* >2x beyond the
        // shared shift still fails.
        let msgs = report(&[0.7, 0.3, 0.3]).regressions_against(&baseline);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("series0"), "{msgs:?}");
        // A uniformly faster runner does not flag parity points.
        assert!(report(&[0.05, 0.05, 0.05]).regressions_against(&baseline).is_empty());
        // Calibration never tightens: a run where most series improved 3x
        // must not flag the series that merely held steady (e.g. the frozen
        // SeedLoop reference).
        assert!(report(&[0.03, 0.03, 0.1]).regressions_against(&baseline).is_empty());
        // Quick-vs-full comparisons are refused outright.
        let mut full = report(&[0.1, 0.1, 0.1]);
        full.scale = "full".into();
        let msgs = full.regressions_against(&baseline);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("scale mismatch"), "{msgs:?}");
    }
}
