//! Fig. 5(c) kernel benchmark: runtime vs activity input mean `λi` (graph
//! density). The paper's shape: all methods grow with `λi`, CflrB steepest,
//! SimProvTst flattest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_bitset::SetBackend;
use prov_segment::{evaluate_similarity, MaskedGraph, PgSegOptions, SimilarEvaluator};
use prov_store::ProvIndex;
use prov_workload::{generate_pd, standard_query, PdParams};
use std::time::Duration;

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5c_density");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    for &lambda_in in &[1.0f64, 3.0, 5.0] {
        let graph = generate_pd(&PdParams { lambda_in, ..PdParams::with_size(1000) });
        let index = ProvIndex::build(&graph);
        let view = MaskedGraph::unmasked(&index);
        let (vsrc, vdst) = standard_query(&graph, 2);
        for (name, evaluator) in [
            ("cflrb", SimilarEvaluator::CflrB(SetBackend::Bit)),
            ("simprov_alg", SimilarEvaluator::SimProvAlg(SetBackend::Bit)),
            ("simprov_tst", SimilarEvaluator::SimProvTst),
        ] {
            let opts = PgSegOptions { evaluator, ..PgSegOptions::default() };
            group.bench_with_input(
                BenchmarkId::new(name, format!("li={lambda_in}")),
                &lambda_in,
                |b, _| b.iter(|| evaluate_similarity(&view, &vsrc, &vdst, &opts)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_density);
criterion_main!(benches);
