//! The serializable request/response envelope.
//!
//! Every facade operation of the reproduction — ingestion, PgSeg
//! segmentation (one-shot and interactive), PgSum summarization, lineage,
//! and the JSON interchange — is expressible as one [`Request`] value, and
//! every outcome as one [`Response`]. Both enums are externally tagged on
//! the wire (`{"OpenSession": {...}}`), so a transport can route on the tag
//! without touching the payload.
//!
//! Design points:
//!
//! * [`EntityRef`] — query vertices are addressed by dense id *or* versioned
//!   name (`"model-v2"`), so clients never need to hold ids.
//! * [`Stats`] — every successful response carries a latency/size envelope,
//!   timed by the injected [`crate::Clock`].
//! * DTOs ([`SegmentDto`], [`PsgDto`]) — segments and summaries are
//!   flattened into self-describing wire shapes (names, kinds, category
//!   tags) instead of bare id lists.

use crate::error::ErrorCode;
use prov_model::{EdgeId, EdgeKind, PropValue, VertexId, VertexKind};
use prov_segment::SegmentGraph;
use prov_store::ProvGraph;
use prov_summary::Psg;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Addressing
// ---------------------------------------------------------------------------

/// Handle of one live PgSeg session inside a [`crate::ProvService`] registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SessionId(pub u64);

impl SessionId {
    /// Construct from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        SessionId(raw)
    }

    /// The raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A vertex reference that resolves by dense id or by versioned name
/// (`"model-v2"`, `"alice"`). Serialized untagged: a JSON number is an id, a
/// JSON string is a name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum EntityRef {
    /// Dense vertex id.
    Id(VertexId),
    /// Versioned artifact name (or agent/activity name).
    Name(String),
}

impl EntityRef {
    /// Resolve against a graph: ids are bounds-checked, names looked up.
    pub fn resolve(&self, graph: &ProvGraph) -> crate::error::ApiResult<VertexId> {
        match self {
            EntityRef::Id(v) => {
                graph.try_vertex(*v)?;
                Ok(*v)
            }
            EntityRef::Name(name) => graph
                .vertex_by_name(name)
                .ok_or_else(|| crate::error::ApiError::UnknownEntity(name.clone())),
        }
    }

    /// Resolve a whole reference list.
    pub fn resolve_all(
        refs: &[EntityRef],
        graph: &ProvGraph,
    ) -> crate::error::ApiResult<Vec<VertexId>> {
        refs.iter().map(|r| r.resolve(graph)).collect()
    }
}

impl From<VertexId> for EntityRef {
    fn from(v: VertexId) -> Self {
        EntityRef::Id(v)
    }
}

impl From<&str> for EntityRef {
    fn from(name: &str) -> Self {
        EntityRef::Name(name.to_string())
    }
}

// ---------------------------------------------------------------------------
// The stats envelope
// ---------------------------------------------------------------------------

/// Cumulative snapshot-acquisition outcomes of the serving database (wire
/// twin of [`prov_core::SnapshotCounters`]). Every query that needs a frozen
/// snapshot resolves as exactly one reuse, one incremental refresh, or one
/// full rebuild — so a serving-loop perf regression (refreshes silently
/// degrading to rebuilds, reuse ratio collapsing) is visible to any client
/// without profiling the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SnapshotActivity {
    /// Acquisitions served by the still-fresh cached snapshot.
    pub reuses: u64,
    /// Acquisitions served by extending a stale snapshot from the delta log.
    pub refreshes: u64,
    /// Acquisitions that rebuilt the snapshot from scratch.
    pub rebuilds: u64,
}

impl From<prov_core::SnapshotCounters> for SnapshotActivity {
    fn from(c: prov_core::SnapshotCounters) -> Self {
        SnapshotActivity { reuses: c.reuses, refreshes: c.refreshes, rebuilds: c.rebuilds }
    }
}

/// Query-IR evaluation counters (wire twin of [`prov_store::QueryStats`]
/// plus the service's cumulative cursor-resumption count). Meaningful on
/// [`QueryResponse`] stats; all-zero elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueryActivity {
    /// Pipeline steps evaluated (start materialization included).
    pub steps: u32,
    /// Rows inspected across all steps (frontier vertices + filtered rows).
    pub rows_scanned: u64,
    /// Largest BFS frontier any traverse step held.
    pub frontier_peak: u32,
    /// Cursor resumptions served by this service so far (cumulative, like
    /// [`SnapshotActivity`]): paginated clients make it grow, one-shot
    /// clients leave it flat.
    pub resumptions: u64,
}

impl QueryActivity {
    /// Wrap the evaluator's counters, stamping the service-level
    /// resumption count.
    pub fn from_stats(stats: prov_store::QueryStats, resumptions: u64) -> Self {
        QueryActivity {
            steps: stats.steps,
            rows_scanned: stats.rows_scanned,
            frontier_peak: stats.frontier_peak,
            resumptions,
        }
    }
}

/// Durable-storage activity counters (wire twin of
/// [`prov_core::DurabilityCounters`]). Cumulative since the database was
/// opened; all-zero for an in-memory database — `recoveries` is at least 1
/// whenever durability is actually on, so clients can tell the two apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DurabilityActivity {
    /// Batches appended to the write-ahead log.
    pub wal_appends: u64,
    /// Fsync calls issued (commit acknowledgements, snapshot writes).
    pub fsyncs: u64,
    /// Cold-start recoveries performed.
    pub recoveries: u64,
    /// Torn-tail bytes truncated during recovery.
    pub truncated_tail_bytes: u64,
    /// Snapshot images written by compaction.
    pub snapshots_written: u64,
    /// Committed batches replayed from the WAL during recovery.
    pub batches_replayed: u64,
    /// Grouped WAL flushes performed by the commit pipeline. Absent on old
    /// wires: deserializes to 0.
    #[serde(default)]
    pub group_flushes: u64,
    /// Batches covered by those grouped flushes. Absent on old wires: 0.
    #[serde(default)]
    pub group_flushed_batches: u64,
    /// Snapshot property segments deferred at open (lazy decode). Absent on
    /// old wires: 0.
    #[serde(default)]
    pub lazy_segments_deferred: u64,
    /// Bytes of snapshot payload not read at open (lazy decode). Absent on
    /// old wires: 0.
    #[serde(default)]
    pub lazy_deferred_bytes: u64,
    /// Deferred segments loaded on first touch. Absent on old wires: 0.
    #[serde(default)]
    pub lazy_segment_loads: u64,
    /// Bytes range-read by first-touch loads. Absent on old wires: 0.
    #[serde(default)]
    pub lazy_bytes_loaded: u64,
}

impl From<prov_core::DurabilityCounters> for DurabilityActivity {
    fn from(c: prov_core::DurabilityCounters) -> Self {
        DurabilityActivity {
            wal_appends: c.wal_appends,
            fsyncs: c.fsyncs,
            recoveries: c.recoveries,
            truncated_tail_bytes: c.truncated_tail_bytes,
            snapshots_written: c.snapshots_written,
            batches_replayed: c.batches_replayed,
            group_flushes: c.group_flushes,
            group_flushed_batches: c.group_flushed_batches,
            lazy_segments_deferred: c.lazy_segments_deferred,
            lazy_deferred_bytes: c.lazy_deferred_bytes,
            lazy_segment_loads: c.lazy_segment_loads,
            lazy_bytes_loaded: c.lazy_bytes_loaded,
        }
    }
}

/// Per-response measurement envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Stats {
    /// Service-side latency in microseconds (measured by the injected clock).
    pub elapsed_micros: u64,
    /// Vertices in the result (or in the store, for ingest/import).
    pub vertices: usize,
    /// Edges in the result (or in the store, for ingest/import).
    pub edges: usize,
    /// Snapshot reuse/refresh/rebuild counters at response time (cumulative
    /// over the database's lifetime; stamped by the service). Absent on old
    /// wires: deserializes to all-zero.
    #[serde(default)]
    pub snapshot: SnapshotActivity,
    /// Query-IR evaluation counters (set on query responses). Absent on old
    /// wires: deserializes to all-zero.
    #[serde(default)]
    pub query: QueryActivity,
    /// Durable-storage counters at response time (cumulative; all-zero for
    /// in-memory databases). Absent on old wires: deserializes to all-zero.
    #[serde(default)]
    pub durability: DurabilityActivity,
}

impl Stats {
    /// Stats sized after a result; latency and snapshot counters are
    /// stamped by the service.
    pub fn sized(vertices: usize, edges: usize) -> Stats {
        Stats { vertices, edges, ..Stats::default() }
    }

    /// Stats sized after a whole graph.
    pub fn of_graph(graph: &ProvGraph) -> Stats {
        Stats::sized(graph.vertex_count(), graph.edge_count())
    }
}

// ---------------------------------------------------------------------------
// Request payloads
// ---------------------------------------------------------------------------

/// Register a team member.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddAgentRequest {
    /// Agent name.
    pub name: String,
}

/// Register a new artifact version (external addition).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddArtifactRequest {
    /// Artifact base name (versioned automatically to `name-vN`).
    pub artifact: String,
    /// Optional owning agent.
    #[serde(default)]
    pub attributed_to: Option<EntityRef>,
}

/// One artifact an activity generates (wire twin of
/// [`prov_core::OutputSpec`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputSpecDto {
    /// Artifact base name.
    pub artifact: String,
    /// Properties to attach to the new version.
    #[serde(default)]
    pub props: Vec<(String, PropValue)>,
}

/// Ingest one activity execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordActivityRequest {
    /// Command line / operation name.
    pub command: String,
    /// Responsible agent.
    #[serde(default)]
    pub agent: Option<EntityRef>,
    /// Input entity versions the activity used.
    #[serde(default)]
    pub inputs: Vec<EntityRef>,
    /// Artifacts generated.
    #[serde(default)]
    pub outputs: Vec<OutputSpecDto>,
    /// Extra activity properties.
    #[serde(default)]
    pub props: Vec<(String, PropValue)>,
}

/// Wire-selectable similarity evaluator (subset of
/// [`prov_segment::SimilarEvaluator`] that needs no tuning structs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvaluatorSpec {
    /// Naive Cypher-style enumerate-and-join.
    Naive,
    /// Generic CflrB on the Fig. 6 normal form, bitset fact tables.
    CflrBitset,
    /// Generic CflrB, compressed-bitmap fact tables.
    CflrCompressed,
    /// SimProvAlg, bitset fact tables.
    AlgBitset,
    /// SimProvAlg, compressed-bitmap fact tables.
    AlgCompressed,
    /// SimProvTst (the default; exact `VC2` induction).
    Tst,
}

/// Wire twin of [`prov_segment::PgSegOptions`]; unset fields take the
/// library defaults.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SegmentOptions {
    /// Similarity evaluator (default: `Tst`).
    #[serde(default)]
    pub evaluator: Option<EvaluatorSpec>,
    /// Temporal early stopping (default: on).
    #[serde(default)]
    pub early_stop: Option<bool>,
    /// Symmetric-pair pruning (default: on).
    #[serde(default)]
    pub symmetric_prune: Option<bool>,
}

impl SegmentOptions {
    /// Lower onto the library options, filling unset fields with defaults.
    pub fn to_options(self) -> prov_segment::PgSegOptions {
        use prov_segment::SimilarEvaluator;
        let defaults = prov_segment::PgSegOptions::default();
        let evaluator = match self.evaluator.unwrap_or(EvaluatorSpec::Tst) {
            EvaluatorSpec::Naive => SimilarEvaluator::Naive,
            EvaluatorSpec::CflrBitset => SimilarEvaluator::CflrB(prov_bitset_backend(false)),
            EvaluatorSpec::CflrCompressed => SimilarEvaluator::CflrB(prov_bitset_backend(true)),
            EvaluatorSpec::AlgBitset => SimilarEvaluator::SimProvAlg(prov_bitset_backend(false)),
            EvaluatorSpec::AlgCompressed => SimilarEvaluator::SimProvAlg(prov_bitset_backend(true)),
            EvaluatorSpec::Tst => SimilarEvaluator::SimProvTst,
        };
        prov_segment::PgSegOptions {
            evaluator,
            early_stop: self.early_stop.unwrap_or(defaults.early_stop),
            symmetric_prune: self.symmetric_prune.unwrap_or(defaults.symmetric_prune),
            naive_budget: defaults.naive_budget,
        }
    }
}

fn prov_bitset_backend(compressed: bool) -> prov_bitset::SetBackend {
    if compressed {
        prov_bitset::SetBackend::Compressed
    } else {
        prov_bitset::SetBackend::Bit
    }
}

/// Run a one-shot PgSeg query (`(Vsrc, Vdst, B)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentRequest {
    /// Source entities.
    pub src: Vec<EntityRef>,
    /// Destination entities.
    pub dst: Vec<EntityRef>,
    /// Boundary criteria `B`.
    #[serde(default)]
    pub boundary: crate::spec::BoundarySpec,
    /// Evaluation options.
    #[serde(default)]
    pub options: SegmentOptions,
}

/// Open an interactive PgSeg session (induce once, adjust repeatedly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenSessionRequest {
    /// Source entities.
    pub src: Vec<EntityRef>,
    /// Destination entities.
    pub dst: Vec<EntityRef>,
    /// Boundary criteria `B` applied at induce time.
    #[serde(default)]
    pub boundary: crate::spec::BoundarySpec,
    /// Evaluation options.
    #[serde(default)]
    pub options: SegmentOptions,
}

/// Adjust step: grow a session's segment with an expansion `bx(Vx, k)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpandRequest {
    /// The session to adjust.
    pub session: SessionId,
    /// Entities to expand from.
    pub roots: Vec<EntityRef>,
    /// Number of activities away (2k ancestry hops).
    pub k: u32,
}

/// Adjust step: filter a session's segment with extra exclusion criteria.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RestrictRequest {
    /// The session to adjust.
    pub session: SessionId,
    /// Additional exclusions (expansions are rejected here — send
    /// [`ExpandRequest`] instead).
    pub boundary: crate::spec::BoundarySpec,
}

/// Drop a session from the registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloseSessionRequest {
    /// The session to close.
    pub session: SessionId,
}

/// Summarize the current segments of one or more sessions with PgSum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummarizeRequest {
    /// Sessions whose segments form the input set `S` (must all pin the same
    /// graph snapshot).
    pub sessions: Vec<SessionId>,
    /// Provenance-type radius `k` of `Rk` (default 1).
    #[serde(default)]
    pub k: Option<usize>,
    /// Entity property keys to aggregate by (default: `filename`).
    #[serde(default)]
    pub entity_keys: Vec<String>,
    /// Activity property keys to aggregate by (default: `command`).
    #[serde(default)]
    pub activity_keys: Vec<String>,
}

/// Which way a lineage query walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineageDir {
    /// Transitive inputs.
    Ancestors,
    /// Transitive products.
    Descendants,
}

/// Walk the ancestry closure of one entity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageRequest {
    /// The entity to start from.
    pub entity: EntityRef,
    /// Walk direction.
    pub direction: LineageDir,
    /// Maximum ancestry hops (one hop = one `U`/`G` edge; "k activities
    /// away" is `2k`). Unset walks the full closure — the pre-bounded wire
    /// shape.
    #[serde(default)]
    pub max_hops: Option<u32>,
}

/// What a [`QueryRequest`] evaluates: a query-IR pipeline directly, or a
/// Cypher-flavoured path pattern. Patterns in the lowerable family (single
/// unbounded star, see [`prov_store::lower_pattern`]) compile onto the IR
/// and gain its cursors; the rest fall back to the materializing pattern
/// engine and report truncation via [`QueryResponse::is_complete`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuerySpec {
    /// A query-IR pipeline (`StartSet → (Traverse | Filter | Limit)* →
    /// Project`), evaluated as-is.
    Pipeline(prov_store::Pipeline),
    /// A path pattern, lowered onto the IR when possible.
    Pattern(prov_store::PathPattern),
}

/// Evaluate a composable query, optionally paginated with a resumable
/// cursor and optionally pinned to a live session's snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// The query to evaluate.
    pub query: QuerySpec,
    /// Pin evaluation to this session's frozen graph/index snapshot. Pinned
    /// queries are byte-stable across pages even while the live store
    /// ingests; unpinned queries evaluate over the current snapshot, where
    /// the cursor's rank watermark keeps *structure* stable but property
    /// edits between pages can show through (property writes do not move
    /// the store's delta cursor).
    #[serde(default)]
    pub session: Option<SessionId>,
    /// Rows per page. Unset returns everything in one shot (no cursor).
    #[serde(default)]
    pub page_size: Option<usize>,
    /// Resume token from a previous page's [`QueryResponse::cursor`].
    #[serde(default)]
    pub cursor: Option<prov_store::QueryCursor>,
    /// Pattern-fallback budget: maximum search-tree expansions (default:
    /// the library's [`prov_store::Budget`] default). Ignored for IR
    /// pipelines and lowerable patterns.
    #[serde(default)]
    pub max_expansions: Option<u64>,
    /// Pattern-fallback budget: maximum materialized paths.
    #[serde(default)]
    pub max_paths: Option<usize>,
}

/// Export the store as PROV-JSON-style interchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExportRequest {}

/// Replace the store from PROV-JSON-style interchange. Live sessions keep
/// the snapshot they pinned at open.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportRequest {
    /// The interchange document.
    pub json: String,
}

/// One service request (externally tagged on the wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Register a team member.
    AddAgent(AddAgentRequest),
    /// Register a new artifact version.
    AddArtifact(AddArtifactRequest),
    /// Ingest one activity execution.
    RecordActivity(RecordActivityRequest),
    /// One-shot PgSeg.
    Segment(SegmentRequest),
    /// Open an interactive PgSeg session.
    OpenSession(OpenSessionRequest),
    /// Expand a session's segment.
    Expand(ExpandRequest),
    /// Restrict a session's segment.
    Restrict(RestrictRequest),
    /// Close a session.
    CloseSession(CloseSessionRequest),
    /// PgSum over session segments.
    Summarize(SummarizeRequest),
    /// Ancestry closure of one entity.
    Lineage(LineageRequest),
    /// Composable query (IR pipeline or pattern), cursor-paginable.
    Query(QueryRequest),
    /// Export the store.
    Export(ExportRequest),
    /// Replace the store.
    Import(ImportRequest),
}

// ---------------------------------------------------------------------------
// Response payloads
// ---------------------------------------------------------------------------

/// One segment vertex on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentVertexDto {
    /// Dense vertex id.
    pub id: VertexId,
    /// Vertex name, when named.
    pub name: Option<String>,
    /// Vertex kind.
    pub kind: VertexKind,
    /// Category tags (`src|vc1|vc2|...`).
    pub tags: String,
}

/// One induced segment edge on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentEdgeDto {
    /// Dense edge id.
    pub id: EdgeId,
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Relationship kind.
    pub kind: EdgeKind,
}

/// A PgSeg segment on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentDto {
    /// Queried sources.
    pub vsrc: Vec<VertexId>,
    /// Queried destinations.
    pub vdst: Vec<VertexId>,
    /// Segment vertices.
    pub vertices: Vec<SegmentVertexDto>,
    /// Induced edges.
    pub edges: Vec<SegmentEdgeDto>,
}

impl SegmentDto {
    /// Flatten a segment against its backing graph.
    pub fn from_segment(graph: &ProvGraph, seg: &SegmentGraph) -> SegmentDto {
        let vertices = seg
            .vertices
            .iter()
            .zip(seg.categories.iter())
            .map(|(&v, c)| SegmentVertexDto {
                id: v,
                name: graph.vertex_name(v).map(str::to_string),
                kind: graph.vertex_kind(v),
                tags: c.tags(),
            })
            .collect();
        let edges = seg
            .edges
            .iter()
            .map(|&e| {
                let rec = graph.edge(e);
                SegmentEdgeDto { id: e, src: rec.src, dst: rec.dst, kind: rec.kind }
            })
            .collect();
        SegmentDto { vsrc: seg.vsrc.clone(), vdst: seg.vdst.clone(), vertices, edges }
    }

    /// Membership test by vertex id.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.iter().any(|x| x.id == v)
    }

    /// The raw vertex id set.
    pub fn vertex_ids(&self) -> Vec<VertexId> {
        self.vertices.iter().map(|x| x.id).collect()
    }
}

/// One summary vertex on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsgVertexDto {
    /// Display label (representative name + provenance-type tag).
    pub label: String,
    /// Vertex kind.
    pub kind: VertexKind,
    /// Members as `(segment index, vertex id)` pairs.
    pub members: Vec<(u32, VertexId)>,
}

/// One summary edge on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsgEdgeDto {
    /// Source summary vertex (index into the vertex list).
    pub src: u32,
    /// Destination summary vertex.
    pub dst: u32,
    /// Relationship kind.
    pub kind: EdgeKind,
    /// `γ(e)` — fraction of input segments containing such an edge.
    pub frequency: f64,
}

/// A provenance summary graph on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsgDto {
    /// Summary vertices.
    pub vertices: Vec<PsgVertexDto>,
    /// Summary edges.
    pub edges: Vec<PsgEdgeDto>,
    /// Number of input segments.
    pub segment_count: usize,
    /// Total input vertex instances.
    pub input_vertex_count: usize,
    /// `|M| / |⋃ᵢ VSᵢ|` (lower is better).
    pub compaction_ratio: f64,
}

impl PsgDto {
    /// Flatten a summary graph.
    pub fn from_psg(psg: &Psg) -> PsgDto {
        PsgDto {
            vertices: psg
                .vertices
                .iter()
                .map(|v| PsgVertexDto {
                    label: v.label.clone(),
                    kind: v.kind,
                    members: v.members.clone(),
                })
                .collect(),
            edges: psg
                .edges
                .iter()
                .map(|e| PsgEdgeDto {
                    src: e.src,
                    dst: e.dst,
                    kind: e.kind,
                    frequency: e.frequency,
                })
                .collect(),
            segment_count: psg.segment_count,
            input_vertex_count: psg.input_vertex_count,
            compaction_ratio: psg.compaction_ratio(),
        }
    }
}

/// Error outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Wire-stable discriminant.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

/// A single created/resolved vertex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VertexResponse {
    /// The vertex.
    pub id: VertexId,
    /// Its name, when named.
    pub name: Option<String>,
    /// Measurement envelope.
    pub stats: Stats,
}

/// Outcome of an activity ingest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityResponse {
    /// The activity vertex.
    pub activity: VertexId,
    /// Generated entity versions, in request order.
    pub outputs: Vec<VertexId>,
    /// Measurement envelope.
    pub stats: Stats,
}

/// Outcome of a one-shot PgSeg.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentResponse {
    /// The induced segment.
    pub segment: SegmentDto,
    /// Measurement envelope.
    pub stats: Stats,
}

/// Outcome of opening or adjusting a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionResponse {
    /// The session handle.
    pub session: SessionId,
    /// Its current (possibly adjusted) segment.
    pub segment: SegmentDto,
    /// Measurement envelope.
    pub stats: Stats,
}

/// Outcome of closing a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedResponse {
    /// The closed session.
    pub session: SessionId,
    /// Measurement envelope.
    pub stats: Stats,
}

/// Outcome of a PgSum summarization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryResponse {
    /// The summary graph.
    pub summary: PsgDto,
    /// Measurement envelope.
    pub stats: Stats,
}

/// Outcome of a lineage walk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageResponse {
    /// The resolved start entity.
    pub entity: VertexId,
    /// The (possibly depth-bounded) closure. **Order contract**: sorted
    /// ascending by dense vertex id, start excluded — never BFS discovery
    /// order. Clients may rely on this (regression-tested in
    /// `tests/service_flow.rs` and `prov_core::provdb`).
    pub vertices: Vec<VertexId>,
    /// Measurement envelope.
    pub stats: Stats,
}

/// Outcome (one page) of a composable query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResponse {
    /// This page's rows. **Order contract**: ascending by dense vertex id,
    /// like every read path the IR unified.
    pub rows: Vec<VertexId>,
    /// Total result rows at the cursor's watermark (the whole result, not
    /// this page; what `Project::Count` returns with no rows).
    pub count: u64,
    /// False when a pattern fell back to the materializing engine and its
    /// budget ran out before the search finished: `rows` is a *truncated*
    /// answer. IR-evaluated queries are always complete.
    pub is_complete: bool,
    /// Resume token for the next page; absent on the last (or only) page.
    #[serde(default)]
    pub cursor: Option<prov_store::QueryCursor>,
    /// Measurement envelope (query counters in `stats.query`).
    pub stats: Stats,
}

/// Outcome of an export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocumentResponse {
    /// The interchange document.
    pub json: String,
    /// Measurement envelope.
    pub stats: Stats,
}

/// Outcome of an import.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportedResponse {
    /// Measurement envelope (sized after the imported store).
    pub stats: Stats,
}

/// One service response (externally tagged on the wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The request failed and changed nothing: ingestion validates the whole
    /// record before its first write, imports replace the store only on
    /// success, and query operations are read-only.
    Error(ErrorResponse),
    /// A vertex was created or resolved.
    Vertex(VertexResponse),
    /// An activity was ingested.
    Activity(ActivityResponse),
    /// A one-shot segment.
    Segment(SegmentResponse),
    /// A session was opened or adjusted.
    Session(SessionResponse),
    /// A session was closed.
    Closed(ClosedResponse),
    /// A summary graph.
    Summary(SummaryResponse),
    /// A lineage closure.
    Lineage(LineageResponse),
    /// One page of a composable query.
    Query(QueryResponse),
    /// An exported document.
    Document(DocumentResponse),
    /// The store was replaced.
    Imported(ImportedResponse),
}

impl Response {
    /// The measurement envelope, when the response carries one (everything
    /// but errors).
    pub fn stats_mut(&mut self) -> Option<&mut Stats> {
        match self {
            Response::Error(_) => None,
            Response::Vertex(r) => Some(&mut r.stats),
            Response::Activity(r) => Some(&mut r.stats),
            Response::Segment(r) => Some(&mut r.stats),
            Response::Session(r) => Some(&mut r.stats),
            Response::Closed(r) => Some(&mut r.stats),
            Response::Summary(r) => Some(&mut r.stats),
            Response::Lineage(r) => Some(&mut r.stats),
            Response::Query(r) => Some(&mut r.stats),
            Response::Document(r) => Some(&mut r.stats),
            Response::Imported(r) => Some(&mut r.stats),
        }
    }

    /// The measurement envelope, read-only (everything but errors).
    pub fn stats(&self) -> Option<&Stats> {
        match self {
            Response::Error(_) => None,
            Response::Vertex(r) => Some(&r.stats),
            Response::Activity(r) => Some(&r.stats),
            Response::Segment(r) => Some(&r.stats),
            Response::Session(r) => Some(&r.stats),
            Response::Closed(r) => Some(&r.stats),
            Response::Summary(r) => Some(&r.stats),
            Response::Lineage(r) => Some(&r.stats),
            Response::Query(r) => Some(&r.stats),
            Response::Document(r) => Some(&r.stats),
            Response::Imported(r) => Some(&r.stats),
        }
    }

    /// True when this is an error response.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error(_))
    }
}
