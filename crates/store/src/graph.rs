//! The mutable property graph store (`ProvGraph`).
//!
//! This is the embedded substitute for the Neo4j backend of the paper's system
//! (Fig. 1). It satisfies the two assumptions the query evaluation section
//! makes about the backend (Sec. III-B):
//!
//! 1. *constant-time access to arbitrary vertices/edges by primary id* — ids
//!    are dense `u32` indexes into columnar `Vec`s;
//! 2. *linear-time access to both incoming and outgoing edges of a vertex* —
//!    per-vertex adjacency lists are maintained in both directions.
//!
//! On top of that it provides the schema-later property layer (interned keys,
//! dynamic values), a per-kind vertex index, a name index, and PROV validation
//! (edge domain/range rules at insert time, acyclicity on demand).

use crate::error::{StoreError, StoreResult};
use crate::hash::FxHashMap;
use crate::interner::KeyInterner;
use prov_model::{check_edge_types, EdgeId, EdgeKind, PropMap, PropValue, VertexId, VertexKind};
use std::sync::{Arc, OnceLock};

/// A stored vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexRecord {
    /// `λv(v)` — the vertex type.
    pub kind: VertexKind,
    /// Human-readable name (e.g. `model-v1`); also indexed for lookup.
    pub name: Option<Arc<str>>,
    /// Logical creation timestamp ("order of being", Sec. III-B). Assigned
    /// monotonically at insertion; used by the early-stopping rule.
    pub birth: u64,
    /// `σ(v, ·)` — schema-later properties.
    pub props: PropMap,
}

/// A stored edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeRecord {
    /// `λe(e)` — the relationship type.
    pub kind: EdgeKind,
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// `ω(e, ·)` — edge properties.
    pub props: PropMap,
}

/// Position in a [`ProvGraph`]'s append-only vertex/edge log.
///
/// The store never deletes or reorders: vertices and edges live in columnar
/// `Vec`s that only grow at the tail, so the columns *are* the delta log and
/// a cursor — one watermark per column — identifies everything written since
/// a snapshot. [`ProvGraph::cursor`] reads the current position,
/// [`ProvGraph::delta_since`] views the suffix beyond one, and
/// [`crate::ProvIndex::refresh_in_place`] consumes that suffix to extend a
/// frozen snapshot without a rebuild.
///
/// A cursor is only meaningful against the graph it was taken from (or a
/// clone of it, possibly grown further — the copy-on-write path of a
/// database facade preserves every frozen prefix byte-for-byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaCursor {
    /// Vertices present when the cursor was taken.
    pub vertices: u32,
    /// Edges present when the cursor was taken.
    pub edges: u32,
}

/// The suffix of a [`ProvGraph`]'s append-only log beyond a [`DeltaCursor`]:
/// every vertex and edge recorded since the cursor was taken.
#[derive(Debug, Clone, Copy)]
pub struct GraphDelta<'g> {
    graph: &'g ProvGraph,
    from: DeltaCursor,
}

impl<'g> GraphDelta<'g> {
    /// Number of vertices added since the cursor.
    pub fn new_vertex_count(&self) -> usize {
        self.graph.vertex_count() - self.from.vertices as usize
    }

    /// Number of edges added since the cursor.
    pub fn new_edge_count(&self) -> usize {
        self.graph.edge_count() - self.from.edges as usize
    }

    /// True when nothing was appended since the cursor. Property writes do
    /// not move the cursor: they are invisible to structural snapshots.
    pub fn is_empty(&self) -> bool {
        self.new_vertex_count() == 0 && self.new_edge_count() == 0
    }

    /// Ids of the vertices added since the cursor, in creation order.
    pub fn new_vertices(&self) -> impl Iterator<Item = VertexId> + 'g {
        // lint-ok(narrowing-cast): check_capacity keeps every dense id below u32::MAX.
        (self.from.vertices..self.graph.vertex_count() as u32).map(VertexId::new)
    }

    /// Ids of the edges added since the cursor, in creation order.
    pub fn new_edges(&self) -> impl Iterator<Item = EdgeId> + 'g {
        // lint-ok(narrowing-cast): check_capacity keeps every dense id below u32::MAX.
        (self.from.edges..self.graph.edge_count() as u32).map(EdgeId::new)
    }

    /// Delta size relative to the frozen prefix: the larger of the vertex and
    /// edge growth ratios. A refresh-vs-rebuild policy compares this against
    /// its threshold.
    pub fn fraction(&self) -> f64 {
        let vf = self.new_vertex_count() as f64 / (self.from.vertices.max(1) as f64);
        let ef = self.new_edge_count() as f64 / (self.from.edges.max(1) as f64);
        vf.max(ef)
    }
}

/// One logical store mutation, as written to the write-ahead log.
///
/// The [`DeltaCursor`] log only tracks structural growth (vertex/edge
/// counts); durability needs every state transition, including property
/// writes and index declarations. When journaling is enabled
/// ([`ProvGraph::set_journaling`]) each successful mutator appends exactly
/// one op here, and replaying a journal through [`ProvGraph::apply_wal_op`]
/// on an empty graph reproduces the original graph *exactly* — same dense
/// ids, same births (the clock only advances in `add_vertex`), same interner
/// id assignment (interning happens in op order), same index contents.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// [`ProvGraph::add_vertex`].
    AddVertex {
        /// Vertex type.
        kind: VertexKind,
        /// Optional name (versioned-name addressing).
        name: Option<Arc<str>>,
    },
    /// [`ProvGraph::add_edge`].
    AddEdge {
        /// Relationship type.
        kind: EdgeKind,
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
    /// [`ProvGraph::set_vprop`].
    SetVProp {
        /// Target vertex.
        v: VertexId,
        /// Property key name.
        key: Arc<str>,
        /// New value.
        value: PropValue,
    },
    /// [`ProvGraph::unset_vprop`] (journaled only when a value was removed).
    UnsetVProp {
        /// Target vertex.
        v: VertexId,
        /// Property key name.
        key: Arc<str>,
    },
    /// [`ProvGraph::set_eprop`].
    SetEProp {
        /// Target edge.
        e: EdgeId,
        /// Property key name.
        key: Arc<str>,
        /// New value.
        value: PropValue,
    },
    /// [`ProvGraph::create_vprop_index`] (journaled only on fresh declaration).
    CreateVPropIndex {
        /// Indexed vertex kind.
        kind: VertexKind,
        /// Indexed property key name.
        key: Arc<str>,
    },
    /// [`ProvGraph::key`] interned a fresh key outside any property write.
    /// Journaled so replay assigns identical [`prov_model::PropKeyId`]s.
    InternKey {
        /// The interned key name.
        key: Arc<str>,
    },
}

/// Decoder for snapshot property columns whose materialization was deferred
/// at recovery time (the lazy-decode path of the segmented snapshot format).
///
/// `load` is called at most once, on the first property touch, and must
/// return every vertex/edge property triple of the snapshot keyed by the
/// [`prov_model::PropKeyId`]s the structural decode already re-interned.
pub trait PropLoader: std::fmt::Debug + Send + Sync {
    /// Decode the deferred columns. Errors (a corrupt deferred segment, a
    /// vanished backing file) surface as a panic at the first property touch
    /// — the price of deferring the integrity check past `open()`.
    fn load(&self) -> Result<LoadedColumns, String>;
}

/// The deferred property columns, decoded (see [`PropLoader`]).
#[derive(Debug, Default)]
pub struct LoadedColumns {
    /// Vertex property triples in snapshot (column) order.
    pub vprops: Vec<(VertexId, prov_model::PropKeyId, PropValue)>,
    /// Edge property triples in snapshot (column) order.
    pub eprops: Vec<(EdgeId, prov_model::PropKeyId, PropValue)>,
}

/// The materialized form of deferred columns: one `PropMap` per vertex/edge
/// plus the secondary indexes backfilled from the final property state.
/// While a graph stays lazy, this overlay — not the records — is the single
/// source of property truth (record `PropMap`s are all empty).
#[derive(Debug, Clone)]
struct Overlay {
    vprops: Vec<PropMap>,
    eprops: Vec<PropMap>,
    indexes: crate::index::IndexRegistry,
}

/// Deferred-decode state: the loader for the cold columns, index
/// declarations known so far (snapshot-declared, then any replayed from the
/// WAL tail), property ops queued from replay, and the once-materialized
/// overlay. Shared by `Arc` so clones of a lazy graph materialize once.
#[derive(Debug)]
struct LazyProps {
    loader: Box<dyn PropLoader>,
    declared: Vec<(VertexKind, Arc<str>)>,
    replay: Vec<WalOp>,
    overlay: OnceLock<Overlay>,
}

/// The mutable property graph store.
#[derive(Debug, Default, Clone)]
pub struct ProvGraph {
    vertices: Vec<VertexRecord>,
    edges: Vec<EdgeRecord>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
    keys: KeyInterner,
    by_kind: [Vec<VertexId>; 3],
    /// All vertices sharing a name, in creation order. Lookup semantics are
    /// "latest version wins" ([`ProvGraph::vertex_by_name`]); earlier ids stay
    /// addressable through [`ProvGraph::versions_of`].
    by_name: FxHashMap<Arc<str>, Vec<VertexId>>,
    indexes: crate::index::IndexRegistry,
    clock: u64,
    /// Pending [`WalOp`]s since the last [`ProvGraph::take_journal`]; only
    /// populated while `journaling` is on (a durable facade drains this into
    /// its write-ahead log after every mutation batch).
    journal: Vec<WalOp>,
    journaling: bool,
    /// Deferred snapshot property columns (lazy decode). `None` on every
    /// eagerly-built graph; property mutators dissolve it back into the
    /// records before touching anything.
    lazy: Option<Arc<LazyProps>>,
}

/// Semantic store equality: every observable column (vertices, edges,
/// adjacency, interner, kind/name indexes, declared property indexes, the
/// birth clock) — but *not* the transient journal state, so a recovered
/// graph (journaling on, journal drained) compares equal to the in-memory
/// twin it must reproduce. A lazily-decoded graph compares by *effective*
/// properties and indexes (this materializes its overlay), so lazy == eager
/// whenever the observable state agrees.
impl PartialEq for ProvGraph {
    fn eq(&self, other: &Self) -> bool {
        let common = self.out_adj == other.out_adj
            && self.in_adj == other.in_adj
            && self.keys == other.keys
            && self.by_kind == other.by_kind
            && self.by_name == other.by_name
            && self.clock == other.clock;
        if !common {
            return false;
        }
        if self.lazy.is_none() && other.lazy.is_none() {
            return self.vertices == other.vertices
                && self.edges == other.edges
                && self.indexes == other.indexes;
        }
        // At least one side is lazy: compare structural fields, then the
        // effective property/index state (forcing materialization).
        self.vertices.len() == other.vertices.len()
            && self.edges.len() == other.edges.len()
            && self
                .vertices
                .iter()
                .zip(&other.vertices)
                .all(|(a, b)| a.kind == b.kind && a.name == b.name && a.birth == b.birth)
            && self
                .edges
                .iter()
                .zip(&other.edges)
                .all(|(a, b)| a.kind == b.kind && a.src == b.src && a.dst == b.dst)
            && self.vertex_ids().all(|v| self.vertex_props(v) == other.vertex_props(v))
            && self.edge_ids().all(|e| self.edge_props(e) == other.edge_props(e))
            && self.effective_indexes() == other.effective_indexes()
    }
}

impl ProvGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current position in the append-only vertex/edge log (see
    /// [`DeltaCursor`]). Snapshots record the cursor they were frozen at;
    /// equality of cursors is the freshness test.
    pub fn cursor(&self) -> DeltaCursor {
        // lint-ok(narrowing-cast): check_capacity bounds both logs at u32::MAX entries.
        DeltaCursor { vertices: self.vertices.len() as u32, edges: self.edges.len() as u32 }
    }

    /// View of everything appended since `cursor`.
    ///
    /// # Panics
    ///
    /// Panics when `cursor` lies beyond the current log (it was taken from a
    /// different — or a further-grown — graph).
    pub fn delta_since(&self, cursor: DeltaCursor) -> GraphDelta<'_> {
        assert!(
            cursor.vertices as usize <= self.vertices.len()
                && cursor.edges as usize <= self.edges.len(),
            "delta cursor {cursor:?} lies beyond this graph's log \
             ({} vertices, {} edges)",
            self.vertices.len(),
            self.edges.len()
        );
        GraphDelta { graph: self, from: cursor }
    }

    // ------------------------------------------------------------------
    // Vertices
    // ------------------------------------------------------------------

    /// Reject an allocation that would overflow the dense `u32` id space
    /// (the seed silently wrapped `len as u32` past `u32::MAX`).
    fn check_capacity(len: usize, what: &'static str) -> StoreResult<()> {
        if len >= u32::MAX as usize {
            return Err(StoreError::CapacityExceeded { what });
        }
        Ok(())
    }

    /// Check that `extra` more vertices still fit the dense id space.
    /// Multi-vertex ingest paths (e.g. `ProvDb::record_activity`) call this
    /// in their validation phase so a capacity failure surfaces as a typed
    /// error *before* the first mutation instead of mid-record.
    pub fn check_vertex_headroom(&self, extra: usize) -> StoreResult<()> {
        if self.vertices.len().saturating_add(extra) > u32::MAX as usize {
            return Err(StoreError::CapacityExceeded { what: "vertex" });
        }
        Ok(())
    }

    /// Check that `extra` more edges still fit the dense id space (see
    /// [`ProvGraph::check_vertex_headroom`]).
    pub fn check_edge_headroom(&self, extra: usize) -> StoreResult<()> {
        if self.edges.len().saturating_add(extra) > u32::MAX as usize {
            return Err(StoreError::CapacityExceeded { what: "edge" });
        }
        Ok(())
    }

    /// Add a vertex of `kind` with an optional name. Returns its dense id,
    /// or [`StoreError::CapacityExceeded`] once `u32::MAX` ids are in use.
    ///
    /// A duplicate name does not clobber earlier vertices: the new id becomes
    /// the "latest version" answered by [`ProvGraph::vertex_by_name`] while
    /// every prior holder remains reachable via [`ProvGraph::versions_of`].
    pub fn add_vertex(&mut self, kind: VertexKind, name: Option<&str>) -> StoreResult<VertexId> {
        Self::check_capacity(self.vertices.len(), "vertex")?;
        // lint-ok(narrowing-cast): check_capacity above just proved len < u32::MAX.
        let id = VertexId::new(self.vertices.len() as u32);
        let name_arc: Option<Arc<str>> = name.map(Arc::from);
        if let Some(n) = &name_arc {
            self.by_name.entry(n.clone()).or_default().push(id);
        }
        if self.journaling {
            self.journal.push(WalOp::AddVertex { kind, name: name_arc.clone() });
        }
        self.vertices.push(VertexRecord {
            kind,
            name: name_arc,
            birth: self.clock,
            props: PropMap::new(),
        });
        self.clock += 1;
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        self.by_kind[kind.as_index()].push(id);
        self.paranoid_check();
        Ok(id)
    }

    /// Convenience: add an Entity. Panics only on id-space exhaustion.
    pub fn add_entity(&mut self, name: &str) -> VertexId {
        self.add_vertex(VertexKind::Entity, Some(name)).expect("vertex id space exhausted")
    }

    /// Convenience: add an Activity. Panics only on id-space exhaustion.
    pub fn add_activity(&mut self, name: &str) -> VertexId {
        self.add_vertex(VertexKind::Activity, Some(name)).expect("vertex id space exhausted")
    }

    /// Convenience: add an Agent. Panics only on id-space exhaustion.
    pub fn add_agent(&mut self, name: &str) -> VertexId {
        self.add_vertex(VertexKind::Agent, Some(name)).expect("vertex id space exhausted")
    }

    /// Constant-time vertex access by id.
    pub fn vertex(&self, id: VertexId) -> &VertexRecord {
        &self.vertices[id.index()]
    }

    /// Checked vertex access.
    pub fn try_vertex(&self, id: VertexId) -> StoreResult<&VertexRecord> {
        self.vertices.get(id.index()).ok_or(StoreError::UnknownVertex(id))
    }

    /// `λv(v)`.
    #[inline]
    pub fn vertex_kind(&self, id: VertexId) -> VertexKind {
        self.vertices[id.index()].kind
    }

    /// Vertex name, if set.
    pub fn vertex_name(&self, id: VertexId) -> Option<&str> {
        self.vertices[id.index()].name.as_deref()
    }

    /// Display label for a vertex: its name, or `kind#id`.
    pub fn display_name(&self, id: VertexId) -> String {
        match self.vertex_name(id) {
            Some(n) => n.to_string(),
            None => format!("{:?}#{}", self.vertex_kind(id), id.raw()),
        }
    }

    /// Find a vertex by exact name; when several vertices share the name the
    /// most recently added one wins (versioned-name addressing).
    pub fn vertex_by_name(&self, name: &str) -> Option<VertexId> {
        self.by_name.get(name).and_then(|ids| ids.last().copied())
    }

    /// Every vertex ever registered under `name`, in creation order (the
    /// last element is what [`ProvGraph::vertex_by_name`] answers). Empty for
    /// unknown names.
    pub fn versions_of(&self, name: &str) -> &[VertexId] {
        self.by_name.get(name).map_or(&[], |ids| ids.as_slice())
    }

    /// All vertices of a kind, in creation order.
    pub fn vertices_of_kind(&self, kind: VertexKind) -> &[VertexId] {
        &self.by_kind[kind.as_index()]
    }

    /// Total vertex count.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Count of vertices of one kind.
    pub fn kind_count(&self, kind: VertexKind) -> usize {
        self.by_kind[kind.as_index()].len()
    }

    /// Iterate all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> {
        // lint-ok(narrowing-cast): check_capacity keeps every dense id below u32::MAX.
        (0..self.vertices.len() as u32).map(VertexId::new)
    }

    // ------------------------------------------------------------------
    // Edges
    // ------------------------------------------------------------------

    /// Add an edge after validating the PROV domain/range rule.
    pub fn add_edge(
        &mut self,
        kind: EdgeKind,
        src: VertexId,
        dst: VertexId,
    ) -> StoreResult<EdgeId> {
        Self::check_capacity(self.edges.len(), "edge")?;
        let src_kind = self.try_vertex(src)?.kind;
        let dst_kind = self.try_vertex(dst)?.kind;
        check_edge_types(kind, src_kind, dst_kind)?;
        // lint-ok(narrowing-cast): check_capacity above just proved len < u32::MAX.
        let id = EdgeId::new(self.edges.len() as u32);
        if self.journaling {
            self.journal.push(WalOp::AddEdge { kind, src, dst });
        }
        self.edges.push(EdgeRecord { kind, src, dst, props: PropMap::new() });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        self.paranoid_check();
        Ok(id)
    }

    /// Constant-time edge access by id.
    pub fn edge(&self, id: EdgeId) -> &EdgeRecord {
        &self.edges[id.index()]
    }

    /// Checked edge access.
    pub fn try_edge(&self, id: EdgeId) -> StoreResult<&EdgeRecord> {
        self.edges.get(id.index()).ok_or(StoreError::UnknownEdge(id))
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Count of edges of one kind.
    pub fn edge_kind_count(&self, kind: EdgeKind) -> usize {
        self.edges.iter().filter(|e| e.kind == kind).count()
    }

    /// Iterate all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        // lint-ok(narrowing-cast): check_capacity keeps every dense id below u32::MAX.
        (0..self.edges.len() as u32).map(EdgeId::new)
    }

    /// Outgoing edges of `v` as `(edge id, record)` pairs.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (EdgeId, &EdgeRecord)> {
        self.out_adj[v.index()].iter().map(|&e| (e, &self.edges[e.index()]))
    }

    /// Incoming edges of `v` as `(edge id, record)` pairs.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (EdgeId, &EdgeRecord)> {
        self.in_adj[v.index()].iter().map(|&e| (e, &self.edges[e.index()]))
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Out-neighbors reached via edges of `kind`.
    pub fn out_neighbors(
        &self,
        v: VertexId,
        kind: EdgeKind,
    ) -> impl Iterator<Item = VertexId> + '_ {
        self.out_edges(v).filter(move |(_, e)| e.kind == kind).map(|(_, e)| e.dst)
    }

    /// In-neighbors that reach `v` via edges of `kind`.
    pub fn in_neighbors(&self, v: VertexId, kind: EdgeKind) -> impl Iterator<Item = VertexId> + '_ {
        self.in_edges(v).filter(move |(_, e)| e.kind == kind).map(|(_, e)| e.src)
    }

    // ------------------------------------------------------------------
    // Properties
    // ------------------------------------------------------------------

    /// Intern a property key name.
    pub fn key(&mut self, name: &str) -> prov_model::PropKeyId {
        if self.journaling && self.keys.get(name).is_none() {
            self.journal.push(WalOp::InternKey { key: Arc::from(name) });
        }
        self.keys.intern(name)
    }

    /// Look up an interned key without creating it.
    pub fn key_id(&self, name: &str) -> Option<prov_model::PropKeyId> {
        self.keys.get(name)
    }

    /// Resolve a key id back to its name.
    pub fn key_name(&self, id: prov_model::PropKeyId) -> Option<&str> {
        self.keys.resolve(id)
    }

    /// Set a vertex property (`σ(v, p) := o`), maintaining any declared index.
    pub fn set_vprop(&mut self, v: VertexId, key: &str, value: impl Into<PropValue>) {
        self.dissolve_lazy();
        let k = self.keys.intern(key);
        let value = value.into();
        if self.journaling {
            self.journal.push(WalOp::SetVProp { v, key: Arc::from(key), value: value.clone() });
        }
        let kind = self.vertices[v.index()].kind;
        let old = self.vertices[v.index()].props.set(k, value.clone());
        if let Some(index) = self.indexes.get_mut(kind, k) {
            if let Some(old) = old {
                index.remove(&old, v);
            }
            index.insert(value, v);
        }
    }

    /// Get a vertex property by key name (`σ(v, p)`).
    pub fn vprop(&self, v: VertexId, key: &str) -> Option<&PropValue> {
        let k = self.keys.get(key)?;
        self.vertex_props(v).get(k)
    }

    /// Remove a vertex property (`σ(v, p) := ⊥`), returning the previous
    /// value and keeping any declared `(kind, key)` index in sync — the
    /// removal twin of [`ProvGraph::set_vprop`], so an indexed lookup never
    /// answers a value the vertex no longer carries.
    pub fn unset_vprop(&mut self, v: VertexId, key: &str) -> Option<PropValue> {
        self.dissolve_lazy();
        let k = self.keys.get(key)?;
        let kind = self.vertices[v.index()].kind;
        let old = self.vertices[v.index()].props.unset(k)?;
        if self.journaling {
            self.journal.push(WalOp::UnsetVProp { v, key: Arc::from(key) });
        }
        if let Some(index) = self.indexes.get_mut(kind, k) {
            index.remove(&old, v);
        }
        Some(old)
    }

    /// Set an edge property (`ω(e, p) := o`).
    pub fn set_eprop(&mut self, e: EdgeId, key: &str, value: impl Into<PropValue>) {
        self.dissolve_lazy();
        let k = self.keys.intern(key);
        let value = value.into();
        if self.journaling {
            self.journal.push(WalOp::SetEProp { e, key: Arc::from(key), value: value.clone() });
        }
        self.edges[e.index()].props.set(k, value);
    }

    /// Get an edge property by key name (`ω(e, p)`).
    pub fn eprop(&self, e: EdgeId, key: &str) -> Option<&PropValue> {
        let k = self.keys.get(key)?;
        self.edge_props(e).get(k)
    }

    /// Effective property map of a vertex: the lazy overlay's entry when
    /// deferred columns are attached (materializing them on first touch),
    /// the record's own map otherwise. Vertices added after materialization
    /// fall through to their (empty) record map — any property *write*
    /// dissolves the overlay first, so the record map is authoritative there.
    pub fn vertex_props(&self, v: VertexId) -> &PropMap {
        if let Some(ov) = self.lazy_overlay() {
            if let Some(m) = ov.vprops.get(v.index()) {
                return m;
            }
        }
        &self.vertices[v.index()].props
    }

    /// Effective property map of an edge (see [`ProvGraph::vertex_props`]).
    pub fn edge_props(&self, e: EdgeId) -> &PropMap {
        if let Some(ov) = self.lazy_overlay() {
            if let Some(m) = ov.eprops.get(e.index()) {
                return m;
            }
        }
        &self.edges[e.index()].props
    }

    /// Access the key interner (read-only).
    pub fn interner(&self) -> &KeyInterner {
        &self.keys
    }

    /// Vertices of `kind` whose property `key` equals `value`, in ascending
    /// id (= creation) order.
    ///
    /// Routing contract: whenever an index is declared for `(kind, key)` the
    /// lookup is a hash probe — including indexes declared *after* the
    /// property writes, because [`ProvGraph::create_vprop_index`] backfills
    /// from the existing vertices at declaration time. Only a genuinely
    /// unindexed `(kind, key)` pair falls back to the linear scan of the
    /// kind's vertices, and both paths answer identically (the differential
    /// test in `tests/find_by_prop_differential.rs` pins this).
    pub fn find_by_prop(&self, kind: VertexKind, key: &str, value: &PropValue) -> Vec<VertexId> {
        let Some(k) = self.keys.get(key) else { return Vec::new() };
        if let Some(index) = self.effective_indexes().get(kind, k) {
            return index.get(value).to_vec();
        }
        self.vertices_of_kind(kind)
            .iter()
            .copied()
            .filter(|&v| self.vertex_props(v).get(k) == Some(value))
            .collect()
    }

    /// Declare (and backfill) a secondary index on `(kind, key)` — the
    /// Neo4j-style schema index. Subsequent `set_vprop` calls keep it fresh.
    pub fn create_vprop_index(&mut self, kind: VertexKind, key: &str) {
        self.dissolve_lazy();
        let k = self.keys.intern(key);
        if self.indexes.has(kind, k) {
            // No state change (the key was necessarily interned before the
            // index was declared), so nothing to journal either.
            return;
        }
        if self.journaling {
            self.journal.push(WalOp::CreateVPropIndex { kind, key: Arc::from(key) });
        }
        // Collect existing values first (borrow discipline), then fill.
        let existing: Vec<(VertexId, PropValue)> = self.by_kind[kind.as_index()]
            .iter()
            .filter_map(|&v| self.vertices[v.index()].props.get(k).cloned().map(|p| (v, p)))
            .collect();
        let index = self.indexes.declare(kind, k);
        for (v, value) in existing {
            index.insert(value, v);
        }
    }

    /// Is `(kind, key)` covered by a secondary index? On a lazy graph this
    /// consults the pending declaration list *without* materializing.
    pub fn has_vprop_index(&self, kind: VertexKind, key: &str) -> bool {
        let Some(k) = self.keys.get(key) else { return false };
        if let Some(lazy) = &self.lazy {
            if let Some(ov) = lazy.overlay.get() {
                return ov.indexes.has(kind, k);
            }
            return lazy
                .declared
                .iter()
                .any(|(dk, dkey)| *dk == kind && self.keys.get(dkey) == Some(k));
        }
        self.indexes.has(kind, k)
    }

    /// Every declared secondary index as sorted `(kind, key)` pairs — what a
    /// columnar snapshot persists. On a lazy graph this consults the pending
    /// declaration list *without* materializing.
    pub fn declared_vprop_indexes(&self) -> Vec<(VertexKind, prov_model::PropKeyId)> {
        if let Some(lazy) = &self.lazy {
            if let Some(ov) = lazy.overlay.get() {
                return ov.indexes.declared();
            }
            let mut pairs: Vec<(VertexKind, prov_model::PropKeyId)> = lazy
                .declared
                .iter()
                .filter_map(|(kind, key)| self.keys.get(key).map(|k| (*kind, k)))
                .collect();
            pairs.sort();
            pairs.dedup();
            return pairs;
        }
        self.indexes.declared()
    }

    // ------------------------------------------------------------------
    // Deferred snapshot columns (lazy decode)
    // ------------------------------------------------------------------

    /// Attach deferred snapshot property columns to a structurally-decoded
    /// graph. `declared` lists the snapshot's secondary-index declarations
    /// (their keys are already in the interner — the interner column is
    /// structural). Called by the storage layer's lazy `recover()` path;
    /// the graph must carry no properties or indexes yet.
    pub fn attach_lazy_props(
        &mut self,
        loader: Box<dyn PropLoader>,
        declared: Vec<(VertexKind, Arc<str>)>,
    ) {
        debug_assert!(self.lazy.is_none(), "deferred columns already attached");
        debug_assert!(self.indexes.is_empty(), "lazy attach onto a graph with live indexes");
        self.lazy = Some(Arc::new(LazyProps {
            loader,
            declared,
            replay: Vec::new(),
            overlay: OnceLock::new(),
        }));
    }

    /// True while deferred snapshot columns are attached (whether or not the
    /// overlay has materialized) — i.e. properties live outside the records.
    pub fn has_deferred_props(&self) -> bool {
        self.lazy.is_some()
    }

    /// True while the deferred columns have not been loaded yet — the state
    /// a cold start pays nothing for.
    pub fn deferred_props_untouched(&self) -> bool {
        self.lazy.as_ref().is_some_and(|l| l.overlay.get().is_none())
    }

    /// The effective secondary-index registry: the overlay's when deferred
    /// columns are attached (materializing on first call), the store's own
    /// otherwise.
    fn effective_indexes(&self) -> &crate::index::IndexRegistry {
        match self.lazy_overlay() {
            Some(ov) => &ov.indexes,
            None => &self.indexes,
        }
    }

    /// The materialized overlay, if deferred columns are attached — loading
    /// and replaying them on the first call (`OnceLock`, so clones sharing
    /// the `Arc` materialize once).
    fn lazy_overlay(&self) -> Option<&Overlay> {
        let lazy = self.lazy.as_ref()?;
        Some(lazy.overlay.get_or_init(|| self.build_overlay(lazy)))
    }

    /// Load the deferred columns and replay the queued WAL-tail property ops
    /// over them, then backfill every declared index from the final property
    /// state. The result is exactly the property/index state an eager decode
    /// plus eager replay would have produced: replay order is preserved, and
    /// index backfill from final values matches incremental maintenance
    /// because [`crate::index::PropIndex`] keeps ids sorted.
    fn build_overlay(&self, lazy: &LazyProps) -> Overlay {
        let cols = lazy.loader.load().unwrap_or_else(|e| {
            panic!("deferred snapshot columns failed to load on first touch: {e}")
        });
        let mut vprops = vec![PropMap::new(); self.vertices.len()];
        let mut eprops = vec![PropMap::new(); self.edges.len()];
        for (v, k, value) in cols.vprops {
            match vprops.get_mut(v.index()) {
                Some(m) => {
                    m.set(k, value);
                }
                None => panic!("deferred vertex-property column names unknown vertex {v}"),
            }
        }
        for (e, k, value) in cols.eprops {
            match eprops.get_mut(e.index()) {
                Some(m) => {
                    m.set(k, value);
                }
                None => panic!("deferred edge-property column names unknown edge {e}"),
            }
        }
        for op in &lazy.replay {
            match op {
                WalOp::SetVProp { v, key, value } => {
                    // Queueing interned the key, so lookup cannot miss.
                    if let Some(k) = self.keys.get(key) {
                        vprops[v.index()].set(k, value.clone());
                    }
                }
                WalOp::UnsetVProp { v, key } => {
                    // A never-interned key was a no-op on the eager path too.
                    if let Some(k) = self.keys.get(key) {
                        vprops[v.index()].unset(k);
                    }
                }
                WalOp::SetEProp { e, key, value } => {
                    if let Some(k) = self.keys.get(key) {
                        eprops[e.index()].set(k, value.clone());
                    }
                }
                _ => unreachable!("only property ops are queued for lazy replay"),
            }
        }
        let mut indexes = crate::index::IndexRegistry::default();
        for (kind, key) in &lazy.declared {
            let Some(k) = self.keys.get(key) else { continue };
            if indexes.has(*kind, k) {
                continue;
            }
            let members = &self.by_kind[kind.as_index()];
            let index = indexes.declare(*kind, k);
            for &v in members {
                if let Some(value) = vprops.get(v.index()).and_then(|m| m.get(k)) {
                    index.insert(value.clone(), v);
                }
            }
        }
        Overlay { vprops, eprops, indexes }
    }

    /// Fold a materialized overlay back into the records and detach the lazy
    /// state — called by every property/index mutator before it touches
    /// anything, so the eager representation is authoritative from the first
    /// write onward. No-op on eager graphs.
    fn dissolve_lazy(&mut self) {
        if self.lazy.is_none() {
            return;
        }
        let _ = self.lazy_overlay(); // force materialization
        let lazy = self.lazy.take().expect("lazy state checked above");
        let overlay = match Arc::try_unwrap(lazy) {
            Ok(owned) => owned.overlay.into_inner().expect("overlay just materialized"),
            Err(shared) => shared.overlay.get().expect("overlay just materialized").clone(),
        };
        for (rec, props) in self.vertices.iter_mut().zip(overlay.vprops) {
            rec.props = props;
        }
        for (rec, props) in self.edges.iter_mut().zip(overlay.eprops) {
            rec.props = props;
        }
        self.indexes = overlay.indexes;
    }

    // ------------------------------------------------------------------
    // Write-ahead journaling
    // ------------------------------------------------------------------

    /// Turn [`WalOp`] journaling on or off. Off by default: a purely
    /// in-memory store pays nothing. A durable facade turns it on and drains
    /// the journal into its write-ahead log after every mutation batch.
    pub fn set_journaling(&mut self, on: bool) {
        self.journaling = on;
    }

    /// Is journaling enabled?
    pub fn journaling(&self) -> bool {
        self.journaling
    }

    /// Number of pending (not yet drained) journal ops.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Drain the pending journal: every op recorded since the previous call,
    /// in mutation order.
    pub fn take_journal(&mut self) -> Vec<WalOp> {
        std::mem::take(&mut self.journal)
    }

    /// Replay one journaled op through the ordinary mutators.
    ///
    /// Ids referenced by the op are bounds-checked first so a CRC-valid but
    /// semantically impossible record surfaces as a typed error instead of an
    /// index panic (the storage layer maps it to
    /// [`StoreError::CorruptLog`][crate::StoreError]). Replay is exact: ops
    /// applied in journal order onto an equal prefix reproduce the original
    /// graph including births, interner ids, and index contents. The replay
    /// target usually has journaling *off*; when it is on, replayed ops are
    /// re-journaled like any other mutation.
    pub fn apply_wal_op(&mut self, op: &WalOp) -> StoreResult<()> {
        if self.queue_lazy_op(op)? {
            return Ok(());
        }
        match op {
            WalOp::AddVertex { kind, name } => {
                self.add_vertex(*kind, name.as_deref())?;
            }
            WalOp::AddEdge { kind, src, dst } => {
                self.add_edge(*kind, *src, *dst)?;
            }
            WalOp::SetVProp { v, key, value } => {
                self.try_vertex(*v)?;
                self.set_vprop(*v, key, value.clone());
            }
            WalOp::UnsetVProp { v, key } => {
                self.try_vertex(*v)?;
                self.unset_vprop(*v, key);
            }
            WalOp::SetEProp { e, key, value } => {
                self.try_edge(*e)?;
                self.set_eprop(*e, key, value.clone());
            }
            WalOp::CreateVPropIndex { kind, key } => {
                self.create_vprop_index(*kind, key);
            }
            WalOp::InternKey { key } => {
                self.key(key);
            }
        }
        Ok(())
    }

    /// While deferred columns are attached and unmaterialized, property ops
    /// replayed from the WAL tail are *queued* (for application at
    /// materialization time) instead of applied — structural ops fall
    /// through to the eager path, which never touches properties. Returns
    /// `Ok(true)` when the op was queued. Bounds checks and key interning
    /// happen at queue time so typed replay errors and interner id
    /// assignment match the eager path exactly.
    fn queue_lazy_op(&mut self, op: &WalOp) -> StoreResult<bool> {
        let queueable =
            !self.journaling && self.lazy.as_ref().is_some_and(|l| l.overlay.get().is_none());
        if !queueable {
            return Ok(false);
        }
        match op {
            WalOp::SetVProp { v, key, .. } => {
                self.try_vertex(*v)?;
                self.keys.intern(key);
            }
            WalOp::UnsetVProp { v, .. } => {
                // The eager path does not intern on unset.
                self.try_vertex(*v)?;
            }
            WalOp::SetEProp { e, key, .. } => {
                self.try_edge(*e)?;
                self.keys.intern(key);
            }
            WalOp::CreateVPropIndex { key, .. } => {
                self.keys.intern(key);
            }
            _ => return Ok(false),
        }
        let lazy = self.lazy.as_mut().expect("queueable implies lazy state");
        let Some(l) = Arc::get_mut(lazy) else {
            // The lazy state is shared with a clone: fall back to the eager
            // path, which dissolves the overlay before mutating.
            return Ok(false);
        };
        match op {
            WalOp::CreateVPropIndex { kind, key } => l.declared.push((*kind, key.clone())),
            _ => l.replay.push(op.clone()),
        }
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Check every structural invariant of the store, naming the first
    /// violated one in the error.
    ///
    /// The catalog (see DESIGN.md §8):
    ///
    /// * adjacency columns are as long as the vertex column, every row entry
    ///   names an existing edge anchored at that vertex, rows stay in edge-id
    ///   (insertion) order, and each direction covers every edge exactly once;
    /// * births are strictly increasing and the clock sits beyond the last;
    /// * every edge satisfies the PROV domain/range rule it was admitted
    ///   under;
    /// * the kind index partitions the vertices (right kind, creation order,
    ///   all `n` covered);
    /// * the name index is exactly the named vertices: versions in creation
    ///   order, each entry carrying the name it is filed under.
    ///
    /// `O(|V| + |E|)`. Under the `paranoid` feature it runs automatically
    /// after every mutation. This checks *representation* invariants;
    /// acyclicity (a property of the data, not the encoding) stays a
    /// separate, on-demand check ([`ProvGraph::validate_acyclic`]).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.vertices.len();
        if self.out_adj.len() != n || self.in_adj.len() != n {
            return Err(format!(
                "adjacency columns disagree with {n} vertices: {} out rows, {} in rows",
                self.out_adj.len(),
                self.in_adj.len()
            ));
        }
        if let Some(i) = (1..n).find(|&i| self.vertices[i - 1].birth >= self.vertices[i].birth) {
            return Err(format!(
                "births not strictly increasing at vertex {i} ({} then {})",
                self.vertices[i - 1].birth,
                self.vertices[i].birth
            ));
        }
        if let Some(last) = self.vertices.last() {
            if last.birth >= self.clock {
                return Err(format!(
                    "clock {} not beyond the last birth {}",
                    self.clock, last.birth
                ));
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.src.index() >= n || e.dst.index() >= n {
                return Err(format!(
                    "edge {i} endpoints {} -> {} out of bounds (n = {n})",
                    e.src, e.dst
                ));
            }
            let (sk, dk) = (self.vertices[e.src.index()].kind, self.vertices[e.dst.index()].kind);
            if check_edge_types(e.kind, sk, dk).is_err() {
                return Err(format!(
                    "edge {i} ({sk:?} -> {dk:?}) violates the {:?} domain/range rule",
                    e.kind
                ));
            }
        }
        // Each adjacency direction: anchored entries in ascending edge-id
        // order, totalling |E| — together a bijection onto the edge column.
        for (dir, rows) in [("out_adj", &self.out_adj), ("in_adj", &self.in_adj)] {
            let mut total = 0usize;
            for (v, row) in rows.iter().enumerate() {
                total += row.len();
                for &eid in row {
                    let anchor = match self.edges.get(eid.index()) {
                        Some(e) if dir == "out_adj" => e.src,
                        Some(e) => e.dst,
                        None => {
                            return Err(format!("{dir} row of vertex {v} names unknown edge {eid}"))
                        }
                    };
                    if anchor.index() != v {
                        return Err(format!(
                            "{dir} row of vertex {v} holds edge {eid} anchored at {anchor}"
                        ));
                    }
                }
                if row.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(format!("{dir} row of vertex {v} not in edge-id order"));
                }
            }
            if total != self.edges.len() {
                return Err(format!(
                    "{dir} rows hold {total} entries for {} edges",
                    self.edges.len()
                ));
            }
        }
        // Kind index: a partition of the vertices in creation order.
        let mut covered = 0usize;
        for kind in VertexKind::ALL {
            let members = &self.by_kind[kind.as_index()];
            covered += members.len();
            if members.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("by_kind[{kind:?}] not in creation order"));
            }
            for &v in members {
                if v.index() >= n {
                    return Err(format!("by_kind[{kind:?}] member {v} out of bounds"));
                }
                if self.vertices[v.index()].kind != kind {
                    return Err(format!(
                        "by_kind[{kind:?}] member {v} has kind {:?}",
                        self.vertices[v.index()].kind
                    ));
                }
            }
        }
        if covered != n {
            return Err(format!("by_kind covers {covered} of {n} vertices"));
        }
        // Name index: exactly the named vertices, versions in creation order.
        let mut filed = 0usize;
        for (name, ids) in &self.by_name {
            if ids.is_empty() {
                return Err(format!("by_name[{name:?}] is empty"));
            }
            if ids.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("versions of {name:?} not in creation order"));
            }
            filed += ids.len();
            for &v in ids {
                if v.index() >= n {
                    return Err(format!("by_name[{name:?}] member {v} out of bounds"));
                }
                if self.vertices[v.index()].name.as_deref() != Some(&**name) {
                    return Err(format!(
                        "by_name[{name:?}] member {v} is named {:?}",
                        self.vertices[v.index()].name
                    ));
                }
            }
        }
        let named = self.vertices.iter().filter(|v| v.name.is_some()).count();
        if filed != named {
            return Err(format!("name index files {filed} entries for {named} named vertices"));
        }
        Ok(())
    }

    /// Under the `paranoid` feature, panic on any violated store invariant;
    /// compiled to nothing otherwise.
    #[inline]
    fn paranoid_check(&self) {
        #[cfg(feature = "paranoid")]
        if let Err(violation) = self.validate() {
            panic!("paranoid graph validation failed: {violation}");
        }
    }

    /// Check acyclicity (Definition 1 requires a DAG) via Kahn's algorithm.
    pub fn validate_acyclic(&self) -> StoreResult<()> {
        let n = self.vertices.len();
        let mut indeg: Vec<u32> = vec![0; n];
        for e in &self.edges {
            indeg[e.dst.index()] += 1;
        }
        let mut queue: Vec<VertexId> =
            self.vertex_ids().filter(|v| indeg[v.index()] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &eid in &self.out_adj[v.index()] {
                let d = self.edges[eid.index()].dst;
                indeg[d.index()] -= 1;
                if indeg[d.index()] == 0 {
                    queue.push(d);
                }
            }
        }
        if seen == n {
            Ok(())
        } else {
            let on = self
                .vertex_ids()
                .find(|v| indeg[v.index()] > 0)
                .expect("cycle vertex exists when seen < n");
            Err(StoreError::CycleDetected { on })
        }
    }

    /// A topological order of the vertices (ancestors last, since PROV edges
    /// point from later things to earlier things). Errors on cycles.
    pub fn topological_order(&self) -> StoreResult<Vec<VertexId>> {
        self.validate_acyclic()?;
        let n = self.vertices.len();
        let mut indeg: Vec<u32> = vec![0; n];
        for e in &self.edges {
            indeg[e.dst.index()] += 1;
        }
        let mut queue: std::collections::VecDeque<VertexId> =
            self.vertex_ids().filter(|v| indeg[v.index()] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &eid in &self.out_adj[v.index()] {
                let d = self.edges[eid.index()].dst;
                indeg[d.index()] -= 1;
                if indeg[d.index()] == 0 {
                    queue.push_back(d);
                }
            }
        }
        Ok(order)
    }

    /// Summary statistics used by benchmarks and examples.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            vertices: self.vertex_count(),
            entities: self.kind_count(VertexKind::Entity),
            activities: self.kind_count(VertexKind::Activity),
            agents: self.kind_count(VertexKind::Agent),
            edges: self.edge_count(),
            used: self.edge_kind_count(EdgeKind::Used),
            generated: self.edge_kind_count(EdgeKind::WasGeneratedBy),
        }
    }
}

/// Coarse statistics of a provenance graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Total vertices.
    pub vertices: usize,
    /// `|E|` — entities.
    pub entities: usize,
    /// `|A|` — activities.
    pub activities: usize,
    /// `|U|` — agents.
    pub agents: usize,
    /// Total edges.
    pub edges: usize,
    /// `|U|`-edges — used.
    pub used: usize,
    /// `|G|`-edges — wasGeneratedBy.
    pub generated: usize,
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} (E={}, A={}, Ag={})  |edges|={} (U={}, G={})",
            self.vertices,
            self.entities,
            self.activities,
            self.agents,
            self.edges,
            self.used,
            self.generated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (ProvGraph, VertexId, VertexId, VertexId) {
        // alice --S<-- train --U--> data ; weights --G--> train
        let mut g = ProvGraph::new();
        let data = g.add_entity("data-v1");
        let alice = g.add_agent("alice");
        let train = g.add_activity("train-v1");
        let weights = g.add_entity("weights-v1");
        g.add_edge(EdgeKind::Used, train, data).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, weights, train).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, train, alice).unwrap();
        (g, data, train, weights)
    }

    #[test]
    fn add_and_access_vertices() {
        let (g, data, train, _) = tiny();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.vertex_kind(data), VertexKind::Entity);
        assert_eq!(g.vertex_kind(train), VertexKind::Activity);
        assert_eq!(g.vertex_name(train), Some("train-v1"));
        assert_eq!(g.vertex_by_name("alice").map(|v| g.vertex_kind(v)), Some(VertexKind::Agent));
        assert_eq!(g.kind_count(VertexKind::Entity), 2);
        assert!(g.try_vertex(VertexId::new(99)).is_err());
    }

    #[test]
    fn duplicate_names_keep_all_versions_latest_wins() {
        let mut g = ProvGraph::new();
        let v1 = g.add_entity("model");
        let other = g.add_entity("data");
        let v2 = g.add_entity("model");
        let v3 = g.add_entity("model");
        // Latest version wins for plain lookup…
        assert_eq!(g.vertex_by_name("model"), Some(v3));
        // …but earlier ids are not clobbered.
        assert_eq!(g.versions_of("model"), &[v1, v2, v3]);
        assert_eq!(g.versions_of("data"), &[other]);
        assert!(g.versions_of("nope").is_empty());
    }

    #[test]
    fn id_capacity_is_checked_not_wrapped() {
        // Mocked length check: the guard itself must reject u32::MAX ids
        // (allocating 4 billion vertices to prove it is not an option).
        assert!(ProvGraph::check_capacity(0, "vertex").is_ok());
        assert!(ProvGraph::check_capacity(u32::MAX as usize - 1, "vertex").is_ok());
        assert!(matches!(
            ProvGraph::check_capacity(u32::MAX as usize, "vertex"),
            Err(StoreError::CapacityExceeded { what: "vertex" })
        ));
        assert!(matches!(
            ProvGraph::check_capacity(usize::MAX, "edge"),
            Err(StoreError::CapacityExceeded { what: "edge" })
        ));
        // Headroom variants used by multi-vertex ingest validation.
        let g = ProvGraph::new();
        assert!(g.check_vertex_headroom(u32::MAX as usize).is_ok());
        assert!(matches!(
            g.check_vertex_headroom(u32::MAX as usize + 1),
            Err(StoreError::CapacityExceeded { what: "vertex" })
        ));
        assert!(g.check_edge_headroom(17).is_ok());
        assert!(matches!(
            g.check_edge_headroom(usize::MAX),
            Err(StoreError::CapacityExceeded { what: "edge" })
        ));
    }

    #[test]
    fn birth_is_monotonic() {
        let (g, ..) = tiny();
        let births: Vec<u64> = g.vertex_ids().map(|v| g.vertex(v).birth).collect();
        assert_eq!(births, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edges_validate_prov_types() {
        let mut g = ProvGraph::new();
        let e = g.add_entity("e");
        let a = g.add_activity("a");
        // used must be Activity -> Entity
        assert!(g.add_edge(EdgeKind::Used, a, e).is_ok());
        assert!(matches!(g.add_edge(EdgeKind::Used, e, a), Err(StoreError::InvalidEdge(_))));
        // generated must be Entity -> Activity
        assert!(g.add_edge(EdgeKind::WasGeneratedBy, e, a).is_ok());
        assert!(matches!(
            g.add_edge(EdgeKind::WasGeneratedBy, a, e),
            Err(StoreError::InvalidEdge(_))
        ));
    }

    #[test]
    fn adjacency_both_directions() {
        let (g, data, train, weights) = tiny();
        let out: Vec<VertexId> = g.out_neighbors(train, EdgeKind::Used).collect();
        assert_eq!(out, vec![data]);
        let gen_in: Vec<VertexId> = g.in_neighbors(train, EdgeKind::WasGeneratedBy).collect();
        assert_eq!(gen_in, vec![weights]);
        assert_eq!(g.out_degree(train), 2); // used + associated
        assert_eq!(g.in_degree(train), 1); // generated-by
    }

    #[test]
    fn properties_round_trip() {
        let (mut g, data, train, _) = tiny();
        g.set_vprop(train, "command", "train -gpu");
        g.set_vprop(data, "url", "http://example.org/ds");
        g.set_vprop(data, "size", 12345i64);
        assert_eq!(g.vprop(train, "command").and_then(|v| v.as_str()), Some("train -gpu"));
        assert_eq!(g.vprop(data, "size").and_then(|v| v.as_int()), Some(12345));
        assert_eq!(g.vprop(data, "missing"), None);

        let eid = EdgeId::new(0);
        g.set_eprop(eid, "role", "input");
        assert_eq!(g.eprop(eid, "role").and_then(|v| v.as_str()), Some("input"));
    }

    #[test]
    fn find_by_prop_scans_kind() {
        let (mut g, data, _, weights) = tiny();
        g.set_vprop(data, "tag", "raw");
        g.set_vprop(weights, "tag", "model");
        let hits = g.find_by_prop(VertexKind::Entity, "tag", &PropValue::from("raw"));
        assert_eq!(hits, vec![data]);
        assert!(g.find_by_prop(VertexKind::Entity, "nope", &PropValue::from("raw")).is_empty());
    }

    #[test]
    fn secondary_index_matches_scan_and_tracks_updates() {
        let (mut g, data, _, weights) = tiny();
        g.set_vprop(data, "tag", "raw");
        g.set_vprop(weights, "tag", "model");
        // Scan result before the index exists.
        let scan = g.find_by_prop(VertexKind::Entity, "tag", &PropValue::from("raw"));
        g.create_vprop_index(VertexKind::Entity, "tag");
        assert!(g.has_vprop_index(VertexKind::Entity, "tag"));
        assert!(!g.has_vprop_index(VertexKind::Activity, "tag"));
        // Backfilled index agrees with the scan.
        assert_eq!(g.find_by_prop(VertexKind::Entity, "tag", &PropValue::from("raw")), scan);
        // Updates move entries between values.
        g.set_vprop(data, "tag", "clean");
        assert!(g.find_by_prop(VertexKind::Entity, "tag", &PropValue::from("raw")).is_empty());
        assert_eq!(
            g.find_by_prop(VertexKind::Entity, "tag", &PropValue::from("clean")),
            vec![data]
        );
        // New vertices added after declaration are indexed too.
        let extra = g.add_entity("extra");
        g.set_vprop(extra, "tag", "clean");
        assert_eq!(
            g.find_by_prop(VertexKind::Entity, "tag", &PropValue::from("clean")),
            vec![data, extra]
        );
        // Re-declaring is a no-op.
        g.create_vprop_index(VertexKind::Entity, "tag");
        assert_eq!(
            g.find_by_prop(VertexKind::Entity, "tag", &PropValue::from("clean")),
            vec![data, extra]
        );
    }

    #[test]
    fn acyclicity_detects_cycles() {
        let (g, ..) = tiny();
        assert!(g.validate_acyclic().is_ok());

        let mut g2 = ProvGraph::new();
        let e1 = g2.add_entity("e1");
        let e2 = g2.add_entity("e2");
        g2.add_edge(EdgeKind::WasDerivedFrom, e1, e2).unwrap();
        g2.add_edge(EdgeKind::WasDerivedFrom, e2, e1).unwrap();
        assert!(matches!(g2.validate_acyclic(), Err(StoreError::CycleDetected { .. })));
    }

    #[test]
    fn topological_order_respects_edges() {
        let (g, ..) = tiny();
        let order = g.topological_order().unwrap();
        let pos: FxHashMap<VertexId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for eid in g.edge_ids() {
            let e = g.edge(eid);
            assert!(pos[&e.src] < pos[&e.dst], "edge {eid} out of order");
        }
    }

    /// Hand-corrupt private store state and check `validate` names the
    /// broken invariant (ISSUE 7 acceptance; the snapshot twin lives in
    /// `snapshot::tests::corruption`).
    mod corruption {
        use super::*;

        #[track_caller]
        fn assert_names(g: &ProvGraph, needle: &str) {
            let violation = g.validate().expect_err("corruption must be caught");
            assert!(violation.contains(needle), "violation {violation:?} does not name {needle:?}");
        }

        #[test]
        fn pristine_store_validates() {
            let (g, ..) = tiny();
            g.validate().expect("freshly built store is valid");
            ProvGraph::new().validate().expect("empty store is valid");
        }

        #[test]
        fn adjacency_column_truncated() {
            let (mut g, ..) = tiny();
            g.out_adj.pop();
            assert_names(&g, "adjacency columns disagree");
        }

        #[test]
        fn birth_order_swap() {
            let (mut g, ..) = tiny();
            let b0 = g.vertices[0].birth;
            g.vertices[0].birth = g.vertices[1].birth;
            g.vertices[1].birth = b0;
            assert_names(&g, "births not strictly increasing");
        }

        #[test]
        fn clock_behind_births() {
            let (mut g, ..) = tiny();
            g.clock = 0;
            assert_names(&g, "clock");
        }

        #[test]
        fn edge_retyped_against_prov_rule() {
            let (mut g, ..) = tiny();
            // Edge 0 is Used (Activity -> Entity); WasGeneratedBy requires
            // Entity -> Activity.
            g.edges[0].kind = EdgeKind::WasGeneratedBy;
            assert_names(&g, "domain/range");
        }

        #[test]
        fn adjacency_row_wrong_anchor() {
            let (mut g, ..) = tiny();
            // Move edge 0 out of its source's row into another vertex's.
            let eid = g.out_adj[2].remove(0);
            g.out_adj[0].push(eid);
            assert_names(&g, "anchored at");
        }

        #[test]
        fn adjacency_entry_lost() {
            let (mut g, ..) = tiny();
            g.in_adj[0].clear();
            assert_names(&g, "in_adj rows hold");
        }

        #[test]
        fn kind_index_mismatch() {
            let (mut g, ..) = tiny();
            // Vertex 0 is an entity; file it under agents instead.
            let v = g.by_kind[VertexKind::Entity.as_index()].remove(0);
            g.by_kind[VertexKind::Agent.as_index()].insert(0, v);
            assert_names(&g, "has kind");
        }

        #[test]
        fn name_index_stale_entry() {
            let (mut g, ..) = tiny();
            let ids = g.by_name.get_mut("alice").unwrap();
            ids[0] = VertexId::new(0); // vertex 0 is named "data-v1"
            assert_names(&g, "is named");
        }

        #[test]
        fn name_index_dropped_version() {
            let (mut g, ..) = tiny();
            g.by_name.remove("alice");
            assert_names(&g, "name index files");
        }
    }

    /// The WAL journal: every mutator records exactly its state transition,
    /// and replaying the journal reproduces the graph exactly (PR 9).
    mod journal {
        use super::*;

        fn journaled_tiny() -> (ProvGraph, Vec<WalOp>) {
            let mut g = ProvGraph::new();
            g.set_journaling(true);
            assert!(g.journaling());
            let data = g.add_entity("data-v1");
            let train = g.add_activity("train");
            g.add_edge(EdgeKind::Used, train, data).unwrap();
            g.set_vprop(data, "tag", "raw");
            g.set_vprop(train, "command", "train -gpu");
            g.set_eprop(EdgeId::new(0), "role", "input");
            g.create_vprop_index(VertexKind::Entity, "tag");
            g.key("declared-early");
            g.unset_vprop(train, "command");
            let ops = g.take_journal();
            (g, ops)
        }

        #[test]
        fn replay_reproduces_graph_exactly() {
            let (g, ops) = journaled_tiny();
            assert_eq!(ops.len(), 9);
            let mut replayed = ProvGraph::new();
            for op in &ops {
                replayed.apply_wal_op(op).unwrap();
            }
            assert_eq!(replayed, g);
            // Exactness includes interner id assignment…
            assert_eq!(replayed.key_id("declared-early"), g.key_id("declared-early"));
            // …and the declared index set.
            assert_eq!(replayed.declared_vprop_indexes(), g.declared_vprop_indexes());
            replayed.validate().unwrap();
        }

        #[test]
        fn journal_drains_and_noop_mutations_record_nothing() {
            let (mut g, _) = journaled_tiny();
            assert_eq!(g.journal_len(), 0, "take_journal drained");
            // No-ops journal nothing: a missed unset, a re-declared index, a
            // re-interned key.
            g.unset_vprop(VertexId::new(1), "command");
            g.create_vprop_index(VertexKind::Entity, "tag");
            g.key("tag");
            assert_eq!(g.take_journal(), Vec::new());
        }

        #[test]
        fn journaling_off_records_nothing_and_equality_ignores_journal() {
            let mut quiet = ProvGraph::new();
            quiet.add_entity("data-v1");
            assert_eq!(quiet.journal_len(), 0);
            let mut noisy = ProvGraph::new();
            noisy.set_journaling(true);
            noisy.add_entity("data-v1");
            assert_eq!(noisy.journal_len(), 1);
            // Same semantic store, different journal state: still equal.
            assert_eq!(quiet, noisy);
        }

        #[test]
        fn replay_of_impossible_ops_is_a_typed_error() {
            let mut g = ProvGraph::new();
            let bad_vertex = WalOp::SetVProp {
                v: VertexId::new(7),
                key: Arc::from("tag"),
                value: PropValue::from("x"),
            };
            assert!(matches!(g.apply_wal_op(&bad_vertex), Err(StoreError::UnknownVertex(_))));
            let bad_edge =
                WalOp::SetEProp { e: EdgeId::new(0), key: Arc::from("role"), value: 1i64.into() };
            assert!(matches!(g.apply_wal_op(&bad_edge), Err(StoreError::UnknownEdge(_))));
            let bad_endpoint = WalOp::AddEdge {
                kind: EdgeKind::Used,
                src: VertexId::new(0),
                dst: VertexId::new(1),
            };
            assert!(g.apply_wal_op(&bad_endpoint).is_err());
        }
    }

    #[test]
    fn stats_and_display() {
        let (g, ..) = tiny();
        let s = g.stats();
        assert_eq!(s.entities, 2);
        assert_eq!(s.activities, 1);
        assert_eq!(s.agents, 1);
        assert_eq!(s.used, 1);
        assert_eq!(s.generated, 1);
        assert!(s.to_string().contains("|V|=4"));
        assert_eq!(g.display_name(VertexId::new(0)), "data-v1");
    }
}
