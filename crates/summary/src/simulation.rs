//! Simulation preorders `≤s_in` / `≤s_out` (Sec. IV-B).
//!
//! Trace equivalence is PSPACE-complete (Theorem 4), so PgSum approximates it
//! with similarity in the style of Henzinger–Henzinger–Kopke: `u ≤s_out v`
//! iff `ρ(u) = ρ(v)` and every labeled child of `u` is out-simulate-dominated
//! by some equally-labeled child of `v`. Simulation implies trace containment
//! (Lemma 5 direction), which is all the merge step needs.
//!
//! The implementation is the *counting* variant of the HHK fixpoint
//! (ISSUE 4): instead of the seed's Gauss–Seidel sweeps — which rescan all
//! `n` candidates of every node until a full pass goes quiet, `O(n² · m / w)`
//! per sweep — it maintains, for every `(candidate u, kind k, node w)` with
//! `post_k(u) ≠ ∅`, the counter
//!
//! ```text
//! count_k(u, w) = |post_k(u) ∩ sim(w)|
//! ```
//!
//! When a strike removes `u` from `sim(w)`, the counters of `u`'s k-parents
//! decrement; a counter hitting zero proves its owner `u''` can no longer
//! match the child `w` and pushes `u''` onto the `(w, k)` remove worklist,
//! whose processing strikes `u''` from `sim(parent)` for every k-parent of
//! `w`. Each `(u, w, k)` zero-crossing happens at most once, so every strike
//! is processed exactly once: `O(n · m)` total instead of per-sweep.
//!
//! Initialization uses a shared class-partition table (one bitset row per
//! `≡kκ` class, indexed by dense [`ClassId`]) intersected word-parallel with
//! per-kind capability rows, replacing the seed's per-node
//! `HashMap`-lookup-then-clone and its `O(n² · KINDS)` boxed
//! `children_by_kind` bitsets. The seed implementation is frozen verbatim in
//! [`mod@crate::simulation_reference`] for differential tests and benchmarks.
//!
//! [`ClassId`]: crate::union::ClassId

use crate::union::G0;
use prov_bitset::{FastSet, FixedBitSet};
use prov_store::hash::FxHashMap;

/// Number of edge kinds (`prov_model::EdgeKind::ALL.len()`).
const KINDS: usize = 5;

/// A computed simulation preorder over `g0` nodes.
#[derive(Debug, Clone)]
pub struct SimRelation {
    /// `sim[v]` = set of `u` such that `u` simulates `v` (i.e. `v ≤ u`).
    sim: Vec<FixedBitSet>,
}

impl SimRelation {
    /// Wrap precomputed rows (used by the frozen reference implementation).
    pub(crate) fn from_rows(sim: Vec<FixedBitSet>) -> SimRelation {
        SimRelation { sim }
    }

    /// Is `u ≤ v` (does `v` simulate `u`)?
    #[inline]
    pub fn le(&self, u: u32, v: u32) -> bool {
        self.sim[u as usize].contains(v)
    }

    /// Are `u` and `v` simulation-equivalent (`u ≃ v`)?
    #[inline]
    pub fn equiv(&self, u: u32, v: u32) -> bool {
        self.le(u, v) && self.le(v, u)
    }

    /// All nodes simulating `u` (including `u`).
    pub fn above(&self, u: u32) -> Vec<u32> {
        self.sim[u as usize].to_vec()
    }

    /// The row of nodes simulating `u`, as a bitset (no allocation).
    #[inline]
    pub fn row(&self, u: u32) -> &FixedBitSet {
        &self.sim[u as usize]
    }

    /// Project the relation onto a quotient: `map[old] = new` must send
    /// simulation-equivalent nodes (w.r.t. *this* relation's direction) to
    /// the same new id, with new ids dense in `0..new_len`. Exactness of the
    /// projection for same-direction quotients is argued in `DESIGN.md` §5.
    pub(crate) fn project(&self, map: &[u32], new_len: usize) -> SimRelation {
        // One representative old row per new id (any member works: `≃` nodes
        // have identical up-sets, and membership is invariant within a
        // member's class).
        let mut rep: Vec<u32> = vec![u32::MAX; new_len];
        for (old, &new) in map.iter().enumerate() {
            if rep[new as usize] == u32::MAX {
                rep[new as usize] = old as u32;
            }
        }
        let sim = rep
            .iter()
            .map(|&old| {
                let mut row = FixedBitSet::new(new_len);
                self.sim[old as usize].remap_into(map, &mut row);
                row
            })
            .collect();
        SimRelation { sim }
    }
}

/// Direction of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimDirection {
    /// Children = out-neighbors (`≤s_out`).
    Out,
    /// Children = in-neighbors (`≤s_in`).
    In,
}

/// Flat per-(node, kind) adjacency: `slice(v, k)` is the sorted list of v's
/// k-children (or k-parents, depending on which rows it was built from).
struct KindAdjacency {
    /// `off[v * (KINDS + 1) + k] .. off[v * (KINDS + 1) + k + 1]` → `data`.
    off: Vec<u32>,
    data: Vec<u32>,
}

impl KindAdjacency {
    fn build(adj: &[Vec<(u8, u32)>]) -> KindAdjacency {
        let n = adj.len();
        let stride = KINDS + 1;
        let mut off = vec![0u32; n * stride + 1];
        for (v, row) in adj.iter().enumerate() {
            for &(k, _) in row {
                off[v * stride + k as usize + 1] += 1;
            }
        }
        for i in 1..off.len() {
            off[i] += off[i - 1];
        }
        let mut cursor = off.clone();
        let mut data = vec![0u32; off[off.len() - 1] as usize];
        for (v, row) in adj.iter().enumerate() {
            for &(k, c) in row {
                let slot = &mut cursor[v * stride + k as usize];
                data[*slot as usize] = c;
                *slot += 1;
            }
        }
        KindAdjacency { off, data }
    }

    #[inline]
    fn slice(&self, v: u32, k: usize) -> &[u32] {
        let i = v as usize * (KINDS + 1) + k;
        &self.data[self.off[i] as usize..self.off[i + 1] as usize]
    }
}

/// Per-kind counter matrices `count_k(u, w) = |post_k(u) ∩ sim(w)|`, stored
/// densely for the nodes that actually have k-children.
struct Counters {
    /// `row_of[k][u]` = dense row index of `u` in kind `k`, or `u32::MAX`.
    row_of: [Vec<u32>; KINDS],
    /// `counts[k][row * n + w]`.
    counts: [Vec<u32>; KINDS],
    n: usize,
}

impl Counters {
    #[inline]
    fn get(&self, k: usize, u: u32, w: u32) -> Option<u32> {
        let row = self.row_of[k][u as usize];
        if row == u32::MAX {
            return None;
        }
        Some(self.counts[k][row as usize * self.n + w as usize])
    }

    #[inline]
    fn get_mut(&mut self, k: usize, u: u32, w: u32) -> Option<&mut u32> {
        let row = self.row_of[k][u as usize];
        if row == u32::MAX {
            return None;
        }
        Some(&mut self.counts[k][row as usize * self.n + w as usize])
    }
}

/// Compute the simulation preorder over `g0` in the given direction.
pub fn simulation(g0: &G0, direction: SimDirection) -> SimRelation {
    simulation_impl(g0, direction, 1)
}

/// [`simulation`] with the two embarrassingly-parallel phases — the sim-row
/// initialization and the seed violation sweep — fanned out in `threads`-way
/// chunks on the global [`rayon_core`] pool. `threads <= 1` is byte-for-byte
/// the sequential path. Any thread count computes the same relation: the
/// greatest simulation contained in the class-respecting initialization is
/// unique, and every violation the sequential Gauss–Seidel-flavored sweep
/// catches in-pass is caught here either by the frozen-counter sweep (counts
/// already zero) or by the zero-crossing worklist drain (counts that drop to
/// zero during strike application). The differential tests pin equality
/// against the sequential twin, the naive fixpoint, and the frozen seed.
pub fn simulation_par(g0: &G0, direction: SimDirection, threads: usize) -> SimRelation {
    simulation_impl(g0, direction, threads.max(1))
}

fn simulation_impl(g0: &G0, direction: SimDirection, threads: usize) -> SimRelation {
    let n = g0.len();
    if n == 0 {
        return SimRelation { sim: Vec::new() };
    }
    let (adj, radj) = match direction {
        SimDirection::Out => (&g0.out_adj, &g0.in_adj),
        SimDirection::In => (&g0.in_adj, &g0.out_adj),
    };
    let parents = KindAdjacency::build(radj);

    // Shared class-partition table: one row per dense ClassId, plus
    // per-(kind, child-class) occurrence rows — `has_kc[i]` holds every node
    // with at least one k-child of class cc, for the i-th (k, cc) pair seen.
    let mut class_row: Vec<FixedBitSet> =
        (0..g0.class_count()).map(|_| FixedBitSet::new(n)).collect();
    let mut kc_index: FxHashMap<(u8, u32), u32> = FxHashMap::default();
    let mut has_kc: Vec<FixedBitSet> = Vec::new();
    let mut kind_mask = vec![0u8; n];
    for v in 0..n as u32 {
        class_row[g0.class(v).0 as usize].insert(v);
        for &(k, c) in &adj[v as usize] {
            kind_mask[v as usize] |= 1 << k;
            let next = has_kc.len() as u32;
            let idx = *kc_index.entry((k, g0.class(c).0)).or_insert_with(|| {
                has_kc.push(FixedBitSet::new(n));
                next
            });
            has_kc[idx as usize].insert(v);
        }
    }

    // Init: sim[v] = class-mates of v that, for every child (k, c) of v,
    // have at least one k-child of c's class — one unrolled refinement round
    // as word-parallel intersections. A candidate missing a (kind, class)
    // pair could never satisfy the recursive condition (sim(c) ⊆ class(c)),
    // and filtering it here is far cheaper than striking it pair-by-pair.
    let init_row = |v: u32, kc_scratch: &mut Vec<u32>| -> FixedBitSet {
        let mut row = class_row[g0.class(v).0 as usize].clone();
        kc_scratch.clear();
        kc_scratch.extend(adj[v as usize].iter().map(|&(k, c)| kc_index[&(k, g0.class(c).0)]));
        kc_scratch.sort_unstable();
        kc_scratch.dedup();
        for &idx in kc_scratch.iter() {
            row.intersect_with(&has_kc[idx as usize]);
        }
        row
    };
    let mut sim: Vec<FixedBitSet>;
    if threads > 1 {
        // Rows are independent: fan the initialization out in contiguous
        // chunks, one scratch buffer per worker.
        sim = (0..n).map(|_| FixedBitSet::new(0)).collect();
        let chunk = n.div_ceil(threads.min(n));
        let init_row = &init_row;
        rayon_core::scope(|s| {
            for (ci, rows) in sim.chunks_mut(chunk).enumerate() {
                let base = ci * chunk;
                s.spawn(move || {
                    let mut kc_scratch: Vec<u32> = Vec::new();
                    for (i, slot) in rows.iter_mut().enumerate() {
                        *slot = init_row((base + i) as u32, &mut kc_scratch);
                    }
                });
            }
        });
    } else {
        sim = Vec::with_capacity(n);
        let mut kc_scratch: Vec<u32> = Vec::new();
        for v in 0..n as u32 {
            sim.push(init_row(v, &mut kc_scratch));
        }
    }

    // Counter matrices, one dense row per node with k-children.
    let mut counters = Counters {
        row_of: std::array::from_fn(|_| vec![u32::MAX; n]),
        counts: std::array::from_fn(|_| Vec::new()),
        n,
    };
    for k in 0..KINDS {
        let mut rows = 0u32;
        for (v, &mask) in kind_mask.iter().enumerate() {
            if mask & (1 << k) != 0 {
                counters.row_of[k][v] = rows;
                rows += 1;
            }
        }
        counters.counts[k] = vec![0u32; rows as usize * n];
    }

    // Init counts by *transposing* the (sparse) relation instead of scanning
    // every (candidate, node) cell: each member x of sim(w) contributes one
    // k2-child-in-sim(w) to each of its k2-parents. Work is proportional to
    // `Σ_w |sim(w)| · in-degree`, not `n · m`.
    for w in 0..n as u32 {
        for x in sim[w as usize].ones() {
            for &(k2, u2) in &radj[x as usize] {
                let row = counters.row_of[k2 as usize][u2 as usize];
                counters.counts[k2 as usize][row as usize * n + w as usize] += 1;
            }
        }
    }

    // Remove worklists, keyed (w, k): candidates u whose count_k(u, w) hit
    // zero and therefore cannot k-match the child w anymore.
    let stride = KINDS;
    let mut remove: Vec<Vec<u32>> = vec![Vec::new(); n * stride];
    let mut queued = vec![false; n * stride];
    let mut queue: Vec<u32> = Vec::new();
    let push = |remove: &mut Vec<Vec<u32>>,
                queued: &mut Vec<bool>,
                queue: &mut Vec<u32>,
                w: u32,
                k: usize,
                u: u32| {
        let slot = w as usize * stride + k;
        remove[slot].push(u);
        if !queued[slot] {
            queued[slot] = true;
            queue.push(slot as u32);
        }
    };

    // Seed the worklists with one constraint sweep over the relation itself
    // (O(1) counter lookups; again `Σ_v |sim(v)| · degree` work, not a scan
    // of the counter matrices): u ∈ sim(v) is violated iff some child (k, c)
    // of v finds count_k(u, c) = 0. Violations detected here strike
    // directly; violations *created* later zero-cross a counter and queue.
    if threads > 1 {
        // Parallel sweep: the `(u, class)` counter rows are read-only here,
        // so workers detect violations over disjoint `v`-chunks of the
        // *frozen* relation into per-worker strike buffers. The sequential
        // sweep below additionally sees the decrements of earlier strikes
        // (Gauss–Seidel flavor); any violation it would catch in-pass and
        // this frozen sweep misses necessarily comes from a counter that
        // drops to zero during the reduction — which queues it for the
        // drain below. The fixpoint is the same either way.
        let ranges = rayon_core::chunk_ranges(n, threads);
        let mut strike_bufs: Vec<Vec<(u32, u32)>> = ranges.iter().map(|_| Vec::new()).collect();
        {
            let (sim, counters, adj) = (&sim, &counters, &adj);
            rayon_core::scope(|s| {
                for (range, buf) in ranges.into_iter().zip(strike_bufs.iter_mut()) {
                    s.spawn(move || {
                        for v in range {
                            for u in sim[v].ones() {
                                for &(k, c) in &adj[v] {
                                    match counters.get(k as usize, u, c) {
                                        Some(cnt) if cnt > 0 => {}
                                        _ => {
                                            buf.push((v as u32, u));
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                    });
                }
            });
        }
        // Synchronized remove-set reduction: apply every detected strike
        // under exclusive access, queueing zero-crossings as usual.
        for (v, u) in strike_bufs.into_iter().flatten() {
            sim[v as usize].remove(u);
            debug_assert_ne!(u, v, "simulation must stay reflexive");
            for &(k2, u2) in &radj[u as usize] {
                let cnt = counters.get_mut(k2 as usize, u2, v).expect("parent has k2-children");
                *cnt -= 1;
                if *cnt == 0 && !parents.slice(v, k2 as usize).is_empty() {
                    push(&mut remove, &mut queued, &mut queue, v, k2 as usize, u2);
                }
            }
        }
    } else {
        let mut strikes: Vec<u32> = Vec::new();
        for v in 0..n as u32 {
            strikes.clear();
            for u in sim[v as usize].ones() {
                for &(k, c) in &adj[v as usize] {
                    match counters.get(k as usize, u, c) {
                        Some(cnt) if cnt > 0 => {}
                        _ => {
                            strikes.push(u);
                            break;
                        }
                    }
                }
            }
            for &u in &strikes {
                sim[v as usize].remove(u);
                debug_assert_ne!(u, v, "simulation must stay reflexive");
                for &(k2, u2) in &radj[u as usize] {
                    let cnt = counters.get_mut(k2 as usize, u2, v).expect("parent has k2-children");
                    *cnt -= 1;
                    if *cnt == 0 && !parents.slice(v, k2 as usize).is_empty() {
                        push(&mut remove, &mut queued, &mut queue, v, k2 as usize, u2);
                    }
                }
            }
        }
    }

    // Fixpoint: drain the worklists. Processing (w, k) strikes every queued
    // candidate u from sim(v) for each k-parent v of w; each strike
    // decrements the counters of u's own parents, possibly queueing more.
    while let Some(slot) = queue.pop() {
        let slot = slot as usize;
        queued[slot] = false;
        let strikes = std::mem::take(&mut remove[slot]);
        let (w, k) = ((slot / stride) as u32, slot % stride);
        for &v in parents.slice(w, k) {
            for &u in &strikes {
                if !sim[v as usize].remove(u) {
                    continue;
                }
                debug_assert_ne!(u, v, "simulation must stay reflexive");
                // u left sim(v): decrement count_k2(u'', v) for every
                // k2-parent u'' of u.
                for &(k2, u2) in &radj[u as usize] {
                    let cnt = counters.get_mut(k2 as usize, u2, v).expect("parent has k2-children");
                    *cnt -= 1;
                    if *cnt == 0 && !parents.slice(v, k2 as usize).is_empty() {
                        push(&mut remove, &mut queued, &mut queue, v, k2 as usize, u2);
                    }
                }
            }
        }
    }
    SimRelation { sim }
}

/// Reference implementation used by property tests: the naive fixpoint over
/// explicit pair checks (`O(n⁴)`-ish, tiny inputs only).
#[doc(hidden)]
#[allow(clippy::needless_range_loop)] // pairwise index loops mirror the math
pub fn simulation_naive(g0: &G0, direction: SimDirection) -> Vec<Vec<bool>> {
    let n = g0.len();
    let adj = match direction {
        SimDirection::Out => &g0.out_adj,
        SimDirection::In => &g0.in_adj,
    };
    let mut le = vec![vec![false; n]; n];
    for v in 0..n {
        for u in 0..n {
            le[v][u] = g0.class(v as u32) == g0.class(u as u32);
        }
    }
    loop {
        let mut changed = false;
        for v in 0..n {
            for u in 0..n {
                if !le[v][u] {
                    continue;
                }
                let ok = adj[v].iter().all(|&(k, c)| {
                    adj[u].iter().any(|&(k2, c2)| k2 == k && le[c as usize][c2 as usize])
                });
                if !ok {
                    le[v][u] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            return le;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::PropertyAggregation;
    use crate::segment_ref::SegmentRef;
    use crate::simulation_reference::simulation_reference;
    use crate::union::build_g0;
    use prov_model::EdgeKind;
    use prov_store::ProvGraph;

    /// One segment: d <-U- t <-G- w ; second segment: d' <-U- t' (no output).
    fn asymmetric() -> G0 {
        let mut g = ProvGraph::new();
        let d1 = g.add_entity("d");
        let t1 = g.add_activity("t");
        let w1 = g.add_entity("w");
        let e1 = g.add_edge(EdgeKind::Used, t1, d1).unwrap();
        let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
        let d2 = g.add_entity("d");
        let t2 = g.add_activity("t");
        let e3 = g.add_edge(EdgeKind::Used, t2, d2).unwrap();
        let s1 = SegmentRef::new(vec![d1, t1, w1], vec![e1, e2]);
        let s2 = SegmentRef::new(vec![d2, t2], vec![e3]);
        // k = 0 so both activities share a class despite different shapes.
        build_g0(&g, &[s1, s2], &PropertyAggregation::ignore_all(), 0)
    }

    #[test]
    fn out_simulation_dominance_is_directional() {
        let g0 = asymmetric();
        // Node ids: 0=d1, 1=t1, 2=w1, 3=d2, 4=t2.
        let out = simulation(&g0, SimDirection::Out);
        // t2's out-children (d2) ⊂ t1's (d1): t2 ≤out t1.
        assert!(out.le(4, 1), "t2 ≤out t1");
        assert!(out.le(1, 4), "t1 also ≤out t2: both only use one entity");
        // w1 has no out-children: it out-simulates nothing more than entities
        // with no children; every entity class-mate with no children works.
        assert!(out.le(2, 2));
    }

    #[test]
    fn in_simulation_separates_generated_entities() {
        let g0 = asymmetric();
        let inn = simulation(&g0, SimDirection::In);
        // Stored orientation: w1's G edge is OUTgoing (w1 -> t1), so w1 has no
        // in-edges and is vacuously in-dominated by any entity; d1 has an
        // in-edge (t1 -U-> d1) and therefore is NOT in-dominated by w1.
        assert!(inn.le(2, 0), "w1 (no in-edges) ≤in d1 vacuously");
        assert!(!inn.le(0, 2), "d1 (used by t1) not in-dominated by w1");
        // d2 ≤in d1 (t2's parent set is a vacuous subset of t1's behaviour),
        // but not conversely: d1's parent t1 is fed by a generated entity
        // while d2's parent t2 has no parents at all.
        assert!(inn.le(3, 0));
        assert!(!inn.le(0, 3));
    }

    #[test]
    fn optimized_matches_naive_and_reference_on_fixture() {
        let g0 = asymmetric();
        for dir in [SimDirection::Out, SimDirection::In] {
            let fast = simulation(&g0, dir);
            let slow = simulation_naive(&g0, dir);
            let frozen = simulation_reference(&g0, dir);
            for v in 0..g0.len() as u32 {
                for u in 0..g0.len() as u32 {
                    assert_eq!(
                        fast.le(v, u),
                        slow[v as usize][u as usize],
                        "naive: dir={dir:?} v={v} u={u}"
                    );
                    assert_eq!(
                        fast.le(v, u),
                        frozen.le(v, u),
                        "reference: dir={dir:?} v={v} u={u}"
                    );
                }
            }
        }
    }

    #[test]
    fn simulation_is_reflexive_and_class_respecting() {
        let g0 = asymmetric();
        let out = simulation(&g0, SimDirection::Out);
        for v in 0..g0.len() as u32 {
            assert!(out.le(v, v), "reflexive at {v}");
            for u in out.above(v) {
                assert_eq!(g0.class(u), g0.class(v));
            }
        }
    }

    #[test]
    fn empty_graph_yields_empty_relation() {
        let g = ProvGraph::new();
        let g0 = build_g0(&g, &[], &PropertyAggregation::ignore_all(), 0);
        let rel = simulation(&g0, SimDirection::Out);
        assert!(rel.sim.is_empty());
    }
}
