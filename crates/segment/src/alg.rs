//! `SimProvAlg`: worklist evaluation of the rewritten Fig. 4 grammar.
//!
//! Compared with running generic CflrB on the Fig. 6 normal form, SimProvAlg
//! exploits three properties (Sec. III-B):
//!
//! 1. **Combined rules** — `Aa → G⁻¹ Ee G` fuses the two normal-form rules
//!    `Lg → G⁻¹ Re` and `Rg → Lg G`, so no `Lg/Rg/...` intermediate facts ever
//!    enter the worklist: a popped `Ee(e1,e2)` directly produces activity
//!    pairs over the generator adjacency, and a popped `Aa(a1,a2)` directly
//!    produces entity pairs over the input adjacency.
//! 2. **Symmetry** — `Ee` and `Aa` are symmetric relations, so only canonical
//!    pairs (`rank(x) ≤ rank(y)`) are stored and processed (the paper's
//!    pruning strategy; toggleable for the Fig. 5(d)-style ablation).
//! 3. **Early stopping** — a pair whose endpoints are both older than every
//!    source entity can never extend to an accepting fact (expansion only
//!    moves further upstream, i.e. strictly older), so it is not expanded.
//!    PROV-specific: generic CFLR cannot use source information.
//!
//! Facts live in per-kind rank universes (dense entity/activity ids), so the
//! `FixedBitSet` tables take `O(|E|²/w + |A|²/w)` bits and the compressed
//! variant trades random-access speed for memory exactly as in the paper.
//!
//! The inner loop is pair-encoded (ISSUE 3): worklist entries are flat `u64`
//! words (one kind-tag bit plus two packed dense ranks) popped off a `Vec`.
//! A one-time pre-pass lowers everything the loop touches to rank space —
//! the exclusion mask is resolved into sorted rank-adjacency rows, and
//! births/constraint fingerprints are re-indexed by rank — so a pop reads
//! only dense arrays: no `VertexId` round-trips, no per-element mask probes,
//! and fingerprints resolved once per neighbor instead of once per pair.
//! Matched pairs dedup against a [`PairTable`] (flat `n²`-bit layout at
//! quick scales) whose insert primitives push fresh facts, kind-tagged,
//! straight back onto the worklist; ascending rows let canonical pairs flow
//! through the constant-row batch [`PairTable::insert_row`]. The seed
//! `VecDeque`-of-tuples loop survives as
//! [`crate::alg_reference::similar_alg_reference`] for differential tests
//! and the benchmark trajectory (`BENCH_fig5.json`, figure `wl`).

use crate::outcome::{EvalStats, SimilarOutcome};
use crate::view::MaskedGraph;
use prov_bitset::{pack_pair, CompressedBitmap, FastSet, FixedBitSet, PairTable};
use prov_model::{VertexId, VertexKind};
use prov_store::ProvIndex;
use std::time::Instant;

/// Configuration for [`similar_alg`].
///
/// `AlgConfig::default()` is the paper's configuration: both optimizations
/// on, no property constraint (see [`AlgConfig::paper_default`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AlgConfig {
    /// Store/process only canonical (ordered) pairs of the symmetric
    /// relations.
    pub symmetric_prune: bool,
    /// Apply the temporal early-stopping rule.
    pub early_stop: bool,
    /// Property-constrained similarity (Sec. III-A's generalization): the two
    /// matched path sides must also agree on these property values at every
    /// step. E.g. the "same command" table realizes the rewritten rule
    /// `Ee → U⁻¹ σ(ai, command) Aa σ(aj, command) U` — only activity pairs
    /// running the same command count as similar. `None` = plain SimProv.
    pub constraint: Option<ConstraintTable>,
}

impl Default for AlgConfig {
    /// Identical to [`AlgConfig::paper_default`]. (The seed's derived
    /// `Default` silently turned *off* both optimizations, contradicting the
    /// field docs; a regression test pins the explicit impl to the paper's
    /// values.)
    fn default() -> Self {
        Self::paper_default()
    }
}

impl AlgConfig {
    /// The paper's default configuration: symmetric pruning and early
    /// stopping on, plain label-based SimProv.
    pub fn paper_default() -> Self {
        AlgConfig { symmetric_prune: true, early_stop: true, constraint: None }
    }
}

/// Per-vertex property fingerprints compiled from a [`SimilarConstraint`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintTable {
    /// Fingerprint per vertex (activities constrained by `activity_prop`,
    /// entities by `entity_prop`; unconstrained kinds and missing values get
    /// fixed sentinels so that "both missing" still matches).
    fp: Vec<u64>,
}

impl ConstraintTable {
    /// Fingerprint of a vertex.
    #[inline]
    pub fn fp(&self, v: VertexId) -> u64 {
        self.fp[v.index()]
    }
}

/// Fine-grained similarity constraints over property values (`σ`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimilarConstraint {
    /// Matched activities must share this property's value.
    pub activity_prop: Option<String>,
    /// Matched entities must share this property's value.
    pub entity_prop: Option<String>,
}

impl SimilarConstraint {
    /// No constraint (plain SimProv).
    pub fn none() -> Self {
        Self::default()
    }

    /// The paper's example: matched activities must run the same command.
    pub fn same_command() -> Self {
        SimilarConstraint { activity_prop: Some("command".into()), entity_prop: None }
    }

    /// True when no property constraint is active.
    pub fn is_empty(&self) -> bool {
        self.activity_prop.is_none() && self.entity_prop.is_none()
    }

    /// Compile against a graph into per-vertex fingerprints.
    pub fn compile(&self, graph: &prov_store::ProvGraph) -> ConstraintTable {
        use prov_store::hash::fx_hash64;
        let fp = graph
            .vertex_ids()
            .map(|v| {
                let key = match graph.vertex_kind(v) {
                    VertexKind::Activity => self.activity_prop.as_deref(),
                    VertexKind::Entity => self.entity_prop.as_deref(),
                    VertexKind::Agent => None,
                };
                match key {
                    None => 0u64, // unconstrained kind: always matches
                    Some(k) => match graph.vprop(v, k) {
                        Some(val) => fx_hash64(&(1u8, val)),
                        None => fx_hash64(&2u8), // "missing" matches "missing"
                    },
                }
            })
            .collect();
        ConstraintTable { fp }
    }
}

/// Kind tag of a packed worklist word: set = `Ee` fact, clear = `Aa` fact.
pub(crate) const EE_TAG: u64 = 1 << 63;
/// Mask isolating the first rank from the word's high half (31 bits — the
/// tag bit leaves ranks below `2³¹`, asserted at entry).
pub(crate) const HI_RANK_MASK: u64 = (1 << 31) - 1;

/// Derive one matched pair: dedup it against the target fact table and, when
/// fresh, push it (kind-tagged) straight onto the worklist.
#[inline]
fn derive_pair<S: FastSet>(
    target: &mut PairTable<S>,
    worklist: &mut Vec<u64>,
    tag: u64,
    prune: bool,
    r1: u32,
    r2: u32,
) {
    if prune {
        target.insert_packed(pack_pair(r1.min(r2), r1.max(r2)), tag, worklist);
    } else {
        target.insert_packed(pack_pair(r1, r2), tag, worklist);
        if r1 != r2 {
            target.insert_packed(pack_pair(r2, r1), tag, worklist);
        }
    }
}

/// The mask-resolved upstream adjacency of one vertex kind, lowered to dense
/// per-kind ranks: row `r` lists the ranks reachable one upstream step from
/// the member with rank `r` (generator activities of an entity, input
/// entities of an activity).
///
/// Built once per evaluation, this lets the worklist loop run entirely in
/// rank space — no `VertexId` round-trips, no per-element mask probes, and
/// sequential `u32` reads in the inner pair loop.
pub(crate) struct RankAdjacency {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl RankAdjacency {
    pub(crate) fn build(
        view: &MaskedGraph<'_>,
        idx: &ProvIndex,
        from: VertexKind,
    ) -> RankAdjacency {
        let members = idx.kind_members(from);
        let mut offsets = Vec::with_capacity(members.len() + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        let masked = view.is_masked();
        for &v in members {
            let start = targets.len();
            match (from == VertexKind::Entity, masked) {
                // Unmasked: raw CSR slices, no per-element filtering.
                (true, false) => {
                    targets.extend(idx.generators_of(v).iter().map(|&a| idx.kind_rank(a)));
                }
                (false, false) => {
                    targets.extend(idx.inputs_of(v).iter().map(|&e| idx.kind_rank(e)));
                }
                (true, true) => targets.extend(view.generators_of(v).map(|a| idx.kind_rank(a))),
                (false, true) => targets.extend(view.inputs_of(v).map(|e| idx.kind_rank(e))),
            }
            // Ascending rows let the pair loop split canonical pairs into a
            // constant-row suffix batch (see `PairTable::insert_row`).
            targets[start..].sort_unstable();
            // lint-ok(narrowing-cast): rank adjacency holds ≤ |E| entries, bounded by u32 ids.
            offsets.push(targets.len() as u32);
        }
        RankAdjacency { offsets, targets }
    }

    #[inline]
    pub(crate) fn row(&self, r: u32) -> &[u32] {
        &self.targets[self.offsets[r as usize] as usize..self.offsets[r as usize + 1] as usize]
    }
}

/// A per-vertex table (births, constraint fingerprints) re-indexed by the
/// dense rank of one kind.
pub(crate) fn by_rank<T>(members: &[VertexId], f: impl Fn(VertexId) -> T) -> Vec<T> {
    members.iter().map(|&v| f(v)).collect()
}

/// Evaluate `L(SimProv)`-reachability with SimProvAlg over fact tables `S`.
pub fn similar_alg<S: FastSet>(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
) -> SimilarOutcome {
    let t0 = Instant::now();
    let idx = view.index();
    let entities = idx.kind_members(VertexKind::Entity);
    let activities = idx.kind_members(VertexKind::Activity);
    let (ne, na) = (entities.len(), activities.len());
    assert!(
        ne < (1 << 31) && na < (1 << 31),
        "pair-encoded worklist holds ranks below 2^31 (got |E|={ne}, |A|={na})"
    );

    let mut ee: PairTable<S> = PairTable::new(ne);
    let mut aa: PairTable<S> = PairTable::new(na);
    // Flat worklist of packed facts; a `Vec` (LIFO) is fine because the
    // derived relation is a fixpoint — insertion order never changes it.
    let mut worklist: Vec<u64> = Vec::new();
    let mut pops: u64 = 0;

    let min_src_birth: Option<u64> = vsrc
        .iter()
        .filter(|&&s| s.index() < idx.vertex_count() && view.vertex_ok(s))
        .map(|&s| idx.birth(s))
        .min()
        .filter(|_| cfg.early_stop);

    // Init: Ee(vj, vj) anchors.
    for &vj in vdst {
        if vj.index() < idx.vertex_count()
            && view.vertex_ok(vj)
            && idx.kind(vj) == VertexKind::Entity
        {
            let r = idx.kind_rank(vj);
            if ee.insert(r, r) {
                worklist.push(EE_TAG | pack_pair(r, r));
            }
        }
    }

    // Lower everything the loop touches to rank space, once: the mask is
    // resolved into the adjacency, and births/fingerprints are re-indexed by
    // rank. The worklist loop then never leaves dense `u32` arrays.
    let gen_ranks = RankAdjacency::build(view, idx, VertexKind::Entity);
    let inp_ranks = RankAdjacency::build(view, idx, VertexKind::Activity);
    // Early-stop predicate per rank, pre-evaluated to one byte per member.
    let stale: Option<(Vec<bool>, Vec<bool>)> = min_src_birth.map(|minb| {
        (by_rank(entities, |v| idx.birth(v) < minb), by_rank(activities, |v| idx.birth(v) < minb))
    });
    let table = cfg.constraint.as_ref();
    // Fingerprints of the *derived* side: an `Ee` pop matches generator
    // activities, an `Aa` pop matches input entities.
    let fps: Option<(Vec<u64>, Vec<u64>)> =
        table.map(|t| (by_rank(activities, |v| t.fp(v)), by_rank(entities, |v| t.fp(v))));
    let prune = cfg.symmetric_prune;

    while let Some(word) = worklist.pop() {
        pops += 1;
        let is_ee = word & EE_TAG != 0;
        // lint-ok(narrowing-cast): deliberately unpacks the two u32 halves of a packed word.
        let lo = ((word >> 32) & HI_RANK_MASK) as u32;
        // lint-ok(narrowing-cast): low half of the packed pair word.
        let hi = word as u32;
        if let Some((se, sa)) = &stale {
            let s = if is_ee { se } else { sa };
            if s[lo as usize] && s[hi as usize] {
                continue; // early stop: both older than every source
            }
        }

        let adj = if is_ee { &gen_ranks } else { &inp_ranks };
        let s1 = adj.row(lo);
        if s1.is_empty() {
            continue;
        }
        let diagonal = lo == hi;
        let s2 = if diagonal { s1 } else { adj.row(hi) };

        // Derived facts go into the *other* relation; fresh ones land on the
        // worklist with that relation's kind tag (`Aa` = clear bit).
        let (target, tag) = if is_ee { (&mut aa, 0) } else { (&mut ee, EE_TAG) };
        if let ([r1], [r2]) = (s1, s2) {
            // Dominant shape in lifecycle provenance: both endpoints have a
            // single upstream neighbor (every entity has exactly one
            // generating activity), so a pop derives exactly one pair.
            let (r1, r2) = (*r1, *r2);
            let ok = match &fps {
                Some((fa, fe)) => {
                    let f = if is_ee { fa } else { fe };
                    f[r1 as usize] == f[r2 as usize]
                }
                None => true,
            };
            if ok {
                derive_pair(target, &mut worklist, tag, prune, r1, r2);
            }
            continue;
        }
        for (x, &r1) in s1.iter().enumerate() {
            // Diagonal pops under pruning match one shared adjacency list
            // against itself and only keep canonical pairs: the suffix loop
            // derives each unordered pair once instead of twice.
            let inner: &[u32] = if prune && diagonal { &s2[x..] } else { s2 };
            match &fps {
                // Constraint fingerprints resolve once per outer neighbor
                // (`f1`), not once per pair as in the seed loop.
                Some((fa, fe)) => {
                    let f = if is_ee { fa } else { fe };
                    let f1 = f[r1 as usize];
                    for &r2 in inner {
                        if f1 == f[r2 as usize] {
                            derive_pair(target, &mut worklist, tag, prune, r1, r2);
                        }
                    }
                }
                None if prune => {
                    // Rows are ascending, so canonical pairs split at `r1`:
                    // the prefix lands in varying rows, the suffix is one
                    // constant-row ascending batch.
                    let split = inner.partition_point(|&r2| r2 < r1);
                    for &r2 in &inner[..split] {
                        target.insert_packed(pack_pair(r2, r1), tag, &mut worklist);
                    }
                    target.insert_row(r1, &inner[split..], tag, &mut worklist);
                }
                None => {
                    target.insert_row(r1, inner, tag, &mut worklist);
                    for &r2 in inner {
                        if r2 != r1 {
                            target.insert_packed(pack_pair(r2, r1), tag, &mut worklist);
                        }
                    }
                }
            }
        }
    }

    // Answer: partners of each source in the Ee relation.
    let mut marks = vec![false; idx.vertex_count()];
    let mut buf: Vec<u32> = Vec::new();
    for &src in vsrc {
        if src.index() >= idx.vertex_count()
            || !view.vertex_ok(src)
            || idx.kind(src) != VertexKind::Entity
        {
            continue;
        }
        buf.clear();
        ee.partners_into(idx.kind_rank(src), &mut buf);
        for &r in &buf {
            marks[entities[r as usize].index()] = true;
        }
    }
    let answer = crate::outcome::marks_to_vec(&marks);
    let mem = ee.heap_bytes() + aa.heap_bytes();
    SimilarOutcome {
        answer,
        vc2: None,
        stats: EvalStats {
            elapsed: t0.elapsed(),
            work: pops + (ee.len() + aa.len()) as u64,
            memory_bytes: mem,
            dnf: false,
        },
    }
}

/// SimProvAlg with `FixedBitSet` fact tables (the paper's default).
pub fn similar_alg_bitset(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
) -> SimilarOutcome {
    similar_alg::<FixedBitSet>(view, vsrc, vdst, cfg)
}

/// SimProvAlg with compressed-bitmap fact tables (`w CBM`).
pub fn similar_alg_cbm(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
) -> SimilarOutcome {
    similar_alg::<CompressedBitmap>(view, vsrc, vdst, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_reference::similar_alg_reference_bitset;
    use crate::tst::{similar_tst, TstConfig};
    use prov_model::EdgeKind;
    use prov_store::{ProvGraph, ProvIndex};

    fn shared_dst() -> (ProvGraph, ProvIndex, Vec<VertexId>) {
        // d <-U- t1 <-G- m1 ; d <-U- t2 <-G- m2 ; {m1,m2} <-U- t3 <-G- w
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let m1 = g.add_entity("m1");
        let t2 = g.add_activity("t2");
        let m2 = g.add_entity("m2");
        let t3 = g.add_activity("t3");
        let w = g.add_entity("w");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m1, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m2, t2).unwrap();
        g.add_edge(EdgeKind::Used, t3, m1).unwrap();
        g.add_edge(EdgeKind::Used, t3, m2).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t3).unwrap();
        let idx = ProvIndex::build(&g);
        let ids = vec![d, t1, m1, t2, m2, t3, w];
        (g, idx, ids)
    }

    #[test]
    fn default_config_is_the_paper_default() {
        // Regression: the seed's derived Default disabled both optimizations.
        assert_eq!(AlgConfig::default(), AlgConfig::paper_default());
        let d = AlgConfig::default();
        assert!(d.symmetric_prune && d.early_stop && d.constraint.is_none());
    }

    #[test]
    fn alg_finds_similar_siblings() {
        let (_, idx, ids) = shared_dst();
        let view = MaskedGraph::unmasked(&idx);
        let (m1, m2, w) = (ids[2], ids[4], ids[6]);
        let out = similar_alg_bitset(&view, &[m1], &[w], &AlgConfig::paper_default());
        assert_eq!(out.answer, vec![m1, m2]);
        assert!(out.vc2.is_none());
        assert!(out.stats.work > 0);
    }

    #[test]
    fn alg_agrees_with_tst_on_all_query_shapes() {
        let (_, idx, ids) = shared_dst();
        let view = MaskedGraph::unmasked(&idx);
        let entity_ids: Vec<_> =
            ids.iter().copied().filter(|&v| idx.kind(v) == VertexKind::Entity).collect();
        for &src in &entity_ids {
            for &dst in &entity_ids {
                let a = similar_alg_bitset(&view, &[src], &[dst], &AlgConfig::paper_default());
                let t = similar_tst(&view, &[src], &[dst], &TstConfig::default());
                assert_eq!(a.answer, t.answer, "src={src} dst={dst}");
            }
        }
        // Multi-source multi-destination.
        let a = similar_alg_bitset(
            &view,
            &[entity_ids[0], entity_ids[1]],
            &[entity_ids[3], entity_ids[2]],
            &AlgConfig::paper_default(),
        );
        let t = similar_tst(
            &view,
            &[entity_ids[0], entity_ids[1]],
            &[entity_ids[3], entity_ids[2]],
            &TstConfig::default(),
        );
        assert_eq!(a.answer, t.answer);
    }

    #[test]
    fn pruning_variants_agree() {
        let (_, idx, ids) = shared_dst();
        let view = MaskedGraph::unmasked(&idx);
        let (d, w) = (ids[0], ids[6]);
        let configs = [
            AlgConfig { symmetric_prune: true, early_stop: true, constraint: None },
            AlgConfig { symmetric_prune: true, early_stop: false, constraint: None },
            AlgConfig { symmetric_prune: false, early_stop: true, constraint: None },
            AlgConfig { symmetric_prune: false, early_stop: false, constraint: None },
        ];
        let expect = similar_alg_bitset(&view, &[d], &[w], &configs[0]).answer;
        for cfg in &configs[1..] {
            assert_eq!(similar_alg_bitset(&view, &[d], &[w], cfg).answer, expect, "{cfg:?}");
        }
        // Pruned run does less or equal work than unpruned.
        let pruned = similar_alg_bitset(&view, &[d], &[w], &configs[0]);
        let unpruned = similar_alg_bitset(&view, &[d], &[w], &configs[3]);
        assert!(pruned.stats.work <= unpruned.stats.work);
    }

    #[test]
    fn cbm_backend_agrees_with_bitset() {
        let (_, idx, ids) = shared_dst();
        let view = MaskedGraph::unmasked(&idx);
        let (d, w) = (ids[0], ids[6]);
        let b = similar_alg_bitset(&view, &[d], &[w], &AlgConfig::paper_default());
        let c = similar_alg_cbm(&view, &[d], &[w], &AlgConfig::paper_default());
        assert_eq!(b.answer, c.answer);
    }

    #[test]
    fn pair_encoded_loop_matches_seed_reference() {
        let (_, idx, ids) = shared_dst();
        let view = MaskedGraph::unmasked(&idx);
        let entity_ids: Vec<_> =
            ids.iter().copied().filter(|&v| idx.kind(v) == VertexKind::Entity).collect();
        for symmetric_prune in [false, true] {
            for early_stop in [false, true] {
                let cfg = AlgConfig { symmetric_prune, early_stop, constraint: None };
                for &src in &entity_ids {
                    for &dst in &entity_ids {
                        let new = similar_alg_bitset(&view, &[src], &[dst], &cfg);
                        let old = similar_alg_reference_bitset(&view, &[src], &[dst], &cfg);
                        assert_eq!(new.answer, old.answer, "{cfg:?} src={src} dst={dst}");
                        assert_eq!(new.stats.work, old.stats.work, "{cfg:?} src={src} dst={dst}");
                    }
                }
            }
        }
    }

    #[test]
    fn non_entity_and_out_of_range_inputs_are_ignored() {
        let (_, idx, ids) = shared_dst();
        let view = MaskedGraph::unmasked(&idx);
        let t1 = ids[1]; // activity: invalid as src/dst
        let out = similar_alg_bitset(&view, &[t1], &[ids[6]], &AlgConfig::paper_default());
        assert!(out.answer.is_empty());
        let out = similar_alg_bitset(
            &view,
            &[VertexId::new(999)],
            &[ids[6]],
            &AlgConfig::paper_default(),
        );
        assert!(out.answer.is_empty());
    }
}
