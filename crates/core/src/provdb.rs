//! `ProvDb`: the lifecycle provenance management facade (Fig. 1).
//!
//! Bundles the ingestion surface (agents, versioned artifacts, activity
//! records — what the paper's non-intrusive CLI toolkit would feed in) with
//! the query facilities (PgSeg segmentation, PgSum summarization, lineage and
//! pattern matching) over the embedded property graph store.

use crate::lineage::{compile_lineage, LineageBound};
pub use crate::lineage::{lineage_reference, LineageDirection};
use prov_model::{PropValue, VertexId, VertexKind};
use prov_segment::{PgSegOptions, PgSegQuery, PgSegSession, SegmentGraph};
use prov_store::hash::FxHashMap;
use prov_store::storage::{
    CommitPipeline, DurabilityCounters, DurabilityPolicy, Io, Recovered, StdIo, Storage, WalStorage,
};
use prov_store::{
    DeltaCursor, Pipeline, Plan, ProvGraph, ProvIndex, QueryOutput, SharedIndex, StoreError,
    StoreResult,
};
use prov_summary::{pgsum, PgSumQuery, Psg, SegmentRef};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Description of one artifact an activity generates.
#[derive(Debug, Clone)]
pub struct OutputSpec {
    /// Artifact name (versioned automatically: `name-vN`).
    pub artifact: String,
    /// Properties to attach to the new version.
    pub props: Vec<(String, PropValue)>,
}

impl OutputSpec {
    /// Output with no properties.
    pub fn named(artifact: &str) -> Self {
        OutputSpec { artifact: artifact.to_string(), props: Vec::new() }
    }

    /// Attach a property.
    pub fn with(mut self, key: &str, value: impl Into<PropValue>) -> Self {
        self.props.push((key.to_string(), value.into()));
        self
    }
}

/// One ingested activity (a CLI command execution).
#[derive(Debug, Clone)]
pub struct ActivityRecord {
    /// Command line / operation name.
    pub command: String,
    /// Responsible agent.
    pub agent: Option<VertexId>,
    /// Input entity versions the activity used.
    pub inputs: Vec<VertexId>,
    /// Artifacts generated.
    pub outputs: Vec<OutputSpec>,
    /// Extra activity properties.
    pub props: Vec<(String, PropValue)>,
}

/// Result of ingesting an activity.
#[derive(Debug, Clone)]
pub struct ActivityOutcome {
    /// The activity vertex.
    pub activity: VertexId,
    /// The generated entity versions, in `outputs` order.
    pub outputs: Vec<VertexId>,
}

/// When a query needs a snapshot and the cached one is stale, how large may
/// the append-only delta be (relative to the frozen prefix) before the
/// incremental [`ProvIndex::refresh_in_place`] stops paying and the database
/// falls back to a full rebuild?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotPolicy {
    /// Maximum [`prov_store::GraphDelta::fraction`] still refreshed
    /// incrementally; anything larger rebuilds. `0.0` disables refresh
    /// entirely (the rebuild-every-batch baseline the fig7 benchmark gates
    /// against); the default `0.5` refreshes until the delta reaches half
    /// the frozen graph.
    pub max_refresh_fraction: f64,
}

impl Default for SnapshotPolicy {
    fn default() -> Self {
        SnapshotPolicy { max_refresh_fraction: 0.5 }
    }
}

impl SnapshotPolicy {
    /// The pre-incremental behavior: every stale snapshot is rebuilt from
    /// scratch. Kept as the observable baseline for benchmarks and tests.
    pub fn rebuild_always() -> Self {
        SnapshotPolicy { max_refresh_fraction: 0.0 }
    }
}

/// How the database has been serving snapshot acquisitions: every
/// [`ProvDb::snapshot`] call resolves as exactly one of these three
/// outcomes. Exposed on the wire through the service `Stats` envelope so a
/// serving-loop regression (e.g. a refresh path silently degrading to
/// rebuilds) is observable without profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotCounters {
    /// The cached snapshot was still fresh and was handed out as-is.
    pub reuses: u64,
    /// A stale snapshot was extended incrementally from the delta log.
    pub refreshes: u64,
    /// A snapshot was built from scratch (cold start, oversized delta, or
    /// `max_refresh_fraction` = 0).
    pub rebuilds: u64,
}

/// The lifecycle provenance management system facade.
///
/// The graph lives behind an [`Arc`] and the frozen [`ProvIndex`] snapshot is
/// cached behind a lock: queries take `&self`, sessions opened through
/// [`ProvDb::segment_session`] are `'static` (they pin the snapshot they were
/// opened against), and mutations copy-on-write only when a live session
/// still holds the previous graph.
///
/// Snapshot lifecycle (DESIGN.md §6): mutations no longer invalidate the
/// cached snapshot — freshness is the cursor equality test
/// [`ProvIndex::is_fresh`], so the stale snapshot stays in the slot and the
/// next acquisition *extends* it from the append-only delta
/// ([`ProvIndex::refresh_in_place`]) instead of rebuilding, falling back to
/// a full build only when the delta outgrows the [`SnapshotPolicy`]
/// threshold. Every acquisition bumps exactly one [`SnapshotCounters`] slot.
#[derive(Debug, Default)]
pub struct ProvDb {
    graph: Arc<ProvGraph>,
    index: RwLock<Option<SharedIndex>>,
    /// Next version number per artifact name. `None` = not yet hydrated
    /// from the graph's `filename`/`version` properties — a lazily-decoded
    /// database defers the hydration scan (it would touch every property
    /// column) until versions are actually consulted.
    versions: RwLock<Option<FxHashMap<String, u32>>>,
    /// Durable backend, when opened through [`ProvDb::open`] /
    /// [`ProvDb::open_with_io`]. `None` = purely in-memory (the default).
    /// When present, the graph journals its mutations and every ingestion
    /// call drains the journal into one committed WAL batch.
    storage: Option<Box<dyn Storage>>,
    policy: SnapshotPolicy,
    /// Chunk count handed to the parallel query kernels; `0` means "track
    /// the pool width" (`PROV_THREADS` / hardware parallelism).
    parallelism: usize,
    reuses: AtomicU64,
    refreshes: AtomicU64,
    rebuilds: AtomicU64,
}

impl ProvDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing provenance graph.
    ///
    /// Version counters are rebuilt from the `name-vN` entities already in
    /// the graph, so [`ProvDb::add_artifact_version`] continues numbering
    /// where the wrapped history left off instead of colliding at `v1`.
    pub fn from_graph(graph: ProvGraph) -> Self {
        let versions = RwLock::new(Some(Self::versions_from_graph(&graph)));
        ProvDb { graph: Arc::new(graph), versions, ..ProvDb::default() }
    }

    /// Open (or create) a durable database in `dir` with the default
    /// [`DurabilityPolicy`]: recover the committed state from the snapshot +
    /// WAL on disk, then journal and durably commit every future mutation.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> StoreResult<ProvDb> {
        let io = StdIo::open(dir).map_err(|e| StoreError::StorageUnavailable(e.to_string()))?;
        Self::open_with_io(Box::new(io), DurabilityPolicy::default())
    }

    /// [`ProvDb::open`] over an explicit [`Io`] backend and policy — how
    /// tests run a durable database on a [`MemIo`](prov_store::storage::MemIo)
    /// disk or behind a fault injector.
    pub fn open_with_io(io: Box<dyn Io>, policy: DurabilityPolicy) -> StoreResult<ProvDb> {
        let (engine, Recovered { mut graph, index }) = WalStorage::open(io, policy)?;
        graph.set_journaling(true);
        // A lazily-decoded graph keeps its property columns deferred: the
        // version-counter hydration scan (which touches every vertex
        // property) is deferred with them, until first consulted.
        let versions = if graph.has_deferred_props() {
            RwLock::new(None)
        } else {
            RwLock::new(Some(Self::versions_from_graph(&graph)))
        };
        Ok(ProvDb {
            graph: Arc::new(graph),
            // Install the recovered index (snapshot base caught up with
            // `refresh_in_place` over the replayed WAL suffix): the first
            // snapshot acquisition after a cold start is a reuse, not a
            // rebuild.
            index: RwLock::new(Some(Arc::new(index))),
            versions,
            // All commits route through the group-commit pipeline; with the
            // default policy (`group_max_batches` = 1) every batch still
            // flushes before `persist()` acknowledges it.
            storage: Some(Box::new(CommitPipeline::new(engine))),
            ..ProvDb::default()
        })
    }

    /// Whether this database durably commits its mutations.
    pub fn is_durable(&self) -> bool {
        self.storage.is_some()
    }

    /// Durability activity counters (WAL appends, fsyncs, recoveries, ...);
    /// `None` for an in-memory database.
    pub fn durability_counters(&self) -> Option<DurabilityCounters> {
        self.storage.as_ref().map(|s| s.counters())
    }

    /// Bytes in the current WAL generation; `None` for an in-memory database.
    pub fn wal_bytes(&self) -> Option<u64> {
        self.storage.as_ref().map(|s| s.wal_bytes())
    }

    /// Force a compaction (snapshot the graph, start a fresh WAL generation).
    /// Returns whether one ran (`false` for an in-memory database).
    pub fn compact(&mut self) -> StoreResult<bool> {
        match self.storage.as_mut() {
            Some(storage) => {
                storage.compact(&self.graph)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Durably flush any group-buffered commits. Under a grouped
    /// [`DurabilityPolicy`] (`group_max_batches` > 1), mutations between
    /// flush points are accepted but not yet durable — this is the explicit
    /// durability barrier. No-op for ungrouped and in-memory databases.
    pub fn flush(&mut self) -> StoreResult<()> {
        match self.storage.as_mut() {
            Some(storage) => storage.flush(),
            None => Ok(()),
        }
    }

    /// Drain the graph's op journal into one durably committed WAL batch.
    /// No-op (and infallible) for in-memory databases and empty journals.
    ///
    /// Commit failures leave the in-memory graph ahead of the durable state
    /// and poison the storage engine: this and every later commit fail with
    /// [`StoreError::StorageUnavailable`] until the database is reopened,
    /// which recovers the last durably committed prefix.
    fn persist(&mut self) -> StoreResult<()> {
        if self.storage.is_none() || self.graph.journal_len() == 0 {
            return Ok(());
        }
        let ops = Arc::make_mut(&mut self.graph).take_journal();
        let storage = self.storage.as_mut().expect("checked above");
        storage.commit(&ops)?;
        storage.maybe_compact(&self.graph)?;
        Ok(())
    }

    /// Hydrate the version counters from the graph if they are still
    /// deferred (lazy decode). Idempotent; takes `&self` so read paths
    /// ([`ProvDb::latest_version`]) can trigger it too.
    fn ensure_versions(&self) {
        if self.versions.read().expect("versions lock").is_some() {
            return;
        }
        let map = Self::versions_from_graph(&self.graph);
        let mut slot = self.versions.write().expect("versions lock");
        if slot.is_none() {
            *slot = Some(map);
        }
    }

    /// Rebuild the per-artifact version counters from `filename`/`version`
    /// properties — shared by JSON import and durable recovery.
    fn versions_from_graph(graph: &ProvGraph) -> FxHashMap<String, u32> {
        let mut versions = FxHashMap::default();
        for v in graph.vertices_of_kind(VertexKind::Entity) {
            if let (Some(name), Some(ver)) = (
                graph.vprop(*v, "filename").and_then(|p| p.as_str().map(str::to_string)),
                graph.vprop(*v, "version").and_then(|p| p.as_int()),
            ) {
                let slot = versions.entry(name).or_insert(0u32);
                *slot = (*slot).max(ver as u32);
            }
        }
        versions
    }

    /// The snapshot refresh-vs-rebuild policy in force.
    pub fn snapshot_policy(&self) -> SnapshotPolicy {
        self.policy
    }

    /// Replace the snapshot policy (e.g. [`SnapshotPolicy::rebuild_always`]
    /// for baseline measurements).
    pub fn set_snapshot_policy(&mut self, policy: SnapshotPolicy) {
        self.policy = policy;
    }

    /// The effective query parallelism: how many chunks the parallel kernels
    /// (level-parallel lineage BFS, see [`crate::lineage`]) cut their work
    /// into. Defaults to the executor pool width — `PROV_THREADS` when set,
    /// the machine's available parallelism otherwise — so the CI thread
    /// matrix drives the parallel paths through ordinary queries. `1` means
    /// every query runs the sequential twin.
    pub fn parallelism(&self) -> usize {
        match self.parallelism {
            0 => rayon_core::configured_num_threads(),
            n => n,
        }
    }

    /// Pin the query parallelism to `threads` chunks (`1` forces the
    /// sequential engines, `0` restores the track-the-pool default). Chunk
    /// counts, not pool sizing: answers are identical at any value, only the
    /// fan-out shape changes.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads;
    }

    /// Cumulative snapshot acquisition outcomes since this database was
    /// created (reuse / incremental refresh / full rebuild).
    pub fn snapshot_counters(&self) -> SnapshotCounters {
        SnapshotCounters {
            reuses: self.reuses.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
        }
    }

    /// The underlying store (read-only).
    pub fn graph(&self) -> &ProvGraph {
        &self.graph
    }

    /// A shareable handle to the underlying store (what interactive sessions
    /// pin; cheap — clones the handle, not the graph).
    pub fn graph_shared(&self) -> Arc<ProvGraph> {
        Arc::clone(&self.graph)
    }

    /// The frozen snapshot, shared by all queries and sessions opened since
    /// the last mutation.
    ///
    /// Acquisition outcomes, cheapest first (each bumps its
    /// [`SnapshotCounters`] slot):
    ///
    /// 1. **reuse** — the cached snapshot's cursor equals the graph's: hand
    ///    it out under the read lock (the steady-state query path);
    /// 2. **refresh** — the graph grew within the policy threshold: extend
    ///    the stale snapshot from the delta log, in place when nothing else
    ///    pins it, on a column copy when live sessions do (their pinned
    ///    snapshot is immutable either way);
    /// 3. **rebuild** — cold start or oversized delta: full
    ///    [`ProvIndex::build`].
    pub fn snapshot(&self) -> SharedIndex {
        let cursor = self.graph.cursor();
        if let Some(idx) = self.index.read().expect("index lock").as_ref() {
            if idx.cursor() == cursor {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(idx);
            }
        }
        let mut slot = self.index.write().expect("index lock");
        // Re-check under the write lock: a racing caller may have already
        // brought the slot up to date (all callers see the same frozen
        // graph, so whichever lands is correct).
        if let Some(idx) = slot.as_ref() {
            if idx.cursor() == cursor {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(idx);
            }
        }
        let refreshable = slot.as_ref().is_some_and(|stale| {
            let at = stale.cursor();
            // A cursor beyond the graph's log means the store was swapped
            // out from under us (`with_graph_mut` misuse) — never refresh
            // from it.
            at.vertices <= cursor.vertices
                && at.edges <= cursor.edges
                && self.graph.delta_since(at).fraction() <= self.policy.max_refresh_fraction
        });
        let next = if refreshable {
            self.refreshes.fetch_add(1, Ordering::Relaxed);
            let stale = slot.take().expect("refreshable implies a cached snapshot");
            Arc::new(match Arc::try_unwrap(stale) {
                // Sole owner: extend the columns in place, no copy at all.
                Ok(mut owned) => {
                    owned.refresh_in_place(&self.graph);
                    owned
                }
                // Pinned by live sessions: extend a copy, leave theirs be.
                Err(shared) => shared.refreshed(&self.graph),
            })
        } else {
            self.rebuilds.fetch_add(1, Ordering::Relaxed);
            ProvIndex::build_shared(&self.graph)
        };
        *slot = Some(Arc::clone(&next));
        next
    }

    /// Mutable access to the store: copy-on-writes the graph if a live
    /// session still references it. The cached snapshot is left in place —
    /// it self-identifies as stale by cursor and is refreshed or rebuilt on
    /// the next acquisition.
    fn graph_mut(&mut self) -> &mut ProvGraph {
        Arc::make_mut(&mut self.graph)
    }

    /// Run a closure with mutable access to the underlying store — the
    /// escape hatch for ingestion shapes [`ProvDb::record_activity`] does
    /// not cover (bulk loads, test drivers). Copy-on-write semantics match
    /// every other mutation: live sessions keep their pinned graph.
    ///
    /// Contract: the closure must only *append* (the store is an append-only
    /// log; [`ProvGraph`] offers nothing else). Swapping the graph wholesale
    /// breaks snapshot freshness tracking — replace the database instead.
    ///
    /// On a durable database the closure's mutations are committed as one
    /// WAL batch. A commit failure cannot surface through this signature; it
    /// poisons the storage engine, so the *next* fallible operation reports
    /// [`StoreError::StorageUnavailable`]. Use [`ProvDb::try_with_graph_mut`]
    /// to observe the commit result directly.
    pub fn with_graph_mut<R>(&mut self, f: impl FnOnce(&mut ProvGraph) -> R) -> R {
        let r = f(self.graph_mut());
        let _ = self.persist(); // failure poisons storage; see doc comment
        r
    }

    /// [`ProvDb::with_graph_mut`] that reports the durable commit result:
    /// `Err` means the mutations are applied in memory but not durable (the
    /// storage engine is poisoned until reopen).
    pub fn try_with_graph_mut<R>(&mut self, f: impl FnOnce(&mut ProvGraph) -> R) -> StoreResult<R> {
        let r = f(self.graph_mut());
        self.persist()?;
        Ok(r)
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Register a team member. Errors (without invalidating the cached
    /// snapshot) when the vertex id space is exhausted.
    pub fn add_agent(&mut self, name: &str) -> StoreResult<VertexId> {
        self.graph.check_vertex_headroom(1)?;
        let id = self.graph_mut().add_agent(name);
        self.persist()?;
        Ok(id)
    }

    /// Register a new version of an artifact (external addition, e.g. a
    /// downloaded dataset); optionally attributed to an agent.
    ///
    /// Atomic: a rejected record leaves the store (and the version
    /// counters) untouched.
    pub fn add_artifact_version(
        &mut self,
        artifact: &str,
        attributed_to: Option<VertexId>,
    ) -> StoreResult<VertexId> {
        if let Some(agent) = attributed_to {
            self.expect_kind(agent, VertexKind::Agent, prov_model::EdgeKind::WasAttributedTo)?;
        }
        self.graph.check_vertex_headroom(1)?;
        self.graph.check_edge_headroom(attributed_to.is_some() as usize)?;
        let v = self.next_version(artifact);
        let graph = self.graph_mut();
        let e = graph.add_entity(&format!("{artifact}-v{v}"));
        graph.set_vprop(e, "filename", artifact);
        graph.set_vprop(e, "version", v as i64);
        if let Some(agent) = attributed_to {
            graph.add_edge(prov_model::EdgeKind::WasAttributedTo, e, agent)?;
        }
        self.persist()?;
        Ok(e)
    }

    fn next_version(&mut self, artifact: &str) -> u32 {
        self.ensure_versions();
        let mut versions = self.versions.write().expect("versions lock");
        let slot = versions.as_mut().expect("hydrated").entry(artifact.to_string()).or_insert(0);
        *slot += 1;
        *slot
    }

    /// Check that `v` exists and can be the target of a `kind` edge, without
    /// mutating anything — the up-front half of atomic ingestion.
    fn expect_kind(
        &self,
        v: VertexId,
        expected: VertexKind,
        kind: prov_model::EdgeKind,
    ) -> StoreResult<()> {
        let rec = self.graph.try_vertex(v)?;
        if rec.kind != expected {
            return Err(
                prov_model::EdgeTypeError { kind, src: kind.endpoints().0, dst: rec.kind }.into()
            );
        }
        Ok(())
    }

    /// Ingest one activity execution with its used/generated artifacts.
    ///
    /// Atomic: the record is validated in full before the first mutation, so
    /// a rejected request leaves the store, the version counters, and any
    /// pinned session snapshots untouched (no copy-on-write is paid either).
    pub fn record_activity(&mut self, record: ActivityRecord) -> StoreResult<ActivityOutcome> {
        if let Some(agent) = record.agent {
            self.expect_kind(agent, VertexKind::Agent, prov_model::EdgeKind::WasAssociatedWith)?;
        }
        for &input in &record.inputs {
            self.expect_kind(input, VertexKind::Entity, prov_model::EdgeKind::Used)?;
        }
        // Id-space headroom for the whole record, up front: one activity plus
        // the outputs; association + used + generated-by + (at most one)
        // derivation edge per output. A capacity failure must be a clean
        // typed error, not a mid-record panic or partial mutation.
        self.graph.check_vertex_headroom(1 + record.outputs.len())?;
        self.graph.check_edge_headroom(
            record.agent.is_some() as usize + record.inputs.len() + 2 * record.outputs.len(),
        )?;
        // Every fallible check is behind us: reserve version numbers (a
        // rejected request must not burn versions and leave a gap in the
        // `WasDerivedFrom` chain of a later valid request), then mutate.
        // The edges below are structurally valid by construction.
        let versions: Vec<u32> =
            record.outputs.iter().map(|spec| self.next_version(&spec.artifact)).collect();
        let graph = self.graph_mut();
        let a = graph.add_activity(&record.command);
        graph.set_vprop(a, "command", record.command.as_str());
        for (k, v) in &record.props {
            graph.set_vprop(a, k, v.clone());
        }
        if let Some(agent) = record.agent {
            graph.add_edge(prov_model::EdgeKind::WasAssociatedWith, a, agent)?;
        }
        for &input in &record.inputs {
            graph.add_edge(prov_model::EdgeKind::Used, a, input)?;
        }
        let mut outputs = Vec::with_capacity(record.outputs.len());
        for (spec, v) in record.outputs.iter().zip(versions) {
            let e = graph.add_entity(&format!("{}-v{}", spec.artifact, v));
            graph.set_vprop(e, "filename", spec.artifact.as_str());
            graph.set_vprop(e, "version", v as i64);
            for (k, val) in &spec.props {
                graph.set_vprop(e, k, val.clone());
            }
            graph.add_edge(prov_model::EdgeKind::WasGeneratedBy, e, a)?;
            // Version lineage: derive from the previous version when it is
            // still addressable. Best-effort by design — name shadowing (an
            // activity named like `model-v1`) can repoint the previous
            // version's name at a non-entity, and a fallible link here would
            // abort a half-applied record and break the atomicity contract.
            if v > 1 {
                if let Some(prev) = graph.vertex_by_name(&format!("{}-v{}", spec.artifact, v - 1)) {
                    if graph.vertex_kind(prev) == VertexKind::Entity {
                        graph.add_edge(prov_model::EdgeKind::WasDerivedFrom, e, prev)?;
                    }
                }
            }
            outputs.push(e);
        }
        self.persist()?;
        Ok(ActivityOutcome { activity: a, outputs })
    }

    /// Latest version of an artifact, if any.
    pub fn latest_version(&self, artifact: &str) -> Option<VertexId> {
        self.ensure_versions();
        let v = *self.versions.read().expect("versions lock").as_ref()?.get(artifact)?;
        self.graph.vertex_by_name(&format!("{artifact}-v{v}"))
    }

    /// Resolve an entity by its versioned name (`model-v2`).
    pub fn entity(&self, versioned_name: &str) -> Option<VertexId> {
        self.graph.vertex_by_name(versioned_name)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Run a one-shot PgSeg query.
    pub fn segment(&self, query: PgSegQuery, opts: &PgSegOptions) -> StoreResult<SegmentGraph> {
        let index = self.snapshot();
        prov_segment::pgseg(&self.graph, &index, query, opts)
    }

    /// Open an interactive PgSeg session (induce once, adjust repeatedly).
    ///
    /// The session is `'static`: it pins the current graph/index snapshot, so
    /// it stays valid (and unchanged) even if the database is mutated later —
    /// store it in a registry, hand it across threads, adjust at leisure.
    pub fn segment_session(
        &self,
        query: PgSegQuery,
        opts: &PgSegOptions,
    ) -> StoreResult<PgSegSession> {
        let index = self.snapshot();
        PgSegSession::open(self.graph_shared(), index, query, opts)
    }

    /// Summarize a set of segments with PgSum.
    pub fn summarize(&self, segments: &[SegmentRef], query: &PgSumQuery) -> Psg {
        pgsum(&self.graph, segments, query)
    }

    /// Transitive closure over the ancestry relations (`U`/`G` edges) in the
    /// given direction — the shared engine behind [`ProvDb::ancestors_of`]
    /// and [`ProvDb::descendants_of`].
    ///
    /// **Order contract** (wire-stable, part of the service envelope): the
    /// result is sorted ascending by dense vertex id and excludes the start
    /// vertex. BFS discovery order is an implementation detail of the
    /// epoch-scratch engine ([`crate::lineage`]) and never escapes; callers
    /// and examples may rely on the sorted order.
    pub fn lineage(&self, e: VertexId, direction: LineageDirection) -> Vec<VertexId> {
        self.lineage_ir(e, direction, LineageBound::Unbounded)
    }

    /// Depth-bounded lineage: every vertex within `max_hops` ancestry hops
    /// (one hop = one `U`/`G` edge, so "k activities away" is `2k` hops).
    /// Same order contract as [`ProvDb::lineage`].
    pub fn lineage_within(
        &self,
        e: VertexId,
        direction: LineageDirection,
        max_hops: u32,
    ) -> Vec<VertexId> {
        self.lineage_ir(e, direction, LineageBound::Within(max_hops))
    }

    /// The k-hop ring: only the vertices at *exactly* `hops` ancestry hops
    /// from `e` (BFS distance). Same order contract as [`ProvDb::lineage`].
    pub fn k_hop(&self, e: VertexId, direction: LineageDirection, hops: u32) -> Vec<VertexId> {
        self.lineage_ir(e, direction, LineageBound::Exactly(hops))
    }

    /// Shared lineage path: lower to a one-step query-IR pipeline
    /// ([`crate::lineage::compile_lineage`]) and evaluate it over the
    /// current snapshot. `lineage_over_par` stays alive in `crate::lineage`
    /// as the differential reference for this lowering.
    fn lineage_ir(
        &self,
        e: VertexId,
        direction: LineageDirection,
        bound: LineageBound,
    ) -> Vec<VertexId> {
        self.query(compile_lineage(e, direction, bound))
            .expect("lineage pipelines always compile and a fresh snapshot is never stale")
            .rows
    }

    /// Evaluate a query-IR pipeline over the current snapshot.
    ///
    /// This is the unified read path every fixed-shape query compiles into
    /// (DESIGN.md §9); `lineage`, `find_by_prop`, and lowerable patterns all
    /// route through here. Returns the full (unpaginated) output; pair with
    /// [`prov_store::paginate`] or the wire `Query` envelope for cursors.
    pub fn query(&self, pipeline: Pipeline) -> StoreResult<QueryOutput> {
        let plan = Plan::compile(pipeline)?;
        prov_store::evaluate(&self.graph, &self.snapshot(), &plan, self.parallelism())
    }

    /// Evaluate a pipeline bounded to an older `watermark` — the replay mode
    /// behind resumable cursors: only vertices and edges at ranks below the
    /// watermark participate, so the answer matches what the snapshot looked
    /// like when the watermark was taken.
    pub fn query_at(&self, pipeline: Pipeline, watermark: DeltaCursor) -> StoreResult<QueryOutput> {
        let plan = Plan::compile(pipeline)?;
        prov_store::evaluate_at(&self.graph, &self.snapshot(), &plan, watermark, self.parallelism())
    }

    /// Vertices of `kind` carrying property `key == value`, ascending by id
    /// — the IR route (`StartSet::Kind` + `PropFilter`), byte-identical to
    /// the frozen [`ProvGraph::find_by_prop`] reference.
    pub fn find_by_prop(&self, kind: VertexKind, key: &str, value: &PropValue) -> Vec<VertexId> {
        self.query(Pipeline::find_by_prop(kind, key, value.clone()))
            .expect("find_by_prop pipelines always compile")
            .rows
    }

    /// All ancestors of an entity (transitive inputs through `U`/`G` edges).
    pub fn ancestors_of(&self, e: VertexId) -> Vec<VertexId> {
        self.lineage(e, LineageDirection::Ancestors)
    }

    /// Everything derived (transitively) from an entity.
    pub fn descendants_of(&self, e: VertexId) -> Vec<VertexId> {
        self.lineage(e, LineageDirection::Descendants)
    }

    /// Export to the PROV-JSON-style interchange format.
    pub fn export_json(&self) -> String {
        prov_store::json::to_json_string(&self.graph)
    }

    /// Import from the interchange format.
    pub fn import_json(data: &str) -> StoreResult<ProvDb> {
        let graph = prov_store::json::from_json_string(data)?;
        Ok(ProvDb::from_graph(graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_project() -> (ProvDb, VertexId, VertexId) {
        let mut db = ProvDb::new();
        let alice = db.add_agent("alice").unwrap();
        let data = db.add_artifact_version("dataset", Some(alice)).unwrap();
        let out = db
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: Some(alice),
                inputs: vec![data],
                outputs: vec![
                    OutputSpec::named("weights").with("acc", 0.7),
                    OutputSpec::named("log"),
                ],
                props: vec![("opt".into(), "-gpu".into())],
            })
            .unwrap();
        (db, data, out.outputs[0])
    }

    #[test]
    fn ingestion_builds_prov_structure() {
        let (db, data, weights) = small_project();
        let g = db.graph();
        assert_eq!(g.kind_count(VertexKind::Entity), 3);
        assert_eq!(g.kind_count(VertexKind::Activity), 1);
        assert_eq!(g.vertex_name(weights), Some("weights-v1"));
        assert_eq!(g.vprop(weights, "acc").and_then(|v| v.as_float()), Some(0.7));
        assert_eq!(g.vertex_name(data), Some("dataset-v1"));
        g.validate_acyclic().unwrap();
    }

    #[test]
    fn versioning_links_derivations() {
        let (mut db, data, w1) = small_project();
        let out = db
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: None,
                inputs: vec![data],
                outputs: vec![OutputSpec::named("weights").with("acc", 0.75)],
                props: vec![],
            })
            .unwrap();
        let w2 = out.outputs[0];
        assert_eq!(db.graph().vertex_name(w2), Some("weights-v2"));
        assert_eq!(db.latest_version("weights"), Some(w2));
        // D edge w2 -> w1 exists.
        let derived: Vec<VertexId> =
            db.graph().out_neighbors(w2, prov_model::EdgeKind::WasDerivedFrom).collect();
        assert_eq!(derived, vec![w1]);
    }

    #[test]
    fn lineage_queries() {
        let (db, data, weights) = small_project();
        let anc = db.ancestors_of(weights);
        assert!(anc.contains(&data));
        let desc = db.descendants_of(data);
        assert!(desc.contains(&weights));
        assert!(!db.ancestors_of(data).contains(&weights));
    }

    /// Regression for the wire order contract: lineage output is sorted
    /// ascending by id, never BFS discovery order, and matches the frozen
    /// seed implementation exactly.
    #[test]
    fn lineage_output_is_sorted_not_discovery_ordered() {
        let (mut db, data, weights) = small_project();
        // A second generation whose activity is discovered before its
        // (lower-id) sibling inputs, so BFS discovery order != id order.
        let out = db
            .record_activity(ActivityRecord {
                command: "eval".into(),
                agent: None,
                inputs: vec![weights, data],
                outputs: vec![OutputSpec::named("report")],
                props: vec![],
            })
            .unwrap();
        let report = out.outputs[0];
        let anc = db.ancestors_of(report);
        assert!(anc.windows(2).all(|w| w[0] < w[1]), "not ascending: {anc:?}");
        assert!(anc.contains(&data) && anc.contains(&weights));
        assert!(!anc.contains(&report), "start vertex must be excluded");
        // Differential vs the frozen seed path on the same snapshot.
        let idx = db.snapshot();
        for dir in [LineageDirection::Ancestors, LineageDirection::Descendants] {
            for v in [data, weights, report] {
                assert_eq!(db.lineage(v, dir), lineage_reference(&idx, v, dir));
            }
        }
    }

    #[test]
    fn bounded_lineage_and_k_hop_respect_hop_semantics() {
        let (db, data, weights) = small_project();
        // weights <-G- train <-U- data: 2 hops from weights up to data.
        assert_eq!(db.lineage_within(weights, LineageDirection::Ancestors, 0), vec![]);
        let one = db.lineage_within(weights, LineageDirection::Ancestors, 1);
        assert!(!one.contains(&data), "data is 2 hops away");
        let two = db.lineage_within(weights, LineageDirection::Ancestors, 2);
        assert!(two.contains(&data));
        assert_eq!(db.k_hop(weights, LineageDirection::Ancestors, 2), vec![data]);
        assert!(db.k_hop(weights, LineageDirection::Ancestors, 9).is_empty());
        // Unbounded == a large-enough bound.
        assert_eq!(
            db.lineage_within(weights, LineageDirection::Ancestors, 100),
            db.ancestors_of(weights)
        );
    }

    #[test]
    fn snapshot_counters_track_reuse_refresh_rebuild() {
        let (mut db, data, weights) = small_project();
        assert_eq!(db.snapshot_counters(), SnapshotCounters::default());
        // Grow the frozen prefix so a one-activity delta stays well under
        // the default 0.5 refresh threshold.
        for i in 0..6 {
            db.record_activity(ActivityRecord {
                command: format!("prep{i}"),
                agent: None,
                inputs: vec![data],
                outputs: vec![OutputSpec::named("prep")],
                props: vec![],
            })
            .unwrap();
        }
        // Cold start: the first acquisition is a rebuild, the second a reuse.
        let _ = db.snapshot();
        let _ = db.snapshot();
        let c = db.snapshot_counters();
        assert_eq!((c.rebuilds, c.refreshes, c.reuses), (1, 0, 1));
        // A small ingest leaves the stale snapshot refreshable.
        db.record_activity(ActivityRecord {
            command: "tweak".into(),
            agent: None,
            inputs: vec![data],
            outputs: vec![OutputSpec::named("weights")],
            props: vec![],
        })
        .unwrap();
        let refreshed = db.snapshot();
        let c = db.snapshot_counters();
        assert_eq!((c.rebuilds, c.refreshes, c.reuses), (1, 1, 1));
        // The refreshed snapshot equals a reference rebuild.
        assert_eq!(*refreshed, ProvIndex::build(db.graph()));
        // Rebuild-always policy: the same situation rebuilds instead.
        db.set_snapshot_policy(SnapshotPolicy::rebuild_always());
        db.record_activity(ActivityRecord {
            command: "tweak".into(),
            agent: None,
            inputs: vec![weights],
            outputs: vec![OutputSpec::named("weights")],
            props: vec![],
        })
        .unwrap();
        let _ = db.snapshot();
        let c = db.snapshot_counters();
        assert_eq!((c.rebuilds, c.refreshes, c.reuses), (2, 1, 1));
        // An oversized delta under the default policy also rebuilds.
        let mut db2 = ProvDb::new();
        let a = db2.add_agent("a").unwrap();
        let _ = db2.snapshot();
        for _ in 0..50 {
            db2.add_artifact_version("blob", Some(a)).unwrap();
        }
        let _ = db2.snapshot();
        assert_eq!(db2.snapshot_counters().rebuilds, 2, "50x growth must not refresh");
    }

    #[test]
    fn refresh_under_pinned_session_leaves_the_pin_untouched() {
        let (mut db, data, weights) = small_project();
        let session = db
            .segment_session(
                PgSegQuery::between(vec![data], vec![weights]),
                &PgSegOptions::default(),
            )
            .unwrap();
        let pinned_n = session.index().vertex_count();
        db.record_activity(ActivityRecord {
            command: "tweak".into(),
            agent: None,
            inputs: vec![data],
            outputs: vec![OutputSpec::named("extra")],
            props: vec![],
        })
        .unwrap();
        // The session pins the old snapshot, so the refresh copies.
        let fresh = db.snapshot();
        assert_eq!(db.snapshot_counters().refreshes, 1);
        assert_eq!(session.index().vertex_count(), pinned_n, "pinned snapshot must not move");
        assert!(fresh.vertex_count() > pinned_n);
        assert_eq!(*fresh, ProvIndex::build(db.graph()));
    }

    #[test]
    fn with_graph_mut_appends_are_picked_up_by_refresh() {
        let (mut db, data, _) = small_project();
        let v = db.with_graph_mut(|g| {
            let t = g.add_activity("bulk");
            let w = g.add_entity("bulk-out");
            g.add_edge(prov_model::EdgeKind::Used, t, data).unwrap();
            g.add_edge(prov_model::EdgeKind::WasGeneratedBy, w, t).unwrap();
            w
        });
        assert!(db.descendants_of(data).contains(&v));
        assert_eq!(*db.snapshot(), ProvIndex::build(db.graph()));
    }

    #[test]
    fn segment_and_summarize_roundtrip() {
        let (db, data, weights) = small_project();
        let seg = db
            .segment(PgSegQuery::between(vec![data], vec![weights]), &PgSegOptions::default())
            .unwrap();
        assert!(seg.vertex_count() >= 3);
        let psg = db.summarize(&[SegmentRef::from(&seg)], &PgSumQuery::fig2e());
        assert!(psg.vertex_count() >= 3);
        assert!(psg.compaction_ratio() <= 1.0);
    }

    #[test]
    fn rejected_activity_is_atomic() {
        let (mut db, data, _) = small_project();
        let vertices_before = db.graph().vertex_count();
        let edges_before = db.graph().edge_count();
        // `data` is an entity, not an agent: the association edge is invalid
        // and the whole record is rejected...
        let err = db.record_activity(ActivityRecord {
            command: "train".into(),
            agent: Some(data),
            inputs: vec![],
            outputs: vec![OutputSpec::named("model")],
            props: vec![],
        });
        assert!(err.is_err());
        // ...leaving the store byte-for-byte untouched: no orphan activity
        // vertex, no stray edges...
        assert_eq!(db.graph().vertex_count(), vertices_before);
        assert_eq!(db.graph().edge_count(), edges_before);
        // ...and no reserved version: the next valid record starts the
        // artifact at v1 and keeps the derivation chain gap-free.
        let out = db
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: None,
                inputs: vec![data],
                outputs: vec![OutputSpec::named("model")],
                props: vec![],
            })
            .unwrap();
        assert_eq!(db.graph().vertex_name(out.outputs[0]), Some("model-v1"));
        assert_eq!(db.latest_version("model"), Some(out.outputs[0]));
    }

    #[test]
    fn name_shadowed_prev_version_cannot_break_atomicity() {
        let (mut db, data, _) = small_project();
        // An activity whose command collides with the weights-v1 name
        // repoints `by_name["weights-v1"]` at a non-entity.
        db.record_activity(ActivityRecord {
            command: "weights-v1".into(),
            agent: None,
            inputs: vec![data],
            outputs: vec![],
            props: vec![],
        })
        .unwrap();
        // The next weights version must still ingest cleanly: the derivation
        // link is skipped (its target is no longer an entity), not failed.
        let out = db
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: None,
                inputs: vec![data],
                outputs: vec![OutputSpec::named("weights")],
                props: vec![],
            })
            .unwrap();
        let w2 = out.outputs[0];
        assert_eq!(db.graph().vertex_name(w2), Some("weights-v2"));
        assert!(db
            .graph()
            .out_neighbors(w2, prov_model::EdgeKind::WasDerivedFrom)
            .next()
            .is_none());
        db.graph().validate_acyclic().unwrap();
    }

    #[test]
    fn sessions_pin_their_snapshot_across_mutations() {
        let (mut db, data, weights) = small_project();
        let mut session = db
            .segment_session(
                PgSegQuery::between(vec![data], vec![weights]),
                &PgSegOptions::default(),
            )
            .unwrap();
        let before = session.segment().vertex_count();
        // Mutating the database copy-on-writes the graph; the live session
        // keeps evaluating against the snapshot it pinned at open.
        db.record_activity(ActivityRecord {
            command: "train".into(),
            agent: None,
            inputs: vec![data],
            outputs: vec![OutputSpec::named("weights")],
            props: vec![],
        })
        .unwrap();
        assert!(db.graph().vertex_count() > session.graph().vertex_count());
        session.expand(&[data], 1);
        assert_eq!(session.segment().vertex_count(), before);
    }

    #[test]
    fn json_round_trip_preserves_versions() {
        let (db, ..) = small_project();
        let json = db.export_json();
        let mut db2 = ProvDb::import_json(&json).unwrap();
        assert_eq!(db2.graph().vertex_count(), db.graph().vertex_count());
        // Version counters restored: the next weights version is v2.
        let out = db2
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: None,
                inputs: vec![],
                outputs: vec![OutputSpec::named("weights")],
                props: vec![],
            })
            .unwrap();
        assert_eq!(db2.graph().vertex_name(out.outputs[0]), Some("weights-v2"));
    }

    #[test]
    fn entity_lookup_by_versioned_name() {
        let (db, data, _) = small_project();
        assert_eq!(db.entity("dataset-v1"), Some(data));
        assert_eq!(db.entity("dataset-v9"), None);
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    use prov_store::storage::MemIo;

    fn open_mem(disk: &MemIo) -> ProvDb {
        ProvDb::open_with_io(Box::new(disk.clone()), DurabilityPolicy::never_compact()).unwrap()
    }

    /// Drive the same ingestion through a durable db and return it.
    fn durable_project(disk: &MemIo) -> (ProvDb, VertexId, VertexId) {
        let mut db = open_mem(disk);
        let alice = db.add_agent("alice").unwrap();
        let data = db.add_artifact_version("dataset", Some(alice)).unwrap();
        let out = db
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: Some(alice),
                inputs: vec![data],
                outputs: vec![
                    OutputSpec::named("weights").with("acc", 0.7),
                    OutputSpec::named("log"),
                ],
                props: vec![("opt".into(), "-gpu".into())],
            })
            .unwrap();
        (db, data, out.outputs[0])
    }

    #[test]
    fn durable_reopen_restores_graph_index_and_versions() {
        let disk = MemIo::new();
        let (db, ..) = durable_project(&disk);
        assert!(db.is_durable());
        let counters = db.durability_counters().unwrap();
        assert_eq!(counters.wal_appends, 3, "one batch per ingestion call");
        assert_eq!(counters.fsyncs, 3);
        drop(db);

        let mut db2 = open_mem(&disk);
        let (reference, ..) = small_project();
        assert_eq!(db2.graph(), reference.graph(), "recovered graph == in-memory twin");
        // The recovered index is installed: the first acquisition reuses it
        // and equals a from-scratch rebuild.
        let snap = db2.snapshot();
        assert_eq!(db2.snapshot_counters().reuses, 1);
        assert_eq!(db2.snapshot_counters().rebuilds, 0);
        assert_eq!(*snap, ProvIndex::build(db2.graph()));
        // Version counters recovered: the next weights version is v2, and it
        // derives from the recovered v1.
        let out = db2
            .record_activity(ActivityRecord {
                command: "retrain".into(),
                agent: None,
                inputs: vec![],
                outputs: vec![OutputSpec::named("weights")],
                props: vec![],
            })
            .unwrap();
        assert_eq!(db2.graph().vertex_name(out.outputs[0]), Some("weights-v2"));
        assert_eq!(db2.durability_counters().unwrap().recoveries, 1);
    }

    #[test]
    fn durable_with_graph_mut_commits_one_batch() {
        let disk = MemIo::new();
        let (mut db, data, _) = durable_project(&disk);
        let appends_before = db.durability_counters().unwrap().wal_appends;
        let v = db
            .try_with_graph_mut(|g| {
                let t = g.add_activity("bulk");
                let w = g.add_entity("bulk-out");
                g.add_edge(prov_model::EdgeKind::Used, t, data).unwrap();
                g.add_edge(prov_model::EdgeKind::WasGeneratedBy, w, t).unwrap();
                w
            })
            .unwrap();
        assert_eq!(db.durability_counters().unwrap().wal_appends, appends_before + 1);
        let db2 = open_mem(&disk);
        assert_eq!(db2.graph(), db.graph());
        assert!(db2.descendants_of(data).contains(&v));
    }

    #[test]
    fn durable_compaction_is_transparent_to_reopen() {
        let disk = MemIo::new();
        let (mut db, data, _) = durable_project(&disk);
        assert!(db.wal_bytes().unwrap() > 0);
        assert!(db.compact().unwrap());
        assert_eq!(db.wal_bytes().unwrap(), 0);
        assert_eq!(db.durability_counters().unwrap().snapshots_written, 1);
        // Post-compaction ingest lands in the new WAL generation.
        db.add_artifact_version("dataset", None).unwrap();
        let db2 = open_mem(&disk);
        assert_eq!(db2.graph(), db.graph());
        assert_eq!(db2.durability_counters().unwrap().batches_replayed, 1);
        assert_eq!(db2.latest_version("dataset"), db.latest_version("dataset"));
        assert!(db2.descendants_of(data).len() >= 2);
    }

    #[test]
    fn durable_auto_compaction_follows_policy() {
        let disk = MemIo::new();
        let mut db = ProvDb::open_with_io(
            Box::new(disk.clone()),
            DurabilityPolicy { compact_after_wal_bytes: 256, ..DurabilityPolicy::default() },
        )
        .unwrap();
        for _ in 0..20 {
            db.add_artifact_version("blob", None).unwrap();
        }
        let counters = db.durability_counters().unwrap();
        assert!(counters.snapshots_written >= 1, "auto-compaction never fired");
        let db2 = open_mem(&disk);
        assert_eq!(db2.graph(), db.graph());
    }

    #[test]
    fn rejected_durable_activity_commits_nothing() {
        let disk = MemIo::new();
        let (mut db, data, _) = durable_project(&disk);
        let appends = db.durability_counters().unwrap().wal_appends;
        let before = db.graph().clone();
        // `data` is an entity, not an agent — rejected up front.
        assert!(db
            .record_activity(ActivityRecord {
                command: "x".into(),
                agent: Some(data),
                inputs: vec![],
                outputs: vec![OutputSpec::named("m")],
                props: vec![],
            })
            .is_err());
        assert_eq!(db.durability_counters().unwrap().wal_appends, appends);
        assert_eq!(db.graph(), &before);
        let db2 = open_mem(&disk);
        assert_eq!(db2.graph(), &before);
    }

    #[test]
    fn in_memory_databases_have_no_durability_surface() {
        let (mut db, ..) = small_project();
        assert!(!db.is_durable());
        assert_eq!(db.durability_counters(), None);
        assert_eq!(db.wal_bytes(), None);
        assert!(!db.compact().unwrap());
        assert_eq!(db.graph().journal_len(), 0, "no journaling overhead in memory");
    }
}
