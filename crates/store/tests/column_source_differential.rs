//! ColumnSource differential: lazy snapshot decode must be observationally
//! identical to eager decode on randomized snapshots — full [`ProvGraph`]
//! equality and [`ProvIndex::build`] equivalence — while [`MemIo`]'s
//! byte-range accounting proves the lazy open never reads a single byte of
//! the property columns it claims to defer.
//!
//! Each case drives a random op stream through a journaling graph committed
//! batch-by-batch into a [`WalStorage`], compacts (producing a segmented
//! `PROVSEG1` snapshot), then commits a random WAL tail on top (so recovery
//! replays prop ops *onto* a lazy base, exercising the queue protocol).
//! The frozen disk is then opened twice — eager and lazy — and compared.

use proptest::prelude::*;
use prov_model::{EdgeKind, VertexKind};
use prov_store::storage::{column, snapshot_file_name, ColumnSource, SnapshotDecode, Storage};
use prov_store::{DurabilityPolicy, MemIo, ProvGraph, ProvIndex, WalStorage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pick(g: &ProvGraph, rng: &mut StdRng, kind: VertexKind) -> Option<prov_model::VertexId> {
    let of_kind = g.vertices_of_kind(kind);
    if of_kind.is_empty() {
        None
    } else {
        Some(of_kind[rng.gen_range(0..of_kind.len())])
    }
}

/// One random journaled mutation; mirrors the op mix of `paranoid_ops` plus
/// edge properties and unsets so both property columns get populated.
fn mutate(g: &mut ProvGraph, rng: &mut StdRng, step: usize) {
    match rng.gen_range(0..10u32) {
        0 => {
            g.add_entity(&format!("e{step}"));
        }
        1 => {
            g.add_activity(&format!("a{step}"));
        }
        2 => {
            g.add_agent(&format!("u{step}"));
        }
        3 => {
            if let (Some(a), Some(e)) =
                (pick(g, rng, VertexKind::Activity), pick(g, rng, VertexKind::Entity))
            {
                g.add_edge(EdgeKind::Used, a, e).unwrap();
            }
        }
        4 => {
            if let (Some(e), Some(a)) =
                (pick(g, rng, VertexKind::Entity), pick(g, rng, VertexKind::Activity))
            {
                g.add_edge(EdgeKind::WasGeneratedBy, e, a).unwrap();
            }
        }
        5 => {
            if let Some(v) = pick(g, rng, VertexKind::Entity) {
                match rng.gen_range(0..4u32) {
                    0 => g.set_vprop(v, "tag", format!("t{step}")),
                    1 => g.set_vprop(v, "score", rng.gen_range(-9i64..9)),
                    2 => g.set_vprop(v, "ok", rng.gen_bool(0.5)),
                    _ => g.set_vprop(v, "w", f64::from(rng.gen_range(0u32..100)) / 7.0),
                }
            }
        }
        6 => {
            if let Some(v) = pick(g, rng, VertexKind::Entity) {
                g.unset_vprop(v, "tag");
            }
        }
        7 => {
            if let (Some(a), Some(e)) =
                (pick(g, rng, VertexKind::Activity), pick(g, rng, VertexKind::Entity))
            {
                if let Ok(edge) = g.add_edge(EdgeKind::Used, a, e) {
                    g.set_eprop(edge, "role", format!("r{}", step % 3));
                }
            }
        }
        8 => {
            g.create_vprop_index(VertexKind::Entity, "score");
        }
        _ => {
            if let Some(v) = pick(g, rng, VertexKind::Agent) {
                g.set_vprop(v, "team", format!("g{}", step % 2));
            }
        }
    }
}

/// `true` when the range-read `(off, len)` shares at least one byte with
/// `seg`.
fn overlaps(off: u64, len: u64, seg: &column::Segment) -> bool {
    off < seg.offset + u64::from(seg.len) && off + len > seg.offset
}

#[derive(Debug)]
struct Slice<'a>(&'a [u8]);

impl ColumnSource for Slice<'_> {
    fn len(&self) -> u64 {
        self.0.len() as u64
    }

    fn read_range(&self, offset: u64, len: usize) -> prov_store::storage::IoResult<Vec<u8>> {
        let off = usize::try_from(offset).unwrap();
        Ok(self.0[off..off + len].to_vec())
    }
}

fn run_case(seed: u64, steps: usize, tail_steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let disk = MemIo::new();
    let (mut storage, rec) =
        WalStorage::open(Box::new(disk.clone()), DurabilityPolicy::never_compact()).unwrap();
    let mut graph = rec.graph;
    graph.set_journaling(true);

    // Random history, committed in small batches, then folded into a
    // segmented snapshot.
    for step in 0..steps {
        mutate(&mut graph, &mut rng, step);
        if rng.gen_bool(0.4) {
            let ops = graph.take_journal();
            storage.commit(&ops).unwrap();
        }
    }
    let ops = graph.take_journal();
    storage.commit(&ops).unwrap();
    storage.compact(&graph).unwrap();

    // A random WAL tail on top of the snapshot: recovery must replay these
    // (including prop ops) over the lazily-decoded base.
    for step in 0..tail_steps {
        mutate(&mut graph, &mut rng, steps + step);
        let ops = graph.take_journal();
        storage.commit(&ops).unwrap();
    }
    let generation = storage.generation();
    drop(storage);

    // Open the frozen disk twice: once eager, once lazy.
    let (_eager_store, eager) =
        WalStorage::open(Box::new(disk.fork()), DurabilityPolicy::never_compact()).unwrap();
    assert_eq!(eager.graph, graph, "eager recovery must reproduce the live graph");

    let lazy_disk = disk.fork(); // fresh range-read log
    let lazy_policy = DurabilityPolicy::never_compact().with_lazy_decode();
    let (lazy_store, lazy) = WalStorage::open(Box::new(lazy_disk.clone()), lazy_policy).unwrap();

    // The deferral is real: both property segments pending, zero loads.
    let snap_name = snapshot_file_name(generation);
    let image = disk.file(&snap_name).unwrap();
    let dir = column::read_directory(&Slice(&image)).unwrap();
    // Segment ids are part of the PROVSEG1 format: 3 = vprops, 4 = eprops.
    let (vprops, eprops) = (&dir.segments[3], &dir.segments[4]);
    let c = lazy_store.counters();
    assert_eq!(c.lazy_segments_deferred, 2);
    assert_eq!(c.lazy_deferred_bytes, u64::from(vprops.len) + u64::from(eprops.len));
    assert_eq!(c.lazy_segment_loads, 0, "open must not touch deferred columns");
    assert_eq!(lazy_store.policy().decode, SnapshotDecode::Lazy);

    // Byte-range accounting: no read issued so far — directory, structural
    // segments, WAL scan — may overlap either deferred property column.
    let pre_touch = lazy_disk.range_reads();
    assert!(!pre_touch.is_empty(), "lazy open must go through the column source");
    for (name, off, len) in &pre_touch {
        if name == &snap_name {
            assert!(
                !overlaps(*off, *len, vprops) && !overlaps(*off, *len, eprops),
                "lazy open read deferred bytes: {name} @ {off}+{len}"
            );
        }
    }

    // Index equivalence needs no property bytes at all.
    assert_eq!(lazy.index, eager.index, "lazy and eager recovered indexes diverge");
    assert_eq!(lazy.index, ProvIndex::build(&eager.graph), "recovered != rebuilt");
    assert_eq!(lazy_store.counters().lazy_segment_loads, 0, "index build touched columns");

    // First real touch: full-graph equality materializes the overlay, loads
    // exactly the two deferred segments, and the range log shows them.
    assert_eq!(lazy.graph, eager.graph, "lazy graph diverged from eager");
    lazy.graph.validate().unwrap();
    let c = lazy_store.counters();
    assert_eq!(c.lazy_segment_loads, 2);
    assert_eq!(c.lazy_bytes_loaded, c.lazy_deferred_bytes);
    let touched = lazy_disk.range_reads();
    assert!(
        touched.iter().any(|(n, off, len)| n == &snap_name && overlaps(*off, *len, vprops))
            || vprops.len == 0,
        "materialization never read the vprops column"
    );
    assert!(
        touched.iter().any(|(n, off, len)| n == &snap_name && overlaps(*off, *len, eprops))
            || eprops.len == 0,
        "materialization never read the eprops column"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lazy_decode_is_observationally_eager_and_never_reads_untouched_columns(
        seed in any::<u64>(),
        steps in 8usize..48,
        tail_steps in 0usize..8,
    ) {
        run_case(seed, steps, tail_steps);
    }
}

/// The empty-graph edge: zero-length property segments defer trivially and
/// materialize without a single property byte read.
#[test]
fn empty_snapshot_lazy_open_reads_no_property_bytes() {
    run_case(0, 0, 0);
}
