//! Synthetic workload generators reproducing the paper's datasets (Sec. V).
//!
//! Real-world lifecycle provenance corpora are tiny or private, so the paper
//! evaluates on two synthetic generators, both reimplemented here with the
//! published parameterization:
//!
//! * [`pd`] — `Pd` collaborative-project provenance graphs for PgSeg
//!   experiments (Fig. 5(a)–(d));
//! * [`sd`] — `Sd` Markov-chain segment sets for PgSum experiments
//!   (Fig. 5(e)–(h));
//! * [`stream`] — the `Pd` workload as a deterministic *ingest stream*
//!   (batched activity records against a live store) for the fig7
//!   serving-loop interleave benchmark;
//! * [`dist`] — the underlying Zipf / Poisson / Gamma / Dirichlet samplers
//!   (built on `rand`, which provides none of them).

pub mod dist;
pub mod pd;
pub mod sd;
pub mod stream;

pub use dist::{categorical, dirichlet, gamma, poisson, standard_normal, ZipfTable};
pub use pd::{generate_pd, pd_segments, sources_at_percentile, standard_query, PdParams};
pub use sd::{generate_sd, SdOutput, SdParams, SdSegment};
pub use stream::{ActivityStream, StreamActivity, StreamParams};
