//! Schema-later properties (`σ`, `ω` of Definition 1).
//!
//! Provenance records ingested during activity executions are key/value pairs
//! with no predefined schema (Sec. I, II). Keys are interned to [`PropKeyId`]
//! by the store; values are a small dynamic type.

use crate::ids::PropKeyId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A property value (`O` in Definition 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum PropValue {
    /// String value (interned cheaply via `Arc<str>`).
    Str(Arc<str>),
    /// 64-bit integer value.
    Int(i64),
    /// 64-bit float value (e.g. `acc: 0.75`).
    Float(f64),
    /// Boolean value.
    Bool(bool),
}

impl PropValue {
    /// String content, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PropValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float content; integers are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            PropValue::Float(f) => Some(*f),
            PropValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean content, if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            PropValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl PartialEq for PropValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (PropValue::Str(a), PropValue::Str(b)) => a == b,
            (PropValue::Int(a), PropValue::Int(b)) => a == b,
            // Floats compare by bit pattern so that PropValue is usable as a
            // grouping key in summarization (NaN == NaN for our purposes).
            (PropValue::Float(a), PropValue::Float(b)) => a.to_bits() == b.to_bits(),
            (PropValue::Bool(a), PropValue::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for PropValue {}

impl std::hash::Hash for PropValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            PropValue::Str(s) => {
                state.write_u8(0);
                s.hash(state);
            }
            PropValue::Int(i) => {
                state.write_u8(1);
                i.hash(state);
            }
            PropValue::Float(f) => {
                state.write_u8(2);
                f.to_bits().hash(state);
            }
            PropValue::Bool(b) => {
                state.write_u8(3);
                b.hash(state);
            }
        }
    }
}

impl std::fmt::Display for PropValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PropValue::Str(s) => write!(f, "{s}"),
            PropValue::Int(i) => write!(f, "{i}"),
            PropValue::Float(x) => write!(f, "{x}"),
            PropValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for PropValue {
    fn from(s: &str) -> Self {
        PropValue::Str(Arc::from(s))
    }
}

impl From<String> for PropValue {
    fn from(s: String) -> Self {
        PropValue::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for PropValue {
    fn from(i: i64) -> Self {
        PropValue::Int(i)
    }
}

impl From<f64> for PropValue {
    fn from(f: f64) -> Self {
        PropValue::Float(f)
    }
}

impl From<bool> for PropValue {
    fn from(b: bool) -> Self {
        PropValue::Bool(b)
    }
}

/// A small sorted association list from interned keys to values.
///
/// Vertices/edges carry a handful of properties each, so a sorted `Vec` beats a
/// hash map on both memory and lookup time (see the perf-book guidance on small
/// collections).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropMap {
    entries: Vec<(PropKeyId, PropValue)>,
}

impl PropMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no property is present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or overwrite a property; returns the previous value if any.
    pub fn set(&mut self, key: PropKeyId, value: PropValue) -> Option<PropValue> {
        match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Look up a property (`σ(v, p)` / `ω(e, p)`; `None` encodes partiality).
    pub fn get(&self, key: PropKeyId) -> Option<&PropValue> {
        self.entries.binary_search_by_key(&key, |(k, _)| *k).ok().map(|i| &self.entries[i].1)
    }

    /// Remove a property, returning it if present.
    pub fn unset(&mut self, key: PropKeyId) -> Option<PropValue> {
        match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Iterate `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (PropKeyId, &PropValue)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

impl FromIterator<(PropKeyId, PropValue)> for PropMap {
    fn from_iter<T: IntoIterator<Item = (PropKeyId, PropValue)>>(iter: T) -> Self {
        let mut m = PropMap::new();
        for (k, v) in iter {
            m.set(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> PropKeyId {
        PropKeyId::new(i)
    }

    #[test]
    fn set_get_unset() {
        let mut m = PropMap::new();
        assert!(m.is_empty());
        assert_eq!(m.set(k(2), "x".into()), None);
        assert_eq!(m.set(k(1), 7i64.into()), None);
        assert_eq!(m.get(k(1)), Some(&PropValue::Int(7)));
        assert_eq!(m.get(k(2)).and_then(|v| v.as_str()), Some("x"));
        assert_eq!(m.get(k(3)), None);
        // Overwrite returns old value.
        assert_eq!(m.set(k(1), 8i64.into()), Some(PropValue::Int(7)));
        assert_eq!(m.unset(k(1)), Some(PropValue::Int(8)));
        assert_eq!(m.unset(k(1)), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let m: PropMap =
            [(k(5), PropValue::Bool(true)), (k(1), PropValue::Int(1)), (k(3), "a".into())]
                .into_iter()
                .collect();
        let keys: Vec<u32> = m.iter().map(|(key, _)| key.raw()).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(PropValue::from("s").as_str(), Some("s"));
        assert_eq!(PropValue::from(3i64).as_int(), Some(3));
        assert_eq!(PropValue::from(3i64).as_float(), Some(3.0));
        assert_eq!(PropValue::from(0.5).as_float(), Some(0.5));
        assert_eq!(PropValue::from(true).as_bool(), Some(true));
        assert_eq!(PropValue::from("s").as_int(), None);
    }

    #[test]
    fn float_equality_is_bitwise() {
        assert_eq!(PropValue::Float(f64::NAN), PropValue::Float(f64::NAN));
        assert_ne!(PropValue::Float(0.1), PropValue::Float(0.2));
        // Int and Float never compare equal even for same numeric value.
        assert_ne!(PropValue::Int(1), PropValue::Float(1.0));
    }

    #[test]
    fn display_renders_scalar() {
        assert_eq!(PropValue::from("vgg16").to_string(), "vgg16");
        assert_eq!(PropValue::from(20000i64).to_string(), "20000");
        assert_eq!(PropValue::from(0.75).to_string(), "0.75");
        assert_eq!(PropValue::from(false).to_string(), "false");
    }
}
