//! `find_by_prop` routing differential (ISSUE 5 satellite): the index-backed
//! path and the linear scan must answer identically no matter when the index
//! is declared relative to the property writes — before any write (kept
//! fresh by `set_vprop`/`unset_vprop`), mid-stream (backfilled at
//! declaration), or never (pure scan). The reference answer is an inline
//! re-implementation of the scan over `vertices_of_kind` + `vprop`.

use proptest::prelude::*;
use prov_model::{PropValue, VertexId, VertexKind};
use prov_store::ProvGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The reference: a scan that cannot be index-accelerated.
fn scan(g: &ProvGraph, kind: VertexKind, key: &str, value: &PropValue) -> Vec<VertexId> {
    g.vertices_of_kind(kind).iter().copied().filter(|&v| g.vprop(v, key) == Some(value)).collect()
}

const KEYS: [&str; 3] = ["tag", "stage", "score"];

fn value_pool(step: usize) -> PropValue {
    match step % 4 {
        0 => PropValue::from(format!("v{}", step % 5)),
        1 => PropValue::from((step % 7) as i64),
        2 => PropValue::from(step as f64 * 0.5),
        _ => PropValue::from(step.is_multiple_of(2)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random interleavings of vertex adds, property writes/overwrites/
    /// removals, and index declarations; after every step, every (kind, key,
    /// value) combination answers the same through `find_by_prop` as through
    /// the reference scan.
    #[test]
    fn index_backed_and_scan_answers_agree(
        seed in 0u64..100_000,
        steps in 5usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = ProvGraph::new();
        g.add_entity("e0");
        g.add_activity("a0");

        for step in 0..steps {
            match rng.gen_range(0..8u32) {
                0 => { g.add_entity(&format!("e{step}")); }
                1 => { g.add_activity(&format!("a{step}")); }
                // Declare an index at an arbitrary point in the write stream:
                // the backfill must capture everything already written.
                2 => {
                    let kind = if rng.gen::<bool>() { VertexKind::Entity } else { VertexKind::Activity };
                    g.create_vprop_index(kind, KEYS[rng.gen_range(0..KEYS.len())]);
                }
                // Remove a property: a declared index must forget the value.
                3 => {
                    let kind = if rng.gen::<bool>() { VertexKind::Entity } else { VertexKind::Activity };
                    let of_kind = g.vertices_of_kind(kind);
                    if !of_kind.is_empty() {
                        let v = of_kind[rng.gen_range(0..of_kind.len())];
                        g.unset_vprop(v, KEYS[rng.gen_range(0..KEYS.len())]);
                    }
                }
                _ => {
                    let kind = if rng.gen::<bool>() { VertexKind::Entity } else { VertexKind::Activity };
                    let of_kind = g.vertices_of_kind(kind);
                    if !of_kind.is_empty() {
                        let v = of_kind[rng.gen_range(0..of_kind.len())];
                        g.set_vprop(v, KEYS[rng.gen_range(0..KEYS.len())], value_pool(step));
                    }
                }
            }
            // Differential sweep over the whole query space.
            for kind in [VertexKind::Entity, VertexKind::Activity] {
                for key in KEYS {
                    for probe in 0..4 {
                        let value = value_pool(step.saturating_sub(probe));
                        prop_assert_eq!(
                            g.find_by_prop(kind, key, &value),
                            scan(&g, kind, key, &value),
                            "step {} kind {:?} key {} diverged", step, kind, key
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn index_declared_after_writes_is_consulted_and_complete() {
    let mut g = ProvGraph::new();
    let e1 = g.add_entity("e1");
    let e2 = g.add_entity("e2");
    g.set_vprop(e1, "tag", "raw");
    g.set_vprop(e2, "tag", "raw");
    // Declared AFTER the writes: the backfill must make the index-backed
    // answer identical to the pre-declaration scan.
    let before = g.find_by_prop(VertexKind::Entity, "tag", &PropValue::from("raw"));
    g.create_vprop_index(VertexKind::Entity, "tag");
    assert!(g.has_vprop_index(VertexKind::Entity, "tag"));
    assert_eq!(g.find_by_prop(VertexKind::Entity, "tag", &PropValue::from("raw")), before);
    assert_eq!(before, vec![e1, e2]);
    // unset keeps the index honest: the removed vertex disappears from the
    // indexed answer exactly as it does from the scan.
    assert_eq!(g.unset_vprop(e1, "tag"), Some(PropValue::from("raw")));
    assert_eq!(g.find_by_prop(VertexKind::Entity, "tag", &PropValue::from("raw")), vec![e2]);
    assert_eq!(
        g.find_by_prop(VertexKind::Entity, "tag", &PropValue::from("raw")),
        scan(&g, VertexKind::Entity, "tag", &PropValue::from("raw"))
    );
    // Unsetting an absent key/property is a quiet no-op.
    assert_eq!(g.unset_vprop(e1, "tag"), None);
    assert_eq!(g.unset_vprop(e1, "never-interned"), None);
}
