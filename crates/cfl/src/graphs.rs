//! [`TerminalEdges`] adapters for provenance graph snapshots.

use crate::solver::TerminalEdges;
use crate::symbol::{Orientation, Terminal};
use prov_model::{EdgeKind, VertexId};
use prov_store::{Direction, ProvIndex};

/// Adapter exposing a [`ProvIndex`] as a terminal-labeled graph:
///
/// * `Edge(k, Forward)` — the stored edges of kind `k`;
/// * `Edge(k, Inverse)` — the same edges reversed (virtual inverse labels);
/// * `VertexLabel(kind)` — a self-loop on every vertex of that kind;
/// * `VertexIs(v)` — a self-loop on exactly `v`.
pub struct IndexedProvGraph<'a> {
    index: &'a ProvIndex,
}

impl<'a> IndexedProvGraph<'a> {
    /// Wrap a snapshot.
    pub fn new(index: &'a ProvIndex) -> Self {
        IndexedProvGraph { index }
    }

    /// The wrapped snapshot.
    pub fn index(&self) -> &ProvIndex {
        self.index
    }
}

impl TerminalEdges for IndexedProvGraph<'_> {
    fn vertex_count(&self) -> usize {
        self.index.vertex_count()
    }

    fn for_each_edge(&self, t: Terminal, f: &mut dyn FnMut(u32, u32)) {
        match t {
            Terminal::Edge(kind, orientation) => {
                let (dir, flip) = match orientation {
                    Orientation::Forward => (Direction::Out, false),
                    // Inverse labels traverse dst -> src; the In CSR already
                    // stores that direction except for agent edges, where the
                    // In CSR is empty by construction (agents are sinks).
                    Orientation::Inverse => match kind {
                        EdgeKind::WasAssociatedWith | EdgeKind::WasAttributedTo => {
                            (Direction::Out, true)
                        }
                        _ => (Direction::In, false),
                    },
                };
                // lint-ok(csr-traversal): CFL terminal enumeration feeds the Datalog solver
                let csr = self.index.csr(kind, dir);
                for v in 0..self.index.vertex_count() as u32 {
                    let vid = VertexId::new(v);
                    // lint-ok(csr-traversal): whole-relation scan, not an ad-hoc read path
                    for nbr in csr.neighbors(vid) {
                        if flip {
                            f(nbr.raw(), v);
                        } else {
                            f(v, nbr.raw());
                        }
                    }
                }
            }
            Terminal::VertexLabel(kind) => {
                for &v in self.index.kind_members(kind) {
                    f(v.raw(), v.raw());
                }
            }
            Terminal::VertexIs(v) => {
                if v.index() < self.index.vertex_count() {
                    f(v.raw(), v.raw());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::VertexKind;
    use prov_store::ProvGraph;

    fn sample() -> (ProvGraph, Vec<VertexId>) {
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t = g.add_activity("t");
        let w = g.add_entity("w");
        let alice = g.add_agent("alice");
        g.add_edge(EdgeKind::Used, t, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, t, alice).unwrap();
        (g, vec![d, t, w, alice])
    }

    fn collect(graph: &IndexedProvGraph<'_>, t: Terminal) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        graph.for_each_edge(t, &mut |i, j| out.push((i, j)));
        out.sort_unstable();
        out
    }

    #[test]
    fn forward_and_inverse_edges() {
        let (g, ids) = sample();
        let idx = ProvIndex::build(&g);
        let tg = IndexedProvGraph::new(&idx);
        let (d, t, w) = (ids[0].raw(), ids[1].raw(), ids[2].raw());
        assert_eq!(collect(&tg, Terminal::fwd(EdgeKind::Used)), vec![(t, d)]);
        assert_eq!(collect(&tg, Terminal::inv(EdgeKind::Used)), vec![(d, t)]);
        assert_eq!(collect(&tg, Terminal::fwd(EdgeKind::WasGeneratedBy)), vec![(w, t)]);
        assert_eq!(collect(&tg, Terminal::inv(EdgeKind::WasGeneratedBy)), vec![(t, w)]);
    }

    #[test]
    fn agent_edges_invert_via_flip() {
        let (g, ids) = sample();
        let idx = ProvIndex::build(&g);
        let tg = IndexedProvGraph::new(&idx);
        let (t, alice) = (ids[1].raw(), ids[3].raw());
        assert_eq!(collect(&tg, Terminal::fwd(EdgeKind::WasAssociatedWith)), vec![(t, alice)]);
        assert_eq!(collect(&tg, Terminal::inv(EdgeKind::WasAssociatedWith)), vec![(alice, t)]);
    }

    #[test]
    fn vertex_label_self_loops() {
        let (g, ids) = sample();
        let idx = ProvIndex::build(&g);
        let tg = IndexedProvGraph::new(&idx);
        let entities = collect(&tg, Terminal::VertexLabel(VertexKind::Entity));
        assert_eq!(entities, vec![(ids[0].raw(), ids[0].raw()), (ids[2].raw(), ids[2].raw())]);
        let agents = collect(&tg, Terminal::VertexLabel(VertexKind::Agent));
        assert_eq!(agents, vec![(ids[3].raw(), ids[3].raw())]);
    }

    #[test]
    fn vertex_id_self_loop_bounds_checked() {
        let (g, ids) = sample();
        let idx = ProvIndex::build(&g);
        let tg = IndexedProvGraph::new(&idx);
        assert_eq!(collect(&tg, Terminal::VertexIs(ids[2])), vec![(ids[2].raw(), ids[2].raw())]);
        assert!(collect(&tg, Terminal::VertexIs(VertexId::new(99))).is_empty());
    }
}
