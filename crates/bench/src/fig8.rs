//! The fig8 query-layer benchmark: IR pipeline evaluation over frozen CSR
//! snapshots (ISSUE 8).
//!
//! PR 8 compiled every fixed-shape read path onto the composable query IR
//! (`StartSet → Traverse/Filter/Limit → Project`) with wire-level resumable
//! cursors. The three sweeps here gate the new layer:
//!
//! * **8a** — pipeline latency by depth and result size: x chained
//!   single-hop ancestry steps from start entities at three creation-order
//!   percentiles of a frozen `Pd` graph (`work` = rows at exactly that walk
//!   length, the result-size axis).
//! * **8b** — paginated vs one-shot: a full cursor walk (one bounded replay
//!   per page, the serving cost a resuming client pays) against a single
//!   evaluation of the same unbounded ancestry closure, swept over the page
//!   size. Both series report the same total row count — the concatenation
//!   invariant in the committed JSON.
//! * **8t** — query thread scaling: the chunked level-parallel frontier at
//!   x chunks against the sequential engine on the same plan, fan-out
//!   threshold forced to 2 so every multi-vertex level exercises the
//!   chunked path. `work` is the closure size, identical everywhere by the
//!   byte-stability guarantee.
//!
//! All three run over cached `Pd` instances ([`PdCache`]) and are committed
//! as `BENCH_fig8.json` through [`crate::BenchReport`], gated in CI next to
//! fig5–fig7.

use crate::harness::{FigureResult, PdCache, Point, Scale, Series, THREAD_SWEEP};
use prov_model::{EdgeKind, VertexId, VertexKind};
use prov_store::query::evaluate_with_frontier_min;
use prov_store::{evaluate, evaluate_at, paginate, Direction, Pipeline, Plan, ProvGraph, Traverse};
use prov_workload::PdParams;
use std::time::Instant;

/// The edge menu every fig8 pipeline traverses: the lineage lowering's
/// `Ancestors` direction (entity → generating activity → its inputs).
const ANCESTRY: [(EdgeKind, Direction); 2] =
    [(EdgeKind::WasGeneratedBy, Direction::Out), (EdgeKind::Used, Direction::Out)];

/// Entity at the given creation-order percentile of a frozen `Pd` graph.
fn entity_at(graph: &ProvGraph, pct: f64) -> VertexId {
    let entities = graph.vertices_of_kind(VertexKind::Entity);
    entities[((entities.len() - 1) as f64 * pct / 100.0) as usize]
}

/// The unbounded ancestry closure of `start` as a compiled plan — the IR
/// form of `lineage(start, Ancestors)`, the 8b/8t subject.
fn closure_plan(start: VertexId) -> Plan {
    Plan::compile(Pipeline::from_ids(vec![start]).traverse(&ANCESTRY, 1, Traverse::UNBOUNDED))
        .expect("ancestry pipelines always compile")
}

/// Fig. 8(a): query latency by pipeline depth and result size — x chained
/// single-hop ancestry steps, one series per start-entity percentile.
pub fn fig8a(scale: Scale) -> FigureResult {
    fig8a_cached(scale, &mut PdCache::new())
}

/// [`fig8a`] against a shared `Pd` instance cache.
pub fn fig8a_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let (n, reps) = match scale {
        Scale::Quick => (5_000, 64),
        Scale::Full => (50_000, 16),
    };
    fig8a_sized(cache, n, reps)
}

fn fig8a_sized(cache: &mut PdCache, n: usize, reps: usize) -> FigureResult {
    let inst = cache.instance(&PdParams::with_size(n));
    let depths = [1u32, 2, 4, 8];
    let percentiles = [25.0, 75.0, 95.0];
    let mut series: Vec<Series> = percentiles
        .iter()
        .map(|p| Series { name: format!("src@{p:.0}%"), points: Vec::new() })
        .collect();
    for &depth in &depths {
        for (&pct, serie) in percentiles.iter().zip(series.iter_mut()) {
            let start = entity_at(inst.graph(), pct);
            // Depth as chained single-hop steps (the Cypher Query-1 lowering
            // shape), not one `Traverse` with max_hops = depth: the sweep
            // times the per-step pipeline machinery, not just the BFS.
            let mut pipeline = Pipeline::from_ids(vec![start]);
            for _ in 0..depth {
                pipeline = pipeline.traverse(&ANCESTRY, 1, 1);
            }
            let plan = Plan::compile(pipeline).expect("chained ancestry pipelines compile");
            // Best-of-3 batches of `reps` calls, like the 7b trajectory.
            let mut best = f64::INFINITY;
            let mut rows = 0u64;
            for _ in 0..3 {
                let t0 = Instant::now();
                for _ in 0..reps {
                    rows = evaluate(inst.graph(), inst.index(), &plan, 1)
                        .expect("a fresh snapshot is never stale")
                        .count;
                }
                best = best.min(t0.elapsed().as_secs_f64());
            }
            serie.points.push(Point { x: depth as f64, y: Some(best), work: Some(rows) });
        }
    }
    FigureResult {
        id: "8a",
        title: format!(
            "Query IR latency by pipeline depth: x chained single-hop ancestry steps, {reps} \
             evaluations per call, start entity at creation percentile (Pd{n})"
        ),
        x_label: "depth".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

/// Fig. 8(b): paginated cursor walk vs one-shot evaluation of the same
/// closure, swept over the page size.
pub fn fig8b(scale: Scale) -> FigureResult {
    fig8b_cached(scale, &mut PdCache::new())
}

/// [`fig8b`] against a shared `Pd` instance cache.
pub fn fig8b_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let (n, reps) = match scale {
        Scale::Quick => (5_000, 8),
        Scale::Full => (50_000, 4),
    };
    fig8b_sized(cache, n, reps)
}

fn fig8b_sized(cache: &mut PdCache, n: usize, reps: usize) -> FigureResult {
    let inst = cache.instance(&PdParams::with_size(n));
    let plan = closure_plan(entity_at(inst.graph(), 95.0));
    let watermark = inst.index().cursor();
    let page_sizes = [16usize, 64, 256, 1_024];
    let mut series = [
        Series { name: "OneShot".into(), points: Vec::new() },
        Series { name: "Paginated".into(), points: Vec::new() },
    ];
    for &page_size in &page_sizes {
        // The one-shot reference is re-timed at every x so the flat line is
        // measured data, not a copied point (the 5t/7t convention).
        let mut best = [f64::INFINITY; 2];
        let mut rows = [0u64; 2];
        for _ in 0..3 {
            let t0 = Instant::now();
            for _ in 0..reps {
                rows[0] = evaluate(inst.graph(), inst.index(), &plan, 1)
                    .expect("a fresh snapshot is never stale")
                    .count;
            }
            best[0] = best[0].min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            for _ in 0..reps {
                // A resuming client re-evaluates the pipeline at the pinned
                // watermark once per page — the full serving cost of the
                // walk, not just the slicing.
                let mut total = 0u64;
                let mut cursor = None;
                loop {
                    let out = evaluate_at(inst.graph(), inst.index(), &plan, watermark, 1)
                        .expect("the walk's watermark stays valid");
                    let page = paginate(&out.rows, watermark, cursor.as_ref(), Some(page_size));
                    total += page.rows.len() as u64;
                    match page.next {
                        Some(next) => cursor = Some(next),
                        None => break,
                    }
                }
                rows[1] = total;
            }
            best[1] = best[1].min(t0.elapsed().as_secs_f64());
        }
        for i in 0..2 {
            series[i].points.push(Point {
                x: page_size as f64,
                y: Some(best[i]),
                work: Some(rows[i]),
            });
        }
    }
    FigureResult {
        id: "8b",
        title: format!(
            "Cursor walk vs one-shot: full paginated walk (one bounded replay per page) against \
             a single evaluation of the same ancestry closure, {reps} walks per call (Pd{n})"
        ),
        x_label: "page size".into(),
        y_label: "runtime (s)".into(),
        series: series.to_vec(),
    }
}

/// Fig. 8(t): query thread scaling — the chunked level-parallel frontier at
/// x chunks against the sequential engine on the same compiled plan.
pub fn fig8t(scale: Scale) -> FigureResult {
    fig8t_cached(scale, &mut PdCache::new())
}

/// [`fig8t`] against a shared `Pd` instance cache.
pub fn fig8t_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let (n, reps) = match scale {
        Scale::Quick => (5_000, 64),
        Scale::Full => (50_000, 16),
    };
    fig8t_sized(cache, n, reps)
}

fn fig8t_sized(cache: &mut PdCache, n: usize, reps: usize) -> FigureResult {
    let inst = cache.instance(&PdParams::with_size(n));
    let plan = closure_plan(entity_at(inst.graph(), 95.0));
    let watermark = inst.index().cursor();
    let mut series = [
        Series { name: "Sequential".into(), points: Vec::new() },
        Series { name: "Parallel".into(), points: Vec::new() },
    ];
    for &threads in &THREAD_SWEEP {
        let mut best = [f64::INFINITY; 2];
        let mut rows = [0u64; 2];
        for _ in 0..3 {
            // Best-of-3 batches of `reps` calls, like 7t.
            let t0 = Instant::now();
            for _ in 0..reps {
                rows[0] = evaluate(inst.graph(), inst.index(), &plan, 1)
                    .expect("a fresh snapshot is never stale")
                    .count;
            }
            best[0] = best[0].min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            for _ in 0..reps {
                // Fan-out threshold forced to 2 so every multi-vertex level
                // exercises the chunked path even below the production
                // `PAR_FRONTIER_MIN` (the 7t convention).
                rows[1] = evaluate_with_frontier_min(
                    inst.graph(),
                    inst.index(),
                    &plan,
                    watermark,
                    threads,
                    2,
                )
                .expect("the frozen watermark stays valid")
                .count;
            }
            best[1] = best[1].min(t0.elapsed().as_secs_f64());
        }
        for i in 0..2 {
            series[i].points.push(Point {
                x: threads as f64,
                y: Some(best[i]),
                work: Some(rows[i]),
            });
        }
    }
    FigureResult {
        id: "8t",
        title: format!(
            "Query thread scaling: chunked level-parallel frontier at x chunks vs the sequential \
             engine ({reps} ancestry closures per call, Pd{n})"
        ),
        x_label: "threads".into(),
        y_label: "runtime (s)".into(),
        series: series.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_sweeps_have_expected_shapes() {
        // Tiny sizes, minimal reps: shapes and cross-series invariants only
        // (the committed trajectory runs in release through the bench
        // binary).
        let mut cache = PdCache::new();
        let fig = fig8a_sized(&mut cache, 500, 2);
        assert_eq!(fig.id, "8a");
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), 4);
            assert!(s.points.iter().all(|p| p.y.is_some() && p.work.is_some()));
        }
        // The deepest-ancestry start really reaches something at depth 1.
        assert!(fig.series[2].points[0].work.unwrap() > 0);

        let fig = fig8b_sized(&mut cache, 500, 1);
        assert_eq!(fig.id, "8b");
        for (one_shot, paginated) in fig.series[0].points.iter().zip(fig.series[1].points.iter()) {
            // The concatenation invariant: pages sum to the one-shot answer
            // at every page size.
            assert_eq!(one_shot.work, paginated.work, "pages must concatenate losslessly");
            assert!(one_shot.work.unwrap() > 0);
        }

        let fig = fig8t_sized(&mut cache, 500, 2);
        assert_eq!(fig.id, "8t");
        let works: Vec<u64> =
            fig.series.iter().flat_map(|s| s.points.iter().map(|p| p.work.unwrap())).collect();
        assert!(works.windows(2).all(|w| w[0] == w[1]), "chunking changed the answer: {works:?}");
    }
}
