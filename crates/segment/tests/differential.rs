//! Differential property tests: on random lifecycle-shaped PROV DAGs, all
//! `L(SimProv)` evaluators must return identical reachability answers, and
//! the two exact inducers (SimProvTst, naive enumeration) must agree on the
//! full `VC2` vertex set.

use proptest::prelude::*;
use prov_bitset::SetBackend;
use prov_model::{EdgeKind, VertexId, VertexKind};
use prov_segment::{
    evaluate_similarity, similar_naive, similar_tst, MaskedGraph, NaiveBudget, PgSegOptions,
    SimilarEvaluator, TstConfig,
};
use prov_store::{ProvGraph, ProvIndex};

/// Plan for one activity: which existing entities it uses (by index into the
/// entity pool) and how many entities it generates.
#[derive(Debug, Clone)]
struct ActivityPlan {
    inputs: Vec<prop::sample::Index>,
    outputs: usize,
}

fn activity_plan() -> impl Strategy<Value = ActivityPlan> {
    (proptest::collection::vec(any::<prop::sample::Index>(), 1..4), 1..3usize)
        .prop_map(|(inputs, outputs)| ActivityPlan { inputs, outputs })
}

/// Build a temporally-consistent provenance DAG from plans (entities always
/// exist before the activities that use them — the lifecycle invariant the
/// early-stopping rule relies on).
fn build_graph(seed_entities: usize, plans: &[ActivityPlan]) -> (ProvGraph, Vec<VertexId>) {
    let mut g = ProvGraph::new();
    let mut entities: Vec<VertexId> =
        (0..seed_entities).map(|i| g.add_entity(&format!("seed{i}"))).collect();
    for (ai, plan) in plans.iter().enumerate() {
        let a = g.add_activity(&format!("act{ai}"));
        let mut used = std::collections::BTreeSet::new();
        for idx in &plan.inputs {
            used.insert(*idx.get(&entities));
        }
        for &e in &used {
            g.add_edge(EdgeKind::Used, a, e).unwrap();
        }
        for oi in 0..plan.outputs {
            let e = g.add_entity(&format!("out{ai}_{oi}"));
            g.add_edge(EdgeKind::WasGeneratedBy, e, a).unwrap();
            entities.push(e);
        }
    }
    (g, entities)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_evaluators_agree_on_answers(
        seed_entities in 1..4usize,
        plans in proptest::collection::vec(activity_plan(), 1..10),
        src_pick in any::<prop::sample::Index>(),
        dst_pick in any::<prop::sample::Index>(),
        dst_pick2 in any::<prop::sample::Index>(),
    ) {
        let (g, entities) = build_graph(seed_entities, &plans);
        g.validate_acyclic().expect("generated graphs are DAGs");
        let idx = ProvIndex::build(&g);
        let view = MaskedGraph::unmasked(&idx);
        let vsrc = vec![*src_pick.get(&entities)];
        let mut vdst = vec![*dst_pick.get(&entities), *dst_pick2.get(&entities)];
        vdst.dedup();

        let evaluators = [
            SimilarEvaluator::Naive,
            SimilarEvaluator::CflrB(SetBackend::Hash),
            SimilarEvaluator::CflrB(SetBackend::Bit),
            SimilarEvaluator::CflrB(SetBackend::Compressed),
            SimilarEvaluator::SimProvAlg(SetBackend::Bit),
            SimilarEvaluator::SimProvAlg(SetBackend::Compressed),
            SimilarEvaluator::SimProvTst,
        ];
        let mut answers = Vec::new();
        for ev in evaluators {
            let opts = PgSegOptions { evaluator: ev, ..PgSegOptions::default() };
            let out = evaluate_similarity(&view, &vsrc, &vdst, &opts);
            prop_assert!(!out.stats.dnf, "naive must finish on small graphs");
            answers.push((ev, out.answer));
        }
        for window in answers.windows(2) {
            prop_assert_eq!(
                &window[0].1,
                &window[1].1,
                "{:?} vs {:?}",
                window[0].0,
                window[1].0
            );
        }
    }

    #[test]
    fn tst_and_naive_agree_on_vc2(
        seed_entities in 1..4usize,
        plans in proptest::collection::vec(activity_plan(), 1..8),
        src_pick in any::<prop::sample::Index>(),
        dst_pick in any::<prop::sample::Index>(),
    ) {
        let (g, entities) = build_graph(seed_entities, &plans);
        let idx = ProvIndex::build(&g);
        let view = MaskedGraph::unmasked(&idx);
        let vsrc = vec![*src_pick.get(&entities)];
        let vdst = vec![*dst_pick.get(&entities)];
        let tst = similar_tst(&view, &vsrc, &vdst, &TstConfig::default());
        let naive = similar_naive(&view, &vsrc, &vdst, NaiveBudget::default());
        prop_assert!(!naive.stats.dnf);
        prop_assert_eq!(tst.answer, naive.answer);
        prop_assert_eq!(tst.vc2, naive.vc2);
    }

    #[test]
    fn early_stop_and_pruning_do_not_change_answers(
        seed_entities in 1..4usize,
        plans in proptest::collection::vec(activity_plan(), 1..10),
        src_pick in any::<prop::sample::Index>(),
        dst_pick in any::<prop::sample::Index>(),
    ) {
        let (g, entities) = build_graph(seed_entities, &plans);
        let idx = ProvIndex::build(&g);
        let view = MaskedGraph::unmasked(&idx);
        let vsrc = vec![*src_pick.get(&entities)];
        let vdst = vec![*dst_pick.get(&entities)];
        let reference = similar_tst(
            &view,
            &vsrc,
            &vdst,
            &TstConfig { early_stop: false, max_levels: None, compressed_sets: false },
        );
        let fast = similar_tst(&view, &vsrc, &vdst, &TstConfig::default());
        prop_assert_eq!(&reference.answer, &fast.answer);
        prop_assert_eq!(&reference.vc2, &fast.vc2);

        for symmetric_prune in [false, true] {
            for early_stop in [false, true] {
                let opts = PgSegOptions {
                    evaluator: SimilarEvaluator::SimProvAlg(SetBackend::Bit),
                    early_stop,
                    symmetric_prune,
                    ..PgSegOptions::default()
                };
                let out = evaluate_similarity(&view, &vsrc, &vdst, &opts);
                prop_assert_eq!(
                    &reference.answer,
                    &out.answer,
                    "prune={} early={}",
                    symmetric_prune,
                    early_stop
                );
            }
        }
    }

    #[test]
    fn vc1_vertices_really_lie_on_paths(
        seed_entities in 1..3usize,
        plans in proptest::collection::vec(activity_plan(), 1..8),
        src_pick in any::<prop::sample::Index>(),
        dst_pick in any::<prop::sample::Index>(),
    ) {
        let (g, entities) = build_graph(seed_entities, &plans);
        let idx = ProvIndex::build(&g);
        let view = MaskedGraph::unmasked(&idx);
        let src = *src_pick.get(&entities);
        let dst = *dst_pick.get(&entities);
        let vc1 = prov_segment::direct_path_vertices(&view, &[src], &[dst]);
        // Brute-force check: enumerate all ancestry paths dst -> src and
        // collect their vertices.
        let mut expect = std::collections::BTreeSet::new();
        let mut stack = vec![vec![dst]];
        while let Some(path) = stack.pop() {
            let head = *path.last().unwrap();
            if head == src {
                expect.extend(path.iter().copied());
                // Continue: other paths may pass through src again? A DAG
                // cannot revisit, so stop this branch.
                continue;
            }
            for w in view.upstream(head) {
                let mut p = path.clone();
                p.push(w);
                stack.push(p);
            }
        }
        let expect: Vec<VertexId> = expect.into_iter().collect();
        prop_assert_eq!(vc1, expect);
    }

    #[test]
    fn generated_graphs_satisfy_prov_invariants(
        seed_entities in 1..4usize,
        plans in proptest::collection::vec(activity_plan(), 1..10),
    ) {
        let (g, _) = build_graph(seed_entities, &plans);
        prop_assert!(g.validate_acyclic().is_ok());
        for eid in g.edge_ids() {
            let e = g.edge(eid);
            let (src_kind, dst_kind) = e.kind.endpoints();
            prop_assert_eq!(g.vertex_kind(e.src), src_kind);
            prop_assert_eq!(g.vertex_kind(e.dst), dst_kind);
            // Temporal consistency: every edge points to something older.
            prop_assert!(g.vertex(e.src).birth > g.vertex(e.dst).birth);
        }
        let _ = g.vertices_of_kind(VertexKind::Entity);
    }
}
