//! Reproduction of Miao & Deshpande, *Understanding Data Science Lifecycle
//! Provenance via Graph Segmentation and Summarization* (ICDE 2019).
//!
//! This is the workspace-root crate: it re-exports the member crates and
//! hosts the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`). See `README.md` for the tour and `DESIGN.md` for the
//! system inventory and per-experiment index.

pub use prov_api as api;
pub use prov_bitset as bitset;
pub use prov_cfl as cfl;
pub use prov_core as core_api;
pub use prov_model as model;
pub use prov_segment as segment;
pub use prov_store as store;
pub use prov_summary as summary;
pub use prov_workload as workload;
