//! Known-answer exploration counts for DFS validation.
use loom_lite::sync::atomic::{AtomicUsize, Ordering};
use loom_lite::sync::Arc;
use loom_lite::Builder;

fn main() {
    // 2 threads x 2 stores to the SAME atomic: all ops dependent, no valid
    // pruning. Distinct schedules = C(4,2) = 6.
    let r = Builder::new().check(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let t = loom_lite::thread::spawn(move || {
            a2.store(1, Ordering::SeqCst);
            a2.store(2, Ordering::SeqCst);
        });
        a.store(3, Ordering::SeqCst);
        a.store(4, Ordering::SeqCst);
        t.join().unwrap();
    });
    println!("2x2 same-object stores: {r:?} (want schedules=6, pruned=0)");

    // 2 threads x 1 store each, same object: C(2,1) = 2.
    let r = Builder::new().check(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let t = loom_lite::thread::spawn(move || {
            a2.store(1, Ordering::SeqCst);
        });
        a.store(3, Ordering::SeqCst);
        t.join().unwrap();
    });
    println!("1x1 same-object stores: {r:?} (want schedules=2)");

    // 3 threads x 1 store each, same object: 3! = 6.
    let r = Builder::new().check(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..3)
            .map(|i| {
                let a = Arc::clone(&a);
                loom_lite::thread::spawn(move || a.store(i, Ordering::SeqCst))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    });
    println!("3x1 same-object stores: {r:?} (want schedules=6)");
}
