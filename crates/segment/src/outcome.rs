//! Shared result types for the `L(SimProv)` evaluators.

use prov_model::VertexId;
use std::time::Duration;

/// Run statistics of a similarity evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalStats {
    /// Wall-clock time spent in the evaluator.
    pub elapsed: Duration,
    /// Work units: derived facts (CflrB/SimProvAlg), level entries
    /// (SimProvTst) or materialized paths (naive).
    pub work: u64,
    /// Approximate peak heap bytes of the evaluator's tables.
    pub memory_bytes: usize,
    /// True when the evaluator gave up (budget exhausted) — only the naive
    /// Cypher-style evaluator can DNF.
    pub dnf: bool,
}

/// Result of evaluating `L(SimProv)`-reachability from `Vsrc` through `Vdst`.
#[derive(Debug, Clone, Default)]
pub struct SimilarOutcome {
    /// All entities `vt` such that some source reaches `vt` through a
    /// destination on a SimProv path (sorted, deduplicated). This is the
    /// reachability answer all four evaluators must agree on.
    pub answer: Vec<VertexId>,
    /// The full `VC2` induced set — every vertex lying on an accepting path —
    /// when the evaluator derives it exactly (SimProvTst and the naive
    /// enumerator do; the pair-relation solvers return `None`).
    pub vc2: Option<Vec<VertexId>>,
    /// Run statistics.
    pub stats: EvalStats,
}

impl SimilarOutcome {
    /// Answer as a set-like sorted slice.
    pub fn answer_entities(&self) -> &[VertexId] {
        &self.answer
    }

    /// Convenience for tests: answers as raw u32s.
    pub fn answer_raw(&self) -> Vec<u32> {
        self.answer.iter().map(|v| v.raw()).collect()
    }
}

/// Collect a boolean vertex mark array into a sorted id list.
pub(crate) fn marks_to_vec(marks: &[bool]) -> Vec<VertexId> {
    // lint-ok(narrowing-cast): the mark array is indexed by u32-bounded vertex ids.
    marks.iter().enumerate().filter_map(|(i, &m)| m.then_some(VertexId::new(i as u32))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_round_trip() {
        let marks = vec![true, false, true, true];
        let ids = marks_to_vec(&marks);
        assert_eq!(ids.iter().map(|v| v.raw()).collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn outcome_accessors() {
        let o = SimilarOutcome {
            answer: vec![VertexId::new(3), VertexId::new(5)],
            vc2: None,
            stats: EvalStats::default(),
        };
        assert_eq!(o.answer_raw(), vec![3, 5]);
        assert_eq!(o.answer_entities().len(), 2);
        assert!(!o.stats.dnf);
    }
}
