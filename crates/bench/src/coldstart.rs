//! The cold-start recovery benchmark (`cs`, ISSUE 9).
//!
//! A provenance service restarting after a crash has three ways back to a
//! serving state, and the durable engine exists to make the first two cheap:
//!
//! * **Snapshot** — decode the columnar snapshot, replay the short WAL tail
//!   after it, `refresh_in_place` the index (the compacting deployment:
//!   recovery work is bounded by the tail, not history);
//! * **WalReplay** — replay the entire op journal from WAL generation zero
//!   and refresh the index (a deployment that never compacted);
//! * **Reingest** — no durability at all: re-run the full activity stream
//!   through a fresh in-memory [`ProvDb`] and rebuild the index from scratch
//!   (what losing the storage engine would cost).
//!
//! All three series recover the byte-identical graph from the same
//! deterministic ingest history (`work` carries the recovered vertex count
//! as the cross-checkable fingerprint), so the committed trajectory
//! (`BENCH_coldstart.json`) gates recovery latency the same way fig5–fig8
//! gate the kernels: a >2× slowdown of `Snapshot` recovery against its
//! committed baseline fails CI.

use crate::harness::{FigureResult, Point, Scale, Series};
use prov_core::{ActivityRecord, DurabilityPolicy, OutputSpec, ProvDb};
use prov_model::VertexId;
use prov_store::storage::MemIo;
use prov_workload::{ActivityStream, StreamParams};
use std::time::Instant;

/// Root artifacts seeded before the stream (its recency universe floor).
const ROOTS: usize = 8;

/// Fraction of the history already compacted into the snapshot for the
/// `Snapshot` series — the WAL tail holds the remaining ~10%.
const COMPACTED_NUM: usize = 9;
const COMPACTED_DEN: usize = 10;

/// Drive `acts` deterministic streamed activities into `db`, one committed
/// batch per activity. The identical call sequence reproduces the identical
/// graph on every database it is driven into.
fn ingest(db: &mut ProvDb, acts: usize) {
    let mut pool: Vec<VertexId> = (0..ROOTS)
        .map(|r| db.add_artifact_version(&format!("root-{r}"), None).expect("fresh root"))
        .collect();
    let mut stream = ActivityStream::new(StreamParams::default(), ROOTS + acts * 2);
    for record in stream.batch(pool.len(), acts) {
        let inputs: Vec<VertexId> =
            record.input_ranks.iter().map(|&r| pool[pool.len() - r]).collect();
        let outcome = db
            .record_activity(ActivityRecord {
                command: record.command,
                agent: None,
                inputs,
                outputs: record.outputs.iter().map(|a| OutputSpec::named(a)).collect(),
                props: vec![],
            })
            .expect("streamed ingest is valid");
        pool.extend(outcome.outputs);
    }
}

/// A durable database over a fresh in-memory disk with `acts` activities
/// ingested; `compact_at` optionally compacts after that many activities so
/// the WAL holds only the tail. Returns the disk (the database is dropped —
/// cold start means nothing is warm).
fn frozen_disk(acts: usize, compact_at: Option<usize>) -> MemIo {
    let disk = MemIo::new();
    let mut db = ProvDb::open_with_io(Box::new(disk.clone()), DurabilityPolicy::never_compact())
        .expect("fresh disk opens");
    match compact_at {
        None => ingest(&mut db, acts),
        Some(head) => {
            // One ingest pass, interrupted by a compaction: the snapshot
            // absorbs `head` activities, the WAL tail keeps the rest. Driving
            // the stream in two spans would change its recency choices, so
            // replicate `ingest` with a mid-stream compaction point instead.
            let mut pool: Vec<VertexId> = (0..ROOTS)
                .map(|r| db.add_artifact_version(&format!("root-{r}"), None).expect("fresh root"))
                .collect();
            let mut stream = ActivityStream::new(StreamParams::default(), ROOTS + acts * 2);
            for (i, record) in stream.batch(pool.len(), acts).into_iter().enumerate() {
                if i == head {
                    assert!(db.compact().expect("durable db compacts"));
                }
                let inputs: Vec<VertexId> =
                    record.input_ranks.iter().map(|&r| pool[pool.len() - r]).collect();
                let outcome = db
                    .record_activity(ActivityRecord {
                        command: record.command,
                        agent: None,
                        inputs,
                        outputs: record.outputs.iter().map(|a| OutputSpec::named(a)).collect(),
                        props: vec![],
                    })
                    .expect("streamed ingest is valid");
                pool.extend(outcome.outputs);
            }
        }
    }
    drop(db);
    disk
}

/// Time one cold start from `disk`: open (decode snapshot, replay WAL,
/// refresh index), acquire the serving snapshot, and touch the graph.
/// Returns (seconds, recovered vertex count).
fn time_recovery(disk: &MemIo) -> (f64, u64) {
    let t0 = Instant::now();
    let db = ProvDb::open_with_io(Box::new(disk.clone()), DurabilityPolicy::never_compact())
        .expect("committed state recovers");
    let snapshot = db.snapshot();
    let secs = t0.elapsed().as_secs_f64();
    drop(snapshot);
    (secs, db.graph().vertex_count() as u64)
}

/// Time rebuilding the same state with no durability: re-run the full
/// activity stream into an in-memory database and build the index.
fn time_reingest(acts: usize) -> (f64, u64) {
    let t0 = Instant::now();
    let mut db = ProvDb::new();
    ingest(&mut db, acts);
    let snapshot = db.snapshot();
    let secs = t0.elapsed().as_secs_f64();
    drop(snapshot);
    (secs, db.graph().vertex_count() as u64)
}

/// The cold-start figure: time back to a serving state after a restart,
/// sweeping ingested history length.
pub fn figcs(scale: Scale) -> FigureResult {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[500, 2_000, 5_000],
        Scale::Full => &[2_000, 10_000, 50_000],
    };
    let mut series = [
        Series { name: "Snapshot".into(), points: Vec::new() },
        Series { name: "WalReplay".into(), points: Vec::new() },
        Series { name: "Reingest".into(), points: Vec::new() },
    ];
    for &acts in sizes {
        let compacted = frozen_disk(acts, Some(acts * COMPACTED_NUM / COMPACTED_DEN));
        let wal_only = frozen_disk(acts, None);
        // Best-of-3 cold starts per series (the disks are frozen; re-ingest
        // regenerates its stream each rep).
        let mut best = [f64::INFINITY; 3];
        let mut work = [0u64; 3];
        for _ in 0..3 {
            let runs = [time_recovery(&compacted), time_recovery(&wal_only), time_reingest(acts)];
            for (i, (secs, w)) in runs.into_iter().enumerate() {
                best[i] = best[i].min(secs);
                work[i] = w;
            }
        }
        for i in 0..3 {
            series[i].points.push(Point { x: acts as f64, y: Some(best[i]), work: Some(work[i]) });
        }
    }
    FigureResult {
        id: "cs",
        title: format!(
            "Cold start to serving state after x streamed activities: snapshot+tail recovery \
             (~{}% compacted) vs full WAL replay vs in-memory re-ingest",
            100 * COMPACTED_NUM / COMPACTED_DEN
        ),
        x_label: "activities".into(),
        y_label: "runtime (s)".into(),
        series: series.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_store::ProvIndex;

    #[test]
    fn all_three_recovery_paths_reach_the_identical_state() {
        // The `work` fingerprint only means something if the three series
        // really race to the same graph.
        let acts = 64;
        let compacted = frozen_disk(acts, Some(acts / 2));
        let wal_only = frozen_disk(acts, None);
        let from_snapshot =
            ProvDb::open_with_io(Box::new(compacted.clone()), DurabilityPolicy::never_compact())
                .unwrap();
        let from_wal =
            ProvDb::open_with_io(Box::new(wal_only.clone()), DurabilityPolicy::never_compact())
                .unwrap();
        let mut reingested = ProvDb::new();
        ingest(&mut reingested, acts);
        assert_eq!(from_snapshot.graph(), from_wal.graph());
        assert_eq!(from_snapshot.graph(), reingested.graph());
        // Both durable paths really took different routes there.
        assert!(from_snapshot.durability_counters().unwrap().batches_replayed > 0);
        assert!(
            from_snapshot.durability_counters().unwrap().batches_replayed
                < from_wal.durability_counters().unwrap().batches_replayed,
            "the snapshot must absorb most of the replay"
        );
        // And the recovered indexes match a from-scratch rebuild.
        assert_eq!(*from_snapshot.snapshot(), ProvIndex::build(from_snapshot.graph()));
    }

    #[test]
    fn figcs_quick_has_expected_shape() {
        let fig = figcs(Scale::Quick);
        assert_eq!(fig.id, "cs");
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), 3);
            assert!(s.points.iter().all(|p| p.y.is_some() && p.work.is_some()));
        }
        // Identical recovered state across series at every size.
        for i in 0..3 {
            let works: Vec<u64> = fig.series.iter().map(|s| s.points[i].work.unwrap()).collect();
            assert!(works.windows(2).all(|w| w[0] == w[1]), "{works:?}");
        }
    }
}
