//! Vertex equivalence `≡kκ` and the initial summary graph `g0 = ⋃ᵢ Sᵢ`.
//!
//! Each segment vertex becomes one `g0` node labeled by its equivalence class
//! under `≡kκ` (same kind, same visible property values, same provenance
//! type). `g0` itself is a valid Psg — the merging phase only improves on it.

use crate::aggregation::{AggLabel, PropertyAggregation};
use crate::provtype::{provenance_types_ranked, segment_ranks};
use crate::segment_ref::SegmentRef;
use prov_model::VertexId;
use prov_store::hash::FxHashMap;
use prov_store::ProvGraph;

/// Dense id of an equivalence class of `≡kκ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

/// A node of `g0`: one vertex instance of one segment.
#[derive(Debug, Clone)]
pub struct G0Node {
    /// Which segment the instance comes from.
    pub segment: u32,
    /// The underlying graph vertex.
    pub vertex: VertexId,
    /// Equivalence class (`ρ` label).
    pub class: ClassId,
}

/// The disjoint union of the input segments, class-labeled.
#[derive(Debug, Clone, Default)]
pub struct G0 {
    /// Nodes (instances).
    pub nodes: Vec<G0Node>,
    /// Outgoing adjacency: `(edge kind index, node)` pairs.
    pub out_adj: Vec<Vec<(u8, u32)>>,
    /// Incoming adjacency.
    pub in_adj: Vec<Vec<(u8, u32)>>,
    /// Number of input segments.
    pub segment_count: usize,
    /// A representative aggregate label per class (for rendering).
    pub class_labels: Vec<AggLabel>,
    /// A representative display name per class.
    pub class_names: Vec<String>,
}

impl G0 {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Class of node `i`.
    #[inline]
    pub fn class(&self, i: u32) -> ClassId {
        self.nodes[i as usize].class
    }

    /// Number of distinct classes.
    pub fn class_count(&self) -> usize {
        self.class_labels.len()
    }
}

/// Build `g0` from segments under the aggregation `K` and provenance type
/// radius `k`.
pub fn build_g0(
    graph: &ProvGraph,
    segments: &[SegmentRef],
    aggregation: &PropertyAggregation,
    k: usize,
) -> G0 {
    let mut nodes: Vec<G0Node> = Vec::new();
    let mut class_ids: FxHashMap<(AggLabel, u64), ClassId> = FxHashMap::default();
    let mut class_labels: Vec<AggLabel> = Vec::new();
    let mut class_names: Vec<String> = Vec::new();
    // Rank spaces: node index of (segment si, local rank r) is
    // `seg_base[si] + r`, so the edge pass below needs no per-(segment,
    // vertex) map — only each segment's rank assignment, built once and
    // shared with the type refinement.
    let mut seg_base: Vec<u32> = Vec::with_capacity(segments.len());
    let mut seg_ranks: Vec<FxHashMap<VertexId, u32>> = Vec::with_capacity(segments.len());

    for (si, seg) in segments.iter().enumerate() {
        let ranks = segment_ranks(seg);
        let types = provenance_types_ranked(graph, seg, &ranks, aggregation, k);
        seg_base.push(nodes.len() as u32);
        seg_ranks.push(ranks);
        for (r, &v) in seg.vertices.iter().enumerate() {
            let agg = aggregation.label(graph, v);
            let key = (agg.clone(), types[r]);
            let next_id = ClassId(class_labels.len() as u32);
            let class = *class_ids.entry(key).or_insert_with(|| {
                class_labels.push(agg);
                class_names.push(graph.display_name(v));
                next_id
            });
            nodes.push(G0Node { segment: si as u32, vertex: v, class });
        }
    }

    let mut out_adj: Vec<Vec<(u8, u32)>> = vec![Vec::new(); nodes.len()];
    let mut in_adj: Vec<Vec<(u8, u32)>> = vec![Vec::new(); nodes.len()];
    for (si, seg) in segments.iter().enumerate() {
        let (base, ranks) = (seg_base[si], &seg_ranks[si]);
        for &e in &seg.edges {
            let rec = graph.edge(e);
            let s = base + ranks[&rec.src];
            let d = base + ranks[&rec.dst];
            out_adj[s as usize].push((rec.kind.as_index() as u8, d));
            in_adj[d as usize].push((rec.kind.as_index() as u8, s));
        }
    }

    G0 { nodes, out_adj, in_adj, segment_count: segments.len(), class_labels, class_names }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{EdgeKind, VertexKind};

    /// Two segments, each `d <-U- train <-G- w`, with distinct underlying
    /// vertices but identical shapes and commands.
    fn twin_segments() -> (ProvGraph, Vec<SegmentRef>) {
        let mut g = ProvGraph::new();
        let mut segs = Vec::new();
        for i in 0..2 {
            let d = g.add_entity(&format!("d{i}"));
            let t = g.add_activity("train");
            g.set_vprop(t, "command", "train");
            let w = g.add_entity(&format!("w{i}"));
            let e1 = g.add_edge(EdgeKind::Used, t, d).unwrap();
            let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
            segs.push(SegmentRef::new(vec![d, t, w], vec![e1, e2]));
        }
        (g, segs)
    }

    #[test]
    fn g0_has_one_node_per_segment_vertex() {
        let (g, segs) = twin_segments();
        let g0 = build_g0(&g, &segs, &PropertyAggregation::ignore_all(), 1);
        assert_eq!(g0.len(), 6);
        assert_eq!(g0.segment_count, 2);
        // Adjacency matches segment edges (2 per segment).
        let total_out: usize = g0.out_adj.iter().map(|a| a.len()).sum();
        assert_eq!(total_out, 4);
    }

    #[test]
    fn classes_unify_across_segments() {
        let (g, segs) = twin_segments();
        let g0 = build_g0(&g, &segs, &PropertyAggregation::ignore_all(), 1);
        // 3 classes: input entity, train activity, output entity.
        assert_eq!(g0.class_count(), 3);
        // Corresponding vertices of the two segments share classes.
        assert_eq!(g0.class(0), g0.class(3));
        assert_eq!(g0.class(1), g0.class(4));
        assert_eq!(g0.class(2), g0.class(5));
        // But input and output entities differ (k = 1 structure).
        assert_ne!(g0.class(0), g0.class(2));
    }

    #[test]
    fn aggregation_splits_classes() {
        let (mut g, mut segs) = twin_segments();
        // Give the second train a different command and make it visible.
        let t2 = segs[1].vertices[1];
        assert_eq!(g.vertex_kind(t2), VertexKind::Activity);
        g.set_vprop(t2, "command", "finetune");
        let agg = PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]);
        let g0 = build_g0(&g, &segs, &agg, 0);
        // Activities now in different classes; entities still shared.
        assert_ne!(g0.class(1), g0.class(4));
        segs.truncate(1);
        let g0_single = build_g0(&g, &segs, &agg, 0);
        assert_eq!(g0_single.segment_count, 1);
    }

    #[test]
    fn k_zero_merges_input_and_output_entities() {
        let (g, segs) = twin_segments();
        let g0 = build_g0(&g, &segs, &PropertyAggregation::ignore_all(), 0);
        // Without structural types all entities are one class.
        assert_eq!(g0.class(0), g0.class(2));
        assert_eq!(g0.class_count(), 2);
    }
}
