//! The kill-point sweep: crash the durable database at EVERY byte offset of
//! the write-ahead log and prove recovery lands on a committed-batch prefix.
//!
//! The crash model: with fsync-on-commit, a crash leaves some prefix of the
//! WAL's bytes durable (a torn append can stop at any byte). Sweeping every
//! `K in 0..=wal_len` with [`MemIo::fork_truncated`] therefore covers a
//! superset of reachable crash states. For each one, recovery must produce:
//!
//! 1. a `validate()`-clean graph,
//! 2. **exactly** the in-memory reference prefix after the last batch whose
//!    commit marker survived ([`wal::scan`]'s `commit_offsets` predicts
//!    which) — never a partial batch, never one batch fewer,
//! 3. a recovered snapshot index (`refresh_in_place` over the replayed
//!    suffix) equal to a from-scratch `ProvIndex::build`.

use prov_core::{ActivityRecord, DurabilityPolicy, OutputSpec, ProvDb};
use prov_store::storage::{wal, wal_file_name, FailpointIo, FaultPlan, MemIo};
use prov_store::{ProvGraph, ProvIndex, StoreError};

fn open_mem(disk: &MemIo) -> ProvDb {
    ProvDb::open_with_io(Box::new(disk.clone()), DurabilityPolicy::never_compact()).unwrap()
}

/// One scripted mutation per step, exercising every WAL op kind: vertices
/// with and without names, all edge shapes `record_activity` emits, property
/// sets, unsets, edge props, and index declarations. Pushes the post-state
/// after each committed batch into `prefixes`.
fn scripted_ingest(db: &mut ProvDb, prefixes: &mut Vec<ProvGraph>) {
    let step = |db: &mut ProvDb, prefixes: &mut Vec<ProvGraph>| {
        prefixes.push(db.graph().clone());
    };
    let alice = db.add_agent("alice").unwrap();
    step(db, prefixes);
    let data = db.add_artifact_version("dataset", Some(alice)).unwrap();
    step(db, prefixes);
    let out = db
        .record_activity(ActivityRecord {
            command: "train".into(),
            agent: Some(alice),
            inputs: vec![data],
            outputs: vec![OutputSpec::named("weights").with("acc", 0.7), OutputSpec::named("log")],
            props: vec![("opt".into(), "-gpu".into())],
        })
        .unwrap();
    step(db, prefixes);
    let weights = out.outputs[0];
    db.record_activity(ActivityRecord {
        command: "eval".into(),
        agent: None,
        inputs: vec![weights, data],
        outputs: vec![OutputSpec::named("report").with("pass", true)],
        props: vec![("seed".into(), 42i64.into())],
    })
    .unwrap();
    step(db, prefixes);
    db.try_with_graph_mut(|g| {
        let t = g.add_activity("annotate");
        let edge = g.add_edge(prov_model::EdgeKind::Used, t, data).expect("valid use edge");
        g.set_eprop(edge, "role", "input");
        g.set_vprop(weights, "acc", 0.75); // overwrite
        g.unset_vprop(weights, "acc");
        g.create_vprop_index(prov_model::VertexKind::Entity, "filename");
    })
    .unwrap();
    step(db, prefixes);
    db.add_artifact_version("dataset", None).unwrap();
    step(db, prefixes);
}

/// Sweep every byte offset of generation-`generation` WAL on `disk`,
/// asserting recovery yields exactly the predicted committed prefix.
/// `prefixes[i]` is the reference state after `base_seq + i` total batches.
fn sweep(disk: &MemIo, generation: u64, base_seq: u64, prefixes: &[ProvGraph]) {
    let wal_name = wal_file_name(generation);
    let bytes = disk.file(&wal_name).unwrap();
    let scan = wal::scan(&bytes, base_seq + 1).unwrap();
    assert_eq!(
        scan.commit_offsets.len(),
        prefixes.len() - 1,
        "one reference prefix per committed batch"
    );
    assert_eq!(scan.committed_len, bytes.len(), "the live log has no torn tail");
    for k in 0..=bytes.len() {
        let crashed = disk.fork_truncated(&wal_name, k);
        let db = open_mem(&crashed);
        let surviving = scan.commit_offsets.iter().filter(|&&o| o <= k).count();
        db.graph().validate().unwrap_or_else(|e| panic!("crash at byte {k}: invalid graph: {e}"));
        assert_eq!(
            db.graph(),
            &prefixes[surviving],
            "crash at byte {k}: expected exactly {surviving} surviving batches"
        );
        // The recovered index (snapshot base + refresh_in_place over the
        // replayed suffix) must equal a from-scratch rebuild.
        let snap = db.snapshot();
        snap.validate().unwrap_or_else(|e| panic!("crash at byte {k}: invalid index: {e}"));
        assert_eq!(*snap, ProvIndex::build(db.graph()), "crash at byte {k}: refresh != rebuild");
        // The engine reports the truncation it performed.
        let truncated = db.durability_counters().unwrap().truncated_tail_bytes;
        let expected_cut = k as u64
            - scan.commit_offsets.iter().filter(|&&o| o <= k).max().copied().unwrap_or(0) as u64;
        assert_eq!(truncated, expected_cut, "crash at byte {k}: torn-tail accounting");
    }
}

#[test]
fn recovery_at_every_wal_byte_yields_a_committed_prefix() {
    let disk = MemIo::new();
    let mut db = open_mem(&disk);
    let mut prefixes = vec![db.graph().clone()]; // [0] = empty
    scripted_ingest(&mut db, &mut prefixes);
    drop(db);
    sweep(&disk, 0, 0, &prefixes);
}

#[test]
fn recovery_at_every_wal_byte_after_compaction() {
    let disk = MemIo::new();
    let mut db = open_mem(&disk);
    let mut pre = vec![db.graph().clone()];
    scripted_ingest(&mut db, &mut pre);
    let base_seq = (pre.len() - 1) as u64;
    assert!(db.compact().unwrap());

    // Post-compaction history: the sweep prefixes restart at the snapshot.
    let mut prefixes = vec![db.graph().clone()];
    let alice = db.entity("dataset-v1").unwrap(); // any anchor for inputs
    db.add_agent("bob").unwrap();
    prefixes.push(db.graph().clone());
    db.record_activity(ActivityRecord {
        command: "publish".into(),
        agent: None,
        inputs: vec![alice],
        outputs: vec![OutputSpec::named("site")],
        props: vec![],
    })
    .unwrap();
    prefixes.push(db.graph().clone());
    drop(db);
    sweep(&disk, 1, base_seq, &prefixes);
}

#[test]
fn recovery_at_every_byte_of_a_multi_batch_group_append() {
    // Group commit: the whole scripted history is accepted into one group
    // and flushed as ONE contiguous WAL append + one fsync. Because every
    // batch keeps its own commit marker, crashing at any byte of that group
    // append must recover exactly the batches whose markers survived — the
    // same committed-prefix property as ungrouped commits, byte for byte.
    let disk = MemIo::new();
    let policy = DurabilityPolicy::never_compact().with_group_batches(100);
    let mut db = ProvDb::open_with_io(Box::new(disk.clone()), policy).unwrap();
    let mut prefixes = vec![db.graph().clone()]; // [0] = empty
    scripted_ingest(&mut db, &mut prefixes);
    // Nothing flushed yet: every batch is accepted-but-unacknowledged.
    let c = db.durability_counters().unwrap();
    assert_eq!((c.wal_appends, c.fsyncs, c.group_flushes), (0, 0, 0));
    assert_eq!(disk.file(&wal_file_name(0)).unwrap(), b"", "group still buffered");
    db.flush().unwrap();
    let c = db.durability_counters().unwrap();
    assert_eq!(c.wal_appends, (prefixes.len() - 1) as u64);
    assert_eq!(c.fsyncs, 1, "the whole group cost one fsync");
    assert_eq!(c.group_flushes, 1);
    assert_eq!(c.group_flushed_batches, (prefixes.len() - 1) as u64);
    drop(db);
    // The on-disk log is indistinguishable from per-batch commits, so the
    // full per-byte sweep applies unchanged.
    sweep(&disk, 0, 0, &prefixes);
}

#[test]
fn fsync_failure_mid_group_poisons_with_no_acknowledged_batch_lost() {
    let disk = MemIo::new();
    let fp = FailpointIo::new(disk.clone(), FaultPlan::fail_sync(0));
    let policy = DurabilityPolicy::never_compact().with_group_batches(100);
    let mut db = ProvDb::open_with_io(Box::new(fp), policy).unwrap();
    let alice = db.add_agent("alice").unwrap();
    db.add_artifact_version("dataset", Some(alice)).unwrap();
    // Both batches accepted, neither acknowledged as durable.
    assert_eq!(db.durability_counters().unwrap().fsyncs, 0);
    // The flush's fsync fails mid-group: the error surfaces here, before
    // anything was acknowledged, and the pipeline poisons.
    let err = db.flush().unwrap_err();
    assert!(matches!(err, StoreError::StorageUnavailable(_)), "{err}");
    // Every later mutation refuses instead of pretending durability.
    let err = db.add_agent("bob").unwrap_err();
    assert!(matches!(&err, StoreError::StorageUnavailable(m) if m.contains("poisoned")), "{err}");
    drop(db);
    // Reopen the underlying disk: the group's bytes landed (only the fsync
    // failed), so recovery may keep all of it or none — both are committed
    // prefixes of unacknowledged work. No acknowledged batch existed to lose.
    let db =
        ProvDb::open_with_io(Box::new(disk.clone()), DurabilityPolicy::never_compact()).unwrap();
    db.graph().validate().unwrap();
    let n = db.graph().vertex_count();
    assert!(n == 0 || n == 2, "committed prefix only, got {n} vertices");
}

#[test]
fn post_recovery_ingest_continues_versions_and_durability() {
    // Crash mid-log, recover, keep working, reopen again: the generation
    // survives, version counters continue without collisions, and the final
    // state is durable.
    let disk = MemIo::new();
    let mut db = open_mem(&disk);
    let mut prefixes = vec![db.graph().clone()];
    scripted_ingest(&mut db, &mut prefixes);
    drop(db);

    let wal_name = wal_file_name(0);
    let bytes = disk.file(&wal_name).unwrap();
    let scan = wal::scan(&bytes, 1).unwrap();
    // Crash just before the last batch's commit marker lands.
    let k = scan.commit_offsets[scan.commit_offsets.len() - 2] + 3;
    let crashed = disk.fork_truncated(&wal_name, k);
    let mut db = open_mem(&crashed);
    let surviving = scan.commit_offsets.iter().filter(|&&o| o <= k).count();
    assert_eq!(db.graph(), &prefixes[surviving]);

    // "dataset" reached v1 in the surviving prefix (the v2 batch was the one
    // torn off) — the next version must be v2 again, not v3.
    let v = db.add_artifact_version("dataset", None).unwrap();
    assert_eq!(db.graph().vertex_name(v), Some("dataset-v2"));
    let reference = db.graph().clone();
    drop(db);

    let db = open_mem(&crashed);
    assert_eq!(db.graph(), &reference);
    assert_eq!(db.durability_counters().unwrap().recoveries, 1);
}
