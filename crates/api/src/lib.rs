//! `prov-api`: the wire-ready service layer of the reproduction.
//!
//! The paper's operators are *interactive* — PgSeg induces once and adjusts
//! repeatedly (Sec. III-B) — so the service surface is built around an owned
//! registry of live sessions rather than ad-hoc library calls:
//!
//! * [`envelope`] — the serde [`Request`]/[`Response`] envelope covering the
//!   whole facade (ingest, segment open/expand/restrict/close, summarize,
//!   lineage, composable queries with resumable cursors, JSON interchange),
//!   with [`EntityRef`] addressing (id *or* versioned name) and a
//!   per-response [`Stats`] envelope;
//! * [`spec`] — [`BoundarySpec`], the declarative (closure-free) boundary
//!   subset that can cross a wire;
//! * [`service`] — [`ProvService`], the [`SessionId`]-keyed session registry
//!   over a [`prov_core::ProvDb`];
//! * [`error`] — [`ApiError`], the unified query error type, with
//!   wire-stable [`ErrorCode`] discriminants;
//! * [`clock`] — the injected [`Clock`] behind `Stats::elapsed_micros`.
//!
//! ```
//! use prov_api::{ProvService, Request, Response, AddAgentRequest};
//!
//! let mut service = ProvService::new();
//! let response = service.handle(&Request::AddAgent(AddAgentRequest {
//!     name: "alice".into(),
//! }));
//! assert!(matches!(response, Response::Vertex(_)));
//! // Or fully serialized, as a transport would drive it:
//! let wire = service.handle_json(r#"{"AddAgent": {"name": "bob"}}"#);
//! assert!(wire.contains("\"Vertex\""));
//! ```

pub mod clock;
pub mod envelope;
pub mod error;
pub mod service;
pub mod spec;

pub use clock::{Clock, ManualClock, SystemClock};
pub use envelope::{
    ActivityResponse, AddAgentRequest, AddArtifactRequest, CloseSessionRequest, ClosedResponse,
    DocumentResponse, DurabilityActivity, EntityRef, ErrorResponse, EvaluatorSpec, ExpandRequest,
    ExportRequest, ImportRequest, ImportedResponse, LineageDir, LineageRequest, LineageResponse,
    OpenSessionRequest, OutputSpecDto, PsgDto, PsgEdgeDto, PsgVertexDto, QueryActivity,
    QueryRequest, QueryResponse, QuerySpec, RecordActivityRequest, Request, Response,
    RestrictRequest, SegmentDto, SegmentEdgeDto, SegmentOptions, SegmentRequest, SegmentResponse,
    SegmentVertexDto, SessionId, SessionResponse, SnapshotActivity, Stats, SummarizeRequest,
    SummaryResponse, VertexResponse,
};
pub use error::{ApiError, ApiResult, ErrorCode};
pub use service::ProvService;
pub use spec::{BirthWindow, BoundarySpec, EdgePredSpec, ExpansionSpec, PropMatch, VertexPredSpec};
