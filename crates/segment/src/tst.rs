//! `SimProvTst`: per-destination transitive evaluation via equivalence classes.
//!
//! Evaluating each `vj ∈ Vdst` separately restores transitivity of the `Ee` /
//! `Aa` relations (Sec. III-B), so instead of pair facts the algorithm keeps a
//! single *equivalence class per iteration* — precisely the alternating
//! upstream level sets of `vj`:
//!
//! ```text
//! [e]₀ = {vj}
//! [a]₁ = { a : ∃e ∈ [e]₀, (e, a) ∈ G }   (generators)
//! [e]₂ = { e : ∃a ∈ [a]₁, (a, e) ∈ U }   (inputs)
//! ...
//! ```
//!
//! Any two vertices in the same even level are `Ee`-related; the reachability
//! answer is the union of the levels that contain a source. The level
//! construction runs in `O(Σ_m Σ_{v∈[.]_m} deg(v))` — `O(|G| + |U|)` per
//! destination when level sets are disjoint (the typical provenance case,
//! Theorem 2) — and supports the paper's early-stopping rule: once every
//! vertex of a level is older than every source entity, no deeper level can
//! contain a source and exploration stops.
//!
//! Unlike the pair-relation solvers, this module also induces the exact `VC2`
//! vertex set (every vertex on an accepting path): a vertex `u ∈ [.]_m` lies
//! on a valid side-2 path iff it can extend upstream to length `M` for some
//! accepted `M` (a source level), i.e. iff `∃M ∈ Mset: m ≤ M ≤ m + ext(u)`
//! where `ext(u)` is the longest upstream ancestry path from `u`. Every
//! upstream neighbor of a level-`m` vertex is in level `m+1`, so extensions
//! never leave the level structure and the interval test is exact.

use crate::outcome::{marks_to_vec, EvalStats, SimilarOutcome};
use crate::view::MaskedGraph;
use prov_model::{VertexId, VertexKind};
use std::time::Instant;

/// Configuration for [`similar_tst`].
#[derive(Debug, Clone, Copy)]
pub struct TstConfig {
    /// Apply the temporal early-stopping rule (assumes births respect
    /// generation/usage order, which lifecycle ingestion guarantees).
    pub early_stop: bool,
    /// Safety cap on the number of levels (defaults to the vertex count; the
    /// DAG's longest path bounds it anyway).
    pub max_levels: Option<usize>,
    /// Use compressed bitmaps for the per-level dedup sets instead of the
    /// dense stamp array (the paper's `w CBM` space/time trade-off).
    pub compressed_sets: bool,
}

impl Default for TstConfig {
    fn default() -> Self {
        TstConfig { early_stop: true, max_levels: None, compressed_sets: false }
    }
}

/// Longest upstream (ancestry) path length from each vertex, lazily memoized.
/// `-1` = unknown; computed with an explicit stack (the graph is a DAG).
fn ext_of(view: &MaskedGraph<'_>, start: VertexId, memo: &mut [i64]) -> u32 {
    if memo[start.index()] >= 0 {
        // lint-ok(narrowing-cast): memo holds DAG path lengths < n, far below u32::MAX.
        return memo[start.index()] as u32;
    }
    let mut stack: Vec<VertexId> = vec![start];
    while let Some(&u) = stack.last() {
        if memo[u.index()] >= 0 {
            stack.pop();
            continue;
        }
        let mut pending = false;
        let mut best: i64 = 0;
        for w in view.upstream(u) {
            let m = memo[w.index()];
            if m < 0 {
                stack.push(w);
                pending = true;
            } else {
                best = best.max(1 + m);
            }
        }
        if !pending {
            memo[u.index()] = best;
            stack.pop();
        }
    }
    // lint-ok(narrowing-cast): memo holds DAG path lengths < n, far below u32::MAX.
    memo[start.index()] as u32
}

/// The level sets of one destination (exposed for tests and for the
/// summarization pipeline's diagnostics).
#[derive(Debug, Clone)]
pub struct LevelSets {
    /// `levels[m]` = the equivalence class at iteration `m` (even = entities,
    /// odd = activities).
    pub levels: Vec<Vec<VertexId>>,
    /// Even levels containing at least one source ("accepted lengths").
    pub msets: Vec<usize>,
}

/// Build the upstream level sets for a single destination.
pub fn level_sets(
    view: &MaskedGraph<'_>,
    vj: VertexId,
    is_src: &[bool],
    min_src_birth: Option<u64>,
    cfg: &TstConfig,
    stamps: &mut [u32],
    stamp_counter: &mut u32,
) -> LevelSets {
    let mut levels: Vec<Vec<VertexId>> = Vec::new();
    let mut msets: Vec<usize> = Vec::new();
    if !view.vertex_ok(vj) {
        return LevelSets { levels, msets };
    }
    levels.push(vec![vj]);
    if is_src[vj.index()] {
        msets.push(0);
    }
    let cap = cfg.max_levels.unwrap_or(view.index().vertex_count() + 1);
    loop {
        let m = levels.len();
        if m > cap {
            break;
        }
        let last = &levels[m - 1];
        let mut next: Vec<VertexId> = Vec::new();
        if cfg.compressed_sets {
            use prov_bitset::FastSet;
            let mut seen = prov_bitset::CompressedBitmap::new();
            for &u in last {
                for w in view.upstream(u) {
                    if seen.insert(w.raw()) {
                        next.push(w);
                    }
                }
            }
        } else {
            *stamp_counter += 1;
            let stamp = *stamp_counter;
            for &u in last {
                for w in view.upstream(u) {
                    if stamps[w.index()] != stamp {
                        stamps[w.index()] = stamp;
                        next.push(w);
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        let has_src = m.is_multiple_of(2) && next.iter().any(|&v| is_src[v.index()]);
        let all_old = match min_src_birth {
            Some(min) => next.iter().all(|&v| view.index().birth(v) < min),
            None => true,
        };
        if has_src {
            msets.push(m);
        }
        levels.push(next);
        if cfg.early_stop && all_old {
            // No deeper level can contain a source (upstream is strictly
            // older), and levels beyond the last accepted M never contribute
            // to the answer or to VC2.
            break;
        }
    }
    LevelSets { levels, msets }
}

/// Evaluate `L(SimProv)`-reachability with SimProvTst and induce the exact
/// `VC2` vertex set.
pub fn similar_tst(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &TstConfig,
) -> SimilarOutcome {
    let t0 = Instant::now();
    let n = view.index().vertex_count();
    let mut is_src = vec![false; n];
    let mut min_src_birth: Option<u64> = None;
    for &s in vsrc {
        if s.index() < n && view.vertex_ok(s) {
            is_src[s.index()] = true;
            let b = view.index().birth(s);
            min_src_birth = Some(min_src_birth.map_or(b, |m: u64| m.min(b)));
        }
    }
    let mut in_answer = vec![false; n];
    let mut in_vc2 = vec![false; n];
    let mut ext_memo: Vec<i64> = vec![-1; n];
    let mut stamps: Vec<u32> = vec![0; n];
    let mut stamp_counter: u32 = 0;
    let mut work: u64 = 0;
    let mut mem = n * (1 + 1 + 8 + 4);

    let mut seen_dst = vec![false; n];
    for &vj in vdst {
        if vj.index() >= n || seen_dst[vj.index()] {
            continue;
        }
        seen_dst[vj.index()] = true;
        debug_assert_eq!(view.index().kind(vj), VertexKind::Entity, "Vdst must be entities");
        let ls = level_sets(view, vj, &is_src, min_src_birth, cfg, &mut stamps, &mut stamp_counter);
        work += ls.levels.iter().map(|l| l.len() as u64).sum::<u64>();
        mem = mem.max(n * 14 + ls.levels.iter().map(|l| l.len() * 4).sum::<usize>());
        let Some(&max_m) = ls.msets.last() else { continue };
        // Answer: union of source levels.
        for &m in &ls.msets {
            for &u in &ls.levels[m] {
                in_answer[u.index()] = true;
            }
        }
        // VC2: u ∈ level m contributes iff some accepted M ∈ [m, m + ext(u)].
        let mut mset_ptr = 0usize;
        for (m, level) in ls.levels.iter().enumerate().take(max_m + 1) {
            while mset_ptr < ls.msets.len() && ls.msets[mset_ptr] < m {
                mset_ptr += 1;
            }
            debug_assert!(mset_ptr < ls.msets.len(), "m <= max_m implies a following M");
            let next_m = ls.msets[mset_ptr];
            for &u in level {
                if in_vc2[u.index()] {
                    continue;
                }
                let reach = m as u64 + ext_of(view, u, &mut ext_memo) as u64;
                if next_m as u64 <= reach {
                    in_vc2[u.index()] = true;
                }
            }
        }
    }

    SimilarOutcome {
        answer: marks_to_vec(&in_answer),
        vc2: Some(marks_to_vec(&in_vc2)),
        stats: EvalStats { elapsed: t0.elapsed(), work, memory_bytes: mem, dnf: false },
    }
}

/// Test helper: the full `Ee` pair relation (all ordered pairs of entities
/// sharing an even level of some destination, identity included). Quadratic —
/// only for differential testing on small graphs.
#[doc(hidden)]
pub fn entity_pairs_for_tests(
    view: &MaskedGraph<'_>,
    vdst: &[VertexId],
) -> std::collections::BTreeSet<(u32, u32)> {
    let n = view.index().vertex_count();
    let mut stamps = vec![0u32; n];
    let mut counter = 0u32;
    let cfg = TstConfig { early_stop: false, max_levels: None, compressed_sets: false };
    let is_src = vec![false; n];
    let mut pairs = std::collections::BTreeSet::new();
    for &vj in vdst {
        let ls = level_sets(view, vj, &is_src, None, &cfg, &mut stamps, &mut counter);
        for (m, level) in ls.levels.iter().enumerate() {
            if m % 2 != 0 {
                continue;
            }
            for &a in level {
                for &b in level {
                    pairs.insert((a.raw(), b.raw()));
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::EdgeKind;
    use prov_store::{ProvGraph, ProvIndex};

    /// The Fig. 3 shape in miniature: two parallel adjustment rounds feeding a
    /// final artifact.
    ///
    /// ```text
    /// d  <-U- t1 <-G- m1          d  <-U- t2 <-G- m2
    /// m1 <-U- t3 <-G- w           m2 <-U- t4 <-G- w2
    /// ```
    fn two_round() -> (ProvGraph, ProvIndex, Vec<VertexId>) {
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let m1 = g.add_entity("m1");
        let t2 = g.add_activity("t2");
        let m2 = g.add_entity("m2");
        let t3 = g.add_activity("t3");
        let w = g.add_entity("w");
        let t4 = g.add_activity("t4");
        let w2 = g.add_entity("w2");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m1, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m2, t2).unwrap();
        g.add_edge(EdgeKind::Used, t3, m1).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t3).unwrap();
        g.add_edge(EdgeKind::Used, t4, m2).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w2, t4).unwrap();
        let idx = ProvIndex::build(&g);
        let ids = vec![d, t1, m1, t2, m2, t3, w, t4, w2];
        (g, idx, ids)
    }

    #[test]
    fn levels_alternate_and_cover_ancestry() {
        let (_, idx, ids) = two_round();
        let view = MaskedGraph::unmasked(&idx);
        let n = idx.vertex_count();
        let (mut stamps, mut counter) = (vec![0u32; n], 0u32);
        let is_src = vec![false; n];
        let ls = level_sets(
            &view,
            ids[6], // w
            &is_src,
            None,
            // With no sources the early-stopping rule fires immediately;
            // disable it to inspect the full level structure.
            &TstConfig { early_stop: false, max_levels: None, compressed_sets: false },
            &mut stamps,
            &mut counter,
        );
        // w -> {t3} -> {m1} -> {t1} -> {d}
        assert_eq!(ls.levels.len(), 5);
        assert_eq!(ls.levels[0], vec![ids[6]]);
        assert_eq!(ls.levels[1], vec![ids[5]]);
        assert_eq!(ls.levels[2], vec![ids[2]]);
        assert_eq!(ls.levels[4], vec![ids[0]]);
    }

    #[test]
    fn answer_is_the_source_level() {
        let (_, idx, ids) = two_round();
        let view = MaskedGraph::unmasked(&idx);
        let (d, m1, m2, w, w2) = (ids[0], ids[2], ids[4], ids[6], ids[8]);
        // src = {m1}, dst = {w}: m1 is in level 2 of w, so the answer is
        // level 2 = {m1} itself (no other entity shares that level).
        let out = similar_tst(&view, &[m1], &[w], &TstConfig::default());
        assert_eq!(out.answer, vec![m1]);
        // src = {d}, dst = {w}: d is in level 4; level 4 = {d}.
        let out = similar_tst(&view, &[d], &[w], &TstConfig::default());
        assert_eq!(out.answer, vec![d]);
        // src = {d}, dst = {w, w2}: both chains accept; answer still {d}.
        let out = similar_tst(&view, &[d], &[w, w2], &TstConfig::default());
        assert_eq!(out.answer, vec![d]);
        // Sibling model of the same round: from w2's perspective m2 is level 2.
        let out = similar_tst(&view, &[m2], &[w2], &TstConfig::default());
        assert_eq!(out.answer, vec![m2]);
    }

    #[test]
    fn vc2_contains_similar_round_not_unrelated() {
        // Make the rounds share the destination: t3 and t4 both feed w.
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let m1 = g.add_entity("m1");
        let t2 = g.add_activity("t2");
        let m2 = g.add_entity("m2");
        let t3 = g.add_activity("t3");
        let w = g.add_entity("w");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m1, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m2, t2).unwrap();
        g.add_edge(EdgeKind::Used, t3, m1).unwrap();
        g.add_edge(EdgeKind::Used, t3, m2).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t3).unwrap();
        let idx = ProvIndex::build(&g);
        let view = MaskedGraph::unmasked(&idx);
        // src = {m1}, dst = {w}: level 2 of w = {m1, m2} — the *similar* model
        // m2 is part of the answer even though the user never named it.
        let out = similar_tst(&view, &[m1], &[w], &TstConfig::default());
        assert_eq!(out.answer, vec![m1, m2]);
        let vc2 = out.vc2.unwrap();
        // Path vertices: w(level0), t3(level1), m1/m2(level2) are all on
        // accepting paths; deeper levels (t1, t2, d) are beyond max M = 2.
        assert!(vc2.contains(&w) && vc2.contains(&t3));
        assert!(vc2.contains(&m1) && vc2.contains(&m2));
        assert!(!vc2.contains(&d) && !vc2.contains(&t1) && !vc2.contains(&t2));
    }

    #[test]
    fn vc2_excludes_dead_end_branches_shorter_than_m() {
        // w's ancestry has a long chain (via m1) and a short stub (via cfg):
        // src = {d} is 4 levels up; the stub entity cfg is at level 2 but has
        // ext(cfg)=0, so it cannot lie on a length-4 side-2 path... unless it
        // can: [m, m+ext] = [2,2] does not contain 4 -> excluded.
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let m1 = g.add_entity("m1");
        let cfg = g.add_entity("cfg");
        let t3 = g.add_activity("t3");
        let w = g.add_entity("w");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m1, t1).unwrap();
        g.add_edge(EdgeKind::Used, t3, m1).unwrap();
        g.add_edge(EdgeKind::Used, t3, cfg).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t3).unwrap();
        let idx = ProvIndex::build(&g);
        let view = MaskedGraph::unmasked(&idx);
        let out = similar_tst(&view, &[d], &[w], &TstConfig::default());
        assert_eq!(out.answer, vec![d]);
        let vc2 = out.vc2.unwrap();
        assert!(!vc2.contains(&cfg), "stub config is not on a length-4 path");
        assert!(vc2.contains(&m1) && vc2.contains(&t1) && vc2.contains(&t3));
    }

    #[test]
    fn early_stop_agrees_with_full_run() {
        let (_, idx, ids) = two_round();
        let view = MaskedGraph::unmasked(&idx);
        let (m1, w) = (ids[2], ids[6]);
        let with = similar_tst(
            &view,
            &[m1],
            &[w],
            &TstConfig { early_stop: true, max_levels: None, compressed_sets: false },
        );
        let without = similar_tst(
            &view,
            &[m1],
            &[w],
            &TstConfig { early_stop: false, max_levels: None, compressed_sets: false },
        );
        assert_eq!(with.answer, without.answer);
        assert_eq!(with.vc2, without.vc2);
        // Early stop must do no more work than the full run.
        assert!(with.stats.work <= without.stats.work);
    }

    #[test]
    fn masked_destination_or_empty_sources_yield_empty() {
        let (_, idx, ids) = two_round();
        let view = MaskedGraph::unmasked(&idx);
        let out = similar_tst(&view, &[], &[ids[6]], &TstConfig::default());
        assert!(out.answer.is_empty());
        assert_eq!(out.vc2, Some(vec![]));
    }

    #[test]
    fn identical_src_dst_answers_itself() {
        let (_, idx, ids) = two_round();
        let view = MaskedGraph::unmasked(&idx);
        let w = ids[6];
        // Vsrc = Vdst = {w}: level 0 accepts, answer = {w}.
        let out = similar_tst(&view, &[w], &[w], &TstConfig::default());
        assert_eq!(out.answer, vec![w]);
        assert!(out.vc2.unwrap().contains(&w));
    }

    #[test]
    fn pair_relation_helper_is_symmetric_reflexive_on_levels() {
        let (_, idx, ids) = two_round();
        let view = MaskedGraph::unmasked(&idx);
        let pairs = entity_pairs_for_tests(&view, &[ids[6]]);
        assert!(pairs.contains(&(ids[6].raw(), ids[6].raw())));
        assert!(pairs.contains(&(ids[2].raw(), ids[2].raw())));
        for &(a, b) in &pairs {
            assert!(pairs.contains(&(b, a)));
        }
    }
}
