//! Scoped tasks: `scope`, `join`, and `par_for` on top of the pool.
//!
//! The lifetime story follows rayon-core's `Scope<'scope>`: spawned closures
//! may borrow data outliving the `scope()` call because `scope()` does not
//! return until every spawned task has completed (a counting latch tracks
//! in-flight tasks). The closure box is lifetime-erased to `'static` before
//! entering the pool queues; that erasure is sound precisely because of the
//! completion barrier. While waiting on the latch, the calling thread *helps*
//! — it runs queued pool jobs — so nested scopes on a small pool cannot
//! deadlock on their own tasks.

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::time::Duration;

use crate::pool::{global_pool, Inner, Job, ThreadPool};
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, Condvar, Mutex};

/// Counts in-flight tasks of one scope and holds the first captured panic.
struct Latch {
    pending: AtomicUsize,
    lock: Mutex<()>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    fn new() -> Self {
        Latch {
            pending: AtomicUsize::new(0),
            lock: Mutex::new(()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn increment(&self) {
        self.pending.fetch_add(1, Ordering::AcqRel);
    }

    fn decrement(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Take the lock before notifying so a waiter between its pending
            // check and `wait()` cannot miss the wakeup.
            let _guard = self.lock.lock().unwrap();
            self.done.notify_all();
        }
    }

    fn store_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}

/// Handle passed to the `scope()` closure; `spawn` enqueues tasks that may
/// borrow anything outliving `'scope`.
pub struct Scope<'scope> {
    pool: Arc<Inner>,
    latch: Arc<Latch>,
    // Invariant over 'scope (mirrors rayon): prevents the region from being
    // shortened to exclude the completion barrier.
    marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.increment();
        let latch = Arc::clone(&self.latch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                latch.store_panic(payload);
            }
            latch.decrement();
        });
        // SAFETY: the box only erases the `'scope` region to `'static`; the
        // enclosing `scope()` call blocks until `latch.pending == 0`, so the
        // closure (and every borrow inside it) is dropped before `'scope`
        // data can go out of scope.
        let job: Job = unsafe { std::mem::transmute(job) };
        self.pool.push(job);
    }
}

/// Wait for `latch` to reach zero, running queued pool jobs in the meantime.
fn wait_helping(pool: &Arc<Inner>, latch: &Latch) {
    let me = pool.current_worker();
    loop {
        if latch.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        if let Some(job) = pool.find_job(me) {
            job();
            continue;
        }
        // Nothing runnable: park on the latch. The timeout is a safety net —
        // it bounds how long we can ignore pool work that was enqueued after
        // the scan above — correctness never depends on it.
        let guard = latch.lock.lock().unwrap();
        if latch.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        let _ = latch.done.wait_timeout(guard, Duration::from_millis(10)).unwrap();
    }
}

impl ThreadPool {
    /// Run `op` with a [`Scope`] handle; returns once `op` and every task it
    /// spawned (transitively) have finished. Panics from tasks are captured
    /// and re-thrown here, task panics taking precedence over `op`'s.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R + Send,
        R: Send,
    {
        let latch = Arc::new(Latch::new());
        let scope =
            Scope { pool: Arc::clone(&self.inner), latch: Arc::clone(&latch), marker: PhantomData };
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
        wait_helping(&self.inner, &latch);
        if let Some(payload) = latch.take_panic() {
            panic::resume_unwind(payload);
        }
        match result {
            Ok(value) => value,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Run two closures, potentially in parallel, returning both results.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let mut rb = None;
        let ra = self.scope(|s| {
            s.spawn(|| rb = Some(b()));
            a()
        });
        (ra, rb.expect("join: spawned side did not run"))
    }

    /// Apply `f` to `0..n` split into at most `chunks` contiguous ranges;
    /// each invocation gets `(chunk_index, range)`. Chunk 0 may run on the
    /// calling thread.
    pub fn par_for<F>(&self, n: usize, chunks: usize, f: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Send + Sync,
    {
        if n == 0 {
            return;
        }
        let chunks = chunks.clamp(1, n);
        if chunks == 1 {
            f(0, 0..n);
            return;
        }
        let ranges = chunk_ranges(n, chunks);
        let f = &f;
        self.scope(|s| {
            for (idx, range) in ranges.into_iter().enumerate() {
                s.spawn(move || f(idx, range));
            }
        });
    }
}

/// Split `0..n` into at most `parts` contiguous, near-equal ranges.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let chunk = n.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// [`ThreadPool::scope`] on the global pool.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    global_pool().scope(op)
}

/// [`ThreadPool::join`] on the global pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    global_pool().join(a, b)
}

/// [`ThreadPool::par_for`] on the global pool.
pub fn par_for<F>(n: usize, chunks: usize, f: F)
where
    F: Fn(usize, std::ops::Range<usize>) + Send + Sync,
{
    global_pool().par_for(n, chunks, f)
}
