//! Fig. 5(a) kernel benchmark: `L(SimProv)`-reachability runtime vs graph
//! size, per evaluator.
//!
//! Criterion sizes are kept modest so `cargo bench --workspace` terminates in
//! minutes; the full-scale sweep (up to `Pd100k`, with DNF entries) is
//! produced by `cargo run -p prov-bench --release --bin figure -- 5a`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_bitset::SetBackend;
use prov_segment::{evaluate_similarity, MaskedGraph, PgSegOptions, SimilarEvaluator};
use prov_store::ProvIndex;
use prov_workload::{generate_pd, standard_query, PdParams};
use std::time::Duration;

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_scale");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    for &n in &[100usize, 500, 1000, 2000] {
        let graph = generate_pd(&PdParams::with_size(n));
        let index = ProvIndex::build(&graph);
        let view = MaskedGraph::unmasked(&index);
        let (vsrc, vdst) = standard_query(&graph, 2);

        let evaluators: Vec<(&str, SimilarEvaluator)> = vec![
            ("cflrb", SimilarEvaluator::CflrB(SetBackend::Bit)),
            ("cflrb_cbm", SimilarEvaluator::CflrB(SetBackend::Compressed)),
            ("simprov_alg", SimilarEvaluator::SimProvAlg(SetBackend::Bit)),
            ("simprov_alg_cbm", SimilarEvaluator::SimProvAlg(SetBackend::Compressed)),
            ("simprov_tst", SimilarEvaluator::SimProvTst),
        ];
        for (name, evaluator) in evaluators {
            // CflrB above 1k is too slow for a timed loop; the figure binary
            // covers it.
            if name.starts_with("cflrb") && n > 1000 {
                continue;
            }
            let opts = PgSegOptions { evaluator, ..PgSegOptions::default() };
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| evaluate_similarity(&view, &vsrc, &vdst, &opts))
            });
        }
        // The Cypher baseline only at the paper's feasible size.
        if n == 100 {
            let opts =
                PgSegOptions { evaluator: SimilarEvaluator::Naive, ..PgSegOptions::default() };
            group.bench_with_input(BenchmarkId::new("cypher_naive", n), &n, |b, _| {
                b.iter(|| evaluate_similarity(&view, &vsrc, &vdst, &opts))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
