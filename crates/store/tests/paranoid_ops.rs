//! Randomized op-interleaving invariant test (ISSUE 7 satellite).
//!
//! A random sequence of ingest, property-write, snapshot-refresh and
//! session-pin operations must keep every structural invariant intact after
//! *every single step* — [`ProvGraph::validate`] for the mutable store,
//! [`ProvIndex::validate`] for the maintained snapshot, and pinned session
//! snapshots must stay frozen (same cursor, still valid) while the world
//! moves on underneath them.
//!
//! Run under `--features paranoid` (the CI paranoid matrix does) the same
//! sequences additionally self-check inside every mutation, so a violation
//! panics at the exact op that introduced it instead of surfacing at the
//! next explicit validate call.

use proptest::prelude::*;
use prov_model::{EdgeKind, VertexKind};
use prov_store::{ProvGraph, ProvIndex, SharedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One pinned session: the snapshot handle plus the cursor it was frozen at.
struct Pinned {
    index: SharedIndex,
    vertices: u32,
}

fn pick(g: &ProvGraph, rng: &mut StdRng, kind: VertexKind) -> Option<prov_model::VertexId> {
    let of_kind = g.vertices_of_kind(kind);
    if of_kind.is_empty() {
        None
    } else {
        Some(of_kind[rng.gen_range(0..of_kind.len())])
    }
}

/// Apply one random operation; returns a label for failure messages.
fn apply_op(
    g: &mut ProvGraph,
    maintained: &mut ProvIndex,
    pins: &mut Vec<Pinned>,
    rng: &mut StdRng,
    step: usize,
) -> &'static str {
    match rng.gen_range(0..12u32) {
        0 => {
            g.add_entity(&format!("e{step}"));
            "add_entity"
        }
        1 => {
            g.add_activity(&format!("a{step}"));
            "add_activity"
        }
        2 => {
            g.add_agent(&format!("u{step}"));
            "add_agent"
        }
        3 => match (pick(g, rng, VertexKind::Activity), pick(g, rng, VertexKind::Entity)) {
            (Some(a), Some(e)) => {
                g.add_edge(EdgeKind::Used, a, e).unwrap();
                "add_used"
            }
            _ => "skip",
        },
        4 => match (pick(g, rng, VertexKind::Entity), pick(g, rng, VertexKind::Activity)) {
            (Some(e), Some(a)) => {
                g.add_edge(EdgeKind::WasGeneratedBy, e, a).unwrap();
                "add_generated"
            }
            _ => "skip",
        },
        5 => match (pick(g, rng, VertexKind::Activity), pick(g, rng, VertexKind::Agent)) {
            (Some(a), Some(u)) => {
                g.add_edge(EdgeKind::WasAssociatedWith, a, u).unwrap();
                "add_associated"
            }
            _ => "skip",
        },
        6 => match (pick(g, rng, VertexKind::Entity), pick(g, rng, VertexKind::Entity)) {
            (Some(d1), Some(d2)) => {
                g.add_edge(EdgeKind::WasDerivedFrom, d1, d2).unwrap();
                "add_derived"
            }
            _ => "skip",
        },
        7 => {
            if let Some(v) = pick(g, rng, VertexKind::Entity) {
                g.set_vprop(v, "tag", format!("t{step}"));
            }
            "set_vprop"
        }
        8 => {
            maintained.refresh_in_place(g);
            "refresh_in_place"
        }
        9 => {
            *maintained = maintained.refreshed(g);
            "refresh_cloned"
        }
        10 => {
            // Pin the current maintained state as a live session would.
            pins.push(Pinned {
                index: std::sync::Arc::new(maintained.clone()),
                vertices: maintained.cursor().vertices,
            });
            "pin_session"
        }
        _ => {
            // A pinned session refreshes privately (clone-extend), leaving
            // its original pin untouched.
            if let Some(p) = pins.last() {
                let refreshed = p.index.refreshed(g);
                assert!(refreshed.is_fresh(g));
            }
            "pinned_refresh"
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every structural invariant holds after every op, and pinned session
    /// snapshots stay frozen and valid while the graph grows.
    #[test]
    fn random_op_interleavings_keep_all_invariants(
        seed in 0u64..100_000,
        steps in 1usize..80,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = ProvGraph::new();
        let e0 = g.add_entity("seed-e");
        let a0 = g.add_activity("seed-a");
        g.add_agent("seed-u");
        g.add_edge(EdgeKind::Used, a0, e0).unwrap();

        let mut maintained = ProvIndex::build(&g);
        let mut pins: Vec<Pinned> = Vec::new();

        for step in 0..steps {
            let op = apply_op(&mut g, &mut maintained, &mut pins, &mut rng, step);
            let store = g.validate();
            prop_assert!(store.is_ok(), "step {} ({}): store invariant broken: {:?}", step, op, store);
            let snap = maintained.validate();
            prop_assert!(snap.is_ok(), "step {} ({}): snapshot invariant broken: {:?}", step, op, snap);
            for (i, p) in pins.iter().enumerate() {
                prop_assert_eq!(
                    p.index.cursor().vertices, p.vertices,
                    "pin {} moved at step {} ({})", i, step, op
                );
                let pinned = p.index.validate();
                prop_assert!(
                    pinned.is_ok(),
                    "step {} ({}): pinned snapshot {} broken: {:?}", step, op, i, pinned
                );
            }
        }

        // End state: a final refresh converges on the reference build.
        maintained.refresh_in_place(&g);
        prop_assert_eq!(&maintained, &ProvIndex::build(&g));
    }
}
