//! `ProvService`: the owned session registry behind the envelope.
//!
//! The service wraps a [`ProvDb`] and a [`SessionId`]-keyed registry of live
//! [`PgSegSession`]s. Because sessions are `'static` (they pin the
//! graph/index snapshot they were opened against), any number of them can be
//! held concurrently and adjusted independently — the paper's interactive
//! "induce once, adjust repeatedly" loop (Sec. III-B) lifted to a
//! multi-tenant surface.
//!
//! [`ProvService::handle`] maps one [`Request`] to one [`Response`] and
//! never panics on bad input: every failure funnels through
//! [`crate::ApiError`] into [`Response::Error`]. [`ProvService::handle_json`]
//! is the byte-level entry a transport would bind.

use crate::clock::{Clock, SystemClock};
use crate::envelope::*;
use crate::error::{ApiError, ApiResult};
use prov_core::{ActivityRecord, LineageDirection, OutputSpec, ProvDb};
use prov_segment::{PgSegQuery, PgSegSession};
use prov_summary::{PgSumQuery, PropertyAggregation, SegmentRef};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The provenance service: database + live session registry + clock.
pub struct ProvService {
    db: ProvDb,
    sessions: BTreeMap<SessionId, PgSegSession>,
    next_session: u64,
    /// Cumulative count of query-cursor resumptions served (stamped into
    /// [`crate::QueryActivity`] on every query response).
    resumptions: u64,
    clock: Box<dyn Clock>,
}

impl Default for ProvService {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ProvService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvService")
            .field("vertices", &self.db.graph().vertex_count())
            .field("sessions", &self.sessions.len())
            .finish()
    }
}

impl ProvService {
    /// Empty service on the wall clock.
    pub fn new() -> Self {
        Self::with_clock(Box::new(SystemClock::default()))
    }

    /// Empty service on an injected clock.
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        ProvService {
            db: ProvDb::new(),
            sessions: BTreeMap::new(),
            next_session: 0,
            resumptions: 0,
            clock,
        }
    }

    /// Wrap an existing database.
    pub fn from_db(db: ProvDb) -> Self {
        ProvService { db, ..Self::new() }
    }

    /// The wrapped database (read-only).
    pub fn db(&self) -> &ProvDb {
        &self.db
    }

    /// The query parallelism the wrapped database serves with (see
    /// [`ProvDb::parallelism`]).
    pub fn parallelism(&self) -> usize {
        self.db.parallelism()
    }

    /// Pin the database's query parallelism (`1` forces the sequential
    /// engines, `0` restores the track-the-pool default). Answers are
    /// identical at any value — the wire contract does not move — so a
    /// deployment can tune this freely.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.db.set_parallelism(threads);
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Inspect a live session.
    pub fn session(&self, id: SessionId) -> Option<&PgSegSession> {
        self.sessions.get(&id)
    }

    /// Serve one request; errors become [`Response::Error`], successes carry
    /// a [`Stats`] envelope timed by the injected clock and stamped with the
    /// database's snapshot reuse/refresh/rebuild counters — the serving
    /// loop's health, observable per response.
    pub fn handle(&mut self, request: &Request) -> Response {
        let start = self.clock.now_micros();
        let mut response = match self.dispatch(request) {
            Ok(r) => r,
            Err(e) => Response::Error(ErrorResponse { code: e.code(), message: e.to_string() }),
        };
        let elapsed = self.clock.now_micros().saturating_sub(start);
        if let Some(stats) = response.stats_mut() {
            stats.elapsed_micros = elapsed;
            stats.snapshot = self.db.snapshot_counters().into();
            stats.durability = self.db.durability_counters().unwrap_or_default().into();
        }
        response
    }

    /// Byte-level entry: parse a JSON request, serve it, serialize the
    /// response. Parse failures come back as a serialized error response.
    pub fn handle_json(&mut self, request: &str) -> String {
        let response = match serde_json::from_str::<Request>(request) {
            Ok(req) => self.handle(&req),
            Err(e) => {
                let err = ApiError::Malformed(e.to_string());
                Response::Error(ErrorResponse { code: err.code(), message: err.to_string() })
            }
        };
        serde_json::to_string(&response).expect("responses always serialize")
    }

    fn dispatch(&mut self, request: &Request) -> ApiResult<Response> {
        match request {
            Request::AddAgent(r) => self.add_agent(r),
            Request::AddArtifact(r) => self.add_artifact(r),
            Request::RecordActivity(r) => self.record_activity(r),
            Request::Segment(r) => self.segment(r),
            Request::OpenSession(r) => self.open_session(r),
            Request::Expand(r) => self.expand(r),
            Request::Restrict(r) => self.restrict(r),
            Request::CloseSession(r) => self.close_session(r),
            Request::Summarize(r) => self.summarize(r),
            Request::Lineage(r) => self.lineage(r),
            Request::Query(r) => self.query(r),
            Request::Export(_) => self.export(),
            Request::Import(r) => self.import(r),
        }
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    fn add_agent(&mut self, r: &AddAgentRequest) -> ApiResult<Response> {
        let id = self.db.add_agent(&r.name)?;
        Ok(self.vertex_response(id))
    }

    fn add_artifact(&mut self, r: &AddArtifactRequest) -> ApiResult<Response> {
        let attributed_to = match &r.attributed_to {
            Some(a) => Some(a.resolve(self.db.graph())?),
            None => None,
        };
        let id = self.db.add_artifact_version(&r.artifact, attributed_to)?;
        Ok(self.vertex_response(id))
    }

    fn record_activity(&mut self, r: &RecordActivityRequest) -> ApiResult<Response> {
        let graph = self.db.graph();
        let agent = match &r.agent {
            Some(a) => Some(a.resolve(graph)?),
            None => None,
        };
        let inputs = EntityRef::resolve_all(&r.inputs, graph)?;
        let record = ActivityRecord {
            command: r.command.clone(),
            agent,
            inputs,
            outputs: r
                .outputs
                .iter()
                .map(|o| OutputSpec { artifact: o.artifact.clone(), props: o.props.clone() })
                .collect(),
            props: r.props.clone(),
        };
        let outcome = self.db.record_activity(record)?;
        Ok(Response::Activity(ActivityResponse {
            activity: outcome.activity,
            outputs: outcome.outputs,
            stats: Stats::of_graph(self.db.graph()),
        }))
    }

    fn vertex_response(&self, id: prov_model::VertexId) -> Response {
        Response::Vertex(VertexResponse {
            id,
            name: self.db.graph().vertex_name(id).map(str::to_string),
            stats: Stats::of_graph(self.db.graph()),
        })
    }

    // ------------------------------------------------------------------
    // Segmentation
    // ------------------------------------------------------------------

    fn build_query(
        &self,
        src: &[EntityRef],
        dst: &[EntityRef],
        boundary: &crate::spec::BoundarySpec,
    ) -> ApiResult<PgSegQuery> {
        let graph = self.db.graph();
        let vsrc = EntityRef::resolve_all(src, graph)?;
        let vdst = EntityRef::resolve_all(dst, graph)?;
        Ok(PgSegQuery::between(vsrc, vdst).with_boundary(boundary.resolve(graph)?))
    }

    fn segment(&mut self, r: &SegmentRequest) -> ApiResult<Response> {
        let query = self.build_query(&r.src, &r.dst, &r.boundary)?;
        let seg = self.db.segment(query, &r.options.to_options())?;
        let segment = SegmentDto::from_segment(self.db.graph(), &seg);
        let stats = Stats::sized(segment.vertices.len(), segment.edges.len());
        Ok(Response::Segment(SegmentResponse { segment, stats }))
    }

    fn open_session(&mut self, r: &OpenSessionRequest) -> ApiResult<Response> {
        let query = self.build_query(&r.src, &r.dst, &r.boundary)?;
        let session = self.db.segment_session(query, &r.options.to_options())?;
        let id = SessionId::new(self.next_session);
        self.next_session += 1;
        self.sessions.insert(id, session);
        Ok(self.session_response(id))
    }

    fn session_mut(&mut self, id: SessionId) -> ApiResult<&mut PgSegSession> {
        self.sessions.get_mut(&id).ok_or(ApiError::UnknownSession(id))
    }

    fn session_response(&self, id: SessionId) -> Response {
        let session = &self.sessions[&id];
        let segment = SegmentDto::from_segment(session.graph(), session.segment());
        let stats = Stats::sized(segment.vertices.len(), segment.edges.len());
        Response::Session(SessionResponse { session: id, segment, stats })
    }

    fn expand(&mut self, r: &ExpandRequest) -> ApiResult<Response> {
        let session = self.session_mut(r.session)?;
        // Resolve against the session's pinned snapshot, not the live store:
        // the expansion must land on vertices the session can actually see.
        let roots = EntityRef::resolve_all(&r.roots, session.graph())?;
        session.expand(&roots, r.k);
        Ok(self.session_response(r.session))
    }

    fn restrict(&mut self, r: &RestrictRequest) -> ApiResult<Response> {
        if r.boundary.has_expansions() {
            return Err(ApiError::invalid_query(
                "restrict boundaries carry exclusions only; send Expand for bx(Vx, k)",
            ));
        }
        let session = self.session_mut(r.session)?;
        let boundary = r.boundary.resolve(session.graph())?;
        session.restrict(&boundary);
        Ok(self.session_response(r.session))
    }

    fn close_session(&mut self, r: &CloseSessionRequest) -> ApiResult<Response> {
        let session =
            self.sessions.remove(&r.session).ok_or(ApiError::UnknownSession(r.session))?;
        let stats = Stats::sized(session.segment().vertex_count(), session.segment().edge_count());
        Ok(Response::Closed(ClosedResponse { session: r.session, stats }))
    }

    // ------------------------------------------------------------------
    // Summarization / lineage / interchange
    // ------------------------------------------------------------------

    fn summarize(&mut self, r: &SummarizeRequest) -> ApiResult<Response> {
        if r.sessions.is_empty() {
            return Err(ApiError::invalid_query("Summarize needs at least one session"));
        }
        let mut segments = Vec::with_capacity(r.sessions.len());
        let mut graph: Option<&Arc<_>> = None;
        for &id in &r.sessions {
            let session = self.sessions.get(&id).ok_or(ApiError::UnknownSession(id))?;
            match graph {
                None => graph = Some(session.graph_shared()),
                Some(g) if Arc::ptr_eq(g, session.graph_shared()) => {}
                Some(_) => {
                    return Err(ApiError::invalid_query(
                        "Summarize sessions must pin the same graph snapshot",
                    ))
                }
            }
            segments.push(SegmentRef::from(session.segment()));
        }
        let graph = graph.expect("at least one session");
        // Each key list defaults independently (entities: `filename`,
        // activities: `command` — the Fig. 2(e) aggregation).
        let entity_keys: Vec<&str> = if r.entity_keys.is_empty() {
            vec!["filename"]
        } else {
            r.entity_keys.iter().map(String::as_str).collect()
        };
        let activity_keys: Vec<&str> = if r.activity_keys.is_empty() {
            vec!["command"]
        } else {
            r.activity_keys.iter().map(String::as_str).collect()
        };
        let aggregation = PropertyAggregation::ignore_all()
            .with_keys(prov_model::VertexKind::Entity, &entity_keys)
            .with_keys(prov_model::VertexKind::Activity, &activity_keys);
        let query = PgSumQuery::new(aggregation, r.k.unwrap_or(1));
        let psg = prov_summary::pgsum(graph, &segments, &query);
        let summary = PsgDto::from_psg(&psg);
        let stats = Stats::sized(summary.vertices.len(), summary.edges.len());
        Ok(Response::Summary(SummaryResponse { summary, stats }))
    }

    fn lineage(&mut self, r: &LineageRequest) -> ApiResult<Response> {
        let entity = r.entity.resolve(self.db.graph())?;
        let direction = match r.direction {
            LineageDir::Ancestors => LineageDirection::Ancestors,
            LineageDir::Descendants => LineageDirection::Descendants,
        };
        let vertices = match r.max_hops {
            Some(hops) => self.db.lineage_within(entity, direction, hops),
            None => self.db.lineage(entity, direction),
        };
        let stats = Stats::sized(vertices.len(), 0);
        Ok(Response::Lineage(LineageResponse { entity, vertices, stats }))
    }

    /// Serve one composable query: lower it onto the query IR when possible
    /// (IR pipelines as-is; patterns through [`prov_store::lower_pattern`]),
    /// evaluate over the pinned session snapshot or the live store, and
    /// paginate with the stable-cursor machinery. Non-lowerable patterns
    /// fall back to the materializing pattern engine and surface budget
    /// truncation as `is_complete = false` — never silently.
    fn query(&mut self, r: &QueryRequest) -> ApiResult<Response> {
        if r.cursor.is_some() {
            self.resumptions += 1;
        }
        let resumptions = self.resumptions;
        let threads = self.db.parallelism();
        let lowered = match &r.query {
            QuerySpec::Pipeline(p) => Some(p.clone()),
            QuerySpec::Pattern(p) => prov_store::lower_pattern(p),
        };

        // Snapshot source: a session pins both graph and index, so paginated
        // walks against it are byte-stable even for property-filtered
        // pipelines; the live store relies on the cursor's rank watermark
        // for structural stability.
        let live_index;
        let (graph, index): (&prov_store::ProvGraph, &prov_store::ProvIndex) = match r.session {
            Some(id) => {
                let session = self.sessions.get(&id).ok_or(ApiError::UnknownSession(id))?;
                (session.graph(), session.index())
            }
            None => {
                live_index = self.db.snapshot();
                (self.db.graph(), &live_index)
            }
        };

        let response = match lowered {
            Some(pipeline) => {
                let plan = prov_store::Plan::compile(pipeline)?;
                // Resumptions replay the pipeline at the cursor's snapshot
                // watermark (a watermark beyond the snapshot's log is
                // rejected inside the evaluator as a stale cursor).
                let watermark = match &r.cursor {
                    Some(c) => c.watermark(),
                    None => index.cursor(),
                };
                let output = prov_store::evaluate_at(graph, index, &plan, watermark, threads)?;
                let page =
                    prov_store::paginate(&output.rows, watermark, r.cursor.as_ref(), r.page_size);
                let mut stats = Stats::sized(page.rows.len(), 0);
                stats.query = QueryActivity::from_stats(output.stats, resumptions);
                QueryResponse {
                    rows: page.rows,
                    count: output.count,
                    is_complete: true,
                    cursor: page.next,
                    stats,
                }
            }
            None => {
                // Outside the lowerable family: materialize paths and return
                // the distinct endpoint set (what the lowering would have
                // produced), sorted ascending like every IR answer.
                let QuerySpec::Pattern(pattern) = &r.query else {
                    unreachable!("pipelines always lower to themselves")
                };
                let defaults = prov_store::Budget::default();
                let budget = prov_store::Budget {
                    max_expansions: r.max_expansions.unwrap_or(defaults.max_expansions),
                    max_paths: r.max_paths.unwrap_or(defaults.max_paths),
                };
                let outcome = prov_store::pattern::match_paths(graph, pattern, budget);
                let is_complete = outcome.is_complete();
                let mut rows: Vec<prov_model::VertexId> = outcome
                    .paths()
                    .iter()
                    .map(|p| *p.vertices.last().expect("paths hold at least the start"))
                    .collect();
                rows.sort_unstable();
                rows.dedup();
                let count = rows.len() as u64;
                let page =
                    prov_store::paginate(&rows, index.cursor(), r.cursor.as_ref(), r.page_size);
                let mut stats = Stats::sized(page.rows.len(), 0);
                stats.query = QueryActivity { resumptions, ..QueryActivity::default() };
                QueryResponse { rows: page.rows, count, is_complete, cursor: page.next, stats }
            }
        };
        Ok(Response::Query(response))
    }

    fn export(&mut self) -> ApiResult<Response> {
        let json = self.db.export_json();
        let stats = Stats::of_graph(self.db.graph());
        Ok(Response::Document(DocumentResponse { json, stats }))
    }

    fn import(&mut self, r: &ImportRequest) -> ApiResult<Response> {
        // Live sessions keep the snapshot they pinned; only the store is
        // replaced.
        self.db = ProvDb::import_json(&r.json)?;
        Ok(Response::Imported(ImportedResponse { stats: Stats::of_graph(self.db.graph()) }))
    }
}
