//! Builders for the paper's running examples.
//!
//! * [`fig2`] — the Fig. 2 lifecycle (Alice & Bob's classification project,
//!   three committed versions), used by the quickstart example and the
//!   integration tests for Q1/Q2/Q3.
//! * [`fig3`] — the repetitive model-adjustment loop of Fig. 3, used to
//!   demonstrate similar-path induction.

use prov_model::{EdgeKind, VertexId};
use prov_store::hash::FxHashMap;
use prov_store::ProvGraph;

/// A built example: the graph plus a name → vertex map.
#[derive(Debug)]
pub struct Example {
    /// The provenance graph.
    pub graph: ProvGraph,
    /// Lookup by the names used in the paper's figures.
    pub names: FxHashMap<&'static str, VertexId>,
}

impl Example {
    /// Resolve a figure name (panics on typos in tests/examples).
    pub fn v(&self, name: &str) -> VertexId {
        *self.names.get(name).unwrap_or_else(|| panic!("unknown example vertex {name:?}"))
    }
}

/// Build the Fig. 2 provenance graph (vertices named exactly as in Fig. 2(c)).
pub mod fig2 {
    use super::*;

    /// Construct the lifecycle of Example 1: Alice trains (v1), adjusts the
    /// model and retrains (v2, accuracy drops), Bob adjusts the solver from v1
    /// and retrains (v3, accuracy recovers).
    pub fn build() -> Example {
        let mut g = ProvGraph::new();
        let mut names: FxHashMap<&'static str, VertexId> = FxHashMap::default();

        let alice = g.add_agent("Alice");
        let bob = g.add_agent("Bob");

        // Version 1 artifacts.
        let dataset = g.add_entity("dataset-v1");
        g.set_vprop(dataset, "filename", "dataset");
        g.set_vprop(dataset, "url", "http://example.org/faces.tar.gz");
        g.add_edge(EdgeKind::WasAttributedTo, dataset, alice).unwrap();

        let model1 = g.add_entity("model-v1");
        g.set_vprop(model1, "filename", "model");
        g.set_vprop(model1, "ref", "vgg16");
        let solver1 = g.add_entity("solver-v1");
        g.set_vprop(solver1, "filename", "solver");
        g.set_vprop(solver1, "iter", 20000i64);

        let train1 = g.add_activity("train-v1");
        g.set_vprop(train1, "command", "train");
        g.set_vprop(train1, "opt", "-gpu");
        g.set_vprop(train1, "exp", "v1");
        g.add_edge(EdgeKind::Used, train1, dataset).unwrap();
        g.add_edge(EdgeKind::Used, train1, model1).unwrap();
        g.add_edge(EdgeKind::Used, train1, solver1).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, train1, alice).unwrap();
        let log1 = g.add_entity("log-v1");
        g.set_vprop(log1, "filename", "logs");
        g.set_vprop(log1, "acc", 0.7);
        let weight1 = g.add_entity("weight-v1");
        g.set_vprop(weight1, "filename", "weight");
        g.add_edge(EdgeKind::WasGeneratedBy, log1, train1).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, weight1, train1).unwrap();

        // Version 2: Alice edits the model definition and retrains.
        let update2 = g.add_activity("update-v2");
        g.set_vprop(update2, "command", "update");
        g.set_vprop(update2, "ann", "AVG");
        g.add_edge(EdgeKind::Used, update2, model1).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, update2, alice).unwrap();
        let model2 = g.add_entity("model-v2");
        g.set_vprop(model2, "filename", "model");
        g.add_edge(EdgeKind::WasGeneratedBy, model2, update2).unwrap();
        g.add_edge(EdgeKind::WasDerivedFrom, model2, model1).unwrap();

        let train2 = g.add_activity("train-v2");
        g.set_vprop(train2, "command", "train");
        g.set_vprop(train2, "opt", "-gpu");
        g.set_vprop(train2, "exp", "v2");
        g.add_edge(EdgeKind::Used, train2, dataset).unwrap();
        g.add_edge(EdgeKind::Used, train2, model2).unwrap();
        g.add_edge(EdgeKind::Used, train2, solver1).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, train2, alice).unwrap();
        let log2 = g.add_entity("log-v2");
        g.set_vprop(log2, "filename", "logs");
        g.set_vprop(log2, "acc", 0.5);
        let weight2 = g.add_entity("weight-v2");
        g.set_vprop(weight2, "filename", "weight");
        g.add_edge(EdgeKind::WasGeneratedBy, log2, train2).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, weight2, train2).unwrap();
        g.add_edge(EdgeKind::WasDerivedFrom, log2, log1).unwrap();

        // Version 3: Bob edits the solver hyperparameters from v1 and trains.
        let update3 = g.add_activity("update-v3");
        g.set_vprop(update3, "command", "update");
        g.set_vprop(update3, "lr", 0.01);
        g.add_edge(EdgeKind::Used, update3, solver1).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, update3, bob).unwrap();
        let solver3 = g.add_entity("solver-v3");
        g.set_vprop(solver3, "filename", "solver");
        g.add_edge(EdgeKind::WasGeneratedBy, solver3, update3).unwrap();
        g.add_edge(EdgeKind::WasDerivedFrom, solver3, solver1).unwrap();

        let train3 = g.add_activity("train-v3");
        g.set_vprop(train3, "command", "train");
        g.set_vprop(train3, "opt", "-gpu");
        g.set_vprop(train3, "exp", "v3");
        g.add_edge(EdgeKind::Used, train3, dataset).unwrap();
        g.add_edge(EdgeKind::Used, train3, model1).unwrap();
        g.add_edge(EdgeKind::Used, train3, solver3).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, train3, bob).unwrap();
        let log3 = g.add_entity("log-v3");
        g.set_vprop(log3, "filename", "logs");
        g.set_vprop(log3, "acc", 0.75);
        let weight3 = g.add_entity("weight-v3");
        g.set_vprop(weight3, "filename", "weight");
        g.add_edge(EdgeKind::WasGeneratedBy, log3, train3).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, weight3, train3).unwrap();
        g.add_edge(EdgeKind::WasDerivedFrom, log3, log2).unwrap();

        for (name, id) in [
            ("Alice", alice),
            ("Bob", bob),
            ("dataset-v1", dataset),
            ("model-v1", model1),
            ("solver-v1", solver1),
            ("train-v1", train1),
            ("log-v1", log1),
            ("weight-v1", weight1),
            ("update-v2", update2),
            ("model-v2", model2),
            ("train-v2", train2),
            ("log-v2", log2),
            ("weight-v2", weight2),
            ("update-v3", update3),
            ("solver-v3", solver3),
            ("train-v3", train3),
            ("log-v3", log3),
            ("weight-v3", weight3),
        ] {
            names.insert(name, id);
        }
        Example { graph: g, names }
    }
}

/// Build the Fig. 3 repetitive model-adjustment graph.
pub mod fig3 {
    use super::*;

    /// `partition` splits `d1` into `d2`; two adjustment rounds
    /// (`update → train → plot`) produce models `m2`, `m3`, weights, logs and
    /// plots; a final `compare` generates `p4` from the plots. The PgSeg query
    /// of the figure asks `Vsrc = {m3}`, `Vdst = {p4}`.
    pub fn build() -> Example {
        let mut g = ProvGraph::new();
        let mut names: FxHashMap<&'static str, VertexId> = FxHashMap::default();
        let add_entity = |g: &mut ProvGraph, name: &'static str, file: &str| {
            let v = g.add_entity(name);
            g.set_vprop(v, "filename", file);
            v
        };

        let d1 = add_entity(&mut g, "d1", "data");
        let m1 = add_entity(&mut g, "m1", "model");
        let partition = g.add_activity("partition");
        g.set_vprop(partition, "command", "partition");
        g.add_edge(EdgeKind::Used, partition, d1).unwrap();
        let d2 = add_entity(&mut g, "d2", "data");
        g.add_edge(EdgeKind::WasGeneratedBy, d2, partition).unwrap();

        // Round 1: update m1 -> m2, train on d1, plot.
        let u1 = g.add_activity("update-1");
        g.set_vprop(u1, "command", "update");
        g.add_edge(EdgeKind::Used, u1, m1).unwrap();
        let m2 = add_entity(&mut g, "m2", "model");
        g.add_edge(EdgeKind::WasGeneratedBy, m2, u1).unwrap();

        let t1 = g.add_activity("train-1");
        g.set_vprop(t1, "command", "train");
        g.add_edge(EdgeKind::Used, t1, m2).unwrap();
        g.add_edge(EdgeKind::Used, t1, d1).unwrap();
        let w2 = add_entity(&mut g, "w2", "weights");
        let l2 = add_entity(&mut g, "l2", "log");
        g.add_edge(EdgeKind::WasGeneratedBy, w2, t1).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, l2, t1).unwrap();

        let pl1 = g.add_activity("plot-1");
        g.set_vprop(pl1, "command", "plot");
        g.add_edge(EdgeKind::Used, pl1, l2).unwrap();
        let p2 = add_entity(&mut g, "p2", "plot");
        g.add_edge(EdgeKind::WasGeneratedBy, p2, pl1).unwrap();

        // Round 2: update m2 -> m3, train on d2, plot.
        let u2 = g.add_activity("update-2");
        g.set_vprop(u2, "command", "update");
        g.add_edge(EdgeKind::Used, u2, m2).unwrap();
        let m3 = add_entity(&mut g, "m3", "model");
        g.add_edge(EdgeKind::WasGeneratedBy, m3, u2).unwrap();

        let t2 = g.add_activity("train-2");
        g.set_vprop(t2, "command", "train");
        g.add_edge(EdgeKind::Used, t2, m3).unwrap();
        g.add_edge(EdgeKind::Used, t2, d2).unwrap();
        let w3 = add_entity(&mut g, "w3", "weights");
        let l3 = add_entity(&mut g, "l3", "log");
        g.add_edge(EdgeKind::WasGeneratedBy, w3, t2).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, l3, t2).unwrap();

        let pl2 = g.add_activity("plot-2");
        g.set_vprop(pl2, "command", "plot");
        g.add_edge(EdgeKind::Used, pl2, l3).unwrap();
        let p3 = add_entity(&mut g, "p3", "plot");
        g.add_edge(EdgeKind::WasGeneratedBy, p3, pl2).unwrap();

        // Compare both rounds' plots into the final figure p4.
        let compare = g.add_activity("compare");
        g.set_vprop(compare, "command", "compare");
        g.add_edge(EdgeKind::Used, compare, p2).unwrap();
        g.add_edge(EdgeKind::Used, compare, p3).unwrap();
        let p4 = add_entity(&mut g, "p4", "plot");
        g.add_edge(EdgeKind::WasGeneratedBy, p4, compare).unwrap();

        for (name, id) in [
            ("d1", d1),
            ("m1", m1),
            ("partition", partition),
            ("d2", d2),
            ("update-1", u1),
            ("m2", m2),
            ("train-1", t1),
            ("w2", w2),
            ("l2", l2),
            ("plot-1", pl1),
            ("p2", p2),
            ("update-2", u2),
            ("m3", m3),
            ("train-2", t2),
            ("w3", w3),
            ("l3", l3),
            ("plot-2", pl2),
            ("p3", p3),
            ("compare", compare),
            ("p4", p4),
        ] {
            names.insert(name, id);
        }
        Example { graph: g, names }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_structure_matches_paper() {
        let ex = fig2::build();
        let g = &ex.graph;
        g.validate_acyclic().unwrap();
        assert_eq!(g.kind_count(prov_model::VertexKind::Agent), 2);
        assert_eq!(g.kind_count(prov_model::VertexKind::Activity), 5);
        assert_eq!(g.kind_count(prov_model::VertexKind::Entity), 11);
        // Accuracies as in Fig. 2(a).
        assert_eq!(g.vprop(ex.v("log-v1"), "acc").and_then(|v| v.as_float()), Some(0.7));
        assert_eq!(g.vprop(ex.v("log-v2"), "acc").and_then(|v| v.as_float()), Some(0.5));
        assert_eq!(g.vprop(ex.v("log-v3"), "acc").and_then(|v| v.as_float()), Some(0.75));
        // Bob's train-v3 uses Alice's ORIGINAL model-v1, not model-v2.
        let inputs: Vec<VertexId> = g.out_neighbors(ex.v("train-v3"), EdgeKind::Used).collect();
        assert!(inputs.contains(&ex.v("model-v1")));
        assert!(!inputs.contains(&ex.v("model-v2")));
    }

    #[test]
    fn fig2_lookup_panics_on_typo() {
        let ex = fig2::build();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ex.v("weight-v9")));
        assert!(caught.is_err());
    }

    #[test]
    fn fig3_has_two_similar_rounds() {
        let ex = fig3::build();
        ex.graph.validate_acyclic().unwrap();
        // Both rounds share the update→train→plot command sequence.
        for round in ["1", "2"] {
            for op in ["update", "train", "plot"] {
                let v = ex.v(&format!("{op}-{round}"));
                assert_eq!(ex.graph.vprop(v, "command").and_then(|p| p.as_str()), Some(op));
            }
        }
        assert_eq!(ex.graph.kind_count(prov_model::VertexKind::Activity), 8);
    }
}
