//! Differential fault-injection property tests for the durable engine.
//!
//! Each case interprets a random program of ingest / compact / crash /
//! restart / query ops against TWO databases at once:
//!
//! * a durable [`ProvDb`] over a [`MemIo`] disk, and
//! * an in-memory twin fed the identical op stream.
//!
//! While no crash happens the two must stay **byte-identical** (full
//! [`ProvGraph`] equality, every column). A `CrashRestart` op truncates the
//! live WAL at a random byte offset — [`wal::scan`]'s commit offsets predict
//! exactly which committed-batch prefix must survive, and recovery is checked
//! against a recorded clone of that prefix, not against anything recovery
//! itself produced. Queries (lineage, property lookup) are then run
//! differentially against a fresh in-memory database wrapping the predicted
//! prefix, and a PgSeg session pinned *before* the crash must still validate
//! and answer unchanged afterwards (sessions pin their snapshot epoch; losing
//! the db's tail must not touch them).
//!
//! Runs unmodified under `--features paranoid` (the CI matrix does both).
//!
//! Each case also draws a random [`DurabilityPolicy`]: fsync on or off,
//! group-commit windows of 1–5 batches per flush, eager or lazy snapshot
//! decode. The twin differential must hold across group flush points (an
//! accepted-but-unflushed batch is visible in memory and absent from disk),
//! a crash at `frac·wal_len` must still recover a committed-batch prefix of
//! the *flushed* log, and a clean shutdown flushes before reopening.

use proptest::prelude::*;
use prov_core::segment::{PgSegOptions, PgSegQuery, PgSegSession};
use prov_core::{ActivityRecord, DurabilityPolicy, OutputSpec, ProvDb};
use prov_model::{PropValue, VertexKind};
use prov_store::storage::{wal, wal_file_name, MemIo};
use prov_store::{ProvGraph, ProvIndex};

#[derive(Debug, Clone)]
enum Op {
    /// Add a fresh agent.
    AddAgent,
    /// New version of one of a small pool of artifact names, maybe attributed.
    AddArtifact { name: u8, by_agent: bool },
    /// Activity with up to two existing entities as inputs and one output.
    Record { input_sel: u8, out_name: u8 },
    /// Raw graph batch: set/unset a property, maybe declare an index.
    Mutate { vertex_sel: u8, unset: bool, declare_index: bool },
    /// Snapshot + fresh WAL generation.
    Compact,
    /// Kill the process with the WAL torn at `frac/255` of its length,
    /// then recover and check the surviving prefix.
    CrashRestart { frac: u8 },
    /// Explicit durability barrier: flush any group-buffered batches.
    Flush,
    /// Clean shutdown (flush) + reopen: nothing may be lost.
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::AddAgent),
        4 => (any::<u8>(), any::<bool>())
            .prop_map(|(name, by_agent)| Op::AddArtifact { name, by_agent }),
        4 => (any::<u8>(), any::<u8>())
            .prop_map(|(input_sel, out_name)| Op::Record { input_sel, out_name }),
        2 => (any::<u8>(), any::<bool>(), any::<bool>())
            .prop_map(|(vertex_sel, unset, declare_index)| Op::Mutate {
                vertex_sel,
                unset,
                declare_index,
            }),
        1 => Just(Op::Compact),
        3 => any::<u8>().prop_map(|frac| Op::CrashRestart { frac }),
        1 => Just(Op::Flush),
        1 => Just(Op::Reopen),
    ]
}

/// The policy space under test: every combination of fsync on/off, group
/// windows 1–5 batches/flush, and eager/lazy snapshot decode.
fn policy_strategy() -> impl Strategy<Value = DurabilityPolicy> {
    (any::<bool>(), any::<u8>(), any::<bool>()).prop_map(|(fsync, group, lazy)| {
        let mut p = DurabilityPolicy::never_compact().with_group_batches(1 + u32::from(group) % 5);
        p.fsync_on_commit = fsync;
        if lazy {
            p = p.with_lazy_decode();
        }
        p
    })
}

/// The interpreter. `gen_prefixes[i]` is a clone of the graph after `i`
/// committed batches of the current WAL generation — the oracle the crash
/// check compares against.
struct Harness {
    disk: MemIo,
    db: ProvDb,
    twin: ProvDb,
    /// The randomly drawn durability policy every (re)open uses.
    policy: DurabilityPolicy,
    generation: u64,
    /// Batches committed before the current generation started (= the seq of
    /// the snapshot the generation's WAL replays on top of).
    base_seq: u64,
    gen_prefixes: Vec<ProvGraph>,
    /// Versioned entity names known to exist (pruned after crashes).
    entities: Vec<String>,
    agents: u32,
}

fn open_disk(disk: &MemIo, policy: &DurabilityPolicy) -> ProvDb {
    ProvDb::open_with_io(Box::new(disk.clone()), policy.clone()).unwrap()
}

impl Harness {
    fn new(policy: DurabilityPolicy) -> Harness {
        let disk = MemIo::new();
        let db = open_disk(&disk, &policy);
        let empty = db.graph().clone();
        Harness {
            disk,
            db,
            twin: ProvDb::new(),
            policy,
            generation: 0,
            base_seq: 0,
            gen_prefixes: vec![empty],
            entities: Vec::new(),
            agents: 0,
        }
    }

    fn reopen(&self) -> ProvDb {
        open_disk(&self.disk, &self.policy)
    }

    /// Record a committed batch: twin must match exactly, oracle grows.
    fn committed(&mut self) {
        assert_eq!(self.db.graph(), self.twin.graph(), "durable db diverged from in-memory twin");
        self.gen_prefixes.push(self.db.graph().clone());
    }

    fn pick_entity(&self, sel: u8) -> Option<&str> {
        if self.entities.is_empty() {
            None
        } else {
            Some(self.entities[sel as usize % self.entities.len()].as_str())
        }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::AddAgent => {
                let name = format!("agent-{}", self.agents);
                self.agents += 1;
                self.db.add_agent(&name).unwrap();
                self.twin.add_agent(&name).unwrap();
                self.committed();
            }
            Op::AddArtifact { name, by_agent } => {
                let base = format!("art-{}", name % 5);
                // Attribute to the most recent agent, if any exists.
                let agent = if by_agent && self.agents > 0 {
                    self.db.graph().vertex_by_name(&format!("agent-{}", self.agents - 1))
                } else {
                    None
                };
                let v = self.db.add_artifact_version(&base, agent).unwrap();
                self.twin.add_artifact_version(&base, agent).unwrap();
                self.entities.push(self.db.graph().vertex_name(v).unwrap().to_string());
                self.committed();
            }
            Op::Record { input_sel, out_name } => {
                let mut inputs = Vec::new();
                if let Some(n) = self.pick_entity(input_sel) {
                    inputs.push(self.db.entity(n).unwrap());
                }
                if let Some(n) = self.pick_entity(input_sel.wrapping_mul(7)) {
                    let v = self.db.entity(n).unwrap();
                    if !inputs.contains(&v) {
                        inputs.push(v);
                    }
                }
                let out_base = format!("out-{}", out_name % 4);
                let record = ActivityRecord {
                    command: format!("cmd-{}", out_name % 3),
                    agent: None,
                    inputs,
                    outputs: vec![OutputSpec::named(&out_base).with("score", out_name as i64)],
                    props: vec![("tool".into(), "prov".into())],
                };
                let out = self.db.record_activity(record.clone()).unwrap();
                self.twin.record_activity(record).unwrap();
                self.entities
                    .push(self.db.graph().vertex_name(out.outputs[0]).unwrap().to_string());
                self.committed();
            }
            Op::Mutate { vertex_sel, unset, declare_index } => {
                let Some(name) = self.pick_entity(vertex_sel).map(str::to_string) else {
                    return; // nothing to mutate yet
                };
                let apply = |db: &mut ProvDb| {
                    let v = db.entity(&name).unwrap();
                    db.try_with_graph_mut(|g| {
                        g.set_vprop(v, "grade", i64::from(vertex_sel));
                        if unset {
                            g.unset_vprop(v, "grade");
                        }
                        if declare_index {
                            g.create_vprop_index(VertexKind::Entity, "score");
                        }
                    })
                    .unwrap();
                };
                apply(&mut self.db);
                apply(&mut self.twin);
                self.committed();
            }
            Op::Compact => {
                assert!(self.db.compact().unwrap(), "durable db must compact");
                self.generation += 1;
                self.base_seq += self.gen_prefixes.len() as u64 - 1;
                self.gen_prefixes = vec![self.db.graph().clone()];
                assert_eq!(self.db.graph(), self.twin.graph());
            }
            Op::CrashRestart { frac } => self.crash_restart(frac),
            Op::Flush => {
                // A durability barrier: afterwards every accepted batch is on
                // disk. In-memory state never moves.
                let before = self.db.graph().clone();
                self.db.flush().unwrap();
                assert_eq!(self.db.graph(), &before, "flush mutated the graph");
                assert_eq!(self.db.graph(), self.twin.graph());
            }
            Op::Reopen => {
                // A clean shutdown flushes group-buffered batches first; only
                // then may "nothing is lost" be demanded of the reopen.
                self.db.flush().unwrap();
                let before = self.db.graph().clone();
                self.db = self.reopen();
                assert_eq!(self.db.graph(), &before, "clean reopen lost data");
                assert_eq!(self.db.graph(), self.twin.graph());
                assert_eq!(self.db.durability_counters().unwrap().recoveries, 1);
            }
        }
    }

    fn crash_restart(&mut self, frac: u8) {
        // Only *flushed* bytes are on disk: with a group window open, the
        // buffered tail of accepted batches dies with the process, and the
        // scan below naturally predicts the surviving prefix of the flushed
        // log. Unflushed batches were never acknowledged as durable.
        let wal_name = wal_file_name(self.generation);
        let bytes = self.disk.file(&wal_name).unwrap();
        let cut = bytes.len() * frac as usize / 255;
        let scan = wal::scan(&bytes, self.base_seq + 1).unwrap();
        let surviving = scan.commit_offsets.iter().filter(|&&o| o <= cut).count();

        // Pin a session on the pre-crash database; it must outlive the crash
        // untouched (sessions own their snapshot epoch).
        let session = self.pinned_session();
        let pinned_vertices = session.as_ref().map(|s| s.segment().vertices.clone());

        // The crash destroys the tail for good: the truncated fork IS the
        // disk from now on.
        self.disk = self.disk.fork_truncated(&wal_name, cut);
        self.db = self.reopen();

        let predicted = self.gen_prefixes[surviving].clone();
        let predicted = &predicted;
        self.db.graph().validate().unwrap();
        assert_eq!(self.db.graph(), predicted, "crash at byte {cut}: wrong surviving prefix");
        let snap = self.db.snapshot();
        assert_eq!(*snap, ProvIndex::build(self.db.graph()), "refresh != rebuild after crash");

        // Query differential: recovered answers == a fresh in-memory database
        // wrapping the predicted prefix.
        let reference = ProvDb::from_graph(predicted.clone());
        self.entities.retain(|n| reference.entity(n).is_some());
        for name in &self.entities {
            let a = self.db.entity(name).unwrap();
            let b = reference.entity(name).unwrap();
            assert_eq!(a, b, "entity {name} resolved differently after recovery");
            assert_eq!(
                self.db.ancestors_of(a),
                reference.ancestors_of(b),
                "lineage of {name} diverged after recovery"
            );
        }
        assert_eq!(
            self.db.find_by_prop(VertexKind::Entity, "score", &PropValue::from(0i64)),
            reference.find_by_prop(VertexKind::Entity, "score", &PropValue::from(0i64)),
        );

        // The pinned session still validates and answers from its own epoch.
        if let Some(s) = session {
            s.index().validate().unwrap();
            assert_eq!(s.segment().vertices, pinned_vertices.unwrap(), "pinned session changed");
        }

        // Rebase the oracle and the twin on the surviving state.
        self.gen_prefixes.truncate(surviving + 1);
        self.twin = ProvDb::from_graph(predicted.clone());
    }

    /// A PgSeg session over the first known entity, if the graph has one.
    fn pinned_session(&self) -> Option<PgSegSession> {
        let name = self.entities.first()?;
        let v = self.db.entity(name)?;
        self.db
            .segment_session(PgSegQuery::between(vec![v], vec![v]), &PgSegOptions::default())
            .ok()
    }

    /// End-of-program check: one last clean shutdown + reopen loses nothing.
    fn finish(mut self) {
        assert_eq!(self.db.graph(), self.twin.graph());
        self.db.flush().unwrap();
        let last = self.db.graph().clone();
        self.db = self.reopen();
        self.db.graph().validate().unwrap();
        assert_eq!(self.db.graph(), &last, "final reopen lost data");
        assert_eq!(*self.db.snapshot(), ProvIndex::build(self.db.graph()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_ingest_crash_restart_query_interleavings(
        policy in policy_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        let mut h = Harness::new(policy);
        for op in &ops {
            h.apply(op);
        }
        h.finish();
    }
}
