//! Provenance types `Rk` (Sec. IV-A.1).
//!
//! `Rk(v)` maps a vertex to its k-hop neighborhood *within its own segment*;
//! two vertices are only combinable when those neighborhoods are isomorphic
//! w.r.t. the aggregate labels. We compute the type as `k` rounds of
//! Weisfeiler–Leman-style refinement — Moreau's recursive edge-label
//! concatenation \[25\], extended (as the paper demands) to be degree-aware by
//! hashing the *sorted multiset* of (direction, edge kind, neighbor type)
//! triples rather than the concatenation alone.
//!
//! The refinement runs in dense rank space (ISSUE 4): one pre-pass assigns
//! each segment vertex its position in `segment.vertices` as a local rank,
//! the segment-restricted adjacency is lowered once into flat
//! `Vec<(u8, u32)>` rows over those ranks ((direction, kind) packed into the
//! tag byte), and every WL round is then a plain array walk — no per-round
//! `FxHashMap` lookups for either the neighbor fingerprints or the rows.
//!
//! Soundness: differing fingerprints imply non-isomorphic neighborhoods, so
//! refinement never merges what isomorphism would keep apart... up to 64-bit
//! hash collisions, which the equivalence key mitigates by also carrying the
//! aggregate label (see `DESIGN.md` §1, substitution notes). The standard WL
//! incompleteness (rare non-isomorphic but WL-equal neighborhoods) is
//! accepted; on the tree-like neighborhoods of provenance segments the
//! refinement is exact.

use crate::aggregation::PropertyAggregation;
use crate::segment_ref::SegmentRef;
use prov_model::VertexId;
use prov_store::hash::{fx_hash64, FxHashMap};
use prov_store::ProvGraph;

/// Per-vertex provenance-type fingerprints for one segment.
#[derive(Debug, Clone)]
pub struct ProvTypes {
    /// `type_k` fingerprint of `segment.vertices[rank]`, by rank.
    pub fingerprints: Vec<u64>,
}

impl ProvTypes {
    /// Fingerprint of `v` (which must be one of the segment's vertices).
    pub fn of(&self, segment: &SegmentRef, v: VertexId) -> u64 {
        // `SegmentRef::new` sorts and dedups `vertices`, so rank lookup is a
        // binary search.
        let rank = segment.vertices.binary_search(&v).expect("vertex belongs to the segment");
        self.fingerprints[rank]
    }
}

/// The segment-local rank assignment: `rank_of[v] = position of v in
/// `segment.vertices``. Built once per segment and shared between the type
/// refinement and `build_g0`'s adjacency lowering.
pub(crate) fn segment_ranks(segment: &SegmentRef) -> FxHashMap<VertexId, u32> {
    segment.vertices.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect()
}

/// Rank-space WL refinement over a pre-built rank assignment.
pub(crate) fn provenance_types_ranked(
    graph: &ProvGraph,
    segment: &SegmentRef,
    ranks: &FxHashMap<VertexId, u32>,
    aggregation: &PropertyAggregation,
    k: usize,
) -> Vec<u64> {
    let n = segment.vertices.len();

    // Round 0: aggregate labels (rank order).
    let mut current: Vec<u64> =
        segment.vertices.iter().map(|&v| fx_hash64(&aggregation.label(graph, v))).collect();
    if k == 0 {
        return current;
    }

    // Lower the segment-restricted adjacency once: per rank, a flat row of
    // (tag, neighbor rank) pairs where tag = direction << 3 | kind. Sorting
    // rows by tag keeps (direction, kind) lexicographic order, since the
    // packing is order-preserving.
    let mut rows: Vec<Vec<(u8, u32)>> = vec![Vec::new(); n];
    for &e in &segment.edges {
        let rec = graph.edge(e);
        let s = ranks[&rec.src];
        let d = ranks[&rec.dst];
        let kind = rec.kind.as_index() as u8;
        rows[s as usize].push((kind, d)); // direction 0: outgoing
        rows[d as usize].push((1 << 3 | kind, s)); // direction 1: incoming
    }

    // Rounds 1..=k: refine by neighbor multisets — plain array walks.
    let mut next: Vec<u64> = vec![0; n];
    let mut scratch: Vec<(u8, u64)> = Vec::new();
    for _ in 0..k {
        for r in 0..n {
            scratch.clear();
            for &(tag, nb) in &rows[r] {
                scratch.push((tag, current[nb as usize]));
            }
            scratch.sort_unstable();
            next[r] = fx_hash64(&(current[r], &scratch));
        }
        std::mem::swap(&mut current, &mut next);
    }
    current
}

/// Compute `Rk` fingerprints for the vertices of `segment`.
///
/// `k = 0` means vertices compare by aggregate label alone; `k = 1` is the
/// Fig. 2(e) setting (1-hop neighborhood).
pub fn provenance_types(
    graph: &ProvGraph,
    segment: &SegmentRef,
    aggregation: &PropertyAggregation,
    k: usize,
) -> ProvTypes {
    let ranks = segment_ranks(segment);
    ProvTypes { fingerprints: provenance_types_ranked(graph, segment, &ranks, aggregation, k) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{EdgeKind, VertexKind};

    /// Two `update` activities with different shapes: u1 uses 1 entity,
    /// u2 uses 2 (the paper's update-v2 vs update-v3 example).
    fn shapes() -> (ProvGraph, SegmentRef, VertexId, VertexId) {
        let mut g = ProvGraph::new();
        let e1 = g.add_entity("e1");
        let e2 = g.add_entity("e2");
        let e3 = g.add_entity("e3");
        let u1 = g.add_activity("update");
        let u2 = g.add_activity("update");
        g.set_vprop(u1, "command", "update");
        g.set_vprop(u2, "command", "update");
        let a = g.add_edge(EdgeKind::Used, u1, e1).unwrap();
        let b = g.add_edge(EdgeKind::Used, u2, e2).unwrap();
        let c = g.add_edge(EdgeKind::Used, u2, e3).unwrap();
        let seg = SegmentRef::new(vec![e1, e2, e3, u1, u2], vec![a, b, c]);
        (g, seg, u1, u2)
    }

    #[test]
    fn k0_ignores_structure() {
        let (g, seg, u1, u2) = shapes();
        let agg = PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]);
        let t = provenance_types(&g, &seg, &agg, 0);
        assert_eq!(t.of(&seg, u1), t.of(&seg, u2));
    }

    #[test]
    fn k1_separates_different_degrees() {
        let (g, seg, u1, u2) = shapes();
        let agg = PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]);
        let t = provenance_types(&g, &seg, &agg, 1);
        assert_ne!(
            t.of(&seg, u1),
            t.of(&seg, u2),
            "degree-aware types must distinguish 1-input from 2-input updates"
        );
    }

    #[test]
    fn identical_shapes_share_types_across_rounds() {
        // Two isomorphic train rounds in one segment.
        let mut g = ProvGraph::new();
        let d1 = g.add_entity("d");
        let t1 = g.add_activity("train");
        let w1 = g.add_entity("w");
        let d2 = g.add_entity("d");
        let t2 = g.add_activity("train");
        let w2 = g.add_entity("w");
        let e1 = g.add_edge(EdgeKind::Used, t1, d1).unwrap();
        let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
        let e3 = g.add_edge(EdgeKind::Used, t2, d2).unwrap();
        let e4 = g.add_edge(EdgeKind::WasGeneratedBy, w2, t2).unwrap();
        let seg = SegmentRef::new(vec![d1, t1, w1, d2, t2, w2], vec![e1, e2, e3, e4]);
        let agg = PropertyAggregation::ignore_all();
        for k in 0..4 {
            let t = provenance_types(&g, &seg, &agg, k);
            assert_eq!(t.of(&seg, t1), t.of(&seg, t2), "k={k}");
            assert_eq!(t.of(&seg, d1), t.of(&seg, d2), "k={k}");
            assert_eq!(t.of(&seg, w1), t.of(&seg, w2), "k={k}");
            // Input vs output entities differ structurally for k >= 1.
            if k >= 1 {
                assert_ne!(t.of(&seg, d1), t.of(&seg, w1), "k={k}");
            }
        }
    }

    #[test]
    fn segment_locality_edges_outside_ignored() {
        // Same vertices, but the segment omits u2's second edge: then u1 and
        // u2 look identical at k=1.
        let (g, _, u1, u2) = shapes();
        let seg = SegmentRef::new(
            vec![VertexId::new(0), VertexId::new(1), u1, u2],
            vec![prov_model::EdgeId::new(0), prov_model::EdgeId::new(1)],
        );
        let agg = PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]);
        let t = provenance_types(&g, &seg, &agg, 1);
        assert_eq!(t.of(&seg, u1), t.of(&seg, u2));
    }

    #[test]
    fn direction_matters() {
        // a uses e  vs  e' generated-by a': same degree, opposite direction.
        let mut g = ProvGraph::new();
        let e1 = g.add_entity("x");
        let a1 = g.add_activity("f");
        let e2 = g.add_entity("x");
        let a2 = g.add_activity("f");
        let ed1 = g.add_edge(EdgeKind::Used, a1, e1).unwrap();
        let ed2 = g.add_edge(EdgeKind::WasGeneratedBy, e2, a2).unwrap();
        let seg = SegmentRef::new(vec![e1, a1, e2, a2], vec![ed1, ed2]);
        let t = provenance_types(&g, &seg, &PropertyAggregation::ignore_all(), 1);
        assert_ne!(t.of(&seg, e1), t.of(&seg, e2));
        assert_ne!(t.of(&seg, a1), t.of(&seg, a2));
    }

    #[test]
    fn tag_packing_keeps_direction_before_kind() {
        // The packed tag must sort all outgoing entries before all incoming
        // ones and by kind within a direction, mirroring the seed's
        // (direction, kind, fp) triple order.
        let tags: Vec<u8> =
            (0..2u8).flat_map(|dir| (0..5u8).map(move |kind| dir << 3 | kind)).collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(tags, sorted);
    }
}
