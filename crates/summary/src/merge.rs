//! Lemma-5 merging: collapse `g0` under simulation while preserving paths.
//!
//! Merging `u` into `v` preserves the Psg path invariant when
//!
//! 1. `u ≃s_in v`, or
//! 2. `u ≃s_out v`, or
//! 3. `u ≤s_in v ∧ u ≤s_out v`,
//!
//! because simulation implies trace containment and any in-path of a vertex
//! concatenates with any of its out-paths (Lemma 3 / Lemma 5).
//!
//! **Round discipline.** Merges justified by *different* conditions do not
//! commute in general (an `≃in` merge grows the group's out-language, which
//! can invalidate a pending `≃out` justification against a member). Merges of
//! the *same* condition are jointly sound: condition-1 groups share their
//! in-language exactly; condition-3 unions only ever point languages at a
//! dominating target. The algorithm therefore alternates rounds — all `≃in`
//! classes, then all `≃out` classes, then all `≤in∧≤out` dominations —
//! *recomputing the simulation preorders on the current quotient before each
//! round*, until a full cycle performs no merge. Each round shrinks the node
//! count, so at most `O(n)` recomputations happen (far fewer in practice).

use crate::simulation::{simulation, SimDirection, SimRelation};
use crate::union::{G0Node, G0};
use prov_store::hash::FxHashSet;

/// Union-find over g0 node ids.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        let mut c = x;
        while self.parent[c as usize] != r {
            let next = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = next;
        }
        r
    }

    fn union(&mut self, from: u32, into: u32) -> bool {
        let (a, b) = (self.find(from), self.find(into));
        if a == b {
            return false;
        }
        self.parent[a as usize] = b;
        true
    }
}

/// Result of the merge phase: a mapping from original `g0` nodes to quotient
/// groups, plus the quotient graph itself (as a new `G0` whose `segment` /
/// `vertex` fields hold a representative member).
#[derive(Debug, Clone)]
pub struct MergeResult {
    /// Quotient group of each original node.
    pub group_of: Vec<u32>,
    /// Members of each group (original node ids).
    pub members: Vec<Vec<u32>>,
    /// How many rounds ran (diagnostics).
    pub rounds: usize,
}

/// Build the quotient `G0` induced by `group_of` (dedup multi-edges).
/// `group_of` values must be dense in `0..group_count`.
pub fn quotient(g0: &G0, group_of: &[u32], group_count: usize) -> G0 {
    let mut nodes: Vec<Option<G0Node>> = vec![None; group_count];
    for (i, node) in g0.nodes.iter().enumerate() {
        let slot = group_of[i] as usize;
        if nodes[slot].is_none() {
            nodes[slot] =
                Some(G0Node { segment: node.segment, vertex: node.vertex, class: node.class });
        }
    }
    let nodes: Vec<G0Node> = nodes.into_iter().map(|n| n.expect("group non-empty")).collect();
    let n = nodes.len();
    let mut out_adj: Vec<Vec<(u8, u32)>> = vec![Vec::new(); n];
    let mut in_adj: Vec<Vec<(u8, u32)>> = vec![Vec::new(); n];
    let mut seen: FxHashSet<(u32, u8, u32)> = FxHashSet::default();
    for (i, adj) in g0.out_adj.iter().enumerate() {
        let s = group_of[i];
        for &(k, d) in adj {
            let d2 = group_of[d as usize];
            if seen.insert((s, k, d2)) {
                out_adj[s as usize].push((k, d2));
                in_adj[d2 as usize].push((k, s));
            }
        }
    }
    G0 {
        nodes,
        out_adj,
        in_adj,
        segment_count: g0.segment_count,
        class_labels: g0.class_labels.clone(),
        class_names: g0.class_names.clone(),
    }
}

/// Remap group ids to a dense `0..count` range (first-appearance order);
/// returns the group count.
fn densify(group_of: &mut [u32]) -> usize {
    let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for g in group_of.iter_mut() {
        let next = remap.len() as u32;
        *g = *remap.entry(*g).or_insert(next);
    }
    remap.len()
}

/// Collect all ≃-equivalence groups of a simulation relation and union them.
fn merge_equiv_classes(g: &G0, rel: &SimRelation, dsu: &mut Dsu) -> bool {
    let mut merged = false;
    for v in 0..g.len() as u32 {
        for u in rel.above(v) {
            if u > v && rel.equiv(u, v) {
                merged |= dsu.union(u, v);
            }
        }
    }
    merged
}

/// Union condition-3 pairs: `u ≤in v ∧ u ≤out v` (u strictly dominated).
fn merge_dominated(g: &G0, le_in: &SimRelation, le_out: &SimRelation, dsu: &mut Dsu) -> bool {
    let mut merged = false;
    for u in 0..g.len() as u32 {
        for v in le_in.above(u) {
            if v != u && le_out.le(u, v) {
                merged |= dsu.union(u, v);
                break; // one dominating target suffices for u
            }
        }
    }
    merged
}

/// Run the full merge phase on `g0`.
pub fn merge(g0: &G0) -> MergeResult {
    let n0 = g0.len();
    // group_of maps ORIGINAL node -> current quotient node id (kept dense).
    let mut group_of: Vec<u32> = (0..n0 as u32).collect();
    let mut gcount = n0;
    let mut current = quotient(g0, &group_of, gcount);
    let mut rounds = 0usize;

    // One merge round; returns true when anything merged.
    enum Round {
        InEquiv,
        OutEquiv,
        Dominated,
    }

    loop {
        rounds += 1;
        let mut any = false;
        for round in [Round::InEquiv, Round::OutEquiv, Round::Dominated] {
            let mut dsu = Dsu::new(current.len());
            let merged = match round {
                Round::InEquiv => {
                    let le_in = simulation(&current, SimDirection::In);
                    merge_equiv_classes(&current, &le_in, &mut dsu)
                }
                Round::OutEquiv => {
                    let le_out = simulation(&current, SimDirection::Out);
                    merge_equiv_classes(&current, &le_out, &mut dsu)
                }
                Round::Dominated => {
                    let le_in = simulation(&current, SimDirection::In);
                    let le_out = simulation(&current, SimDirection::Out);
                    merge_dominated(&current, &le_in, &le_out, &mut dsu)
                }
            };
            if merged {
                any = true;
                for g in group_of.iter_mut() {
                    *g = dsu.find(*g);
                }
                gcount = densify(&mut group_of);
                current = quotient(g0, &group_of, gcount);
            }
        }
        if !any {
            break;
        }
    }

    let mut members: Vec<Vec<u32>> = vec![Vec::new(); gcount];
    for (i, &g) in group_of.iter().enumerate() {
        members[g as usize].push(i as u32);
    }
    MergeResult { group_of, members, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::PropertyAggregation;
    use crate::segment_ref::SegmentRef;
    use crate::union::build_g0;
    use prov_model::EdgeKind;
    use prov_store::ProvGraph;

    /// Two identical segments: d <-U- t <-G- w.
    fn twins() -> G0 {
        let mut g = ProvGraph::new();
        let mut segs = Vec::new();
        for i in 0..2 {
            let d = g.add_entity(&format!("d{i}"));
            let t = g.add_activity("t");
            let w = g.add_entity(&format!("w{i}"));
            let e1 = g.add_edge(EdgeKind::Used, t, d).unwrap();
            let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
            segs.push(SegmentRef::new(vec![d, t, w], vec![e1, e2]));
        }
        build_g0(&g, &segs, &PropertyAggregation::ignore_all(), 1)
    }

    #[test]
    fn identical_segments_collapse_completely() {
        let g0 = twins();
        let res = merge(&g0);
        // 6 instances -> 3 groups (d, t, w).
        assert_eq!(res.members.len(), 3);
        assert_eq!(res.group_of[0], res.group_of[3]);
        assert_eq!(res.group_of[1], res.group_of[4]);
        assert_eq!(res.group_of[2], res.group_of[5]);
        assert!(res.rounds >= 1);
    }

    #[test]
    fn quotient_dedups_edges() {
        let g0 = twins();
        let res = merge(&g0);
        let q = quotient(&g0, &res.group_of, res.members.len());
        assert_eq!(q.len(), 3);
        let total: usize = q.out_adj.iter().map(|a| a.len()).sum();
        assert_eq!(total, 2, "U and G edges once each");
    }

    #[test]
    fn divergent_suffixes_do_not_merge_sources() {
        // Segment 1: d <-U- t <-G- w ; segment 2: d' <-U- t' (no output).
        // k=0 so classes allow merging; but the trace structures differ:
        // t and t' are NOT out-equivalent... they are: out(t)=out(t')={(U,d)}.
        // They differ in IN: t has a generated child w... in(t) = {(G,w)}.
        // Merging t' into t is allowed by condition 3 (t' ≤in t vacuously,
        // t' ≤out t), which preserves paths. The two d's merge as ≃.
        let mut g = ProvGraph::new();
        let d1 = g.add_entity("d");
        let t1 = g.add_activity("t");
        let w1 = g.add_entity("w");
        let e1 = g.add_edge(EdgeKind::Used, t1, d1).unwrap();
        let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
        let d2 = g.add_entity("d");
        let t2 = g.add_activity("t");
        let e3 = g.add_edge(EdgeKind::Used, t2, d2).unwrap();
        let s1 = SegmentRef::new(vec![d1, t1, w1], vec![e1, e2]);
        let s2 = SegmentRef::new(vec![d2, t2], vec![e3]);
        let g0 = build_g0(&g, &[s1, s2], &PropertyAggregation::ignore_all(), 0);
        let res = merge(&g0);
        // Everything class-compatible merges here: {d1,d2}, {t1,t2}, {w1}.
        assert_eq!(res.members.len(), 3);
    }

    #[test]
    fn different_classes_never_merge() {
        let g0 = twins();
        let res = merge(&g0);
        for group in &res.members {
            let class = g0.class(group[0]);
            for &m in group {
                assert_eq!(g0.class(m), class);
            }
        }
    }

    #[test]
    fn dsu_behaves() {
        let mut d = Dsu::new(4);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(2, 3));
        assert!(d.union(0, 3));
        assert_eq!(d.find(1), d.find(2));
    }
}
