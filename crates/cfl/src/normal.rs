//! Binary normal form for CFLR solving.
//!
//! CflrB works on grammars "where each production has at most two RHS symbols"
//! (Sec. III-B). [`normalize`] converts any [`Grammar`] by (a) lifting each
//! terminal that appears in a long production into a fresh nonterminal
//! `T_x → x`, and (b) binarizing long productions left-to-right with fresh
//! chain nonterminals. Original nonterminal indices are preserved, so callers
//! can translate symbols with [`NormalGrammar::map_nonterminal`] (the identity)
//! and read answers off the same ids.
//!
//! The paper's observation that normalization "introduces more worklist
//! entries and misses important grammar properties" is reproduced empirically:
//! the chain nonterminals below are exactly the `Lg/Rg/La/...` intermediates
//! that SimProvAlg's rewritten grammar avoids.

use crate::grammar::Grammar;
use crate::symbol::{NonTerminal, Symbol, Terminal};
use prov_store::hash::FxHashMap;

/// A grammar in binary normal form.
#[derive(Debug, Clone)]
pub struct NormalGrammar {
    names: Vec<String>,
    /// `lhs → t` rules.
    pub term_rules: Vec<(NonTerminal, Terminal)>,
    /// `lhs → B` unit rules.
    pub unit_rules: Vec<(NonTerminal, NonTerminal)>,
    /// `lhs → B C` binary rules.
    pub binary_rules: Vec<(NonTerminal, NonTerminal, NonTerminal)>,
    start: NonTerminal,
    original_count: usize,
}

impl NormalGrammar {
    /// Number of nonterminals (original + fresh).
    pub fn nonterminal_count(&self) -> usize {
        self.names.len()
    }

    /// Name of a nonterminal.
    pub fn name(&self, nt: NonTerminal) -> &str {
        &self.names[nt.index()]
    }

    /// The start symbol (same id as in the source grammar).
    pub fn start(&self) -> NonTerminal {
        self.start
    }

    /// Translate a source-grammar nonterminal (identity by construction).
    pub fn map_nonterminal(&self, nt: NonTerminal) -> NonTerminal {
        debug_assert!(nt.index() < self.original_count);
        nt
    }

    /// CYK recognition on the normal form: `word ∈ L(nt)`?
    pub fn accepts_word(&self, nt: NonTerminal, word: &[Terminal]) -> bool {
        let n = word.len();
        if n == 0 {
            return false;
        }
        let k = self.nonterminal_count();
        // table[s][len-1] = bitset of nonterminals deriving word[s..s+len]
        let mut table = vec![vec![vec![false; k]; n]; n];
        let close_units = |set: &mut Vec<bool>| {
            // Fixpoint over unit rules (tiny grammars; loop until stable).
            loop {
                let mut changed = false;
                for &(a, b) in &self.unit_rules {
                    if set[b.index()] && !set[a.index()] {
                        set[a.index()] = true;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        };
        for s in 0..n {
            for &(a, t) in &self.term_rules {
                if t == word[s] {
                    table[s][0][a.index()] = true;
                }
            }
            let cell = std::mem::take(&mut table[s][0]);
            let mut cell = cell;
            close_units(&mut cell);
            table[s][0] = cell;
        }
        for len in 2..=n {
            for s in 0..=(n - len) {
                let mut cell = vec![false; k];
                for split in 1..len {
                    for &(a, b, c) in &self.binary_rules {
                        if table[s][split - 1][b.index()]
                            && table[s + split][len - split - 1][c.index()]
                        {
                            cell[a.index()] = true;
                        }
                    }
                }
                close_units(&mut cell);
                table[s][len - 1] = cell;
            }
        }
        table[0][n - 1][nt.index()]
    }

    /// Pretty-print the normal form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for &(a, t) in &self.term_rules {
            out.push_str(&format!("{} → {}\n", self.name(a), t.render()));
        }
        for &(a, b) in &self.unit_rules {
            out.push_str(&format!("{} → {}\n", self.name(a), self.name(b)));
        }
        for &(a, b, c) in &self.binary_rules {
            out.push_str(&format!("{} → {} {}\n", self.name(a), self.name(b), self.name(c)));
        }
        out
    }
}

/// Convert `grammar` to binary normal form.
pub fn normalize(grammar: &Grammar) -> NormalGrammar {
    let mut names: Vec<String> = (0..grammar.nonterminal_count())
        .map(|i| grammar.name(NonTerminal(i as u16)).to_string())
        .collect();
    let original_count = names.len();
    let mut term_rules = Vec::new();
    let mut unit_rules = Vec::new();
    let mut binary_rules = Vec::new();
    let mut lifted: FxHashMap<Terminal, NonTerminal> = FxHashMap::default();

    let fresh = |names: &mut Vec<String>, base: String| -> NonTerminal {
        assert!(names.len() < u16::MAX as usize, "too many nonterminals");
        names.push(base);
        NonTerminal((names.len() - 1) as u16)
    };

    for prod in grammar.productions() {
        match prod.rhs.as_slice() {
            [Symbol::T(t)] => term_rules.push((prod.lhs, *t)),
            [Symbol::N(n)] => unit_rules.push((prod.lhs, *n)),
            longer => {
                // Lift terminals to fresh nonterminals.
                let mut nts: Vec<NonTerminal> = Vec::with_capacity(longer.len());
                for sym in longer {
                    match sym {
                        Symbol::N(n) => nts.push(*n),
                        Symbol::T(t) => {
                            let nt = *lifted.entry(*t).or_insert_with(|| {
                                let nt = fresh(&mut names, format!("T[{}]", t.render()));
                                term_rules.push((nt, *t));
                                nt
                            });
                            nts.push(nt);
                        }
                    }
                }
                // Binarize right-to-left: lhs → n0 C0, C0 → n1 C1, ...
                let mut rest = nts.pop().expect("rhs non-empty");
                while nts.len() > 1 {
                    let left = nts.pop().expect("len > 1");
                    let chain = fresh(
                        &mut names,
                        format!("C{}[{}]", binary_rules.len(), grammar.name(prod.lhs)),
                    );
                    binary_rules.push((chain, left, rest));
                    rest = chain;
                }
                binary_rules.push((prod.lhs, nts[0], rest));
            }
        }
    }

    NormalGrammar {
        names,
        term_rules,
        unit_rules,
        binary_rules,
        start: grammar.start(),
        original_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{EdgeKind, VertexId};

    fn palindrome() -> (Grammar, NonTerminal) {
        // S → U⁻¹ S U | v0
        let mut g = Grammar::new();
        let s = g.nonterminal("S");
        g.rule(
            s,
            [
                Symbol::T(Terminal::inv(EdgeKind::Used)),
                Symbol::N(s),
                Symbol::T(Terminal::fwd(EdgeKind::Used)),
            ],
        );
        g.rule(s, [Symbol::T(Terminal::VertexIs(VertexId::new(0)))]);
        g.set_start(s);
        (g, s)
    }

    #[test]
    fn normalization_produces_binary_rules_only() {
        let (g, _) = palindrome();
        let n = normalize(&g);
        // 3-symbol rule becomes 2 binary rules + 2 lifted terminals.
        assert_eq!(n.binary_rules.len(), 2);
        assert_eq!(n.term_rules.len(), 3); // v0 unit + two lifted terminals
        assert!(n.unit_rules.is_empty());
        assert!(n.nonterminal_count() > 1);
    }

    #[test]
    fn lifted_terminals_are_shared() {
        // Two rules using the same terminal lift it once.
        let mut g = Grammar::new();
        let s = g.nonterminal("S");
        let a = g.nonterminal("A2");
        let u = Terminal::fwd(EdgeKind::Used);
        g.rule(s, [Symbol::T(u), Symbol::N(a), Symbol::T(u)]);
        g.rule(a, [Symbol::T(u), Symbol::T(u)]);
        g.set_start(s);
        let n = normalize(&g);
        let lifted_count = (0..n.nonterminal_count())
            .filter(|&i| n.name(NonTerminal(i as u16)).starts_with("T["))
            .count();
        assert_eq!(lifted_count, 1);
    }

    #[test]
    fn normal_form_accepts_same_language() {
        let (g, s) = palindrome();
        let n = normalize(&g);
        let u_inv = Terminal::inv(EdgeKind::Used);
        let u = Terminal::fwd(EdgeKind::Used);
        let v0 = Terminal::VertexIs(VertexId::new(0));
        for depth in 0..4usize {
            let mut word = Vec::new();
            word.extend(std::iter::repeat_n(u_inv, depth));
            word.push(v0);
            word.extend(std::iter::repeat_n(u, depth));
            assert!(n.accepts_word(n.map_nonterminal(s), &word), "depth {depth}");
        }
        assert!(!n.accepts_word(n.map_nonterminal(s), &[u_inv, v0]));
    }

    #[test]
    fn unit_rules_close_transitively() {
        // S → A2; A2 → B2; B2 → v0
        let mut g = Grammar::new();
        let s = g.nonterminal("S");
        let a = g.nonterminal("A2");
        let b = g.nonterminal("B2");
        g.rule(s, [Symbol::N(a)]);
        g.rule(a, [Symbol::N(b)]);
        g.rule(b, [Symbol::T(Terminal::VertexIs(VertexId::new(0)))]);
        g.set_start(s);
        let n = normalize(&g);
        assert!(n.accepts_word(s, &[Terminal::VertexIs(VertexId::new(0))]));
    }

    #[test]
    fn render_lists_all_rule_shapes() {
        let (g, _) = palindrome();
        let n = normalize(&g);
        let text = n.render();
        assert!(text.contains("→"));
        assert!(text.lines().count() >= 4, "got: {text}");
    }
}
