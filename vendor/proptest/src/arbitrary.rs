//! `any::<T>()` — the canonical strategy for a type.

use crate::sample::Index;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical strategy.
pub trait Arbitrary: Debug + Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Output of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index::from_raw(rng.next_u64() as usize)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
