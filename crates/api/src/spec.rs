//! Serializable boundary criteria.
//!
//! [`prov_segment::Boundary`] carries arbitrary closures
//! (`VertexPred::Custom`), which cannot cross a wire. [`BoundarySpec`] is
//! the declarative subset — exactly the paper's who/when/where exclusion
//! examples plus expansion specifications — that lowers onto a `Boundary`
//! after its [`crate::EntityRef`] roots resolve against a graph.

use crate::envelope::EntityRef;
use crate::error::ApiResult;
use prov_model::{EdgeKind, PropValue, VertexKind};
use prov_segment::{Boundary, EdgePred, VertexPred};
use prov_store::ProvGraph;
use serde::{Deserialize, Serialize};

/// A half-open birth interval `[from, to)` — the "when" boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BirthWindow {
    /// Inclusive lower bound.
    pub from: u64,
    /// Exclusive upper bound.
    pub to: u64,
}

/// A property equality requirement — the "where" boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropMatch {
    /// Property key name.
    pub key: String,
    /// Required value.
    pub value: PropValue,
}

/// Declarative vertex exclusion predicate (`bv`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VertexPredSpec {
    /// Keep only vertices born inside the window.
    BirthIn(BirthWindow),
    /// Keep only vertices whose property matches.
    PropEq(PropMatch),
    /// Keep only vertices whose name starts with the prefix.
    NamePrefix(String),
    /// Drop vertices of this kind.
    ExcludeKind(VertexKind),
}

impl VertexPredSpec {
    /// Lower onto the library predicate.
    pub fn to_pred(&self) -> VertexPred {
        match self {
            VertexPredSpec::BirthIn(w) => VertexPred::BirthIn { from: w.from, to: w.to },
            VertexPredSpec::PropEq(m) => {
                VertexPred::PropEq { key: m.key.clone(), value: m.value.clone() }
            }
            VertexPredSpec::NamePrefix(p) => VertexPred::NamePrefix(p.clone()),
            VertexPredSpec::ExcludeKind(k) => VertexPred::ExcludeKind(*k),
        }
    }
}

/// Declarative edge exclusion predicate (`be`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EdgePredSpec {
    /// Drop edges of this kind.
    ExcludeKind(EdgeKind),
    /// Keep only edges whose property matches.
    PropEq(PropMatch),
}

impl EdgePredSpec {
    /// Lower onto the library predicate.
    pub fn to_pred(&self) -> EdgePred {
        match self {
            EdgePredSpec::ExcludeKind(k) => EdgePred::ExcludeKind(*k),
            EdgePredSpec::PropEq(m) => {
                EdgePred::PropEq { key: m.key.clone(), value: m.value.clone() }
            }
        }
    }
}

/// An expansion specification `bx(Vx, k)` with wire-addressable roots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpansionSpec {
    /// Entities to expand from.
    pub roots: Vec<EntityRef>,
    /// Number of activities away (2k ancestry hops).
    pub k: u32,
}

/// Wire twin of [`prov_segment::Boundary`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BoundarySpec {
    /// Vertex exclusion predicates, conjunctive.
    #[serde(default)]
    pub vertex: Vec<VertexPredSpec>,
    /// Edge exclusion predicates, conjunctive.
    #[serde(default)]
    pub edge: Vec<EdgePredSpec>,
    /// Expansion specifications.
    #[serde(default)]
    pub expand: Vec<ExpansionSpec>,
}

impl BoundarySpec {
    /// No boundary.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a vertex predicate (builder style).
    pub fn with_vertex(mut self, p: VertexPredSpec) -> Self {
        self.vertex.push(p);
        self
    }

    /// Add an edge predicate (builder style).
    pub fn with_edge(mut self, p: EdgePredSpec) -> Self {
        self.edge.push(p);
        self
    }

    /// Add an expansion (builder style).
    pub fn with_expansion(mut self, roots: Vec<EntityRef>, k: u32) -> Self {
        self.expand.push(ExpansionSpec { roots, k });
        self
    }

    /// True when no predicate or expansion is present.
    pub fn is_empty(&self) -> bool {
        self.vertex.is_empty() && self.edge.is_empty() && self.expand.is_empty()
    }

    /// True when at least one expansion is present.
    pub fn has_expansions(&self) -> bool {
        !self.expand.is_empty()
    }

    /// Lower onto a library [`Boundary`], resolving expansion roots against
    /// `graph`.
    pub fn resolve(&self, graph: &ProvGraph) -> ApiResult<Boundary> {
        let mut b = Boundary::none();
        for p in &self.vertex {
            b = b.with_vertex_pred(p.to_pred());
        }
        for p in &self.edge {
            b = b.with_edge_pred(p.to_pred());
        }
        for e in &self.expand {
            let roots = EntityRef::resolve_all(&e.roots, graph)?;
            b = b.expand(roots, e.k);
        }
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> ProvGraph {
        let mut g = ProvGraph::new();
        let d = g.add_entity("dataset-v1");
        let t = g.add_activity("train-v1");
        g.add_edge(EdgeKind::Used, t, d).unwrap();
        g
    }

    #[test]
    fn resolve_lowers_every_spec_kind() {
        let g = graph();
        let spec = BoundarySpec::none()
            .with_vertex(VertexPredSpec::BirthIn(BirthWindow { from: 0, to: 10 }))
            .with_vertex(VertexPredSpec::PropEq(PropMatch {
                key: "command".into(),
                value: "train".into(),
            }))
            .with_vertex(VertexPredSpec::NamePrefix("data".into()))
            .with_vertex(VertexPredSpec::ExcludeKind(VertexKind::Agent))
            .with_edge(EdgePredSpec::ExcludeKind(EdgeKind::WasDerivedFrom))
            .with_expansion(vec!["dataset-v1".into()], 2);
        let b = spec.resolve(&g).unwrap();
        assert_eq!(b.vertex_preds.len(), 4);
        assert_eq!(b.edge_preds.len(), 1);
        assert_eq!(b.expansions.len(), 1);
        assert_eq!(b.expansions[0].k, 2);
    }

    #[test]
    fn unresolvable_expansion_root_is_an_entity_error() {
        let g = graph();
        let spec = BoundarySpec::none().with_expansion(vec!["missing-v9".into()], 1);
        let err = spec.resolve(&g).unwrap_err();
        assert_eq!(err.code(), crate::error::ErrorCode::UnknownEntity);
    }

    #[test]
    fn empty_spec_is_empty_boundary() {
        let g = graph();
        assert!(BoundarySpec::none().is_empty());
        let b = BoundarySpec::none().resolve(&g).unwrap();
        assert!(!b.has_exclusions());
        assert!(b.expansions.is_empty());
    }
}
