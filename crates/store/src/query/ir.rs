//! The query IR grammar: plain serde value types, no behaviour.
//!
//! A [`Pipeline`] is data — it can be built by a lowering constructor
//! (`plan`), deserialized off the wire, or written by hand — and only
//! acquires meaning when [`crate::query::Plan::compile`] checks it and
//! [`crate::query::evaluate`] runs it over a snapshot.

use crate::snapshot::Direction;
use prov_model::{EdgeKind, PropValue, VertexId, VertexKind};
use serde::{Deserialize, Serialize};

/// Where a pipeline's row set begins.
#[derive(Debug, Clone, PartialEq)]
pub enum StartSet {
    /// Explicit vertex ids (`where id(x) in [...]`). Out-of-range ids are
    /// dropped at evaluation time, matching the lineage empty-result
    /// contract for unknown starts.
    Ids(Vec<VertexId>),
    /// Every vertex of one kind, in creation (= ascending id) order.
    Kind(VertexKind),
    /// Every vertex.
    All,
}

// Hand-rolled (the derive shim handles all-unit or all-newtype enums only):
// externally tagged like the newtype variants of `Step`, with the unit
// variant `All` as a bare string — the same encodings the derive would pick
// for each variant shape.
impl Serialize for StartSet {
    fn ser(&self) -> serde::Content {
        match self {
            StartSet::Ids(ids) => serde::Content::Map(vec![("Ids".to_string(), ids.ser())]),
            StartSet::Kind(kind) => serde::Content::Map(vec![("Kind".to_string(), kind.ser())]),
            StartSet::All => serde::Content::Str("All".to_string()),
        }
    }
}

impl Deserialize for StartSet {
    fn de(content: &serde::Content) -> Result<Self, serde::Error> {
        match content {
            serde::Content::Str(s) if s == "All" => Ok(StartSet::All),
            serde::Content::Map(entries) => match entries.as_slice() {
                [(tag, inner)] if tag == "Ids" => Vec::<VertexId>::de(inner).map(StartSet::Ids),
                [(tag, inner)] if tag == "Kind" => VertexKind::de(inner).map(StartSet::Kind),
                _ => Err(serde::Error::msg("expected one StartSet variant key")),
            },
            other => {
                Err(serde::Error::msg(format!("expected StartSet, found {}", other.type_name())))
            }
        }
    }
}

/// One multi-source BFS step over a union of CSR slices.
///
/// Depth is the BFS (shortest-path) distance from the incoming row set;
/// the step emits exactly the vertices whose depth `d` satisfies
/// `min_hops <= d <= max_hops`. `min_hops == 0` therefore re-emits the
/// sources themselves; `min_hops > max_hops` is legal and emits nothing
/// (how the lineage lowering expresses `Within(0)`). Rows are the *set* of
/// reached vertices — path multiplicity never escapes a traverse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Traverse {
    /// CSR slices this step walks, unioned per hop. Normalized (sorted,
    /// deduplicated) by `Plan::compile`.
    pub edges: Vec<(EdgeKind, Direction)>,
    /// Minimum depth emitted.
    pub min_hops: u32,
    /// Maximum depth explored and emitted ([`Traverse::UNBOUNDED`] for the
    /// full closure).
    pub max_hops: u32,
}

impl Traverse {
    /// Effectively unbounded hop count (`*` in Cypher); bounded in practice
    /// by the DAG diameter.
    pub const UNBOUNDED: u32 = u32::MAX;
}

/// Vertex predicate applied to the current row set (the `NodeSpec`
/// predicate of the pattern engine, IR-shaped).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PropFilter {
    /// Required vertex kind, if any.
    #[serde(default)]
    pub kind: Option<VertexKind>,
    /// Required vertex name, if any.
    #[serde(default)]
    pub name: Option<String>,
    /// Required property equalities.
    #[serde(default)]
    pub props: Vec<(String, PropValue)>,
    /// Restrict to these ids, if set.
    #[serde(default)]
    pub ids: Option<Vec<VertexId>>,
}

impl PropFilter {
    /// Filter on a single property equality.
    pub fn prop(key: &str, value: impl Into<PropValue>) -> Self {
        PropFilter { props: vec![(key.to_string(), value.into())], ..Self::default() }
    }

    /// Filter on vertex kind.
    pub fn of_kind(kind: VertexKind) -> Self {
        PropFilter { kind: Some(kind), ..Self::default() }
    }

    /// True when the filter accepts every vertex.
    pub fn is_pass_through(&self) -> bool {
        self.kind.is_none() && self.name.is_none() && self.props.is_empty() && self.ids.is_none()
    }
}

/// One pipeline step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Multi-source BFS over CSR slices.
    Traverse(Traverse),
    /// Retain rows matching a vertex predicate.
    Filter(PropFilter),
    /// Keep the first `n` rows of the (always ascending-sorted) row set.
    Limit(usize),
}

/// What the pipeline returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Project {
    /// The sorted row ids.
    #[default]
    Ids,
    /// Only the row count (not paginable).
    Count,
}

/// A complete query: start set, steps, projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Initial row set.
    pub start: StartSet,
    /// Steps applied left to right.
    pub steps: Vec<Step>,
    /// Final projection.
    #[serde(default)]
    pub project: Project,
}

impl Pipeline {
    /// Pipeline starting from explicit ids.
    pub fn from_ids(ids: Vec<VertexId>) -> Self {
        Pipeline { start: StartSet::Ids(ids), steps: Vec::new(), project: Project::Ids }
    }

    /// Pipeline starting from every vertex of `kind`.
    pub fn from_kind(kind: VertexKind) -> Self {
        Pipeline { start: StartSet::Kind(kind), steps: Vec::new(), project: Project::Ids }
    }

    /// Pipeline starting from every vertex.
    pub fn from_all() -> Self {
        Pipeline { start: StartSet::All, steps: Vec::new(), project: Project::Ids }
    }

    /// Append a traverse step.
    pub fn traverse(
        mut self,
        edges: &[(EdgeKind, Direction)],
        min_hops: u32,
        max_hops: u32,
    ) -> Self {
        self.steps.push(Step::Traverse(Traverse { edges: edges.to_vec(), min_hops, max_hops }));
        self
    }

    /// Append a filter step.
    pub fn filter(mut self, filter: PropFilter) -> Self {
        self.steps.push(Step::Filter(filter));
        self
    }

    /// Append a limit step.
    pub fn limit(mut self, n: usize) -> Self {
        self.steps.push(Step::Limit(n));
        self
    }

    /// Project to the row count instead of the ids.
    pub fn count(mut self) -> Self {
        self.project = Project::Count;
        self
    }
}
