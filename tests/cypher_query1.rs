//! Fidelity test for Sec. III-B's handcrafted Cypher query (Query 1).
//!
//! The paper expresses the `L(SimProv)` query in Cypher with two path
//! variables joined node-by-node. We reproduce that query plan through the
//! store's pattern-matching engine — materialize `p1` (destination→source
//! ancestry paths) and `p2` (all destination-anchored ancestry paths), join
//! on label sequences per anchor — and check that it computes exactly the
//! same answers as the four operator evaluators.

use prov_core::fig2;
use prov_model::{EdgeKind, VertexId, VertexKind};
use prov_segment::{evaluate_similarity, MaskedGraph, PgSegOptions};
use prov_store::{Budget, NodeSpec, PathPattern, PatternDir, RelSpec};
use prov_store::{Direction, Pipeline, Plan, PropFilter, ProvGraph, ProvIndex};

/// Execute the paper's Query 1 plan: enumerate both path variables and join.
fn cypher_query1(graph: &ProvGraph, vsrc: &[VertexId], vdst: &[VertexId]) -> Vec<VertexId> {
    let ancestry = [EdgeKind::Used, EdgeKind::WasGeneratedBy];

    // match p1 = (b:E)<-[:U|G*]-(e1:E) where id(b) in Vsrc, id(e1) in Vdst
    let p1_pattern =
        PathPattern::node(NodeSpec::of_kind(VertexKind::Entity).with_ids(vsrc.to_vec())).then(
            RelSpec::star(&ancestry, PatternDir::Backward, 0, RelSpec::UNBOUNDED),
            NodeSpec::of_kind(VertexKind::Entity).with_ids(vdst.to_vec()),
        );
    let p1 = prov_store::pattern::match_paths(graph, &p1_pattern, Budget::default());
    assert!(p1.is_complete());

    // match p2 = (c:E)<-[:U|G*]-(e2:E) where id(e2) in Vdst
    let p2_pattern =
        PathPattern::node(NodeSpec::of_kind(VertexKind::Entity).with_ids(vdst.to_vec())).then(
            RelSpec::star(&ancestry, PatternDir::Forward, 0, RelSpec::UNBOUNDED),
            NodeSpec::of_kind(VertexKind::Entity),
        );
    let p2 = prov_store::pattern::match_paths(graph, &p2_pattern, Budget::default());
    assert!(p2.is_complete());

    // Join: same anchor (the SimProv pivot) and equal label sequences. With
    // only U|G edges the node/edge label sequences of alternating ancestry
    // paths are determined by the hop count, so the extract(...) = extract(...)
    // comparison reduces to (anchor, length) equality.
    let accepted: prov_store::hash::FxHashSet<(VertexId, usize)> = p1
        .paths()
        .iter()
        .map(|p| (*p.vertices.last().expect("p1 ends at the anchor"), p.len()))
        .collect();
    let mut answer: Vec<VertexId> = p2
        .paths()
        .iter()
        .filter(|p| accepted.contains(&(p.vertices[0], p.len())))
        .map(|p| *p.vertices.last().expect("p2 non-empty"))
        .collect();
    answer.sort_unstable();
    answer.dedup();
    answer
}

/// ISSUE 8: the same Query 1 plan re-expressed on the query IR, with the
/// frozen pattern-engine plan above kept as the differential reference.
///
/// Each Cypher path variable becomes a family of pipelines rooted at the
/// shared anchor `e1 = e2 ∈ Vdst`: `L` chained single-hop `Traverse` steps
/// compute "reachable from the anchor by a path of exactly `L` ancestry
/// edges" — on a DAG every walk is a path, so no edge-uniqueness
/// bookkeeping is needed — and the node kind / id constraints of the
/// pattern's `NodeSpec`s become IR `Filter` steps. The node-by-node
/// `extract(...)` join then reduces, exactly as in the pattern plan, to
/// joining the two families on (anchor, length).
fn cypher_query1_ir(
    graph: &ProvGraph,
    index: &ProvIndex,
    vsrc: &[VertexId],
    vdst: &[VertexId],
) -> Vec<VertexId> {
    let ancestry = [(EdgeKind::WasGeneratedBy, Direction::Out), (EdgeKind::Used, Direction::Out)];
    let walk = |anchor: VertexId, hops: usize| {
        let mut p = Pipeline::from_ids(vec![anchor]);
        for _ in 0..hops {
            p = p.traverse(&ancestry, 1, 1);
        }
        p
    };
    let eval = |pipeline: Pipeline| {
        let plan = Plan::compile(pipeline).expect("query1 pipelines compile");
        prov_store::evaluate(graph, index, &plan, 1).expect("fresh snapshot is never stale").rows
    };

    let mut answer = Vec::new();
    for &anchor in vdst {
        // Both path variables anchor on an entity (e1:E, e2:E).
        if graph.vertex_kind(anchor) != VertexKind::Entity {
            continue;
        }
        for hops in 0.. {
            let reach = eval(walk(anchor, hops));
            if reach.is_empty() {
                break; // longest ancestry path from this anchor exhausted
            }
            // p1 side: does a length-`hops` path end at a Vsrc entity (b:E)?
            let hit = eval(walk(anchor, hops).filter(PropFilter {
                kind: Some(VertexKind::Entity),
                ids: Some(vsrc.to_vec()),
                ..PropFilter::default()
            }));
            if !hit.is_empty() {
                // p2 side at the joined length: every entity endpoint (c:E).
                answer.extend(eval(
                    walk(anchor, hops).filter(PropFilter::of_kind(VertexKind::Entity)),
                ));
            }
        }
    }
    answer.sort_unstable();
    answer.dedup();
    answer
}

#[test]
fn ir_pipelines_match_cypher_plan_and_operators() {
    let ex = fig2::build();
    let index = ProvIndex::build(&ex.graph);
    let view = MaskedGraph::unmasked(&index);

    let cases = [
        (vec![ex.v("dataset-v1")], vec![ex.v("weight-v2")]),
        (vec![ex.v("dataset-v1")], vec![ex.v("log-v3")]),
        (vec![ex.v("model-v1")], vec![ex.v("weight-v3")]),
        (vec![ex.v("solver-v1")], vec![ex.v("weight-v1"), ex.v("weight-v3")]),
        (vec![ex.v("weight-v2")], vec![ex.v("weight-v2")]), // anchor ∈ Vsrc: L = 0 join
    ];
    for (vsrc, vdst) in cases {
        let ir = cypher_query1_ir(&ex.graph, &index, &vsrc, &vdst);
        let cypher = cypher_query1(&ex.graph, &vsrc, &vdst);
        assert_eq!(ir, cypher, "IR join vs pattern plan on src={vsrc:?} dst={vdst:?}");
        let operator = evaluate_similarity(&view, &vsrc, &vdst, &PgSegOptions::default());
        assert_eq!(ir, operator.answer, "IR join vs SimProvTst on src={vsrc:?} dst={vdst:?}");
    }
}

#[test]
fn cypher_plan_matches_all_operator_evaluators() {
    let ex = fig2::build();
    let index = ProvIndex::build(&ex.graph);
    let view = MaskedGraph::unmasked(&index);

    let cases = [
        (vec![ex.v("dataset-v1")], vec![ex.v("weight-v2")]), // Query 1
        (vec![ex.v("dataset-v1")], vec![ex.v("log-v3")]),    // Query 2
        (vec![ex.v("model-v1")], vec![ex.v("weight-v3")]),
        (vec![ex.v("solver-v1")], vec![ex.v("weight-v1"), ex.v("weight-v3")]),
    ];
    for (vsrc, vdst) in cases {
        let cypher = cypher_query1(&ex.graph, &vsrc, &vdst);
        let operator = evaluate_similarity(&view, &vsrc, &vdst, &PgSegOptions::default());
        assert_eq!(
            cypher, operator.answer,
            "Cypher plan vs SimProvTst on src={vsrc:?} dst={vdst:?}"
        );
    }
}

#[test]
fn cypher_plan_materializes_exponentially_more_paths_than_needed() {
    // The point of Fig. 5(a): the path-variable plan *works* but holds every
    // ancestry path. On a chain of k diamonds there are 2^k full-length paths
    // (plus all prefixes) against O(k) vertices.
    let mut g = ProvGraph::new();
    let mut prev = g.add_entity("e0");
    let depth = 7;
    for i in 0..depth {
        let a1 = g.add_activity(&format!("a{i}x"));
        let a2 = g.add_activity(&format!("a{i}y"));
        let e = g.add_entity(&format!("e{}", i + 1));
        g.add_edge(EdgeKind::Used, a1, prev).unwrap();
        g.add_edge(EdgeKind::Used, a2, prev).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, e, a1).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, e, a2).unwrap();
        prev = e;
    }
    let p2_pattern = PathPattern::node(NodeSpec::of_kind(VertexKind::Entity).with_ids(vec![prev]))
        .then(
            RelSpec::star(
                &[EdgeKind::Used, EdgeKind::WasGeneratedBy],
                PatternDir::Forward,
                0,
                RelSpec::UNBOUNDED,
            ),
            NodeSpec::any(),
        );
    let p2 = prov_store::pattern::match_paths(&g, &p2_pattern, Budget::default());
    assert!(p2.is_complete());
    assert!(
        p2.paths().len() > (1 << depth) && p2.paths().len() > 4 * g.vertex_count(),
        "path variables blow up exponentially: {} paths over {} vertices",
        p2.paths().len(),
        g.vertex_count()
    );
    // The linear-time operator answers the same question without holding any
    // path at all.
    let index = ProvIndex::build(&g);
    let view = MaskedGraph::unmasked(&index);
    let src = VertexId::new(0);
    let out = evaluate_similarity(&view, &[src], &[prev], &PgSegOptions::default());
    assert!(out.answer.contains(&src));
}
