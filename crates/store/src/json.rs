//! PROV-JSON-style import/export.
//!
//! A simple, explicit interchange format (vertices + edges with W3C PROV term
//! names and flat property maps) so that example graphs and generated workloads
//! can be saved, diffed and reloaded. Not byte-compatible with the W3C
//! PROV-JSON serialization, but a faithful flattening of the same model.

use crate::error::{StoreError, StoreResult};
use crate::graph::ProvGraph;
use prov_model::{EdgeKind, PropValue, VertexId, VertexKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Serialized vertex.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonVertex {
    /// Dense id (must equal the vertex's position).
    pub id: u32,
    /// W3C PROV term, e.g. `prov:Entity`.
    pub kind: String,
    /// Optional display name.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub name: Option<String>,
    /// Property map (ordered for stable output).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub props: BTreeMap<String, PropValue>,
}

/// Serialized edge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonEdge {
    /// W3C PROV term, e.g. `prov:used`.
    pub kind: String,
    /// Source vertex id.
    pub src: u32,
    /// Destination vertex id.
    pub dst: u32,
    /// Property map.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub props: BTreeMap<String, PropValue>,
}

/// Serialized provenance graph document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonGraph {
    /// All vertices in id order.
    pub vertices: Vec<JsonVertex>,
    /// All edges in id order.
    pub edges: Vec<JsonEdge>,
}

fn kind_to_term(kind: VertexKind) -> String {
    kind.prov_term().to_string()
}

fn term_to_kind(term: &str) -> StoreResult<VertexKind> {
    VertexKind::ALL
        .into_iter()
        .find(|k| k.prov_term() == term)
        .ok_or_else(|| StoreError::Import(format!("unknown vertex kind {term:?}")))
}

fn term_to_edge_kind(term: &str) -> StoreResult<EdgeKind> {
    EdgeKind::ALL
        .into_iter()
        .find(|k| k.prov_term() == term)
        .ok_or_else(|| StoreError::Import(format!("unknown edge kind {term:?}")))
}

/// Export a graph to the JSON document model.
pub fn to_json(graph: &ProvGraph) -> JsonGraph {
    let vertices = graph
        .vertex_ids()
        .map(|v| {
            let rec = graph.vertex(v);
            let props = graph
                .vertex_props(v)
                .iter()
                .map(|(k, val)| (graph.key_name(k).expect("interned key").to_string(), val.clone()))
                .collect();
            JsonVertex {
                id: v.raw(),
                kind: kind_to_term(rec.kind),
                name: rec.name.as_deref().map(str::to_string),
                props,
            }
        })
        .collect();
    let edges = graph
        .edge_ids()
        .map(|eid| {
            let e = graph.edge(eid);
            let props = graph
                .edge_props(eid)
                .iter()
                .map(|(k, val)| (graph.key_name(k).expect("interned key").to_string(), val.clone()))
                .collect();
            JsonEdge {
                kind: e.kind.prov_term().to_string(),
                src: e.src.raw(),
                dst: e.dst.raw(),
                props,
            }
        })
        .collect();
    JsonGraph { vertices, edges }
}

/// Serialize a graph to a pretty JSON string.
pub fn to_json_string(graph: &ProvGraph) -> String {
    serde_json::to_string_pretty(&to_json(graph)).expect("graph serializes")
}

/// Rebuild a graph from the JSON document model.
pub fn from_json(doc: &JsonGraph) -> StoreResult<ProvGraph> {
    let mut g = ProvGraph::new();
    for (i, v) in doc.vertices.iter().enumerate() {
        if v.id as usize != i {
            return Err(StoreError::Import(format!(
                "vertex ids must be dense and ordered; expected {i}, got {}",
                v.id
            )));
        }
        let kind = term_to_kind(&v.kind)?;
        let id = g.add_vertex(kind, v.name.as_deref())?;
        for (key, value) in &v.props {
            g.set_vprop(id, key, value.clone());
        }
    }
    for e in &doc.edges {
        let kind = term_to_edge_kind(&e.kind)?;
        let eid = g.add_edge(kind, VertexId::new(e.src), VertexId::new(e.dst))?;
        for (key, value) in &e.props {
            g.set_eprop(eid, key, value.clone());
        }
    }
    Ok(g)
}

/// Parse a graph from a JSON string.
pub fn from_json_string(s: &str) -> StoreResult<ProvGraph> {
    let doc: JsonGraph = serde_json::from_str(s).map_err(|e| StoreError::Import(e.to_string()))?;
    from_json(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProvGraph {
        let mut g = ProvGraph::new();
        let d = g.add_entity("dataset-v1");
        let t = g.add_activity("train-v1");
        let w = g.add_entity("weights-v1");
        let alice = g.add_agent("Alice");
        g.set_vprop(d, "url", "http://data");
        g.set_vprop(t, "opt", "-gpu");
        g.set_vprop(w, "acc", 0.7);
        let e = g.add_edge(EdgeKind::Used, t, d).unwrap();
        g.set_eprop(e, "at", 1700000000i64);
        g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, t, alice).unwrap();
        g
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = sample();
        let s = to_json_string(&g);
        let g2 = from_json_string(&s).unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.vertex_ids() {
            assert_eq!(g2.vertex_kind(v), g.vertex_kind(v));
            assert_eq!(g2.vertex_name(v), g.vertex_name(v));
        }
        assert_eq!(g2.vprop(VertexId::new(2), "acc"), g.vprop(VertexId::new(2), "acc"));
        assert_eq!(
            g2.eprop(prov_model::EdgeId::new(0), "at").and_then(|v| v.as_int()),
            Some(1700000000)
        );
        // Stable re-serialization.
        assert_eq!(to_json_string(&g2), s);
    }

    #[test]
    fn import_rejects_unknown_kinds() {
        let bad = r#"{"vertices":[{"id":0,"kind":"prov:Blob"}],"edges":[]}"#;
        assert!(matches!(from_json_string(bad), Err(StoreError::Import(_))));
    }

    #[test]
    fn import_rejects_sparse_ids() {
        let bad = r#"{"vertices":[{"id":5,"kind":"prov:Entity"}],"edges":[]}"#;
        assert!(matches!(from_json_string(bad), Err(StoreError::Import(_))));
    }

    #[test]
    fn import_rejects_type_violations() {
        let bad = r#"{
            "vertices":[{"id":0,"kind":"prov:Entity"},{"id":1,"kind":"prov:Entity"}],
            "edges":[{"kind":"prov:used","src":0,"dst":1}]
        }"#;
        assert!(matches!(from_json_string(bad), Err(StoreError::InvalidEdge(_))));
    }

    #[test]
    fn prov_terms_appear_in_output() {
        let s = to_json_string(&sample());
        assert!(s.contains("prov:Entity"));
        assert!(s.contains("prov:used"));
        assert!(s.contains("prov:wasGeneratedBy"));
    }
}
