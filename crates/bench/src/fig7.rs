//! The fig7 serving-loop benchmark: ingest/query interleaving over a live
//! [`ProvDb`] (ISSUE 5).
//!
//! PRs 3–4 made the PgSeg/PgSum kernels fast; the serving loop above them —
//! ingest a batch, answer lineage queries, ingest again — was still paying a
//! full `ProvIndex::build` per batch and an `O(n)` allocation per lineage
//! call. The three sweeps here gate the incremental replacements:
//!
//! * **7a** — interleaved ingest/query wall-clock vs batch size, the
//!   rebuild-every-batch [`SnapshotPolicy`] baseline against the
//!   delta-refresh default. Identical deterministic ingest stream and query
//!   schedule on both series (the `work` column carries the summed lineage
//!   result sizes as the cross-checkable fingerprint).
//! * **7b** — lineage latency by result-set size: the frozen seed lineage
//!   (`lineage_reference`) against the epoch-scratch frontier BFS
//!   ([`lineage_over`]), on start entities drawn at increasing creation-order
//!   percentiles of a frozen `Pd` graph (`work` = closure size).
//! * **7c** — session-open latency under repeated mutation: time *only* the
//!   snapshot acquisitions of a mutate → open loop, rebuild-always vs
//!   refresh, across preload sizes.
//!
//! All three run over cached `Pd` instances ([`PdCache`]) and are committed
//! as `BENCH_fig7.json` through [`crate::BenchReport`], gated in CI next to
//! fig5/fig6.

use crate::harness::{FigureResult, PdCache, Point, Scale, Series, THREAD_SWEEP};
use prov_core::{
    lineage_over, lineage_over_par_with_frontier_min, lineage_reference, ActivityRecord,
    LineageBound, LineageDirection, OutputSpec, ProvDb, SnapshotPolicy,
};
use prov_model::{VertexId, VertexKind};
use prov_workload::{ActivityStream, PdParams, StreamParams};
use std::time::Instant;

/// Lineage queries issued after each ingested batch in the 7a interleave
/// (two unbounded closures + two depth-bounded walks, mixed directions).
const QUERIES_PER_BATCH: usize = 4;

/// Seed a live database with a frozen `Pd` graph plus its entity pool in
/// creation order (the stream's recency universe).
fn seeded_db(cache: &mut PdCache, n: usize, policy: SnapshotPolicy) -> (ProvDb, Vec<VertexId>) {
    let inst = cache.instance(&PdParams::with_size(n));
    let pool = inst.graph().vertices_of_kind(VertexKind::Entity).to_vec();
    let mut db = ProvDb::from_graph(inst.graph().clone());
    db.set_snapshot_policy(policy);
    (db, pool)
}

/// Drive one ingest→query interleave: `batches` rounds of `batch_size`
/// streamed activities followed by [`QUERIES_PER_BATCH`] lineage queries
/// (alternating direction, mixed bounded/unbounded) against deterministic
/// probe entities. Returns the summed lineage result sizes — identical
/// across policies by construction, so a divergence is visible in the
/// committed `work` column.
fn drive_interleave(
    db: &mut ProvDb,
    pool: &mut Vec<VertexId>,
    stream: &mut ActivityStream,
    batches: usize,
    batch_size: usize,
) -> u64 {
    let mut work = 0u64;
    for round in 0..batches {
        for record in stream.batch(pool.len(), batch_size) {
            let inputs: Vec<VertexId> =
                record.input_ranks.iter().map(|&r| pool[pool.len() - r]).collect();
            let outcome = db
                .record_activity(ActivityRecord {
                    command: record.command,
                    agent: None,
                    inputs,
                    // Prefixed so streamed artifacts never collide with the
                    // preloaded Pd graph's `artifactN-vM` names.
                    outputs: record
                        .outputs
                        .iter()
                        .map(|a| OutputSpec::named(&format!("s-{a}")))
                        .collect(),
                    props: vec![],
                })
                .expect("streamed ingest is valid");
            pool.extend(outcome.outputs);
        }
        for q in 0..QUERIES_PER_BATCH {
            // Deterministic probes over the middle of the pool: the typical
            // "where did this artifact come from" serving question (the
            // closure-size extremes are 7b's subject).
            let probe = pool[pool.len() * (3 + q) / 8 + round % 7];
            let (direction, result) = match q {
                0 => (LineageDirection::Ancestors, None),
                1 => (LineageDirection::Ancestors, Some(6)),
                2 => (LineageDirection::Descendants, None),
                _ => (LineageDirection::Descendants, Some(6)),
            };
            let result = match result {
                None => db.lineage(probe, direction),
                Some(hops) => db.lineage_within(probe, direction, hops),
            };
            work += result.len() as u64;
        }
    }
    work
}

/// Fig. 7(a): interleaved ingest/query runtime over a fixed activity stream,
/// sweeping how many ingest→query rounds the stream is split into (more
/// rounds = smaller batches = more snapshot acquisitions — the interactive
/// end of the serving spectrum) — the rebuild-every-batch baseline vs the
/// incremental refresh path on identical streams and query schedules.
pub fn fig7a(scale: Scale) -> FigureResult {
    fig7a_cached(scale, &mut PdCache::new())
}

/// [`fig7a`] against a shared `Pd` instance cache.
pub fn fig7a_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let (preload, total, round_counts): (usize, usize, &[usize]) = match scale {
        Scale::Quick => (10_000, 256, &[4, 16, 64]),
        Scale::Full => (10_000, 1_024, &[8, 32, 128]),
    };
    let policies: [(&str, SnapshotPolicy); 2] =
        [("Rebuild", SnapshotPolicy::rebuild_always()), ("Refresh", SnapshotPolicy::default())];
    let mut series: Vec<Series> = policies
        .iter()
        .map(|(name, _)| Series { name: name.to_string(), points: Vec::new() })
        .collect();
    for &rounds in round_counts {
        let batch_size = total / rounds;
        for ((_, policy), serie) in policies.iter().zip(series.iter_mut()) {
            let (mut db, mut pool) = seeded_db(cache, preload, *policy);
            let mut stream = ActivityStream::new(StreamParams::default(), preload * 4);
            let t0 = Instant::now();
            let work = drive_interleave(&mut db, &mut pool, &mut stream, rounds, batch_size);
            let secs = t0.elapsed().as_secs_f64();
            serie.points.push(Point { x: rounds as f64, y: Some(secs), work: Some(work) });
        }
    }
    FigureResult {
        id: "7a",
        title: format!(
            "Serving loop: {total} streamed activities split into x ingest→query rounds \
             ({QUERIES_PER_BATCH} lineage queries per round, Pd{preload} preload), \
             rebuild-every-batch vs incremental refresh"
        ),
        x_label: "rounds".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

/// Fig. 7(b): lineage latency by result-set size — frozen seed walk vs the
/// epoch-scratch frontier BFS, on one frozen snapshot.
pub fn fig7b(scale: Scale) -> FigureResult {
    fig7b_cached(scale, &mut PdCache::new())
}

/// [`fig7b`] against a shared `Pd` instance cache.
pub fn fig7b_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let (n, reps) = match scale {
        Scale::Quick => (5_000, 64),
        Scale::Full => (50_000, 16),
    };
    let inst = cache.instance(&PdParams::with_size(n));
    let index = inst.index();
    let entities = inst.graph().vertices_of_kind(VertexKind::Entity);
    let percentiles = [5.0, 25.0, 50.0, 75.0, 95.0];
    type LineageFn = fn(&prov_store::ProvIndex, VertexId, LineageDirection) -> Vec<VertexId>;
    let methods: [(&str, LineageFn); 2] = [
        ("Seed", |idx, v, dir| lineage_reference(idx, v, dir)),
        ("EpochBFS", |idx, v, dir| lineage_over(idx, v, dir, LineageBound::Unbounded)),
    ];
    let mut series: Vec<Series> = methods
        .iter()
        .map(|(name, _)| Series { name: name.to_string(), points: Vec::new() })
        .collect();
    for &pct in &percentiles {
        let start = entities[((entities.len() - 1) as f64 * pct / 100.0) as usize];
        for ((_, eval), serie) in methods.iter().zip(series.iter_mut()) {
            // Best-of-3 batches of `reps` calls, like the `wl` trajectory.
            let mut best = f64::INFINITY;
            let mut size = 0u64;
            for _ in 0..3 {
                let t0 = Instant::now();
                for _ in 0..reps {
                    size = eval(index, start, LineageDirection::Ancestors).len() as u64;
                }
                best = best.min(t0.elapsed().as_secs_f64());
            }
            serie.points.push(Point { x: pct, y: Some(best), work: Some(size) });
        }
    }
    FigureResult {
        id: "7b",
        title: format!(
            "Lineage latency by result size: {reps} ancestor closures per call, start entity at \
             creation percentile (Pd{n})"
        ),
        x_label: "src percentile".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

/// Fig. 7(t): lineage thread scaling — the level-parallel BFS at x chunks
/// against the sequential epoch-scratch engine, on the largest ancestor
/// closure of a frozen `Pd` graph (start entity at the 95th creation
/// percentile). The fan-out threshold is forced to 2 so every multi-vertex
/// level exercises the chunked path even below the production
/// `PAR_FRONTIER_MIN`; `work` is the closure size, identical everywhere.
pub fn fig7t(scale: Scale) -> FigureResult {
    fig7t_cached(scale, &mut PdCache::new())
}

/// [`fig7t`] against a shared `Pd` instance cache.
pub fn fig7t_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let (n, reps) = match scale {
        Scale::Quick => (5_000, 64),
        Scale::Full => (50_000, 16),
    };
    let inst = cache.instance(&PdParams::with_size(n));
    let index = inst.index();
    let entities = inst.graph().vertices_of_kind(VertexKind::Entity);
    let start = entities[(entities.len() - 1) * 95 / 100];
    let mut series = [
        Series { name: "Sequential".into(), points: Vec::new() },
        Series { name: "Parallel".into(), points: Vec::new() },
    ];
    for &threads in &THREAD_SWEEP {
        let mut best = [f64::INFINITY; 2];
        let mut size = [0u64; 2];
        for _ in 0..3 {
            // Best-of-3 batches of `reps` calls, like 7b.
            let t0 = Instant::now();
            for _ in 0..reps {
                size[0] = lineage_over(
                    index,
                    start,
                    LineageDirection::Ancestors,
                    LineageBound::Unbounded,
                )
                .len() as u64;
            }
            best[0] = best[0].min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            for _ in 0..reps {
                size[1] = lineage_over_par_with_frontier_min(
                    index,
                    start,
                    LineageDirection::Ancestors,
                    LineageBound::Unbounded,
                    threads,
                    2,
                )
                .len() as u64;
            }
            best[1] = best[1].min(t0.elapsed().as_secs_f64());
        }
        for i in 0..2 {
            series[i].points.push(Point {
                x: threads as f64,
                y: Some(best[i]),
                work: Some(size[i]),
            });
        }
    }
    FigureResult {
        id: "7t",
        title: format!(
            "Lineage thread scaling: level-parallel BFS at x chunks vs the sequential \
             epoch-scratch engine ({reps} ancestor closures per call, Pd{n})"
        ),
        x_label: "threads".into(),
        y_label: "runtime (s)".into(),
        series: series.to_vec(),
    }
}

/// Mutation rounds per 7c point.
const ROUNDS_7C: usize = 32;

/// Fig. 7(c): snapshot acquisition (session-open) latency under repeated
/// mutation — the cost a fresh session pays right after an ingest.
pub fn fig7c(scale: Scale) -> FigureResult {
    fig7c_cached(scale, &mut PdCache::new())
}

/// [`fig7c`] against a shared `Pd` instance cache.
pub fn fig7c_cached(scale: Scale, cache: &mut PdCache) -> FigureResult {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[500, 2_000, 5_000],
        Scale::Full => &[1_000, 10_000, 50_000],
    };
    let policies: [(&str, SnapshotPolicy); 2] =
        [("Rebuild", SnapshotPolicy::rebuild_always()), ("Refresh", SnapshotPolicy::default())];
    let mut series: Vec<Series> = policies
        .iter()
        .map(|(name, _)| Series { name: name.to_string(), points: Vec::new() })
        .collect();
    for &n in sizes {
        for ((_, policy), serie) in policies.iter().zip(series.iter_mut()) {
            let (mut db, pool) = seeded_db(cache, n, *policy);
            let newest = *pool.last().expect("Pd graphs have entities");
            let mut acquisitions = 0.0f64;
            for round in 0..ROUNDS_7C {
                db.record_activity(ActivityRecord {
                    command: format!("mutate{round}"),
                    agent: None,
                    inputs: vec![newest],
                    outputs: vec![OutputSpec::named("s-open")],
                    props: vec![],
                })
                .expect("valid ingest");
                let t0 = Instant::now();
                let snapshot = db.snapshot();
                acquisitions += t0.elapsed().as_secs_f64();
                // Dropped before the next round: the serving slot stays the
                // sole owner, so the refresh path can extend in place.
                drop(snapshot);
            }
            serie.points.push(Point {
                x: n as f64,
                y: Some(acquisitions),
                work: Some(ROUNDS_7C as u64),
            });
        }
    }
    FigureResult {
        id: "7c",
        title: format!(
            "Session-open latency under mutation: {ROUNDS_7C} ingest+snapshot rounds, \
             acquisition time only"
        ),
        x_label: "N".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_work_is_policy_invariant() {
        // The committed `work` fingerprint only means something if both
        // policies really replay the same stream and queries.
        let mut cache = PdCache::new();
        let (mut rebuild_db, mut pool_a) =
            seeded_db(&mut cache, 500, SnapshotPolicy::rebuild_always());
        let (mut refresh_db, mut pool_b) = seeded_db(&mut cache, 500, SnapshotPolicy::default());
        let mut stream_a = ActivityStream::new(StreamParams::default(), 4_000);
        let mut stream_b = ActivityStream::new(StreamParams::default(), 4_000);
        let work_a = drive_interleave(&mut rebuild_db, &mut pool_a, &mut stream_a, 3, 5);
        let work_b = drive_interleave(&mut refresh_db, &mut pool_b, &mut stream_b, 3, 5);
        assert_eq!(work_a, work_b, "policies must not change observable answers");
        assert!(work_a > 0, "queries should reach some lineage");
        // The policies really differ in how they served the loop.
        assert_eq!(rebuild_db.snapshot_counters().refreshes, 0);
        assert!(refresh_db.snapshot_counters().refreshes > 0);
        assert!(refresh_db.snapshot_counters().rebuilds < rebuild_db.snapshot_counters().rebuilds);
    }

    #[test]
    fn fig7_sweeps_have_expected_shapes() {
        // Tiny smoke via the quick paths of 7b/7c on a small shared cache;
        // shapes only (the committed trajectory runs in release).
        let mut cache = PdCache::new();
        let fig = fig7c_cached(Scale::Quick, &mut cache);
        assert_eq!(fig.id, "7c");
        assert_eq!(fig.series.len(), 2);
        for s in &fig.series {
            assert_eq!(s.points.len(), 3);
            assert!(s.points.iter().all(|p| p.y.is_some() && p.work.is_some()));
        }
        let fig = fig7b_cached(Scale::Quick, &mut cache);
        assert_eq!(fig.series.len(), 2);
        // Both lineage engines must report identical closure sizes.
        for (a, b) in fig.series[0].points.iter().zip(fig.series[1].points.iter()) {
            assert_eq!(a.work, b.work, "engines disagreed on closure size");
        }
        // Result size grows with the start percentile (descendants shrink,
        // ancestors grow).
        let works: Vec<u64> = fig.series[1].points.iter().map(|p| p.work.unwrap()).collect();
        assert!(works.last().unwrap() > works.first().unwrap(), "{works:?}");
    }
}
