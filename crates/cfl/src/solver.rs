//! Generic CFL-reachability solver (`CflrB`, Alg. 1 of the paper's appendix).
//!
//! The solver is the classic cubic-time worklist dynamic programming of
//! Melski–Reps in the subcubic formulation of Chaudhuri (POPL'08): it derives
//! production facts `N(i, j)` ("some path from `i` to `j` has a label in
//! `L(N)`") by joining already-derived facts along binary rules, using a fast
//! set structure `H` for dedup/difference and a worklist `W` for the frontier.
//!
//! The fact tables are generic over [`FastSet`], which reproduces the paper's
//! three variants: plain hash sets, `BitSet` fast sets, and compressed bitmaps
//! (`w CBM`). On PROV graphs with the SimProv grammar this solver realizes the
//! `O(|G||E| + |U||A|)` bound of Lemma 1.

use crate::normal::NormalGrammar;
use crate::symbol::{NonTerminal, Terminal};
use prov_bitset::traits::HashFastSet;
use prov_bitset::{CompressedBitmap, FastSet, FixedBitSet};
use std::collections::VecDeque;

/// Provider of labeled edges for CFLR initialization.
///
/// Terminals are materialized once as base facts; afterwards the solver only
/// joins facts, so this is the entire graph interface. Vertex-label and
/// vertex-id terminals are modelled as self-loops (the paper: rules through
/// vertex labels "can be viewed as following a vertex self-loop edge").
pub trait TerminalEdges {
    /// Number of vertices (fact-table universe).
    fn vertex_count(&self) -> usize;

    /// Invoke `f(src, dst)` for every edge labeled `t`.
    fn for_each_edge(&self, t: Terminal, f: &mut dyn FnMut(u32, u32));
}

/// One derived relation `N ⊆ V × V`, stored row- and column-indexed.
#[derive(Debug, Clone)]
struct Relation<S: FastSet> {
    rows: Vec<Option<S>>, // rows[i] = { j : N(i, j) }
    cols: Vec<Option<S>>, // cols[j] = { i : N(i, j) }
    universe: usize,
    len: usize,
}

impl<S: FastSet> Relation<S> {
    fn new(universe: usize) -> Self {
        Relation {
            rows: (0..universe).map(|_| None).collect(),
            cols: (0..universe).map(|_| None).collect(),
            universe,
            len: 0,
        }
    }

    #[inline]
    fn insert(&mut self, i: u32, j: u32) -> bool {
        let universe = self.universe;
        let row = self.rows[i as usize].get_or_insert_with(|| S::with_universe(universe));
        if !row.insert(j) {
            return false;
        }
        let col = self.cols[j as usize].get_or_insert_with(|| S::with_universe(universe));
        col.insert(i);
        self.len += 1;
        true
    }

    #[inline]
    fn contains(&self, i: u32, j: u32) -> bool {
        self.rows[i as usize].as_ref().is_some_and(|r| r.contains(j))
    }

    fn row(&self, i: u32) -> Option<&S> {
        self.rows[i as usize].as_ref()
    }

    fn col(&self, j: u32) -> Option<&S> {
        self.cols[j as usize].as_ref()
    }

    fn heap_bytes(&self) -> usize {
        let sets: usize = self
            .rows
            .iter()
            .chain(self.cols.iter())
            .filter_map(|s| s.as_ref().map(|s| s.heap_bytes()))
            .sum();
        sets + (self.rows.capacity() + self.cols.capacity()) * std::mem::size_of::<Option<S>>()
    }
}

/// Statistics of a solver run (reported by benchmarks).
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Total derived facts across all nonterminals.
    pub facts: usize,
    /// Worklist entries processed.
    pub worklist_pops: u64,
    /// Approximate peak fact-table heap usage in bytes.
    pub fact_table_bytes: usize,
}

/// Result of a CFLR run: all derived relations.
pub struct CflrResult<S: FastSet> {
    relations: Vec<Relation<S>>,
    stats: SolveStats,
}

impl<S: FastSet> CflrResult<S> {
    /// Is `N(i, j)` derived?
    pub fn contains(&self, nt: NonTerminal, i: u32, j: u32) -> bool {
        self.relations[nt.index()].contains(i, j)
    }

    /// All `(i, j)` pairs of `N`, sorted.
    pub fn pairs(&self, nt: NonTerminal) -> Vec<(u32, u32)> {
        let rel = &self.relations[nt.index()];
        let mut out = Vec::with_capacity(rel.len);
        for (i, row) in rel.rows.iter().enumerate() {
            if let Some(row) = row {
                for j in row.iter_elems() {
                    out.push((i as u32, j));
                }
            }
        }
        out
    }

    /// The set `{ j : N(i, j) }`, sorted.
    pub fn row(&self, nt: NonTerminal, i: u32) -> Vec<u32> {
        self.relations[nt.index()].row(i).map(|r| r.to_vec()).unwrap_or_default()
    }

    /// Number of facts for `N`.
    pub fn fact_count(&self, nt: NonTerminal) -> usize {
        self.relations[nt.index()].len
    }

    /// Run statistics.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }
}

/// Run CflrB over `grammar` on `graph`, with fact tables backed by `S`.
pub fn solve<S: FastSet>(grammar: &NormalGrammar, graph: &impl TerminalEdges) -> CflrResult<S> {
    solve_with_tracer(grammar, graph, &mut crate::derivation::NoTrace)
}

/// Like [`solve`], additionally recording a parent table with one derivation
/// per fact, from which witnessing paths can be reconstructed
/// ([`crate::derivation::DerivationTable::witness_path`]).
pub fn solve_traced<S: FastSet>(
    grammar: &NormalGrammar,
    graph: &impl TerminalEdges,
) -> (CflrResult<S>, crate::derivation::DerivationTable) {
    let mut table = crate::derivation::DerivationTable::new();
    let result = solve_with_tracer(grammar, graph, &mut table);
    (result, table)
}

/// Solver core, generic over the tracing hook.
pub fn solve_with_tracer<S: FastSet, T: crate::derivation::Tracer>(
    grammar: &NormalGrammar,
    graph: &impl TerminalEdges,
    tracer: &mut T,
) -> CflrResult<S> {
    let n = graph.vertex_count();
    let k = grammar.nonterminal_count();
    let mut relations: Vec<Relation<S>> = (0..k).map(|_| Relation::new(n)).collect();
    let mut worklist: VecDeque<(u32, NonTerminal, u32)> = VecDeque::new();
    let mut pops: u64 = 0;

    // Rule indexes keyed by the dequeued nonterminal.
    let mut unit_from: Vec<Vec<NonTerminal>> = vec![Vec::new(); k];
    for &(a, b) in &grammar.unit_rules {
        unit_from[b.index()].push(a);
    }
    // by_left[b] = [(a, c)] for rules a → b c ; by_right[c] = [(a, b)].
    let mut by_left: Vec<Vec<(NonTerminal, NonTerminal)>> = vec![Vec::new(); k];
    let mut by_right: Vec<Vec<(NonTerminal, NonTerminal)>> = vec![Vec::new(); k];
    for &(a, b, c) in &grammar.binary_rules {
        by_left[b.index()].push((a, c));
        by_right[c.index()].push((a, b));
    }

    // Initialization: terminal rules produce base facts from graph edges.
    for &(nt, t) in &grammar.term_rules {
        graph.for_each_edge(t, &mut |i, j| {
            if relations[nt.index()].insert(i, j) {
                tracer.base((nt, i, j), t);
                worklist.push_back((i, nt, j));
            }
        });
    }

    // Main loop (Alg. 1): process one fact at a time.
    let mut scratch: Vec<u32> = Vec::new();
    while let Some((u, b, v)) = worklist.pop_front() {
        pops += 1;
        // Unit rules a → b.
        for &a in &unit_from[b.index()] {
            if relations[a.index()].insert(u, v) {
                tracer.unit((a, u, v), b);
                worklist.push_back((u, a, v));
            }
        }
        // a → b c : new facts a(u, w) for w ∈ Row(v, c) \ Row(u, a).
        for &(a, c) in &by_left[b.index()] {
            scratch.clear();
            {
                let (ra, rc) = (&relations[a.index()], &relations[c.index()]);
                if let Some(crow) = rc.row(v) {
                    match ra.row(u) {
                        Some(arow) => arow.collect_missing(crow, &mut scratch),
                        None => scratch.extend(crow.iter_elems()),
                    }
                }
            }
            for &w in &scratch {
                if relations[a.index()].insert(u, w) {
                    tracer.join((a, u, w), b, c, v);
                    worklist.push_back((u, a, w));
                }
            }
        }
        // a → c b : new facts a(w, v) for w ∈ Col(u, c) \ Col(v, a).
        for &(a, c) in &by_right[b.index()] {
            scratch.clear();
            {
                let (ra, rc) = (&relations[a.index()], &relations[c.index()]);
                if let Some(ccol) = rc.col(u) {
                    match ra.col(v) {
                        Some(acol) => acol.collect_missing(ccol, &mut scratch),
                        None => scratch.extend(ccol.iter_elems()),
                    }
                }
            }
            for &w in &scratch {
                if relations[a.index()].insert(w, v) {
                    tracer.join((a, w, v), c, b, u);
                    worklist.push_back((w, a, v));
                }
            }
        }
    }

    let stats = SolveStats {
        facts: relations.iter().map(|r| r.len).sum(),
        worklist_pops: pops,
        fact_table_bytes: relations.iter().map(|r| r.heap_bytes()).sum(),
    };
    CflrResult { relations, stats }
}

/// Convenience: solve with `HashSet` fact tables.
pub fn solve_hash(grammar: &NormalGrammar, graph: &impl TerminalEdges) -> CflrResult<HashFastSet> {
    solve::<HashFastSet>(grammar, graph)
}

/// Convenience: solve with `FixedBitSet` fact tables (the paper's default).
pub fn solve_bitset(
    grammar: &NormalGrammar,
    graph: &impl TerminalEdges,
) -> CflrResult<FixedBitSet> {
    solve::<FixedBitSet>(grammar, graph)
}

/// Convenience: solve with compressed-bitmap fact tables (`w CBM`).
pub fn solve_cbm(
    grammar: &NormalGrammar,
    graph: &impl TerminalEdges,
) -> CflrResult<CompressedBitmap> {
    solve::<CompressedBitmap>(grammar, graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Grammar;
    use crate::normal::normalize;
    use crate::symbol::Symbol;
    use prov_model::{EdgeKind, VertexId};

    /// A tiny labeled multigraph supplied directly as edge lists.
    struct AdHoc {
        n: usize,
        edges: Vec<(Terminal, u32, u32)>,
    }

    impl TerminalEdges for AdHoc {
        fn vertex_count(&self) -> usize {
            self.n
        }

        fn for_each_edge(&self, t: Terminal, f: &mut dyn FnMut(u32, u32)) {
            for &(et, i, j) in &self.edges {
                if et == t {
                    f(i, j);
                }
            }
        }
    }

    /// Balanced-parentheses reachability: S → U⁻¹ S U | v2 on a 5-chain
    /// 0 -U⁻¹-> 1 -U⁻¹-> 2(anchor) -U-> 3 -U-> 4 … S(0,4), S(1,3), S(2,2).
    fn dyck_instance() -> (NormalGrammar, AdHoc, NonTerminal) {
        let mut g = Grammar::new();
        let s = g.nonterminal("S");
        let u_inv = Terminal::inv(EdgeKind::Used);
        let u = Terminal::fwd(EdgeKind::Used);
        g.rule(s, [Symbol::T(u_inv), Symbol::N(s), Symbol::T(u)]);
        g.rule(s, [Symbol::T(Terminal::VertexIs(VertexId::new(2)))]);
        g.set_start(s);
        let graph = AdHoc {
            n: 5,
            edges: vec![
                (u_inv, 0, 1),
                (u_inv, 1, 2),
                (Terminal::VertexIs(VertexId::new(2)), 2, 2),
                (u, 2, 3),
                (u, 3, 4),
            ],
        };
        (normalize(&g), graph, s)
    }

    fn check_dyck<S: FastSet>() {
        let (grammar, graph, s) = dyck_instance();
        let res = solve::<S>(&grammar, &graph);
        assert_eq!(res.pairs(s), vec![(0, 4), (1, 3), (2, 2)]);
        assert!(res.contains(s, 1, 3));
        assert!(!res.contains(s, 0, 3));
        assert_eq!(res.row(s, 0), vec![4]);
        assert_eq!(res.fact_count(s), 3);
        assert!(res.stats().facts >= 3);
        assert!(res.stats().worklist_pops > 0);
    }

    #[test]
    fn dyck_reachability_hash() {
        check_dyck::<HashFastSet>();
    }

    #[test]
    fn dyck_reachability_bitset() {
        check_dyck::<FixedBitSet>();
    }

    #[test]
    fn dyck_reachability_cbm() {
        check_dyck::<CompressedBitmap>();
    }

    #[test]
    fn unbalanced_graph_yields_no_start_facts() {
        // Same grammar, but no closing U edges.
        let mut g = Grammar::new();
        let s = g.nonterminal("S");
        let u_inv = Terminal::inv(EdgeKind::Used);
        let u = Terminal::fwd(EdgeKind::Used);
        g.rule(s, [Symbol::T(u_inv), Symbol::N(s), Symbol::T(u)]);
        g.rule(s, [Symbol::T(Terminal::VertexIs(VertexId::new(1)))]);
        g.set_start(s);
        let graph = AdHoc {
            n: 2,
            edges: vec![(u_inv, 0, 1), (Terminal::VertexIs(VertexId::new(1)), 1, 1)],
        };
        let res = solve_bitset(&normalize(&g), &graph);
        assert_eq!(res.pairs(s), vec![(1, 1)]);
    }

    #[test]
    fn transitive_closure_grammar() {
        // R → U | R R : plain reachability over U edges (regular, but CFLR
        // handles it; sanity-checks the join machinery in both directions).
        let mut g = Grammar::new();
        let r = g.nonterminal("R");
        let u = Terminal::fwd(EdgeKind::Used);
        g.rule(r, [Symbol::T(u)]);
        g.rule(r, [Symbol::N(r), Symbol::N(r)]);
        g.set_start(r);
        let graph = AdHoc { n: 4, edges: vec![(u, 0, 1), (u, 1, 2), (u, 2, 3)] };
        let res = solve_bitset(&normalize(&g), &graph);
        let mut pairs = res.pairs(r);
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn traced_solve_reconstructs_witness_paths() {
        let (grammar, graph, s) = dyck_instance();
        let (res, table) = solve_traced::<FixedBitSet>(&grammar, &graph);
        assert_eq!(res.pairs(s), vec![(0, 4), (1, 3), (2, 2)]);
        // S(0,4) is witnessed by the full chain 0..=4.
        let path = table.witness_path((s, 0, 4)).expect("derivation recorded");
        assert_eq!(path, vec![0, 1, 2, 3, 4]);
        // S(1,3) by the inner chain.
        assert_eq!(table.witness_path((s, 1, 3)), Some(vec![1, 2, 3]));
        // Underived facts have no path.
        assert_eq!(table.witness_path((s, 0, 3)), None);
        assert!(!table.is_empty());
    }

    #[test]
    fn backends_agree_on_random_instance() {
        // Small pseudo-random Dyck-ish instance; all three backends must agree.
        let mut g = Grammar::new();
        let s = g.nonterminal("S");
        let u_inv = Terminal::inv(EdgeKind::Used);
        let u = Terminal::fwd(EdgeKind::Used);
        let g_inv = Terminal::inv(EdgeKind::WasGeneratedBy);
        let gg = Terminal::fwd(EdgeKind::WasGeneratedBy);
        g.rule(s, [Symbol::T(u_inv), Symbol::N(s), Symbol::T(u)]);
        g.rule(s, [Symbol::T(g_inv), Symbol::N(s), Symbol::T(gg)]);
        g.rule(s, [Symbol::T(Terminal::VertexIs(VertexId::new(0)))]);
        g.set_start(s);
        let mut edges = Vec::new();
        edges.push((Terminal::VertexIs(VertexId::new(0)), 0, 0));
        // Deterministic scramble of edges over 12 vertices.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..40 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = ((x >> 7) % 12) as u32;
            let b = ((x >> 23) % 12) as u32;
            let t = match (x >> 40) % 4 {
                0 => u,
                1 => u_inv,
                2 => gg,
                _ => g_inv,
            };
            edges.push((t, a, b));
        }
        let graph = AdHoc { n: 12, edges };
        let normal = normalize(&g);
        let h = solve_hash(&normal, &graph).pairs(s);
        let b = solve_bitset(&normal, &graph).pairs(s);
        let c = solve_cbm(&normal, &graph).pairs(s);
        assert_eq!(h, b);
        assert_eq!(b, c);
    }
}
