//! Parallel SimProvAlg: BSP-round drain of the pair-encoded worklist.
//!
//! The sequential loop ([`crate::alg::similar_alg`]) pops one packed word at
//! a time and inserts derived pairs straight into the mutable fact tables.
//! This module drains the same worklist in *rounds*: each round freezes the
//! `Ee`/`Aa` tables, partitions the pending words by kind (a popped `Ee`
//! word derives into `Aa` and vice versa, so a per-kind sub-batch shares one
//! read-only target table), and fans the sub-batch out in contiguous chunks
//! to the [`rayon_core`] pool. Workers expand their chunk against the frozen
//! tables only — membership probes via [`PairTable::contains`] pre-dedup
//! candidates — and stage fresh pairs in per-worker buffers. A sequential
//! merge then replays the buffers through [`PairTable::insert_packed`],
//! whose idempotence resolves any candidate duplicated across workers (or
//! derived twice within a round): the first replay inserts the fact and
//! pushes it onto the next round's worklist, every later replay is a no-op.
//!
//! Because each unique fact is enqueued exactly once (by the merge) and each
//! enqueued word is expanded exactly once (by some round), the pop count —
//! and with it the `work` statistic — is byte-identical to the sequential
//! loop's, and the derived relation is the same fixpoint. The differential
//! property tests in `tests/parallel_equivalence.rs` pin both, at every
//! thread count.

use crate::alg::{by_rank, AlgConfig, RankAdjacency, EE_TAG, HI_RANK_MASK};
use crate::outcome::{EvalStats, SimilarOutcome};
use crate::view::MaskedGraph;
use prov_bitset::{pack_pair, CompressedBitmap, FastSet, FixedBitSet, PairTable};
use prov_model::{VertexId, VertexKind};
use std::time::Instant;

/// Below this many pending words of one kind, a round expands inline — the
/// chunking/merge machinery costs more than it saves on tiny frontiers.
pub const PAR_BATCH_MIN: usize = 256;

/// Everything a worker reads while expanding one kind's sub-batch. All
/// fields are frozen for the round, so sharing them across threads is plain
/// `&`-aliasing — no synchronization in the hot path.
struct RoundCtx<'a, S> {
    /// Upstream adjacency of the popped kind (generators for `Ee` pops,
    /// inputs for `Aa` pops).
    adj: &'a RankAdjacency,
    /// Early-stop flags of the popped kind, when active.
    stale: Option<&'a [bool]>,
    /// Constraint fingerprints of the *derived* kind, when active.
    fps: Option<&'a [u64]>,
    prune: bool,
    /// Frozen target relation (the derived kind's table).
    target: &'a PairTable<S>,
}

/// Stage `(r1, r2)` as a candidate unless the frozen target already holds it
/// (mirrors `derive_pair`'s canonicalization, minus the mutation).
#[inline]
fn push_candidate<S: FastSet>(ctx: &RoundCtx<'_, S>, out: &mut Vec<u64>, r1: u32, r2: u32) {
    if ctx.prune {
        let (a, b) = (r1.min(r2), r1.max(r2));
        if !ctx.target.contains(a, b) {
            out.push(pack_pair(a, b));
        }
    } else {
        if !ctx.target.contains(r1, r2) {
            out.push(pack_pair(r1, r2));
        }
        if r1 != r2 && !ctx.target.contains(r2, r1) {
            out.push(pack_pair(r2, r1));
        }
    }
}

/// Expand one popped word against the frozen round context, staging fresh
/// candidate pairs into `out`. Pair-for-pair the same derivations as the
/// sequential loop body.
fn expand_word<S: FastSet>(ctx: &RoundCtx<'_, S>, word: u64, out: &mut Vec<u64>) {
    // lint-ok(narrowing-cast): deliberately unpacks the two u32 halves of a packed word.
    let lo = ((word >> 32) & HI_RANK_MASK) as u32;
    // lint-ok(narrowing-cast): low half of the packed pair word.
    let hi = word as u32;
    if let Some(stale) = ctx.stale {
        if stale[lo as usize] && stale[hi as usize] {
            return; // early stop: both older than every source
        }
    }
    let s1 = ctx.adj.row(lo);
    if s1.is_empty() {
        return;
    }
    let diagonal = lo == hi;
    let s2 = if diagonal { s1 } else { ctx.adj.row(hi) };
    if let ([r1], [r2]) = (s1, s2) {
        let (r1, r2) = (*r1, *r2);
        let ok = match ctx.fps {
            Some(f) => f[r1 as usize] == f[r2 as usize],
            None => true,
        };
        if ok {
            push_candidate(ctx, out, r1, r2);
        }
        return;
    }
    for (x, &r1) in s1.iter().enumerate() {
        let inner: &[u32] = if ctx.prune && diagonal { &s2[x..] } else { s2 };
        match ctx.fps {
            Some(f) => {
                let f1 = f[r1 as usize];
                for &r2 in inner {
                    if f1 == f[r2 as usize] {
                        push_candidate(ctx, out, r1, r2);
                    }
                }
            }
            None => {
                for &r2 in inner {
                    push_candidate(ctx, out, r1, r2);
                }
            }
        }
    }
}

/// Expand `words` into `bufs` (one buffer per chunk), in parallel when the
/// sub-batch is large enough to pay for the fan-out.
fn expand_batch<S: FastSet + Sync>(
    ctx: &RoundCtx<'_, S>,
    words: &[u64],
    threads: usize,
    batch_min: usize,
    bufs: &mut [Vec<u64>],
) {
    if words.len() < batch_min || threads <= 1 {
        for &word in words {
            expand_word(ctx, word, &mut bufs[0]);
        }
        return;
    }
    let ranges = rayon_core::chunk_ranges(words.len(), threads);
    rayon_core::scope(|s| {
        for (range, buf) in ranges.into_iter().zip(bufs.iter_mut()) {
            let chunk = &words[range];
            s.spawn(move || {
                for &word in chunk {
                    expand_word(ctx, word, buf);
                }
            });
        }
    });
}

/// [`crate::alg::similar_alg`] with the worklist drained by `threads`-way
/// BSP rounds on the global [`rayon_core`] pool. `threads <= 1` delegates to
/// the sequential loop; any `threads` value yields the identical
/// `SimilarOutcome` (answer and `work`), which is what makes the sequential
/// twin a differential reference rather than dead code.
pub fn similar_alg_par<S: FastSet + Send + Sync>(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
    threads: usize,
) -> SimilarOutcome {
    similar_alg_par_with_batch_min::<S>(view, vsrc, vdst, cfg, threads, PAR_BATCH_MIN)
}

/// [`similar_alg_par`] with an explicit inline-round threshold. Production
/// callers want [`PAR_BATCH_MIN`]; the differential tests and the TSan CI
/// lane pass `0` so even tiny worklists exercise the chunked fan-out and
/// merge machinery.
pub fn similar_alg_par_with_batch_min<S: FastSet + Send + Sync>(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
    threads: usize,
    batch_min: usize,
) -> SimilarOutcome {
    if threads <= 1 {
        return crate::alg::similar_alg::<S>(view, vsrc, vdst, cfg);
    }
    let t0 = Instant::now();
    let idx = view.index();
    let entities = idx.kind_members(VertexKind::Entity);
    let activities = idx.kind_members(VertexKind::Activity);
    let (ne, na) = (entities.len(), activities.len());
    assert!(
        ne < (1 << 31) && na < (1 << 31),
        "pair-encoded worklist holds ranks below 2^31 (got |E|={ne}, |A|={na})"
    );

    let mut ee: PairTable<S> = PairTable::new(ne);
    let mut aa: PairTable<S> = PairTable::new(na);
    let mut worklist: Vec<u64> = Vec::new();
    let mut pops: u64 = 0;

    let min_src_birth: Option<u64> = vsrc
        .iter()
        .filter(|&&s| s.index() < idx.vertex_count() && view.vertex_ok(s))
        .map(|&s| idx.birth(s))
        .min()
        .filter(|_| cfg.early_stop);

    for &vj in vdst {
        if vj.index() < idx.vertex_count()
            && view.vertex_ok(vj)
            && idx.kind(vj) == VertexKind::Entity
        {
            let r = idx.kind_rank(vj);
            if ee.insert(r, r) {
                worklist.push(EE_TAG | pack_pair(r, r));
            }
        }
    }

    let gen_ranks = RankAdjacency::build(view, idx, VertexKind::Entity);
    let inp_ranks = RankAdjacency::build(view, idx, VertexKind::Activity);
    let stale: Option<(Vec<bool>, Vec<bool>)> = min_src_birth.map(|minb| {
        (by_rank(entities, |v| idx.birth(v) < minb), by_rank(activities, |v| idx.birth(v) < minb))
    });
    let table = cfg.constraint.as_ref();
    let fps: Option<(Vec<u64>, Vec<u64>)> =
        table.map(|t| (by_rank(activities, |v| t.fp(v)), by_rank(entities, |v| t.fp(v))));
    let prune = cfg.symmetric_prune;

    // Round state, reused across iterations.
    let mut ee_words: Vec<u64> = Vec::new();
    let mut aa_words: Vec<u64> = Vec::new();
    let mut bufs: Vec<Vec<u64>> = (0..threads).map(|_| Vec::new()).collect();

    while !worklist.is_empty() {
        pops += worklist.len() as u64;
        ee_words.clear();
        aa_words.clear();
        for &word in &worklist {
            if word & EE_TAG != 0 {
                ee_words.push(word);
            } else {
                aa_words.push(word);
            }
        }
        worklist.clear();

        // `Ee` pops derive into `Aa`, then `Aa` pops derive into `Ee`. Each
        // sub-batch freezes its target table for the expansion and merges
        // sequentially; fresh facts land on `worklist` for the next round.
        for is_ee in [true, false] {
            let words = if is_ee { &ee_words } else { &aa_words };
            if words.is_empty() {
                continue;
            }
            let ctx = RoundCtx {
                adj: if is_ee { &gen_ranks } else { &inp_ranks },
                stale: stale.as_ref().map(|(se, sa)| if is_ee { &se[..] } else { &sa[..] }),
                fps: fps.as_ref().map(|(fa, fe)| if is_ee { &fa[..] } else { &fe[..] }),
                prune,
                target: if is_ee { &aa } else { &ee },
            };
            expand_batch(&ctx, words, threads, batch_min, &mut bufs);
            let (target, tag) = if is_ee { (&mut aa, 0) } else { (&mut ee, EE_TAG) };
            for buf in &mut bufs {
                for &w in buf.iter() {
                    target.insert_packed(w, tag, &mut worklist);
                }
                buf.clear();
            }
        }
    }

    let mut marks = vec![false; idx.vertex_count()];
    let mut buf: Vec<u32> = Vec::new();
    for &src in vsrc {
        if src.index() >= idx.vertex_count()
            || !view.vertex_ok(src)
            || idx.kind(src) != VertexKind::Entity
        {
            continue;
        }
        buf.clear();
        ee.partners_into(idx.kind_rank(src), &mut buf);
        for &r in &buf {
            marks[entities[r as usize].index()] = true;
        }
    }
    let answer = crate::outcome::marks_to_vec(&marks);
    let mem = ee.heap_bytes() + aa.heap_bytes();
    SimilarOutcome {
        answer,
        vc2: None,
        stats: EvalStats {
            elapsed: t0.elapsed(),
            work: pops + (ee.len() + aa.len()) as u64,
            memory_bytes: mem,
            dnf: false,
        },
    }
}

/// [`similar_alg_par`] with `FixedBitSet` fact tables.
pub fn similar_alg_par_bitset(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
    threads: usize,
) -> SimilarOutcome {
    similar_alg_par::<FixedBitSet>(view, vsrc, vdst, cfg, threads)
}

/// [`similar_alg_par`] with compressed-bitmap fact tables.
pub fn similar_alg_par_cbm(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
    threads: usize,
) -> SimilarOutcome {
    similar_alg_par::<CompressedBitmap>(view, vsrc, vdst, cfg, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::similar_alg_bitset;
    use prov_model::EdgeKind;
    use prov_store::{ProvGraph, ProvIndex};

    #[test]
    fn parallel_rounds_match_sequential_on_a_small_graph() {
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let m1 = g.add_entity("m1");
        let t2 = g.add_activity("t2");
        let m2 = g.add_entity("m2");
        let t3 = g.add_activity("t3");
        let w = g.add_entity("w");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m1, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m2, t2).unwrap();
        g.add_edge(EdgeKind::Used, t3, m1).unwrap();
        g.add_edge(EdgeKind::Used, t3, m2).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t3).unwrap();
        let idx = ProvIndex::build(&g);
        let view = MaskedGraph::unmasked(&idx);
        let cfg = AlgConfig::paper_default();
        let seq = similar_alg_bitset(&view, &[m1], &[w], &cfg);
        for threads in [1, 2, 4, 8] {
            let par = similar_alg_par_bitset(&view, &[m1], &[w], &cfg, threads);
            assert_eq!(par.answer, seq.answer, "threads={threads}");
            assert_eq!(par.stats.work, seq.stats.work, "threads={threads}");
        }
    }
}
