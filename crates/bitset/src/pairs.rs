//! [`PairTable`]: a fact table over rank pairs, addressed by packed words.
//!
//! SimProvAlg's `Ee`/`Aa` relations are sets of pairs over a dense per-kind
//! rank universe. The worklist rewrite (ISSUE 3) encodes a pair `(i, j)` as
//! one `u64` word (`i` in the high half, `j` in the low half) so the whole
//! inner loop — staging candidate facts, deduplicating them against the
//! table, enqueuing the fresh ones — moves flat words instead of tuples.
//!
//! `PairTable` is generic over the same [`FastSet`] backends as the solvers
//! and picks its layout by universe size:
//!
//! * universes up to 2¹⁴ ranks (every quick-scale workload) use one **flat**
//!   backing set over cell indexes `i·n + j` — for [`crate::FixedBitSet`]
//!   that is literally the paper's `O(n²/w)`-bit table, and an insert
//!   attempt is one address computation plus one bit probe;
//! * larger universes fall back to lazily-allocated per-row sets, which is
//!   also what keeps the compressed backend's containers small.
//!
//! There is deliberately no column index: reverse partner lookups run a row
//! scan once per query source at answer extraction, instead of paying a
//! second set insert on every derived fact in the hot loop.

use crate::traits::FastSet;

/// Pack a rank pair into one word: `i` in the high 32 bits, `j` in the low.
#[inline]
pub fn pack_pair(i: u32, j: u32) -> u64 {
    ((i as u64) << 32) | j as u64
}

/// Inverse of [`pack_pair`].
#[inline]
pub fn unpack_pair(w: u64) -> (u32, u32) {
    ((w >> 32) as u32, w as u32)
}

/// Largest universe using the flat `n²`-cell layout.
///
/// Two constraints meet here: the flat cell index `i·n + j` must fit the
/// backing set's `u32` elements (true up to `n = 2¹⁶`), and — since a dense
/// backend zeroes its whole universe eagerly — the `n²`-bit table must stay
/// cheap enough to build per query even when the worklist only ever touches
/// a corner of it (interactive PgSeg sessions re-evaluate repeatedly). At
/// `2¹⁴` ranks the dense table tops out at 32 MiB; beyond that the lazy
/// per-row layout takes over, allocating only rows the evaluation reaches
/// (the seed's behaviour).
pub const FLAT_PAIR_UNIVERSE_MAX: usize = 1 << 14;

enum Repr<S> {
    /// One backing set over cell indexes `i * universe + j`.
    Flat(S),
    /// Lazily-allocated per-row sets (universes beyond [`FLAT_PAIR_UNIVERSE_MAX`]).
    Rows(Vec<Option<S>>),
}

/// A pair relation over a dense rank universe.
pub struct PairTable<S> {
    repr: Repr<S>,
    universe: usize,
    len: usize,
}

impl<S: FastSet> PairTable<S> {
    /// Empty table over ranks `0..universe` on each side.
    pub fn new(universe: usize) -> Self {
        let repr = if universe <= FLAT_PAIR_UNIVERSE_MAX {
            Repr::Flat(S::with_universe(universe * universe))
        } else {
            Repr::Rows((0..universe).map(|_| None).collect())
        };
        PairTable { repr, universe, len: 0 }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no pair is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-side rank universe.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// True when this table uses the flat `n²`-cell layout (exposed for
    /// tests and the benchmark harness).
    pub fn is_flat(&self) -> bool {
        matches!(self.repr, Repr::Flat(_))
    }

    /// Membership test.
    pub fn contains(&self, i: u32, j: u32) -> bool {
        match &self.repr {
            Repr::Flat(s) => s.contains(i * self.universe as u32 + j),
            Repr::Rows(rows) => rows[i as usize].as_ref().is_some_and(|row| row.contains(j)),
        }
    }

    /// Insert one pair; returns true when newly inserted.
    pub fn insert(&mut self, i: u32, j: u32) -> bool {
        let u = self.universe;
        let newly = match &mut self.repr {
            Repr::Flat(s) => s.insert(i * u as u32 + j),
            Repr::Rows(rows) => {
                rows[i as usize].get_or_insert_with(|| S::with_universe(u)).insert(j)
            }
        };
        self.len += newly as usize;
        self.paranoid_check();
        newly
    }

    /// Insert one packed pair; when it is new, push it — tagged with
    /// `out_tag` — onto `out` and return true.
    ///
    /// This is SimProvAlg's per-fact primitive: the worklist itself is
    /// passed as `out` with the target relation's kind tag, so a fresh fact
    /// costs one set insert plus one push, with no intermediate buffer.
    #[inline]
    pub fn insert_packed(&mut self, w: u64, out_tag: u64, out: &mut Vec<u64>) -> bool {
        let u = self.universe;
        let newly = match &mut self.repr {
            Repr::Flat(s) => s.insert((w >> 32) as u32 * u as u32 + w as u32),
            Repr::Rows(rows) => {
                rows[(w >> 32) as usize].get_or_insert_with(|| S::with_universe(u)).insert(w as u32)
            }
        };
        if newly {
            self.len += 1;
            out.push(w | out_tag);
        }
        self.paranoid_check();
        newly
    }

    /// Batch insert over a packed-pair slice: add every pair of `packed`,
    /// appending the *newly* inserted ones — tagged with `out_tag` — to
    /// `out` (the bulk form of [`PairTable::insert_packed`]).
    pub fn insert_returning_new(&mut self, packed: &[u64], out_tag: u64, out: &mut Vec<u64>) {
        for &w in packed {
            self.insert_packed(w, out_tag, out);
        }
    }

    /// Batch insert of one row: add `(i, j)` for every `j` of `js`, pushing
    /// fresh pairs — packed and tagged — onto `out`.
    ///
    /// The row (flat base address, or lazily-created row set) resolves once
    /// for the whole batch; with `js` ascending the flat layout probes
    /// consecutive cells of one region. SimProvAlg's canonical-pair loop
    /// feeds it the sorted suffix of each adjacency row.
    pub fn insert_row(&mut self, i: u32, js: &[u32], out_tag: u64, out: &mut Vec<u64>) {
        let u = self.universe;
        let hi = (i as u64) << 32;
        let mut added = 0usize;
        match &mut self.repr {
            Repr::Flat(s) => {
                let base = i * u as u32;
                for &j in js {
                    if s.insert(base + j) {
                        added += 1;
                        out.push(hi | j as u64 | out_tag);
                    }
                }
            }
            Repr::Rows(rows) => {
                let row = rows[i as usize].get_or_insert_with(|| S::with_universe(u));
                for &j in js {
                    if row.insert(j) {
                        added += 1;
                        out.push(hi | j as u64 | out_tag);
                    }
                }
            }
        }
        self.len += added;
        self.paranoid_check();
    }

    /// Append every partner of `r` (both orientations) to `out`, sorted and
    /// deduplicated: the elements of row `r` plus every row containing `r`.
    /// An `O(universe)` probe scan — cold-path only, run once per query
    /// source at answer extraction (see the module docs on the missing
    /// column index).
    pub fn partners_into(&self, r: u32, out: &mut Vec<u32>) {
        let u = self.universe as u32;
        match &self.repr {
            Repr::Flat(s) => {
                let base = r * u;
                for j in 0..u {
                    if s.contains(base + j) {
                        out.push(j);
                    }
                }
                for i in 0..u {
                    if s.contains(i * u + r) {
                        out.push(i);
                    }
                }
            }
            Repr::Rows(rows) => {
                if let Some(row) = &rows[r as usize] {
                    row.for_each_elem(&mut |j| out.push(j));
                }
                for (i, row) in rows.iter().enumerate() {
                    if let Some(row) = row {
                        if row.contains(r) {
                            out.push(i as u32);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Iterate all stored pairs in `(row, ascending column)` order.
    pub fn iter_pairs(&self) -> Box<dyn Iterator<Item = (u32, u32)> + '_> {
        let u = self.universe as u32;
        match &self.repr {
            Repr::Flat(s) => Box::new(s.iter_elems().map(move |cell| (cell / u, cell % u))),
            Repr::Rows(rows) => Box::new(rows.iter().enumerate().flat_map(|(i, row)| {
                row.iter().flat_map(move |s| s.iter_elems().map(move |j| (i as u32, j)))
            })),
        }
    }

    /// Check the fact table's structural invariants, naming the first
    /// violated one in the error.
    ///
    /// The catalog (see DESIGN.md §8): the layout matches the universe (flat
    /// iff it fits [`FLAT_PAIR_UNIVERSE_MAX`], one lazy row slot per rank
    /// otherwise), every stored cell/column is inside the universe, and the
    /// cached `len` equals a recount of the backing sets. `O(universe)` plus
    /// the recount — wired to run after every insert under the `paranoid`
    /// feature.
    pub fn validate(&self) -> Result<(), String> {
        let u = self.universe;
        let stored = match &self.repr {
            Repr::Flat(s) => {
                if u > FLAT_PAIR_UNIVERSE_MAX {
                    return Err(format!("flat layout over universe {u} > FLAT_PAIR_UNIVERSE_MAX"));
                }
                if let Some(cell) = s.iter_elems().find(|&c| c as usize >= u * u) {
                    return Err(format!("flat cell {cell} outside the {u}x{u} universe"));
                }
                s.len()
            }
            Repr::Rows(rows) => {
                if u <= FLAT_PAIR_UNIVERSE_MAX {
                    return Err(format!("row layout under universe {u} <= FLAT_PAIR_UNIVERSE_MAX"));
                }
                if rows.len() != u {
                    return Err(format!("{} row slots over universe {u}", rows.len()));
                }
                let mut count = 0usize;
                for (i, row) in rows.iter().enumerate() {
                    let Some(row) = row else { continue };
                    if let Some(j) = row.iter_elems().find(|&j| j as usize >= u) {
                        return Err(format!("row {i} holds column {j} outside universe {u}"));
                    }
                    count += row.len();
                }
                count
            }
        };
        if stored != self.len {
            return Err(format!("cached len {} but {stored} pairs stored", self.len));
        }
        Ok(())
    }

    /// Under the `paranoid` feature, panic on any violated table invariant;
    /// compiled to nothing otherwise.
    #[inline]
    fn paranoid_check(&self) {
        #[cfg(feature = "paranoid")]
        if let Err(violation) = self.validate() {
            panic!("paranoid pair-table validation failed: {violation}");
        }
    }

    /// Approximate heap footprint of the fact table.
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Flat(s) => s.heap_bytes(),
            Repr::Rows(rows) => {
                rows.iter().filter_map(|s| s.as_ref().map(|s| s.heap_bytes())).sum()
            }
        }
    }
}

impl<S: FastSet> std::fmt::Debug for PairTable<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairTable")
            .field("universe", &self.universe)
            .field("flat", &self.is_flat())
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressedBitmap, FixedBitSet};

    #[test]
    fn pack_round_trips() {
        for (i, j) in [(0u32, 0u32), (1, 2), (u32::MAX, 7), (3, u32::MAX)] {
            assert_eq!(unpack_pair(pack_pair(i, j)), (i, j));
        }
    }

    fn exercise<S: FastSet>(universe: usize) {
        let mut t: PairTable<S> = PairTable::new(universe);
        assert!(t.is_empty());
        assert!(t.insert(1, 2));
        assert!(!t.insert(1, 2));
        let mut fresh = Vec::new();
        t.insert_returning_new(&[pack_pair(1, 2), pack_pair(1, 3), pack_pair(4, 2)], 0, &mut fresh);
        assert_eq!(fresh, vec![pack_pair(1, 3), pack_pair(4, 2)]);
        // The tag is ORed onto fresh output words (how SimProvAlg routes
        // fresh facts straight onto its kind-tagged worklist).
        let mut tagged = Vec::new();
        t.insert_returning_new(&[pack_pair(5, 6)], 1 << 63, &mut tagged);
        assert_eq!(tagged, vec![(1 << 63) | pack_pair(5, 6)]);
        assert_eq!(t.len(), 4);
        assert!(t.contains(1, 3) && t.contains(4, 2) && !t.contains(2, 1));

        let mut partners = Vec::new();
        t.partners_into(2, &mut partners);
        assert_eq!(partners, vec![1, 4], "row and reverse partners merge");
        partners.clear();
        t.partners_into(1, &mut partners);
        assert_eq!(partners, vec![2, 3]);

        let pairs: Vec<(u32, u32)> = t.iter_pairs().collect();
        assert_eq!(pairs, vec![(1, 2), (1, 3), (4, 2), (5, 6)]);
        assert!(t.heap_bytes() > 0);
    }

    #[test]
    fn pair_table_over_fixed_bitset() {
        exercise::<FixedBitSet>(10); // flat layout
        exercise::<FixedBitSet>(FLAT_PAIR_UNIVERSE_MAX + 1); // row layout
    }

    #[test]
    fn pair_table_over_compressed_bitmap() {
        exercise::<CompressedBitmap>(10);
        exercise::<CompressedBitmap>(FLAT_PAIR_UNIVERSE_MAX + 1);
    }

    #[test]
    fn validate_catches_hand_corrupted_tables() {
        // Pristine tables of both layouts pass.
        let mut flat: PairTable<FixedBitSet> = PairTable::new(10);
        flat.insert(1, 2);
        flat.validate().expect("pristine flat table");
        let mut rows: PairTable<FixedBitSet> = PairTable::new(FLAT_PAIR_UNIVERSE_MAX + 1);
        rows.insert(1, 2);
        rows.validate().expect("pristine row table");

        // Cached len drifting from the backing sets is caught and named.
        flat.len += 1;
        let violation = flat.validate().expect_err("len drift must be caught");
        assert!(violation.contains("cached len"), "unexpected message {violation:?}");
        rows.len = 0;
        assert!(rows.validate().expect_err("len drift").contains("cached len"));

        // A repr that disagrees with its universe is caught and named.
        let wrong = PairTable::<FixedBitSet> {
            repr: Repr::Flat(FixedBitSet::with_universe(4)),
            universe: FLAT_PAIR_UNIVERSE_MAX + 1,
            len: 0,
        };
        assert!(wrong.validate().expect_err("layout mismatch").contains("flat layout"));
        let wrong =
            PairTable::<FixedBitSet> { repr: Repr::Rows(vec![None; 3]), universe: 3, len: 0 };
        assert!(wrong.validate().expect_err("layout mismatch").contains("row layout"));

        // A dropped row slot is caught and named.
        let mut rows: PairTable<FixedBitSet> = PairTable::new(FLAT_PAIR_UNIVERSE_MAX + 1);
        if let Repr::Rows(slots) = &mut rows.repr {
            slots.pop();
        }
        assert!(rows.validate().expect_err("slot count").contains("row slots"));
    }

    #[test]
    fn layout_switches_at_the_flat_boundary() {
        assert!(PairTable::<FixedBitSet>::new(FLAT_PAIR_UNIVERSE_MAX).is_flat());
        assert!(!PairTable::<FixedBitSet>::new(FLAT_PAIR_UNIVERSE_MAX + 1).is_flat());
        // The largest flat cell index must fit the u32 element space.
        let mut t: PairTable<CompressedBitmap> = PairTable::new(FLAT_PAIR_UNIVERSE_MAX);
        let max = (FLAT_PAIR_UNIVERSE_MAX - 1) as u32;
        assert!(t.insert(max, max));
        assert!(t.contains(max, max));
        assert_eq!(t.iter_pairs().collect::<Vec<_>>(), vec![(max, max)]);
    }

    #[test]
    fn flat_and_row_layouts_agree() {
        let pairs: Vec<(u32, u32)> = (0..40)
            .flat_map(|i| (0..40).filter(move |j| (i * 7 + j) % 3 == 0).map(move |j| (i, j)))
            .collect();
        let mut flat: PairTable<FixedBitSet> = PairTable::new(40);
        let mut rows: PairTable<FixedBitSet> = PairTable::new(FLAT_PAIR_UNIVERSE_MAX + 1);
        assert!(flat.is_flat() && !rows.is_flat());
        let packed: Vec<u64> = pairs.iter().map(|&(i, j)| pack_pair(i, j)).collect();
        let mut fresh_flat = Vec::new();
        let mut fresh_rows = Vec::new();
        flat.insert_returning_new(&packed, 0, &mut fresh_flat);
        rows.insert_returning_new(&packed, 0, &mut fresh_rows);
        assert_eq!(fresh_flat, fresh_rows);
        assert_eq!(flat.len(), rows.len());
        assert_eq!(flat.iter_pairs().collect::<Vec<_>>(), rows.iter_pairs().collect::<Vec<_>>());
        for r in [0u32, 7, 39] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            flat.partners_into(r, &mut a);
            rows.partners_into(r, &mut b);
            assert_eq!(a, b, "partners of {r}");
        }
    }
}
