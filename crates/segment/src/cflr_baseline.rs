//! `L(SimProv)` evaluation through the generic CflrB solver (the baseline of
//! Fig. 5(a)–(c)).
//!
//! Runs the state-of-the-art general CFLR algorithm on the Fig. 6 normal form
//! of SimProv over the (masked) provenance graph and reads the answer off the
//! start relation `Re`. Being a general solver it evaluates *all pairs* — the
//! paper notes single-source CFLR cannot exploit source information — which is
//! exactly why SimProvAlg/SimProvTst beat it.
//!
//! `Re` relates entities at alternating-distance `2k (k ≥ 1)` around a
//! destination; the trivial level-0 facts (`vj` with itself) are part of the
//! rewritten grammar's `Ee` but not of `Re`, so they are added back here to
//! give all evaluators identical answer semantics.

use crate::outcome::{EvalStats, SimilarOutcome};
use crate::view::MaskedGraph;
use prov_bitset::traits::HashFastSet;
use prov_bitset::{CompressedBitmap, FastSet, FixedBitSet, SetBackend};
use prov_cfl::simprov;
use prov_cfl::{normalize, solve, CflrResult};
use prov_model::{VertexId, VertexKind};
use std::time::Instant;

/// Which SimProv grammar form the solver runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrammarForm {
    /// The paper's Fig. 6 normal form (`Qd..Re`), the faithful CflrB setup.
    NormalFig6,
    /// The rewritten Fig. 4 grammar, normalized mechanically. Used by tests to
    /// show both forms define the same reachability.
    RewrittenFig4,
}

fn finish<S: FastSet>(
    result: CflrResult<S>,
    start: prov_cfl::NonTerminal,
    form: GrammarForm,
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    t0: Instant,
) -> SimilarOutcome {
    let idx = view.index();
    let mut marks = vec![false; idx.vertex_count()];
    for &src in vsrc {
        if src.index() >= idx.vertex_count()
            || !view.vertex_ok(src)
            || idx.kind(src) != VertexKind::Entity
        {
            continue;
        }
        for t in result.row(start, src.raw()) {
            marks[t as usize] = true;
        }
        // All-pairs relations are symmetric here; read the column side too via
        // the transpose fact N(t, src).
        // lint-ok(narrowing-cast): vertex ids are minted below u32::MAX by the store.
        for t in 0..idx.vertex_count() as u32 {
            if result.contains(start, t, src.raw()) {
                marks[t as usize] = true;
            }
        }
        if form == GrammarForm::NormalFig6 {
            // Re omits the level-0 anchor facts; restore identity answers for
            // sources that are themselves destinations.
            if vdst.contains(&src) {
                marks[src.index()] = true;
            }
        }
    }
    let stats = result.stats();
    SimilarOutcome {
        answer: crate::outcome::marks_to_vec(&marks),
        vc2: None,
        stats: EvalStats {
            elapsed: t0.elapsed(),
            work: stats.worklist_pops,
            memory_bytes: stats.fact_table_bytes,
            dnf: false,
        },
    }
}

/// Evaluate with CflrB using the chosen grammar form and set backend.
pub fn similar_cflr(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    form: GrammarForm,
    backend: SetBackend,
) -> SimilarOutcome {
    let t0 = Instant::now();
    let idx = view.index();
    let vdst_ok: Vec<VertexId> = vdst
        .iter()
        .copied()
        .filter(|&v| {
            v.index() < idx.vertex_count() && view.vertex_ok(v) && idx.kind(v) == VertexKind::Entity
        })
        .collect();
    let (grammar, handles) = match form {
        GrammarForm::NormalFig6 => simprov::normal_form_fig6(&vdst_ok),
        GrammarForm::RewrittenFig4 => simprov::rewritten_fig4(&vdst_ok),
    };
    let normal = normalize(&grammar);
    let start = normal.map_nonterminal(handles.start);
    match backend {
        SetBackend::Hash => {
            let res = solve::<HashFastSet>(&normal, view);
            finish(res, start, form, view, vsrc, vdst, t0)
        }
        SetBackend::Bit => {
            let res = solve::<FixedBitSet>(&normal, view);
            finish(res, start, form, view, vsrc, vdst, t0)
        }
        SetBackend::Compressed => {
            let res = solve::<CompressedBitmap>(&normal, view);
            finish(res, start, form, view, vsrc, vdst, t0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{similar_alg_bitset, AlgConfig};
    use crate::tst::{similar_tst, TstConfig};
    use prov_model::EdgeKind;
    use prov_store::{ProvGraph, ProvIndex};

    fn pipeline() -> (ProvGraph, ProvIndex, Vec<VertexId>) {
        // Fig. 2-like: two training rounds from a shared dataset, second round
        // uses the first round's model.
        let mut g = ProvGraph::new();
        let d = g.add_entity("dataset");
        let m0 = g.add_entity("model-v1");
        let t1 = g.add_activity("train-v1");
        let w1 = g.add_entity("weights-v1");
        let l1 = g.add_entity("log-v1");
        let u2 = g.add_activity("update-v2");
        let m2 = g.add_entity("model-v2");
        let t2 = g.add_activity("train-v2");
        let w2 = g.add_entity("weights-v2");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::Used, t1, m0).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, l1, t1).unwrap();
        g.add_edge(EdgeKind::Used, u2, m0).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m2, u2).unwrap();
        g.add_edge(EdgeKind::Used, t2, d).unwrap();
        g.add_edge(EdgeKind::Used, t2, m2).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w2, t2).unwrap();
        let idx = ProvIndex::build(&g);
        (g, idx, vec![d, m0, t1, w1, l1, u2, m2, t2, w2])
    }

    #[test]
    fn fig6_answers_match_specialized_algorithms() {
        let (_, idx, ids) = pipeline();
        let view = MaskedGraph::unmasked(&idx);
        let entities: Vec<_> =
            ids.iter().copied().filter(|&v| idx.kind(v) == VertexKind::Entity).collect();
        for &src in &entities {
            for &dst in &entities {
                let c =
                    similar_cflr(&view, &[src], &[dst], GrammarForm::NormalFig6, SetBackend::Bit);
                let a = similar_alg_bitset(&view, &[src], &[dst], &AlgConfig::paper_default());
                let t = similar_tst(&view, &[src], &[dst], &TstConfig::default());
                assert_eq!(c.answer, t.answer, "cflr vs tst src={src} dst={dst}");
                assert_eq!(a.answer, t.answer, "alg vs tst src={src} dst={dst}");
            }
        }
    }

    #[test]
    fn both_grammar_forms_agree() {
        let (_, idx, ids) = pipeline();
        let view = MaskedGraph::unmasked(&idx);
        let (d, w2) = (ids[0], ids[8]);
        let f6 = similar_cflr(&view, &[d], &[w2], GrammarForm::NormalFig6, SetBackend::Bit);
        let f4 = similar_cflr(&view, &[d], &[w2], GrammarForm::RewrittenFig4, SetBackend::Bit);
        assert_eq!(f6.answer, f4.answer);
    }

    #[test]
    fn all_backends_agree() {
        let (_, idx, ids) = pipeline();
        let view = MaskedGraph::unmasked(&idx);
        let (d, w2) = (ids[0], ids[8]);
        let mut answers = Vec::new();
        for backend in SetBackend::ALL {
            answers.push(similar_cflr(&view, &[d], &[w2], GrammarForm::NormalFig6, backend).answer);
        }
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[1], answers[2]);
    }

    #[test]
    fn identity_answer_for_src_equals_dst() {
        let (_, idx, ids) = pipeline();
        let view = MaskedGraph::unmasked(&idx);
        let d = ids[0];
        let out = similar_cflr(&view, &[d], &[d], GrammarForm::NormalFig6, SetBackend::Bit);
        assert!(out.answer.contains(&d), "identity pair restored for Fig.6");
        let t = similar_tst(&view, &[d], &[d], &TstConfig::default());
        assert_eq!(out.answer, t.answer);
    }

    #[test]
    fn work_and_memory_stats_populated() {
        let (_, idx, ids) = pipeline();
        let view = MaskedGraph::unmasked(&idx);
        let out =
            similar_cflr(&view, &[ids[0]], &[ids[8]], GrammarForm::NormalFig6, SetBackend::Bit);
        assert!(out.stats.work > 0);
        assert!(out.stats.memory_bytes > 0);
    }
}
