# Common dev loops. `just --list` shows this menu.

# Tier-1 verify: exactly what CI's build-and-test job runs first.
verify:
    cargo build --release && cargo test -q

# Everything: workspace suites + the vendored executor shim's own tests.
test:
    cargo test --workspace -q
    cd vendor/rayon-core && cargo test -q

# The workspace suite at a pinned executor width (try widths=1, 2, 8 —
# ProvDb follows the pool width, so this drives the parallel kernels).
test-threads widths="8":
    PROV_THREADS={{widths}} cargo test --workspace -q

# Lints exactly as CI runs them.
lint:
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --check
    cargo run -q -p prov-check

# The repo's own lint gate alone (std collections in hot paths, raw
# thread::spawn, unexplained narrowing casts, Relaxed orderings in the
# executor). Justify real exceptions with `// lint-ok(<rule>): <reason>`.
lint-strict:
    cargo run -q -p prov-check

# Model-check the vendored executor: loom-lite's own suite, then the three
# executor properties under every interleaving (`--cfg prov_loom` swaps the
# sync primitives for the checker's doubles).
model-check:
    cd vendor/loom-lite && cargo test -q
    cd vendor/rayon-core && RUSTFLAGS="--cfg prov_loom -D warnings" cargo test --test loom -q

# Re-validate every structural invariant after each mutation while running
# the store/bitset/core suites (the CI concurrency matrix runs this too),
# plus the query suites whose crates have no paranoid feature of their own.
paranoid-test:
    cargo test -q -p prov-store -p prov-bitset -p prov-core \
        --features prov-store/paranoid,prov-bitset/paranoid,prov-core/paranoid
    cargo test -q -p prov-api --test query_cursor_stability \
        --features prov-store/paranoid,prov-core/paranoid
    cargo test -q -p prov --test cypher_query1 \
        --features prov-store/paranoid,prov-core/paranoid

# The query-IR differential suites alone: IR evaluation pinned byte-identical
# to every frozen read path (lineage, find_by_prop, patterns, Cypher
# Query-1), plus wire-level cursor stability under concurrent ingest.
query-test:
    cargo test -q -p prov-store --test query_ir_differential
    cargo test -q -p prov-core --test lineage_differential
    cargo test -q -p prov-api --test query_cursor_stability
    cargo test -q -p prov --test cypher_query1

# The durability suites alone: the kill-point sweep (recovery at every WAL
# byte offset lands on a committed-batch prefix, group appends included), the
# random ingest/crash/restart/query proptest (fsync/group/lazy policy sweep),
# the lazy-vs-eager ColumnSource differential, and the storage engine's own
# failpoint/compaction/torn-tail tests.
recovery-test:
    cargo test -q -p prov-store storage::
    cargo test -q -p prov-store --test column_source_differential
    cargo test -q -p prov-core --test recovery_killpoints --test durability_proptest

# Regenerate just the durable-ingest/lazy-decode trajectory (fig10).
fig10:
    cargo run -q -p prov-bench --release --bin figure -- --quick fig10 \
        --json BENCH_fig10.json

# Public docs with rustdoc warnings denied.
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Regenerate all committed BENCH_*.json trajectories (thread sweeps
# included); pass "--full" for paper scale.
bench-sweep *args:
    scripts/bench-sweep.sh {{args}}

# Gate fresh quick runs against the committed baselines, like CI.
bench-gate:
    cargo run -q -p prov-bench --release --bin figure -- --quick \
        --json BENCH_fig5.new.json --baseline BENCH_fig5.json
    cargo run -q -p prov-bench --release --bin figure -- --quick fig6 \
        --json BENCH_fig6.new.json --baseline BENCH_fig6.json
    cargo run -q -p prov-bench --release --bin figure -- --quick fig7 \
        --json BENCH_fig7.new.json --baseline BENCH_fig7.json
    cargo run -q -p prov-bench --release --bin figure -- --quick fig8 \
        --json BENCH_fig8.new.json --baseline BENCH_fig8.json
    cargo run -q -p prov-bench --release --bin figure -- --quick coldstart \
        --json BENCH_coldstart.new.json --baseline BENCH_coldstart.json
    cargo run -q -p prov-bench --release --bin figure -- --quick fig10 \
        --json BENCH_fig10.new.json --baseline BENCH_fig10.json
