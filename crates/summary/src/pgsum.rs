//! The PgSum operator: query type and end-to-end evaluation.

use crate::aggregation::PropertyAggregation;
use crate::merge::{merge, quotient};
use crate::psg::Psg;
use crate::psum::{psum, PsumResult};
use crate::segment_ref::SegmentRef;
use crate::union::{build_g0, G0};
use prov_store::ProvGraph;

/// A PgSum query `(S, K, Rk)` (the segment set is passed separately).
#[derive(Debug, Clone, Default)]
pub struct PgSumQuery {
    /// Property aggregation `K`.
    pub aggregation: PropertyAggregation,
    /// Provenance-type radius `k` of `Rk`.
    pub k: usize,
}

impl PgSumQuery {
    /// Query with the given aggregation and radius.
    pub fn new(aggregation: PropertyAggregation, k: usize) -> Self {
        PgSumQuery { aggregation, k }
    }

    /// The Fig. 2(e) query: aggregate by filename/command, k = 1.
    pub fn fig2e() -> Self {
        PgSumQuery { aggregation: PropertyAggregation::fig2e(), k: 1 }
    }
}

/// Evaluate PgSum: build `g0`, merge under Lemma 5, assemble the Psg.
pub fn pgsum(graph: &ProvGraph, segments: &[SegmentRef], query: &PgSumQuery) -> Psg {
    let g0 = build_g0(graph, segments, &query.aggregation, query.k);
    let merged = merge(&g0);
    Psg::from_merge(graph, &g0, &merged)
}

/// Evaluate PgSum through the frozen seed pipeline
/// ([`mod@crate::merge_reference`] over [`mod@crate::simulation_reference`]) — the
/// fixed point the `fig6` benchmark series measures the rewrite against.
pub fn pgsum_reference(graph: &ProvGraph, segments: &[SegmentRef], query: &PgSumQuery) -> Psg {
    let g0 = build_g0(graph, segments, &query.aggregation, query.k);
    let merged = crate::merge_reference::merge_reference(&g0);
    Psg::from_merge(graph, &g0, &merged)
}

/// Evaluate PgSum and also return the intermediate graphs (for tests and the
/// invariant checker).
pub fn pgsum_with_internals(
    graph: &ProvGraph,
    segments: &[SegmentRef],
    query: &PgSumQuery,
) -> (Psg, G0, G0) {
    let g0 = build_g0(graph, segments, &query.aggregation, query.k);
    let merged = merge(&g0);
    let q = quotient(&g0, &merged.group_of, merged.members.len());
    let psg = Psg::from_merge(graph, &g0, &merged);
    (psg, g0, q)
}

/// Evaluate the pSum baseline under the same `(K, Rk)` labeling.
pub fn psum_baseline(graph: &ProvGraph, segments: &[SegmentRef], query: &PgSumQuery) -> PsumResult {
    let g0 = build_g0(graph, segments, &query.aggregation, query.k);
    psum(&g0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::check_invariant;
    use prov_model::{EdgeKind, VertexKind};

    /// The Fig. 2(d)/(e) running example: Q1 (Alice's v2 round) and Q2
    /// (Bob's v3 round) as segments of one lifecycle graph.
    fn fig2_segments() -> (ProvGraph, Vec<SegmentRef>) {
        let mut g = ProvGraph::new();
        // Q1 segment vertices.
        let dataset = g.add_entity("dataset");
        let model1 = g.add_entity("model");
        let solver1 = g.add_entity("solver");
        let update2 = g.add_activity("update");
        let model2 = g.add_entity("model");
        let train2 = g.add_activity("train");
        let log2 = g.add_entity("log");
        let weight2 = g.add_entity("weight");
        for (v, name) in [
            (dataset, "dataset"),
            (model1, "model"),
            (solver1, "solver"),
            (model2, "model"),
            (log2, "log"),
            (weight2, "weight"),
        ] {
            g.set_vprop(v, "filename", name);
        }
        g.set_vprop(update2, "command", "update");
        g.set_vprop(train2, "command", "train");
        let q1_edges = vec![
            g.add_edge(EdgeKind::Used, update2, model1).unwrap(),
            g.add_edge(EdgeKind::WasGeneratedBy, model2, update2).unwrap(),
            g.add_edge(EdgeKind::Used, train2, dataset).unwrap(),
            g.add_edge(EdgeKind::Used, train2, model2).unwrap(),
            g.add_edge(EdgeKind::Used, train2, solver1).unwrap(),
            g.add_edge(EdgeKind::WasGeneratedBy, log2, train2).unwrap(),
            g.add_edge(EdgeKind::WasGeneratedBy, weight2, train2).unwrap(),
        ];
        let s1 = SegmentRef::new(
            vec![dataset, model1, solver1, update2, model2, train2, log2, weight2],
            q1_edges,
        );

        // Q2 segment: Bob updates the solver instead of the model.
        let solver1b = g.add_entity("solver");
        let update3 = g.add_activity("update");
        let solver3 = g.add_entity("solver");
        let train3 = g.add_activity("train");
        let log3 = g.add_entity("log");
        let weight3 = g.add_entity("weight");
        let model1b = g.add_entity("model");
        let datasetb = g.add_entity("dataset");
        for (v, name) in [
            (solver1b, "solver"),
            (solver3, "solver"),
            (log3, "log"),
            (weight3, "weight"),
            (model1b, "model"),
            (datasetb, "dataset"),
        ] {
            g.set_vprop(v, "filename", name);
        }
        g.set_vprop(update3, "command", "update");
        g.set_vprop(train3, "command", "train");
        let q2_edges = vec![
            g.add_edge(EdgeKind::Used, update3, solver1b).unwrap(),
            g.add_edge(EdgeKind::WasGeneratedBy, solver3, update3).unwrap(),
            g.add_edge(EdgeKind::Used, train3, datasetb).unwrap(),
            g.add_edge(EdgeKind::Used, train3, model1b).unwrap(),
            g.add_edge(EdgeKind::Used, train3, solver3).unwrap(),
            g.add_edge(EdgeKind::WasGeneratedBy, log3, train3).unwrap(),
            g.add_edge(EdgeKind::WasGeneratedBy, weight3, train3).unwrap(),
        ];
        let s2 = SegmentRef::new(
            vec![solver1b, update3, solver3, train3, log3, weight3, model1b, datasetb],
            q2_edges,
        );
        (g, vec![s1, s2])
    }

    #[test]
    fn fig2e_summary_merges_common_pipeline() {
        let (g, segs) = fig2_segments();
        let psg = pgsum(&g, &segs, &PgSumQuery::fig2e());
        // 16 instances compact below 16; trains merge (same command, same
        // 1-hop shape: 3 inputs, 2 outputs).
        assert!(psg.vertex_count() < 16, "got |M| = {}", psg.vertex_count());
        let train_groups: Vec<_> = psg
            .vertices
            .iter()
            .filter(|v| v.kind == VertexKind::Activity && v.label.contains("train"))
            .collect();
        assert_eq!(train_groups.len(), 1, "the two train rounds merge");
        assert_eq!(train_groups[0].members.len(), 2);
        // Merged train's edges carry frequency 1.0 (present in both segments).
        let full: Vec<_> = psg.edges.iter().filter(|e| e.frequency >= 1.0).collect();
        assert!(!full.is_empty());
    }

    #[test]
    fn fig2e_summary_keeps_alternative_update_types() {
        let (g, segs) = fig2_segments();
        let psg = pgsum(&g, &segs, &PgSumQuery::fig2e());
        // Alice updates a model; Bob updates a solver: with k = 1 their
        // `update` activities have different neighborhoods (model vs solver
        // files), so two update types survive (t1/t2 in Fig. 2(e)).
        let update_groups: Vec<_> = psg
            .vertices
            .iter()
            .filter(|v| v.kind == VertexKind::Activity && v.label.contains("update"))
            .collect();
        assert_eq!(update_groups.len(), 2, "two alternative update routines");
        // Their edge frequencies are 50% each.
        for ug in &update_groups {
            assert_eq!(ug.members.len(), 1);
        }
    }

    #[test]
    fn summary_preserves_bounded_path_words() {
        let (g, segs) = fig2_segments();
        let (_, g0, q) = pgsum_with_internals(&g, &segs, &PgSumQuery::fig2e());
        check_invariant(&g0, &q, 5).expect("PgSum preserves path words");
    }

    #[test]
    fn summary_is_acyclic() {
        let (g, segs) = fig2_segments();
        let (psg, _, q) = pgsum_with_internals(&g, &segs, &PgSumQuery::fig2e());
        // Kahn over the quotient.
        let n = q.len();
        let mut indeg = vec![0usize; n];
        for adj in &q.out_adj {
            for &(_, d) in adj {
                indeg[d as usize] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &(_, d) in &q.out_adj[v] {
                indeg[d as usize] -= 1;
                if indeg[d as usize] == 0 {
                    queue.push(d as usize);
                }
            }
        }
        assert_eq!(seen, n, "Psg must stay a DAG");
        assert_eq!(psg.vertex_count(), n);
    }

    #[test]
    fn pgsum_compacts_at_least_as_well_as_psum() {
        let (g, segs) = fig2_segments();
        let q = PgSumQuery::fig2e();
        let psg = pgsum(&g, &segs, &q);
        let ps = psum_baseline(&g, &segs, &q);
        assert!(psg.compaction_ratio() <= ps.compaction_ratio + 1e-12);
    }

    #[test]
    fn coarser_aggregation_compacts_more() {
        let (g, segs) = fig2_segments();
        let fine = pgsum(&g, &segs, &PgSumQuery::fig2e());
        let coarse = pgsum(&g, &segs, &PgSumQuery::new(PropertyAggregation::ignore_all(), 0));
        assert!(coarse.vertex_count() <= fine.vertex_count());
    }
}
