//! `PgSum` — the provenance graph summarization operator (Sec. IV).
//!
//! Given a set of PgSeg segments, PgSum produces a *provenance summary graph*
//! (`Psg`) that is precise (no path labels added or lost) and concise (as few
//! vertices as possible). Optimal summarization is PSPACE-complete
//! (Theorem 4); the implemented algorithm follows the paper: approximate trace
//! equivalence with simulation preorders and merge greedily under the Lemma-5
//! conditions.
//!
//! Pipeline: [`segment_ref`] (input) → [`aggregation`] (`K`) + [`provtype`]
//! (`Rk`) → [`union`] (`g0` with `≡kκ` classes) → [`mod@simulation`]
//! (`≤s_in`, `≤s_out`) → [`mod@merge`] (Lemma 5) → [`psg`] (output with `γ`
//! frequencies). [`mod@psum`] is the comparison baseline; [`paths`] checks
//! the bounded path-preservation invariant in tests.

pub mod aggregation;
pub mod merge;
pub mod merge_reference;
pub mod paths;
pub mod pgsum;
pub mod provtype;
pub mod psg;
pub mod psum;
pub mod segment_ref;
pub mod simulation;
pub mod simulation_reference;
pub mod union;

pub use aggregation::{AggLabel, PropertyAggregation};
pub use merge::{merge, quotient, MergeResult};
pub use merge_reference::merge_reference;
pub use pgsum::{pgsum, pgsum_reference, pgsum_with_internals, psum_baseline, PgSumQuery};
pub use provtype::{provenance_types, ProvTypes};
pub use psg::{Psg, PsgEdge, PsgVertex};
pub use psum::{psum, PsumResult};
pub use segment_ref::SegmentRef;
pub use simulation::{simulation, simulation_par, SimDirection, SimRelation};
pub use simulation_reference::simulation_reference;
pub use union::{build_g0, ClassId, G0};
