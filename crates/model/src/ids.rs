//! Dense typed identifiers.
//!
//! Vertices and edges are addressed by dense `u32` ids, mirroring the paper's
//! assumption that "both nodes and edges are accessed via their id" in constant
//! time (Sec. III-B, Neo4j's physical storage). Dense ids double as indexes into
//! the columnar arrays of `prov-store` and as elements of the `prov-bitset` fact
//! tables.

use serde::{Deserialize, Serialize};

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw value as a `usize` array index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

dense_id!(
    /// Identifier of a vertex (entity, activity or agent) in a provenance graph.
    VertexId,
    "v"
);

dense_id!(
    /// Identifier of an edge (relationship) in a provenance graph.
    EdgeId,
    "e"
);

dense_id!(
    /// Interned identifier of a property key (schema-later property names).
    PropKeyId,
    "k"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(VertexId::new(3).to_string(), "v3");
        assert_eq!(EdgeId::new(0).to_string(), "e0");
        assert_eq!(PropKeyId::new(7).to_string(), "k7");
    }

    #[test]
    fn conversions_round_trip() {
        let v: VertexId = 42u32.into();
        assert_eq!(u32::from(v), 42);
        assert_eq!(v.index(), 42usize);
        assert_eq!(v.raw(), 42u32);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VertexId::new(1) < VertexId::new(2));
        let mut ids = vec![EdgeId::new(5), EdgeId::new(1), EdgeId::new(3)];
        ids.sort();
        assert_eq!(ids, vec![EdgeId::new(1), EdgeId::new(3), EdgeId::new(5)]);
    }

    #[test]
    fn serde_is_transparent() {
        let v = VertexId::new(9);
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, "9");
        let back: VertexId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
