//! The PgSeg operator: query type and two-step evaluation driver.
//!
//! A PgSeg query is the 3-tuple `(Vsrc, Vdst, B)` of Sec. III-A. Evaluation
//! follows the paper's two-step scheme (Sec. III-B.1):
//!
//! 1. **induce** — build the induced subgraph from `Vsrc`/`Vdst` under the
//!    exclusion part of `B`;
//! 2. **adjust** — interactively refine the *cached* induced graph: apply
//!    further exclusions without re-inducing, or pull more vertices from the
//!    backing store via expansion specifications `Bx`.
//!
//! [`SimilarEvaluator`] selects which `L(SimProv)` algorithm answers the
//! similarity part — the benchmark figures 5(a)–(d) sweep exactly this choice.

use crate::alg::{similar_alg_bitset, similar_alg_cbm, AlgConfig};
use crate::boundary::Boundary;
use crate::cflr_baseline::{similar_cflr, GrammarForm};
use crate::induce::{expansion_vertices, induce, InduceResult};
use crate::naive::{similar_naive, NaiveBudget};
use crate::outcome::SimilarOutcome;
use crate::segment_graph::{Categories, SegmentGraph};
use crate::tst::{similar_tst, TstConfig};
use crate::view::MaskedGraph;
use prov_bitset::SetBackend;
use prov_model::{VertexId, VertexKind};
use prov_store::hash::FxHashMap;
use prov_store::{ProvGraph, ProvIndex, StoreError, StoreResult};
use std::sync::Arc;

/// A PgSeg query `(Vsrc, Vdst, B)`.
#[derive(Debug, Clone, Default)]
pub struct PgSegQuery {
    /// Source entities the user believes are ancestors.
    pub vsrc: Vec<VertexId>,
    /// Destination entities of interest.
    pub vdst: Vec<VertexId>,
    /// Boundary criteria.
    pub boundary: Boundary,
}

impl PgSegQuery {
    /// Query between two entity sets with no boundary.
    pub fn between(vsrc: Vec<VertexId>, vdst: Vec<VertexId>) -> Self {
        PgSegQuery { vsrc, vdst, boundary: Boundary::none() }
    }

    /// Attach boundary criteria.
    pub fn with_boundary(mut self, boundary: Boundary) -> Self {
        self.boundary = boundary;
        self
    }

    /// Validate that the query vertices exist and are entities.
    pub fn validate(&self, graph: &ProvGraph) -> StoreResult<()> {
        for &v in self.vsrc.iter().chain(self.vdst.iter()) {
            let rec = graph.try_vertex(v)?;
            if rec.kind != VertexKind::Entity {
                return Err(StoreError::InvalidQuery(format!(
                    "PgSeg query vertices must be entities; {v} is {:?}",
                    rec.kind
                )));
            }
        }
        Ok(())
    }
}

/// Which algorithm evaluates `L(SimProv)`-reachability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarEvaluator {
    /// Naive Cypher-style enumerate-and-join (with a DNF budget).
    Naive,
    /// Generic CflrB on the Fig. 6 normal form with the given fact tables.
    CflrB(SetBackend),
    /// SimProvAlg with the given fact tables.
    SimProvAlg(SetBackend),
    /// SimProvTst (the default; also the only evaluator that induces the
    /// exact `VC2` vertex set).
    SimProvTst,
}

/// Tuning knobs for PgSeg evaluation.
#[derive(Debug, Clone, Copy)]
pub struct PgSegOptions {
    /// Similarity evaluator (benchmarks sweep this; `SimProvTst` by default).
    pub evaluator: SimilarEvaluator,
    /// Temporal early stopping (SimProvAlg/SimProvTst).
    pub early_stop: bool,
    /// Symmetric-pair pruning (SimProvAlg).
    pub symmetric_prune: bool,
    /// Budget for the naive evaluator.
    pub naive_budget: NaiveBudget,
}

impl Default for PgSegOptions {
    fn default() -> Self {
        PgSegOptions {
            evaluator: SimilarEvaluator::SimProvTst,
            early_stop: true,
            symmetric_prune: true,
            naive_budget: NaiveBudget::default(),
        }
    }
}

/// Run just the similarity evaluation (`L(SimProv)`-reachability) with the
/// configured evaluator — the benchmark kernel of Fig. 5(a)–(d).
pub fn evaluate_similarity(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    opts: &PgSegOptions,
) -> SimilarOutcome {
    match opts.evaluator {
        SimilarEvaluator::Naive => similar_naive(view, vsrc, vdst, opts.naive_budget),
        SimilarEvaluator::CflrB(backend) => {
            similar_cflr(view, vsrc, vdst, GrammarForm::NormalFig6, backend)
        }
        SimilarEvaluator::SimProvAlg(backend) => {
            let cfg = AlgConfig {
                symmetric_prune: opts.symmetric_prune,
                early_stop: opts.early_stop,
                constraint: None,
            };
            match backend {
                SetBackend::Compressed => similar_alg_cbm(view, vsrc, vdst, &cfg),
                // Hash and Bit share the bitset implementation; the paper only
                // reports BitSet and CBM variants for SimProvAlg.
                _ => similar_alg_bitset(view, vsrc, vdst, &cfg),
            }
        }
        SimilarEvaluator::SimProvTst => similar_tst(
            view,
            vsrc,
            vdst,
            &TstConfig { early_stop: opts.early_stop, max_levels: None, compressed_sets: false },
        ),
    }
}

/// The borrow-based core of a PgSeg evaluation: the compiled mask plus the
/// cached induced segment. Both the `'static` owning [`PgSegSession`] and the
/// borrowed one-shot [`pgseg`] (the benches' entry point, which must not pay
/// for `Arc` bookkeeping) drive their evaluation through this state machine.
#[derive(Debug, Clone)]
struct SessionState {
    query: PgSegQuery,
    mask: Option<crate::boundary::Mask>,
    cached: InduceResult,
}

impl SessionState {
    /// Evaluate the induce step against borrowed storage.
    fn open(
        graph: &ProvGraph,
        index: &ProvIndex,
        query: PgSegQuery,
        opts: &PgSegOptions,
    ) -> StoreResult<SessionState> {
        query.validate(graph)?;
        let mask = if query.boundary.has_exclusions() {
            Some(query.boundary.compile(graph))
        } else {
            None
        };
        let view = MaskedGraph::new(index, mask.as_ref());
        let tst_cfg =
            TstConfig { early_stop: opts.early_stop, max_levels: None, compressed_sets: false };
        let mut cached = induce(graph, &view, &query.vsrc, &query.vdst, mask.as_ref(), &tst_cfg);
        // Apply the query's own expansion boundaries immediately.
        for exp in &query.boundary.expansions {
            apply_expansion(graph, &view, &mut cached, &exp.roots, exp.k, mask.as_ref());
        }
        Ok(SessionState { query, mask, cached })
    }

    fn expand(&mut self, graph: &ProvGraph, index: &ProvIndex, roots: &[VertexId], k: u32) {
        let view = MaskedGraph::new(index, self.mask.as_ref());
        apply_expansion(graph, &view, &mut self.cached, roots, k, self.mask.as_ref());
    }

    fn restrict(&mut self, graph: &ProvGraph, extra: &Boundary) {
        let mask = extra.compile(graph);
        let seg = &self.cached.segment;
        let mut cat_map: FxHashMap<VertexId, Categories> = FxHashMap::default();
        for (&v, &c) in seg.vertices.iter().zip(seg.categories.iter()) {
            if mask.vertex(v) {
                cat_map.insert(v, c);
            }
        }
        // Exclusions accumulate: fold the new criteria into the session
        // mask so later expansions cannot resurrect what was restricted.
        let combined = match self.mask.take() {
            None => mask,
            Some(mut prior) => {
                prior.intersect(&mask);
                prior
            }
        };
        self.cached.segment =
            SegmentGraph::assemble(graph, &self.query.vsrc, &self.query.vdst, &cat_map, |e| {
                combined.edge(e)
            });
        self.mask = Some(combined);
    }
}

/// A PgSeg evaluation session: owns its graph/index snapshot (`Arc`), the
/// compiled mask, and the cached induced segment so boundary adjustments are
/// interactive (the adjust step).
///
/// The session is `'static`: it can be stored in a registry (see the
/// `prov-api` service layer), returned from functions, and kept alive across
/// later mutations of the originating database — it pins the snapshot it was
/// opened against, matching the paper's "induce once, adjust repeatedly"
/// interaction model (Sec. III-B).
#[derive(Debug, Clone)]
pub struct PgSegSession {
    graph: Arc<ProvGraph>,
    index: Arc<ProvIndex>,
    state: SessionState,
}

impl PgSegSession {
    /// Evaluate the induce step and open a session for adjustments.
    pub fn open(
        graph: Arc<ProvGraph>,
        index: Arc<ProvIndex>,
        query: PgSegQuery,
        opts: &PgSegOptions,
    ) -> StoreResult<Self> {
        let state = SessionState::open(&graph, &index, query, opts)?;
        Ok(PgSegSession { graph, index, state })
    }

    /// Thin borrowed constructor: freeze-free when the caller already holds
    /// `Arc`s (clones the handles, never the data).
    pub fn open_shared(
        graph: &Arc<ProvGraph>,
        index: &Arc<ProvIndex>,
        query: PgSegQuery,
        opts: &PgSegOptions,
    ) -> StoreResult<Self> {
        PgSegSession::open(Arc::clone(graph), Arc::clone(index), query, opts)
    }

    /// The graph snapshot this session evaluates against.
    pub fn graph(&self) -> &ProvGraph {
        &self.graph
    }

    /// Shared handle to the pinned graph (identity comparisons, re-sharing).
    pub fn graph_shared(&self) -> &Arc<ProvGraph> {
        &self.graph
    }

    /// The frozen index this session evaluates against.
    pub fn index(&self) -> &ProvIndex {
        &self.index
    }

    /// The induced (and possibly adjusted) segment.
    pub fn segment(&self) -> &SegmentGraph {
        &self.state.cached.segment
    }

    /// Evaluator statistics of the similarity part.
    pub fn similar_outcome(&self) -> &SimilarOutcome {
        &self.state.cached.similar
    }

    /// The query this session answers.
    pub fn query(&self) -> &PgSegQuery {
        &self.state.query
    }

    /// Adjust step: grow the cached segment with an expansion `bx(Vx, k)`
    /// without re-running induction.
    pub fn expand(&mut self, roots: &[VertexId], k: u32) {
        self.state.expand(&self.graph, &self.index, roots, k);
    }

    /// Adjust step: filter the cached segment with additional exclusion
    /// criteria (applied linearly to the cached vertices/edges, Sec. III-B.3).
    pub fn restrict(&mut self, extra: &Boundary) {
        self.state.restrict(&self.graph, extra);
    }
}

fn apply_expansion(
    graph: &ProvGraph,
    view: &MaskedGraph<'_>,
    cached: &mut InduceResult,
    roots: &[VertexId],
    k: u32,
    mask: Option<&crate::boundary::Mask>,
) {
    let added = expansion_vertices(view, roots, k);
    let seg = &cached.segment;
    let mut cat_map: FxHashMap<VertexId, Categories> =
        seg.vertices.iter().zip(seg.categories.iter()).map(|(&v, &c)| (v, c)).collect();
    for v in added {
        let entry = cat_map.entry(v).or_insert_with(Categories::none);
        *entry = entry.union(Categories::EXPANDED);
    }
    let edge_ok = |e| mask.is_none_or(|m| m.edge(e));
    cached.segment =
        SegmentGraph::assemble(graph, &seg.vsrc.clone(), &seg.vdst.clone(), &cat_map, edge_ok);
}

/// One-shot convenience: evaluate a PgSeg query end to end against borrowed
/// storage. This is the benches' hot entry point — it shares the evaluation
/// core with [`PgSegSession`] but never touches an `Arc`.
pub fn pgseg(
    graph: &ProvGraph,
    index: &ProvIndex,
    query: PgSegQuery,
    opts: &PgSegOptions,
) -> StoreResult<SegmentGraph> {
    Ok(SessionState::open(graph, index, query, opts)?.cached.segment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::Boundary;
    use prov_model::EdgeKind;

    fn chain() -> (ProvGraph, ProvIndex, Vec<VertexId>) {
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let m = g.add_entity("m");
        let t2 = g.add_activity("t2");
        let w = g.add_entity("w");
        let alice = g.add_agent("alice");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, m).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t2).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, t2, alice).unwrap();
        let idx = ProvIndex::build(&g);
        (g, idx, vec![d, t1, m, t2, w, alice])
    }

    #[test]
    fn validation_rejects_non_entities() {
        let (g, _, ids) = chain();
        // A non-entity query vertex is a malformed *query*, not a store fault.
        let q = PgSegQuery::between(vec![ids[1]], vec![ids[4]]);
        assert!(matches!(q.validate(&g), Err(StoreError::InvalidQuery(_))));
        // An out-of-range id is an unknown-vertex store error.
        let q = PgSegQuery::between(vec![ids[0]], vec![VertexId::new(99)]);
        assert!(matches!(q.validate(&g), Err(StoreError::UnknownVertex(_))));
        let q = PgSegQuery::between(vec![ids[0]], vec![ids[4]]);
        assert!(q.validate(&g).is_ok());
    }

    #[test]
    fn one_shot_pgseg_produces_connected_segment() {
        let (g, idx, ids) = chain();
        let seg = pgseg(
            &g,
            &idx,
            PgSegQuery::between(vec![ids[0]], vec![ids[4]]),
            &PgSegOptions::default(),
        )
        .unwrap();
        assert!(seg.contains(ids[1]) && seg.contains(ids[3]));
        assert!(seg.contains(ids[5]), "agent included via VC4");
        assert!(seg.edge_count() >= 4);
    }

    #[test]
    fn all_evaluators_available_through_options() {
        let (g, idx, ids) = chain();
        let view = MaskedGraph::unmasked(&idx);
        let mut answers = Vec::new();
        for evaluator in [
            SimilarEvaluator::Naive,
            SimilarEvaluator::CflrB(SetBackend::Bit),
            SimilarEvaluator::CflrB(SetBackend::Compressed),
            SimilarEvaluator::SimProvAlg(SetBackend::Bit),
            SimilarEvaluator::SimProvAlg(SetBackend::Compressed),
            SimilarEvaluator::SimProvTst,
        ] {
            let opts = PgSegOptions { evaluator, ..PgSegOptions::default() };
            answers.push(evaluate_similarity(&view, &[ids[0]], &[ids[4]], &opts).answer);
        }
        for pair in answers.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
        let _ = g;
    }

    #[test]
    fn session_expand_adds_vertices() {
        let (g, idx, ids) = chain();
        // Restrict query to the last hop: src=m, dst=w.
        let mut session = PgSegSession::open(
            Arc::new(g),
            Arc::new(idx),
            PgSegQuery::between(vec![ids[2]], vec![ids[4]]),
            &PgSegOptions::default(),
        )
        .unwrap();
        assert!(!session.segment().contains(ids[0]), "d beyond the segment");
        session.expand(&[ids[2]], 1);
        assert!(session.segment().contains(ids[0]), "expansion pulls d in");
        assert!(session.segment().category(ids[0]).unwrap().contains(Categories::EXPANDED));
    }

    #[test]
    fn session_restrict_filters_cached_segment() {
        let (g, idx, ids) = chain();
        let mut session = PgSegSession::open(
            Arc::new(g),
            Arc::new(idx),
            PgSegQuery::between(vec![ids[0]], vec![ids[4]]),
            &PgSegOptions::default(),
        )
        .unwrap();
        assert!(session.segment().contains(ids[5]));
        session.restrict(
            &Boundary::none()
                .with_vertex_pred(crate::boundary::VertexPred::ExcludeKind(VertexKind::Agent)),
        );
        assert!(!session.segment().contains(ids[5]));
        // Associated edge disappears with its endpoint.
        for &e in &session.segment().edges {
            assert_ne!(session.graph().edge(e).kind, EdgeKind::WasAssociatedWith);
        }
    }

    #[test]
    fn expand_after_restrict_respects_accumulated_exclusions() {
        let (g, idx, ids) = chain();
        // Session over the last hop only; alice rides along via VC4.
        let mut session = PgSegSession::open(
            Arc::new(g),
            Arc::new(idx),
            PgSegQuery::between(vec![ids[2]], vec![ids[4]]),
            &PgSegOptions::default(),
        )
        .unwrap();
        session.restrict(&Boundary::none().without_edge_kinds(&[EdgeKind::WasAssociatedWith]));
        assert!(session
            .segment()
            .edges
            .iter()
            .all(|&e| { session.graph().edge(e).kind != EdgeKind::WasAssociatedWith }));
        // A later expansion must not resurrect the excluded edges.
        session.expand(&[ids[2]], 1);
        assert!(session.segment().contains(ids[0]), "expansion still grows the segment");
        assert!(
            session
                .segment()
                .edges
                .iter()
                .all(|&e| { session.graph().edge(e).kind != EdgeKind::WasAssociatedWith }),
            "restricted edges reappeared after expand"
        );
    }

    #[test]
    fn query_boundary_expansions_apply_at_open() {
        let (g, idx, ids) = chain();
        let q = PgSegQuery::between(vec![ids[2]], vec![ids[4]])
            .with_boundary(Boundary::none().expand(vec![ids[2]], 1));
        let session =
            PgSegSession::open(Arc::new(g), Arc::new(idx), q, &PgSegOptions::default()).unwrap();
        assert!(session.segment().contains(ids[0]));
    }

    #[test]
    fn session_is_static_and_outlives_its_builder_scope() {
        // The compile-time point of the ownership refactor: a session built
        // in an inner scope moves out and stays usable (registry storage).
        fn build(ids: &[VertexId], g: ProvGraph, idx: ProvIndex) -> PgSegSession {
            PgSegSession::open_shared(
                &Arc::new(g),
                &Arc::new(idx),
                PgSegQuery::between(vec![ids[0]], vec![ids[4]]),
                &PgSegOptions::default(),
            )
            .unwrap()
        }
        let (g, idx, ids) = chain();
        let mut session: PgSegSession = build(&ids, g, idx);
        assert!(session.segment().contains(ids[3]));
        session.expand(&[ids[0]], 1);
        assert!(session.segment().vertex_count() >= 5);
    }
}
