//! Group commit: a pipeline in front of [`WalStorage`] that accumulates
//! encoded op-batches and flushes several of them as **one** contiguous WAL
//! append + one fsync.
//!
//! ## Protocol
//!
//! [`CommitPipeline::submit`] frames the batch with its commit sequence
//! number (`wal::encode_batch` — every batch keeps its own commit marker, so
//! the on-disk format and every recovery invariant are byte-for-byte those
//! of ungrouped commits) and appends it to an in-memory group buffer. The
//! batch is *accepted* at that point and *durable* once a flush covering its
//! sequence number returns; flushes happen when the batch window fills
//! (`group_max_batches`), when the byte window fills (`group_window_bytes`),
//! or on explicit [`CommitPipeline::flush`]. With the default policy
//! (`group_max_batches = 1`) every submit flushes before returning —
//! exactly the ungrouped ack-after-fsync protocol.
//!
//! ## Leader/waiter
//!
//! Concurrent callers coordinate through one mutex + condvar: the first
//! thread that needs its sequence flushed becomes the **leader**, takes the
//! whole buffered group, and performs the append + fsync with the state
//! lock *released* (so submitters keep filling the next group). Everyone
//! else **waits** on the condvar; when the leader publishes the new
//! `flushed_seq` they either return (their batch made the group) or lead
//! the next flush themselves.
//!
//! ## Crash + failure windows
//!
//! A crash mid-group tears at most the *tail* of the group append; recovery
//! truncates back to the last intact commit marker, which can only drop
//! batches whose flush never returned — accepted-but-unflushed batches were
//! never acknowledged as durable, so no acknowledged batch is ever lost. A
//! failed append or fsync poisons the engine *and* the pipeline: the flush
//! that observed the failure reports it, and every later submit/flush fails
//! with [`StoreError::StorageUnavailable`] until the process reopens.
//!
//! ## Compaction interplay
//!
//! `compact_after_wal_bytes` is checked against engine WAL bytes **plus**
//! buffered group bytes, and both [`Storage::compact`] and the policy-driven
//! `maybe_compact` force a flush before the snapshot is written: the
//! snapshot's sequence number must cover every batch folded into the graph,
//! otherwise the buffered batches would later land in the fresh WAL with
//! sequence numbers at or below the snapshot's and fail replay as spliced.

use super::wal;
use super::{DurabilityCounters, DurabilityPolicy, Storage, WalStorage};
use crate::error::{StoreError, StoreResult};
use crate::graph::{ProvGraph, WalOp};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// The group-commit front end. Cloning yields another handle onto the same
/// pipeline (for concurrent submitters); the database layer owns one as its
/// `Box<dyn Storage>`.
#[derive(Debug, Clone)]
pub struct CommitPipeline {
    shared: Arc<PipeShared>,
}

#[derive(Debug)]
struct PipeShared {
    state: Mutex<PipeState>,
    /// Signaled every time a flush completes (or fails).
    flushed: Condvar,
    engine: Mutex<WalStorage>,
    policy: DurabilityPolicy,
}

#[derive(Debug)]
struct PipeState {
    /// Concatenated `[ops record][commit marker]` frames awaiting flush.
    buf: Vec<u8>,
    /// Batches currently in `buf`.
    buffered_batches: u64,
    /// Sequence number of the last accepted (buffered or flushed) batch.
    next_seq: u64,
    /// Sequence number of the last durably flushed batch.
    flushed_seq: u64,
    /// A leader is currently appending/fsyncing with the lock released.
    flushing: bool,
    poisoned: Option<String>,
}

impl CommitPipeline {
    /// Wrap `engine` (already recovered) in a group-commit pipeline driven
    /// by the engine's own [`DurabilityPolicy`].
    pub fn new(engine: WalStorage) -> CommitPipeline {
        let policy = engine.policy().clone();
        let seq = engine.last_seq();
        CommitPipeline {
            shared: Arc::new(PipeShared {
                state: Mutex::new(PipeState {
                    buf: Vec::new(),
                    buffered_batches: 0,
                    next_seq: seq,
                    flushed_seq: seq,
                    flushing: false,
                    poisoned: None,
                }),
                flushed: Condvar::new(),
                engine: Mutex::new(engine),
                policy,
            }),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, PipeState> {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_engine(&self) -> MutexGuard<'_, WalStorage> {
        self.shared.engine.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn check_poisoned(st: &PipeState) -> StoreResult<()> {
        match &st.poisoned {
            Some(msg) => Err(StoreError::StorageUnavailable(format!(
                "storage poisoned by an earlier failure ({msg}); reopen to recover"
            ))),
            None => Ok(()),
        }
    }

    /// True once a flush failure has poisoned the pipeline.
    pub fn is_poisoned(&self) -> bool {
        self.lock_state().poisoned.is_some()
    }

    /// Batches accepted but not yet durably flushed.
    pub fn buffered_batches(&self) -> u64 {
        self.lock_state().buffered_batches
    }

    /// Encoded bytes accepted but not yet durably flushed.
    pub fn buffered_bytes(&self) -> u64 {
        self.lock_state().buf.len() as u64
    }

    /// Sequence number of the last durably flushed batch.
    pub fn flushed_seq(&self) -> u64 {
        self.lock_state().flushed_seq
    }

    /// Accept one op-batch into the current group. Flushes (append + fsync
    /// for the whole group) when the batch or byte window fills; otherwise
    /// returns immediately with the batch accepted-but-not-yet-durable.
    pub fn submit(&self, ops: &[WalOp]) -> StoreResult<()> {
        let mut st = self.lock_state();
        Self::check_poisoned(&st)?;
        let seq = st.next_seq + 1;
        st.next_seq = seq;
        let frame = wal::encode_batch(ops, seq);
        st.buf.extend_from_slice(&frame);
        st.buffered_batches += 1;
        let p = &self.shared.policy;
        let window_full = st.buffered_batches >= u64::from(p.group_max_batches.max(1))
            || (p.group_window_bytes > 0 && st.buf.len() as u64 >= p.group_window_bytes);
        if window_full {
            return self.flush_to(st, seq);
        }
        Ok(())
    }

    /// Durably flush every accepted batch, becoming leader or waiting on one.
    pub fn flush(&self) -> StoreResult<()> {
        let st = self.lock_state();
        let target = st.next_seq;
        self.flush_to(st, target)
    }

    /// Wait until `target` is durably flushed, leading flushes as needed.
    fn flush_to<'a>(&'a self, mut st: MutexGuard<'a, PipeState>, target: u64) -> StoreResult<()> {
        loop {
            Self::check_poisoned(&st)?;
            if st.flushed_seq >= target {
                return Ok(());
            }
            if st.flushing {
                // Waiter: a leader is mid-flush with the lock released. When
                // it publishes, either our seq made its group or we lead the
                // next one.
                st = self.shared.flushed.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Leader: take the whole buffered group and flush it with the
            // state lock released so submitters keep filling the next group.
            st.flushing = true;
            let buf = std::mem::take(&mut st.buf);
            let batches = st.buffered_batches;
            st.buffered_batches = 0;
            let last = st.next_seq;
            drop(st);
            debug_assert!(batches > 0, "unflushed seqs imply a non-empty buffer");
            let result = self.lock_engine().append_group(&buf, batches, last);
            st = self.lock_state();
            st.flushing = false;
            match result {
                Ok(()) => {
                    st.flushed_seq = last;
                    self.shared.flushed.notify_all();
                }
                Err(e) => {
                    // The group's durability is unknown (and the engine is
                    // poisoned): nothing in it was acknowledged, and nothing
                    // later may be.
                    st.poisoned = Some(e.to_string());
                    self.shared.flushed.notify_all();
                    return Err(e);
                }
            }
        }
    }

    fn poison_from_engine(&self, err: StoreError) -> StoreError {
        let mut st = self.lock_state();
        if st.poisoned.is_none() {
            st.poisoned = Some(err.to_string());
            self.shared.flushed.notify_all();
        }
        err
    }
}

impl Storage for CommitPipeline {
    fn commit(&mut self, ops: &[WalOp]) -> StoreResult<()> {
        self.submit(ops)
    }

    fn maybe_compact(&mut self, graph: &ProvGraph) -> StoreResult<bool> {
        // Buffered group bytes count toward the threshold: they are WAL
        // bytes in every sense but residency.
        let combined = self.wal_bytes();
        if combined < self.shared.policy.compact_after_wal_bytes {
            return Ok(false);
        }
        Storage::compact(self, graph)?;
        Ok(true)
    }

    fn compact(&mut self, graph: &ProvGraph) -> StoreResult<()> {
        // Flush first: the snapshot's seq must cover every batch folded into
        // `graph`, or the buffered batches would replay as spliced history.
        self.flush()?;
        self.lock_engine().compact(graph).map_err(|e| self.poison_from_engine(e))
    }

    fn flush(&mut self) -> StoreResult<()> {
        CommitPipeline::flush(self)
    }

    fn counters(&self) -> DurabilityCounters {
        self.lock_engine().counters()
    }

    fn wal_bytes(&self) -> u64 {
        let buffered = self.buffered_bytes();
        self.lock_engine().wal_bytes() + buffered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{wal_file_name, FailpointIo, FaultPlan, MemIo, Recovered};

    fn open_pipeline(disk: &MemIo, policy: DurabilityPolicy) -> (CommitPipeline, Recovered) {
        let (engine, rec) = WalStorage::open(Box::new(disk.clone()), policy).unwrap();
        (CommitPipeline::new(engine), rec)
    }

    /// Run `n` mutation batches through the pipeline, like ProvDb does.
    fn ingest(graph: &mut ProvGraph, pipe: &CommitPipeline, n: usize, tag: &str) {
        graph.set_journaling(true);
        for i in 0..n {
            let v = graph.add_entity(&format!("{tag}-{i}"));
            graph.set_vprop(v, "version", i as i64);
            let ops = graph.take_journal();
            pipe.submit(&ops).unwrap();
        }
    }

    #[test]
    fn default_policy_flushes_every_submit() {
        let disk = MemIo::new();
        let (pipe, rec) = open_pipeline(&disk, DurabilityPolicy::never_compact());
        let mut graph = rec.graph;
        ingest(&mut graph, &pipe, 3, "e");
        let c = pipe.counters();
        assert_eq!(c.wal_appends, 3);
        assert_eq!(c.fsyncs, 3);
        assert_eq!(c.group_flushes, 3);
        assert_eq!(c.group_flushed_batches, 3);
        assert_eq!(pipe.buffered_batches(), 0);
        assert_eq!(pipe.flushed_seq(), 3);
    }

    #[test]
    fn grouped_policy_amortizes_fsyncs_across_batches() {
        let disk = MemIo::new();
        let policy = DurabilityPolicy::never_compact().with_group_batches(4);
        let (pipe, rec) = open_pipeline(&disk, policy);
        let mut graph = rec.graph;
        ingest(&mut graph, &pipe, 8, "e");
        let c = pipe.counters();
        assert_eq!(c.wal_appends, 8, "every batch reaches the WAL");
        assert_eq!(c.fsyncs, 2, "two full groups, one fsync each");
        assert_eq!(c.group_flushes, 2);
        assert_eq!(c.group_flushed_batches, 8);
        // On-disk bytes are identical to 8 ungrouped commits: recovery
        // replays all 8 batches through the unchanged scan.
        let (_, rec2) = open_pipeline(&disk, DurabilityPolicy::never_compact());
        assert_eq!(rec2.graph, graph);
        assert_eq!(rec2.index, crate::snapshot::ProvIndex::build(&rec2.graph));
    }

    #[test]
    fn byte_window_triggers_flush_too() {
        let disk = MemIo::new();
        let policy =
            DurabilityPolicy::never_compact().with_group_batches(1000).with_group_window_bytes(64);
        let (pipe, rec) = open_pipeline(&disk, policy);
        let mut graph = rec.graph;
        ingest(&mut graph, &pipe, 6, "entity-with-a-longish-name");
        assert!(pipe.counters().group_flushes >= 1, "byte window forced flushes");
        assert!(pipe.buffered_bytes() < 64 + 200, "buffer drains at the window");
    }

    #[test]
    fn partial_group_is_accepted_but_not_durable_until_flush() {
        let disk = MemIo::new();
        let policy = DurabilityPolicy::never_compact().with_group_batches(8);
        let (pipe, rec) = open_pipeline(&disk, policy);
        let mut graph = rec.graph;
        ingest(&mut graph, &pipe, 3, "e");
        assert_eq!(pipe.buffered_batches(), 3);
        assert_eq!(pipe.counters().fsyncs, 0);
        assert_eq!(pipe.flushed_seq(), 0);
        // Nothing reached the disk yet: a crash here loses only
        // unacknowledged batches.
        assert_eq!(disk.file(&wal_file_name(0)).unwrap(), b"");
        let (_, before) = open_pipeline(&disk.fork(), DurabilityPolicy::never_compact());
        assert_eq!(before.graph, ProvGraph::new());
        // Explicit flush makes the partial group durable: one append, one
        // fsync, three commit markers.
        pipe.flush().unwrap();
        assert_eq!(pipe.buffered_batches(), 0);
        let c = pipe.counters();
        assert_eq!((c.fsyncs, c.group_flushes, c.group_flushed_batches), (1, 1, 3));
        let (_, after) = open_pipeline(&disk, DurabilityPolicy::never_compact());
        assert_eq!(after.graph, graph);
        // Flushing with nothing buffered is a no-op.
        pipe.flush().unwrap();
        assert_eq!(pipe.counters().fsyncs, 1);
    }

    #[test]
    fn concurrent_submitters_share_flushes_leader_waiter() {
        let disk = MemIo::new();
        let policy = DurabilityPolicy::never_compact().with_group_batches(4);
        let (pipe, _) = open_pipeline(&disk, policy);
        let pipe = Arc::new(pipe);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let pipe = Arc::clone(&pipe);
                // lint-ok(thread-spawn): OS threads on purpose — the leader/waiter protocol is under test.
                std::thread::spawn(move || {
                    // Empty batches: valid frames whose replay is
                    // order-independent, so interleaving doesn't matter.
                    for _ in 0..25 {
                        pipe.submit(&[]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        pipe.flush().unwrap();
        let c = pipe.counters();
        assert_eq!(c.wal_appends, 100, "every batch durably appended");
        assert_eq!(c.group_flushed_batches, 100);
        assert!(c.fsyncs <= 25 + 1, "grouping held under contention: {} fsyncs", c.fsyncs);
        assert_eq!(pipe.flushed_seq(), 100);
        // The interleaved log replays clean: 100 gapless commit markers.
        let (engine, rec) =
            WalStorage::open(Box::new(disk.clone()), DurabilityPolicy::never_compact()).unwrap();
        assert_eq!(engine.last_seq(), 100);
        assert_eq!(rec.graph, ProvGraph::new());
    }

    #[test]
    fn fsync_failure_mid_group_poisons_with_nothing_acknowledged() {
        let disk = MemIo::new();
        let fp = FailpointIo::new(disk.clone(), FaultPlan::fail_sync(0));
        let policy = DurabilityPolicy::never_compact().with_group_batches(4);
        let (engine, rec) = WalStorage::open(Box::new(fp), policy).unwrap();
        let pipe = CommitPipeline::new(engine);
        let mut graph = rec.graph;
        graph.set_journaling(true);
        for i in 0..3 {
            graph.add_entity(&format!("e-{i}"));
            let ops = graph.take_journal();
            pipe.submit(&ops).unwrap(); // accepted, not yet durable
        }
        let err = pipe.flush().unwrap_err();
        assert!(matches!(err, StoreError::StorageUnavailable(_)), "{err}");
        assert!(pipe.is_poisoned());
        assert_eq!(pipe.flushed_seq(), 0, "no batch was ever acknowledged as durable");
        // Every later submit and flush refuses.
        graph.add_entity("doomed");
        let ops = graph.take_journal();
        let err = pipe.submit(&ops).unwrap_err();
        assert!(
            matches!(&err, StoreError::StorageUnavailable(m) if m.contains("poisoned")),
            "{err}"
        );
        assert!(pipe.flush().is_err());
        // Reopen: the appended-but-unsynced group is structurally complete
        // on the MemIo image, so recovery may keep it — either way it is a
        // committed prefix and no *acknowledged* batch is lost (none were).
        let (_, rec2) =
            WalStorage::open(Box::new(disk.clone()), DurabilityPolicy::never_compact()).unwrap();
        rec2.graph.validate().unwrap();
        assert!(rec2.graph.vertex_count() == 0 || rec2.graph.vertex_count() == 3);
    }

    #[test]
    fn compaction_flushes_the_buffered_group_first() {
        let disk = MemIo::new();
        let policy = DurabilityPolicy {
            compact_after_wal_bytes: 64,
            ..DurabilityPolicy::default().with_group_batches(1000)
        };
        let (mut pipe, rec) = open_pipeline(&disk, policy);
        let mut graph = rec.graph;
        graph.set_journaling(true);
        // Fill the pipeline past the compaction threshold without a single
        // flush: every threshold byte is buffered, none is in the engine.
        while pipe.wal_bytes() < 64 {
            graph.add_entity("buffered");
            let ops = graph.take_journal();
            pipe.submit(&ops).unwrap();
        }
        assert!(pipe.buffered_bytes() >= 64, "all of it buffered");
        assert_eq!(pipe.counters().fsyncs, 0);
        // maybe_compact sees buffered bytes, flushes, then compacts.
        assert!(pipe.maybe_compact(&graph).unwrap());
        let c = pipe.counters();
        assert_eq!(c.group_flushes, 1, "compaction forced the flush");
        assert_eq!(c.snapshots_written, 1);
        assert_eq!(pipe.buffered_batches(), 0);
        assert_eq!(Storage::wal_bytes(&pipe), 0);
        // The snapshot covers every buffered batch; recovery needs no WAL.
        let (engine, rec2) =
            WalStorage::open(Box::new(disk.clone()), DurabilityPolicy::never_compact()).unwrap();
        assert_eq!(rec2.graph, graph);
        assert_eq!(engine.last_seq(), pipe.flushed_seq());
        assert_eq!(engine.counters().batches_replayed, 0, "all folded into the snapshot");
        // And committing through the new generation still works.
        graph.add_entity("after");
        let ops = graph.take_journal();
        pipe.submit(&ops).unwrap();
        pipe.flush().unwrap();
        let (_, rec3) =
            WalStorage::open(Box::new(disk.clone()), DurabilityPolicy::never_compact()).unwrap();
        assert_eq!(rec3.graph, graph);
    }

    #[test]
    fn explicit_compact_with_nonempty_pipeline_is_safe() {
        let disk = MemIo::new();
        let policy = DurabilityPolicy::never_compact().with_group_batches(100);
        let (mut pipe, rec) = open_pipeline(&disk, policy);
        let mut graph = rec.graph;
        ingest(&mut graph, &pipe, 5, "e");
        assert_eq!(pipe.buffered_batches(), 5);
        Storage::compact(&mut pipe, &graph).unwrap();
        assert_eq!(pipe.buffered_batches(), 0);
        let (engine, rec2) =
            WalStorage::open(Box::new(disk.clone()), DurabilityPolicy::never_compact()).unwrap();
        assert_eq!(rec2.graph, graph);
        assert_eq!(engine.last_seq(), 5, "snapshot seq covers the flushed group");
    }
}
