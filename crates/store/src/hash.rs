//! A minimal FxHash-style hasher.
//!
//! Hashing is hot in provenance-type refinement and in the pattern matcher;
//! SipHash (std default) is needlessly slow for small integer-ish keys. Rather
//! than pulling in `rustc-hash`, this is the same multiply-rotate design in ~30
//! lines (HashDoS resistance is irrelevant for in-process graph ids).

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier (golden-ratio derived, as used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` with the Fx hasher.
// lint-ok(std-collections): definition site of the sanctioned Fx-hashed alias.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
// lint-ok(std-collections): definition site of the sanctioned Fx-hashed alias.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hash any `Hash` value to a `u64` with the Fx hasher (used for provenance
/// type fingerprints).
pub fn fx_hash64<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreads() {
        let a = fx_hash64(&42u64);
        let b = fx_hash64(&42u64);
        let c = fx_hash64(&43u64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn string_hashing_distinguishes() {
        assert_ne!(fx_hash64(&"train"), fx_hash64(&"update"));
        // Prefix-extended strings must differ too.
        assert_ne!(fx_hash64(&"abcdefgh"), fx_hash64(&"abcdefghi"));
    }
}
