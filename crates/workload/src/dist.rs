//! Random samplers used by the workload generators.
//!
//! The paper's generators need Zipf (work rates `sw`, input selection `se`),
//! Poisson (in/out degrees `λi`, `λo`) and Dirichlet (transition-matrix rows
//! with concentration `α`). `rand` ships none of these, so they are
//! implemented here:
//!
//! * [`ZipfTable`] — exact bounded Zipf via a precomputed cumulative table +
//!   binary search. One table serves every prefix size `1..=n`, which is what
//!   the `Pd` generator needs (the candidate pool grows with every step).
//! * [`poisson`] — Knuth's multiplication method (fine for the small `λ`s of
//!   the paper, 1–5).
//! * [`gamma`] — Marsaglia–Tsang squeeze for `α ≥ 1`, boosted for `α < 1`.
//! * [`dirichlet`] — normalized Gamma draws.

use rand::Rng;

/// Precomputed Zipf cumulative weights `C[i] = Σ_{j≤i} j^{-s}` for ranks
/// `1..=n`; sampling over any prefix `1..=k` (k ≤ n) is a binary search.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cum: Vec<f64>,
    s: f64,
}

impl ZipfTable {
    /// Build a table for ranks up to `n` with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "ZipfTable needs n >= 1");
        let mut cum = Vec::with_capacity(n + 1);
        cum.push(0.0);
        let mut acc = 0.0;
        for j in 1..=n {
            acc += (j as f64).powf(-s);
            cum.push(acc);
        }
        ZipfTable { cum, s }
    }

    /// Maximum supported rank.
    pub fn capacity(&self) -> usize {
        self.cum.len() - 1
    }

    /// The exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Sample a 1-based rank from `Zipf(s)` truncated to `1..=k`.
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> usize {
        let k = k.min(self.capacity()).max(1);
        let u: f64 = rng.gen::<f64>() * self.cum[k];
        // Smallest i with cum[i] > u.
        let mut lo = 1usize;
        let mut hi = k;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cum[mid] > u {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Probability of rank `i` within prefix `k` (test helper).
    pub fn pmf(&self, i: usize, k: usize) -> f64 {
        (i as f64).powf(-self.s) / self.cum[k.min(self.capacity())]
    }
}

/// Sample `Poisson(lambda)` by Knuth's method — `O(λ)` per draw.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k: u64 = 0;
    let mut p: f64 = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Numerical guard for pathological lambda.
        if k > 1_000_000 {
            return k;
        }
    }
}

/// Standard normal via the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Sample `Gamma(alpha, 1)` (Marsaglia–Tsang; boost for `alpha < 1`).
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    assert!(alpha > 0.0, "gamma needs alpha > 0");
    if alpha < 1.0 {
        // Gamma(a) = Gamma(a + 1) · U^(1/a)
        let boost: f64 = rng.gen::<f64>().powf(1.0 / alpha);
        return gamma(rng, alpha + 1.0) * boost;
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Sample a `Dirichlet(alpha · 1_k)` probability vector of length `k`.
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    assert!(k >= 1);
    let mut draws: Vec<f64> = (0..k).map(|_| gamma(rng, alpha)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= f64::MIN_POSITIVE {
        // Extremely concentrated draw degenerated to zeros: put all mass on a
        // uniformly random coordinate (the α → 0 limit).
        let winner = rng.gen_range(0..k);
        draws.fill(0.0);
        draws[winner] = 1.0;
        return draws;
    }
    for d in draws.iter_mut() {
        *d /= sum;
    }
    draws
}

/// Sample an index from a categorical distribution given by `probs`.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, probs: &[f64]) -> usize {
    let total: f64 = probs.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn zipf_ranks_in_range_and_skewed() {
        let table = ZipfTable::new(1000, 1.5);
        let mut r = rng();
        let mut counts = [0usize; 5];
        for _ in 0..20_000 {
            let rank = table.sample_rank(&mut r, 1000);
            assert!((1..=1000).contains(&rank));
            if rank <= 5 {
                counts[rank - 1] += 1;
            }
        }
        // Monotone decreasing head.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        // Rank-1 mass close to pmf.
        let p1 = table.pmf(1, 1000);
        let observed = counts[0] as f64 / 20_000.0;
        assert!((observed - p1).abs() < 0.02, "observed {observed}, pmf {p1}");
    }

    #[test]
    fn zipf_prefix_sampling_respects_k() {
        let table = ZipfTable::new(100, 1.2);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(table.sample_rank(&mut r, 7) <= 7);
        }
        assert_eq!(table.capacity(), 100);
        assert_eq!(table.exponent(), 1.2);
    }

    #[test]
    fn poisson_mean_approximates_lambda() {
        let mut r = rng();
        for &lambda in &[0.5, 2.0, 5.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut r, lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!((mean - lambda).abs() < 0.1, "lambda={lambda} mean={mean}");
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn gamma_mean_and_positivity() {
        let mut r = rng();
        for &alpha in &[0.3, 1.0, 2.5, 8.0] {
            let n = 20_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let x = gamma(&mut r, alpha);
                assert!(x > 0.0);
                sum += x;
            }
            let mean = sum / n as f64;
            assert!((mean - alpha).abs() < 0.15 * alpha.max(1.0), "alpha={alpha} mean={mean}");
        }
    }

    #[test]
    fn dirichlet_sums_to_one_and_concentration_matters() {
        let mut r = rng();
        for &alpha in &[0.025, 0.25, 1.0, 10.0] {
            let v = dirichlet(&mut r, alpha, 6);
            assert_eq!(v.len(), 6);
            let sum: f64 = v.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "alpha={alpha} sum={sum}");
        }
        // Small alpha concentrates mass; large alpha flattens. Compare the
        // average maximum coordinate.
        let avg_max = |alpha: f64, r: &mut StdRng| {
            let mut acc = 0.0;
            for _ in 0..300 {
                let v = dirichlet(r, alpha, 6);
                acc += v.iter().cloned().fold(0.0, f64::max);
            }
            acc / 300.0
        };
        let concentrated = avg_max(0.05, &mut r);
        let flat = avg_max(10.0, &mut r);
        assert!(concentrated > flat + 0.2, "{concentrated} vs {flat}");
    }

    #[test]
    fn categorical_follows_weights() {
        let mut r = rng();
        let probs = [0.7, 0.2, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[categorical(&mut r, &probs)] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        assert!((counts[0] as f64 / 10_000.0 - 0.7).abs() < 0.03);
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let table = ZipfTable::new(50, 1.5);
        for _ in 0..100 {
            assert_eq!(table.sample_rank(&mut a, 50), table.sample_rank(&mut b, 50));
        }
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(poisson(&mut a, 2.0), poisson(&mut b, 2.0));
        assert_eq!(gamma(&mut a, 1.5), gamma(&mut b, 1.5));
    }
}
