//! Fig. 6 kernel benchmark: the counting-based simulation and the
//! quotient-incremental PgSum pipeline against their frozen seed
//! counterparts, on `Sd` segment sets at two representative sizes. The
//! committed trajectory (`BENCH_fig6.json`) is produced by the `figure`
//! binary; here Criterion tracks the kernels in isolation so `cargo bench
//! --no-run` keeps them compiling and a local `cargo bench` can profile
//! them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_model::VertexKind;
use prov_summary::{
    build_g0, simulation, simulation_reference, PgSumQuery, PropertyAggregation, SegmentRef,
    SimDirection, G0,
};
use prov_workload::{generate_sd, SdParams};
use std::time::Duration;

fn query() -> PgSumQuery {
    PgSumQuery::new(
        PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]),
        1,
    )
}

fn prepared(params: &SdParams) -> (prov_store::ProvGraph, Vec<SegmentRef>) {
    let out = generate_sd(params);
    let segments =
        out.segments.iter().map(|s| SegmentRef::new(s.vertices.clone(), s.edges.clone())).collect();
    (out.graph, segments)
}

fn cases() -> Vec<(&'static str, SdParams)> {
    vec![
        ("s10", SdParams::default()),
        ("s20", SdParams { num_segments: 20, ..SdParams::default() }),
    ]
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_simulation");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (label, params) in cases() {
        let (graph, segments) = prepared(&params);
        let q = query();
        let g0: G0 = build_g0(&graph, &segments, &q.aggregation, q.k);
        group.bench_with_input(BenchmarkId::new("counting", label), &label, |b, _| {
            b.iter(|| simulation(&g0, SimDirection::Out))
        });
        group.bench_with_input(BenchmarkId::new("seed", label), &label, |b, _| {
            b.iter(|| simulation_reference(&g0, SimDirection::Out))
        });
    }
    group.finish();
}

fn bench_pgsum(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_pgsum");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (label, params) in cases() {
        let (graph, segments) = prepared(&params);
        let q = query();
        group.bench_with_input(BenchmarkId::new("incremental", label), &label, |b, _| {
            b.iter(|| prov_summary::pgsum(&graph, &segments, &q))
        });
        group.bench_with_input(BenchmarkId::new("seed", label), &label, |b, _| {
            b.iter(|| prov_summary::pgsum_reference(&graph, &segments, &q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_pgsum);
criterion_main!(benches);
