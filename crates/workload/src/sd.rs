//! The `Sd` segment-set generator (Sec. V, "Similar Segments & PgSum
//! Queries").
//!
//! Models a stage of a project as a Markov chain over `k` activity types with
//! transition matrix rows drawn from `Dirichlet(α)`:
//!
//! * small `α` → concentrated rows → stable pipelines (an activity type is
//!   almost always followed by the same next type) → easy to summarize;
//! * large `α` → near-uniform rows → exploratory chaos → hard to summarize.
//!
//! Each of the `|S|` segments is a walk of `n` activities through the chain;
//! input/output entities attach with the `Pd` mechanics (`λi`, `λo`, `se`) and
//! all entities carry the same aggregate label (the paper: "all introduced
//! entities have the same equivalent class label").
//!
//! Paper defaults: `α = 0.1, k = 5, n = 20, |S| = 10`.

use crate::dist::{categorical, dirichlet, poisson, ZipfTable};
use prov_model::{EdgeId, EdgeKind, VertexId};
use prov_store::ProvGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the `Sd` generator.
#[derive(Debug, Clone, Copy)]
pub struct SdParams {
    /// Dirichlet concentration `α` of the transition rows.
    pub alpha: f64,
    /// Number of activity types `k` (Markov states).
    pub k: usize,
    /// Activities per segment `n`.
    pub n: usize,
    /// Number of segments `|S|`.
    pub num_segments: usize,
    /// Mean extra inputs `λi`.
    pub lambda_in: f64,
    /// Mean extra outputs `λo`.
    pub lambda_out: f64,
    /// Input selection skew `se`.
    pub se: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SdParams {
    fn default() -> Self {
        // The paper's defaults (Sec. V: α=0.1, k=5, n=20, |S|=10; λ/se as Pd).
        SdParams {
            alpha: 0.1,
            k: 5,
            n: 20,
            num_segments: 10,
            lambda_in: 2.0,
            lambda_out: 2.0,
            se: 1.5,
            seed: 42,
        }
    }
}

/// One generated segment: a subgraph of the backing graph.
#[derive(Debug, Clone)]
pub struct SdSegment {
    /// Segment vertices.
    pub vertices: Vec<VertexId>,
    /// Segment edges.
    pub edges: Vec<EdgeId>,
}

/// Generator output: the backing graph, the segments, and the transition
/// matrix that produced them.
#[derive(Debug, Clone)]
pub struct SdOutput {
    /// Backing provenance graph holding all segments.
    pub graph: ProvGraph,
    /// The `|S|` segments.
    pub segments: Vec<SdSegment>,
    /// The sampled `k × k` transition matrix.
    pub transition: Vec<Vec<f64>>,
}

/// Generate an `Sd` segment set.
pub fn generate_sd(params: &SdParams) -> SdOutput {
    assert!(params.k >= 1 && params.n >= 1 && params.num_segments >= 1);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let transition: Vec<Vec<f64>> =
        (0..params.k).map(|_| dirichlet(&mut rng, params.alpha, params.k)).collect();

    let mut graph = ProvGraph::new();
    let mut segments = Vec::with_capacity(params.num_segments);
    let pick = ZipfTable::new(params.n * 8 + 8, params.se);

    for si in 0..params.num_segments {
        let mut vertices: Vec<VertexId> = Vec::new();
        let mut edges: Vec<EdgeId> = Vec::new();
        // Seed entity for the segment.
        let seed_e = graph.add_entity(&format!("s{si}-seed"));
        graph.set_vprop(seed_e, "filename", "artifact");
        vertices.push(seed_e);
        let mut entities = vec![seed_e];

        let mut state = rng.gen_range(0..params.k);
        for step in 0..params.n {
            if step > 0 {
                state = categorical(&mut rng, &transition[state]);
            }
            let a = graph.add_activity(&format!("s{si}-op{state}-{step}"));
            graph.set_vprop(a, "command", format!("op{state}"));
            vertices.push(a);

            let m = 1 + poisson(&mut rng, params.lambda_in) as usize;
            let mut chosen: Vec<VertexId> = Vec::new();
            let mut attempts = 0;
            while chosen.len() < m.min(entities.len()) && attempts < 8 * m {
                attempts += 1;
                let rank = pick.sample_rank(&mut rng, entities.len());
                let e = entities[entities.len() - rank];
                if !chosen.contains(&e) {
                    chosen.push(e);
                }
            }
            for e in chosen {
                edges.push(graph.add_edge(EdgeKind::Used, a, e).expect("valid used"));
            }

            let n_out = 1 + poisson(&mut rng, params.lambda_out) as usize;
            for _ in 0..n_out {
                let e = graph.add_entity(&format!("s{si}-e{}", entities.len()));
                // Identical aggregate label for all entities.
                graph.set_vprop(e, "filename", "artifact");
                edges.push(
                    graph.add_edge(EdgeKind::WasGeneratedBy, e, a).expect("valid generation"),
                );
                entities.push(e);
                vertices.push(e);
            }
        }
        segments.push(SdSegment { vertices, edges });
    }
    SdOutput { graph, segments, transition }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::VertexKind;

    #[test]
    fn produces_requested_shape() {
        let params = SdParams::default();
        let out = generate_sd(&params);
        assert_eq!(out.segments.len(), 10);
        assert_eq!(out.transition.len(), 5);
        for seg in &out.segments {
            let acts = seg
                .vertices
                .iter()
                .filter(|&&v| out.graph.vertex_kind(v) == VertexKind::Activity)
                .count();
            assert_eq!(acts, 20);
            assert!(!seg.edges.is_empty());
        }
        out.graph.validate_acyclic().expect("Sd output is a DAG");
    }

    #[test]
    fn transition_rows_are_distributions() {
        let out = generate_sd(&SdParams::default());
        for row in &out.transition {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn segments_are_disjoint_subgraphs() {
        let out = generate_sd(&SdParams { num_segments: 4, ..SdParams::default() });
        let mut seen = prov_store::hash::FxHashSet::default();
        for seg in &out.segments {
            for &v in &seg.vertices {
                assert!(seen.insert(v), "segments must not share vertices");
            }
            // Every edge endpoint is inside the segment.
            let vset: prov_store::hash::FxHashSet<_> = seg.vertices.iter().collect();
            for &e in &seg.edges {
                let rec = out.graph.edge(e);
                assert!(vset.contains(&rec.src) && vset.contains(&rec.dst));
            }
        }
    }

    #[test]
    fn alpha_controls_type_diversity() {
        // With tiny alpha each row is near-deterministic: long runs repeat few
        // types. With big alpha many types appear.
        let distinct_cmds = |alpha: f64| {
            let out = generate_sd(&SdParams {
                alpha,
                n: 40,
                num_segments: 3,
                seed: 7,
                ..SdParams::default()
            });
            let mut cmds = prov_store::hash::FxHashSet::default();
            for seg in &out.segments {
                for &v in &seg.vertices {
                    if out.graph.vertex_kind(v) == VertexKind::Activity {
                        cmds.insert(
                            out.graph.vprop(v, "command").unwrap().as_str().unwrap().to_string(),
                        );
                    }
                }
            }
            cmds.len()
        };
        assert!(distinct_cmds(0.025) <= distinct_cmds(5.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_sd(&SdParams::default());
        let b = generate_sd(&SdParams::default());
        assert_eq!(a.graph.vertex_count(), b.graph.vertex_count());
        assert_eq!(a.transition, b.transition);
    }

    #[test]
    fn entities_share_aggregate_label() {
        let out = generate_sd(&SdParams { num_segments: 2, ..SdParams::default() });
        for &v in out.graph.vertices_of_kind(VertexKind::Entity) {
            assert_eq!(out.graph.vprop(v, "filename").and_then(|p| p.as_str()), Some("artifact"));
        }
    }
}
