//! `PgSeg` — the provenance graph segmentation operator (Sec. III).
//!
//! PgSeg answers "how are these destination entities generated from these
//! source entities?" on an evolving provenance graph with no workflow skeleton:
//! a 3-tuple query `(Vsrc, Vdst, B)` inducing a connected subgraph with four
//! vertex categories (direct paths, similar paths, siblings, agents) under
//! flexible boundary criteria.
//!
//! Module map:
//!
//! * [`query`] — the operator: query type, options, two-step evaluation
//!   session ([`query::PgSegSession`]), one-shot [`query::pgseg`];
//! * [`boundary`] — exclusion predicates (`Bv`/`Be`) and expansions (`Bx`);
//! * [`view`] — masked traversal view shared by all algorithms;
//! * [`direct`] — `VC1` (vertices on direct paths);
//! * [`tst`] — `SimProvTst`, the per-destination linear-time evaluator with
//!   exact `VC2` induction (the default);
//! * [`alg`] — `SimProvAlg`, the rewritten-grammar worklist algorithm with
//!   symmetry pruning and early stopping (pair-encoded flat worklist);
//! * [`alg_reference`] — the seed `VecDeque` SimProvAlg loop, frozen as the
//!   differential/benchmark reference for the rewrite;
//! * [`cflr_baseline`] — generic CflrB on the Fig. 6 normal form (baseline);
//! * [`naive`] — Cypher-style enumerate-and-join (baseline of baselines);
//! * [`induce`] / [`segment_graph`] — assembly of the segment `S(VS, ES)`.

pub mod alg;
pub mod alg_reference;
pub mod boundary;
pub mod cflr_baseline;
pub mod direct;
pub mod induce;
pub mod naive;
pub mod outcome;
pub mod par;
pub mod query;
pub mod segment_graph;
pub mod tst;
pub mod view;

pub use alg::{
    similar_alg, similar_alg_bitset, similar_alg_cbm, AlgConfig, ConstraintTable, SimilarConstraint,
};
pub use alg_reference::{
    similar_alg_reference, similar_alg_reference_bitset, similar_alg_reference_cbm,
};
pub use boundary::{Boundary, EdgePred, Expansion, Mask, VertexPred};
pub use cflr_baseline::{similar_cflr, GrammarForm};
pub use direct::{direct_path_exists, direct_path_vertices};
pub use naive::{similar_naive, similar_naive_constrained, NaiveBudget};
pub use outcome::{EvalStats, SimilarOutcome};
pub use par::{
    similar_alg_par, similar_alg_par_bitset, similar_alg_par_cbm, similar_alg_par_with_batch_min,
    PAR_BATCH_MIN,
};
pub use query::{
    evaluate_similarity, pgseg, PgSegOptions, PgSegQuery, PgSegSession, SimilarEvaluator,
};
pub use segment_graph::{Categories, SegmentGraph};
pub use tst::{similar_tst, TstConfig};
pub use view::MaskedGraph;
