//! Allocation-free lineage traversal over frozen snapshots.
//!
//! The seed lineage path allocated an `O(n)` visited vector, wrapped the
//! snapshot in a [`prov_segment::MaskedGraph`], and chased iterator chains on
//! every call — fine for a one-shot query, hostile to a serving loop issuing
//! thousands of lineage calls between ingests. The engine here replaces all
//! of that with:
//!
//! * an **epoch-stamped scratch pool**: visited state is a `Vec<u32>` of
//!   stamps reused across calls — marking is `stamp[v] = epoch`, clearing is
//!   `epoch += 1` (no `O(n)` zeroing), and on `u32` wraparound the pool
//!   resets so a stale stamp can never alias a live epoch. Each thread owns
//!   its scratch (`thread_local`), making the fast path lock-free; a
//!   re-entrant call on the same thread degrades to a fresh scratch instead
//!   of panicking;
//! * a **direction-parameterized frontier BFS** straight over the snapshot's
//!   CSR slices in dense-id (rank) space — no view wrapper, no per-edge
//!   closure dispatch;
//! * **bounds**: the same engine serves the unbounded closure, the
//!   depth-bounded prefix ([`LineageBound::Within`]), and the exact-ring
//!   k-hop query ([`LineageBound::Exactly`]).
//!
//! Output contract (wire-stable, asserted by regression tests): the result
//! is sorted ascending by dense vertex id and excludes the start vertex.
//! BFS discovery order is an implementation detail and never escapes.

use prov_model::{EdgeKind, VertexId};
use prov_store::{Direction, Pipeline, ProvIndex};
use std::cell::RefCell;

/// Which way a lineage traversal walks the ancestry relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineageDirection {
    /// Transitive inputs: walk `used`/`wasGeneratedBy` upstream.
    Ancestors,
    /// Transitive products: walk the same relations downstream.
    Descendants,
}

/// How far a lineage walk reaches. One ancestry hop is one edge traversal
/// (entity → activity or activity → entity), so "k activities away" is `2k`
/// hops — the same convention as session expansion's `bx(Vx, k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LineageBound {
    /// The full transitive closure.
    #[default]
    Unbounded,
    /// Every vertex within `max_hops` ancestry hops of the start.
    Within(u32),
    /// Only the vertices at *exactly* `hops` ancestry hops (the BFS ring) —
    /// the k-hop neighborhood query.
    Exactly(u32),
}

/// Reusable visited state: `u32` epoch stamps over the dense vertex space.
///
/// Invariants (see DESIGN.md §6):
/// * `stamps[v] == epoch` ⇔ `v` was visited by the *current* traversal;
/// * `begin` bumps the epoch, so clearing is `O(1)`;
/// * on epoch wraparound (`u32::MAX` traversals on one thread) the stamp
///   array resets to zero and the epoch restarts at 1, so a stamp left by
///   traversal `k` can never collide with epoch `k + 2³²`;
/// * the stamp array only ever grows (to the largest snapshot seen by the
///   thread), so a scratch outlives any one database.
#[derive(Debug, Default)]
struct LineageScratch {
    stamps: Vec<u32>,
    epoch: u32,
    frontier: Vec<VertexId>,
    next: Vec<VertexId>,
}

impl LineageScratch {
    /// Start a traversal over `n` vertices: grow the pool, bump the epoch.
    fn begin(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamps.fill(0);
                1
            }
        };
    }

    /// Mark `v` visited; true when it was not yet visited this traversal.
    #[inline]
    fn mark(&mut self, v: VertexId) -> bool {
        let slot = &mut self.stamps[v.index()];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// Run `f` on this thread's scratch (the lock-free fast path). A re-entrant
/// call — possible only if `f` itself issues a lineage query — falls back to
/// a fresh scratch instead of panicking on the borrow.
fn with_scratch<R>(f: impl FnOnce(&mut LineageScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: RefCell<LineageScratch> = RefCell::new(LineageScratch::default());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut LineageScratch::default()),
    })
}

/// The two CSRs one ancestry step reads, per direction. Upstream from an
/// entity crosses `G` (its generators), from an activity `U` (its inputs);
/// downstream reverses both. PROV typing makes exactly one of the pair
/// non-empty per vertex, so chaining both slices is branch-free and correct.
#[inline]
fn step_csrs(
    index: &ProvIndex,
    direction: LineageDirection,
) -> (&prov_store::Csr, &prov_store::Csr) {
    let [(first, fd), (second, sd)] = ancestry_edges(direction);
    // lint-ok(csr-traversal): frozen seed engine, the IR evaluation's differential reference
    (index.csr(first, fd), index.csr(second, sd))
}

/// The CSR selectors one ancestry hop unions, per direction — the
/// `step_csrs` pairing as query-IR data. Upstream crosses `G` then `U`
/// forward; downstream reverses both.
pub fn ancestry_edges(direction: LineageDirection) -> [(EdgeKind, Direction); 2] {
    match direction {
        LineageDirection::Ancestors => {
            [(EdgeKind::WasGeneratedBy, Direction::Out), (EdgeKind::Used, Direction::Out)]
        }
        LineageDirection::Descendants => {
            [(EdgeKind::Used, Direction::In), (EdgeKind::WasGeneratedBy, Direction::In)]
        }
    }
}

/// Lower a lineage query to a one-step query-IR pipeline (DESIGN.md §9).
///
/// The hop window translates the bound: the closure is depth `1..`, a
/// `Within(d)` prefix is `1..=d`, and the `Exactly(d)` ring is `d..=d` —
/// with the degenerate `d = 0` cases mapped to the empty window `1..=0`,
/// matching the engines' "depth 0 is never emitted" contract. Evaluating
/// the pipeline is byte-identical to [`lineage_over`] /
/// [`lineage_over_par`], which stay alive as the differential references.
pub fn compile_lineage(
    start: VertexId,
    direction: LineageDirection,
    bound: LineageBound,
) -> Pipeline {
    let (min_hops, max_hops) = match bound {
        LineageBound::Unbounded => (1, u32::MAX),
        LineageBound::Within(d) => (1, d),
        LineageBound::Exactly(0) => (1, 0),
        LineageBound::Exactly(d) => (d, d),
    };
    Pipeline::from_ids(vec![start]).traverse(&ancestry_edges(direction), min_hops, max_hops)
}

/// Transitive ancestry walk over a frozen snapshot: the engine behind
/// [`crate::ProvDb::lineage`] and its bounded variants, callable directly
/// against any [`ProvIndex`] (benchmarks and read replicas do).
///
/// Returns the reached vertices sorted ascending by id, start excluded; an
/// out-of-range start yields an empty result.
pub fn lineage_over(
    index: &ProvIndex,
    start: VertexId,
    direction: LineageDirection,
    bound: LineageBound,
) -> Vec<VertexId> {
    if start.index() >= index.vertex_count() {
        return Vec::new();
    }
    let (max_depth, ring_only) = match bound {
        LineageBound::Unbounded => (u32::MAX, false),
        LineageBound::Within(d) => (d, false),
        LineageBound::Exactly(d) => (d, true),
    };
    let mut out = Vec::new();
    if max_depth == 0 {
        return out;
    }
    let (first, second) = step_csrs(index, direction);
    with_scratch(|scratch| {
        scratch.begin(index.vertex_count());
        let mut frontier = std::mem::take(&mut scratch.frontier);
        let mut next = std::mem::take(&mut scratch.next);
        frontier.clear();
        next.clear();
        scratch.mark(start);
        frontier.push(start);
        let mut depth = 0u32;
        while !frontier.is_empty() && depth < max_depth {
            depth += 1;
            for &v in &frontier {
                // lint-ok(csr-traversal): frozen seed BFS, diffed against the IR engine
                for &w in first.neighbors(v).iter().chain(second.neighbors(v)) {
                    if scratch.mark(w) {
                        if !ring_only || depth == max_depth {
                            out.push(w);
                        }
                        next.push(w);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }
        // Hand the (possibly grown) buffers back to the pool.
        scratch.frontier = frontier;
        scratch.next = next;
    });
    out.sort_unstable();
    out
}

/// Below this many frontier vertices, a BFS level expands inline even when
/// parallelism is available — fanning a tiny level out to workers costs more
/// than the scan itself.
pub const PAR_FRONTIER_MIN: usize = 1024;

/// [`lineage_over`] with BFS levels expanded level-parallel on the global
/// [`rayon_core`] pool. `threads` is the *chunk count* (how many slices each
/// frontier is cut into), so the traversal shape — and the answer — is
/// independent of the pool width; `threads <= 1` delegates to the sequential
/// engine, which is what keeps it a live differential reference.
///
/// Parallel levels freeze the epoch stamps: workers scan disjoint frontier
/// slices over the raw CSR rows, filter against the frozen visited state
/// (plus a per-worker epoch scratch that dedups within the chunk), and stage
/// discoveries in per-chunk buffers. A sequential merge then re-checks every
/// staged vertex against the authoritative scratch — cross-chunk duplicates
/// collapse there — and builds the next frontier in chunk order, so the
/// reached set (and the sorted output) is byte-identical to [`lineage_over`]
/// at any thread count. The differential tests in `tests/` pin this.
pub fn lineage_over_par(
    index: &ProvIndex,
    start: VertexId,
    direction: LineageDirection,
    bound: LineageBound,
    threads: usize,
) -> Vec<VertexId> {
    lineage_over_par_with_frontier_min(index, start, direction, bound, threads, PAR_FRONTIER_MIN)
}

/// [`lineage_over_par`] with an explicit inline-level threshold. Production
/// callers want [`PAR_FRONTIER_MIN`]; the differential tests and the TSan CI
/// lane pass `0` so every level — however small — exercises the chunked
/// fan-out and merge machinery.
pub fn lineage_over_par_with_frontier_min(
    index: &ProvIndex,
    start: VertexId,
    direction: LineageDirection,
    bound: LineageBound,
    threads: usize,
    frontier_min: usize,
) -> Vec<VertexId> {
    if threads <= 1 {
        return lineage_over(index, start, direction, bound);
    }
    if start.index() >= index.vertex_count() {
        return Vec::new();
    }
    let (max_depth, ring_only) = match bound {
        LineageBound::Unbounded => (u32::MAX, false),
        LineageBound::Within(d) => (d, false),
        LineageBound::Exactly(d) => (d, true),
    };
    let mut out = Vec::new();
    if max_depth == 0 {
        return out;
    }
    let n = index.vertex_count();
    let (first, second) = step_csrs(index, direction);
    with_scratch(|scratch| {
        scratch.begin(n);
        let mut frontier = std::mem::take(&mut scratch.frontier);
        let mut next = std::mem::take(&mut scratch.next);
        frontier.clear();
        next.clear();
        scratch.mark(start);
        frontier.push(start);
        let mut bufs: Vec<Vec<VertexId>> = (0..threads).map(|_| Vec::new()).collect();
        let mut depth = 0u32;
        while !frontier.is_empty() && depth < max_depth {
            depth += 1;
            if frontier.len() < frontier_min {
                // Small level: the sequential step, verbatim.
                for &v in &frontier {
                    // lint-ok(csr-traversal): frozen seed BFS, diffed against the IR engine
                    for &w in first.neighbors(v).iter().chain(second.neighbors(v)) {
                        if scratch.mark(w) {
                            if !ring_only || depth == max_depth {
                                out.push(w);
                            }
                            next.push(w);
                        }
                    }
                }
            } else {
                // Parallel level: freeze the stamps, fan the frontier out.
                let ranges = rayon_core::chunk_ranges(frontier.len(), threads);
                {
                    let stamps: &[u32] = &scratch.stamps;
                    let epoch = scratch.epoch;
                    let level: &[VertexId] = &frontier;
                    rayon_core::scope(|s| {
                        for (range, buf) in ranges.into_iter().zip(bufs.iter_mut()) {
                            let chunk = &level[range];
                            s.spawn(move || {
                                // The worker's own epoch scratch dedups
                                // within the chunk; a helping caller whose
                                // scratch is already borrowed falls back to
                                // a fresh one (see `with_scratch`).
                                with_scratch(|local| {
                                    local.begin(n);
                                    for &v in chunk {
                                        // lint-ok(csr-traversal): chunked twin of the seed BFS
                                        let up = first.neighbors(v);
                                        // lint-ok(csr-traversal): chunked twin of the seed BFS
                                        let down = second.neighbors(v);
                                        for &w in up.iter().chain(down) {
                                            if stamps[w.index()] != epoch && local.mark(w) {
                                                buf.push(w);
                                            }
                                        }
                                    }
                                });
                            });
                        }
                    });
                }
                // Synchronized merge: the authoritative scratch resolves
                // cross-chunk duplicates; chunk order keeps it deterministic.
                for buf in &mut bufs {
                    for &w in buf.iter() {
                        if scratch.mark(w) {
                            if !ring_only || depth == max_depth {
                                out.push(w);
                            }
                            next.push(w);
                        }
                    }
                    buf.clear();
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }
        scratch.frontier = frontier;
        scratch.next = next;
    });
    out.sort_unstable();
    out
}

/// The frozen seed lineage path, kept verbatim for differential tests and
/// the fig7(b) latency sweep: per-call `vec![false; n]` visited state, a
/// [`prov_segment::MaskedGraph`] wrapper, DFS worklist, sort at the end.
/// Answers are identical to [`lineage_over`] with [`LineageBound::Unbounded`]
/// (both produce the sorted closure); only the cost profile differs.
pub fn lineage_reference(
    index: &ProvIndex,
    e: VertexId,
    direction: LineageDirection,
) -> Vec<VertexId> {
    let view = prov_segment::MaskedGraph::unmasked(index);
    let mut seen = vec![false; index.vertex_count()];
    let mut stack = vec![e];
    seen[e.index()] = true;
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        let mut visit = |w: VertexId| {
            if !seen[w.index()] {
                seen[w.index()] = true;
                out.push(w);
                stack.push(w);
            }
        };
        match direction {
            LineageDirection::Ancestors => view.upstream(v).for_each(&mut visit),
            LineageDirection::Descendants => view.downstream(v).for_each(&mut visit),
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_store::ProvGraph;

    /// d → t1 → w1 → t2 → w2 (a two-step chain), plus a side input s → t2.
    fn chain() -> (ProvIndex, [VertexId; 6]) {
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let w1 = g.add_entity("w1");
        let t2 = g.add_activity("t2");
        let w2 = g.add_entity("w2");
        let s = g.add_entity("s");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, w1).unwrap();
        g.add_edge(EdgeKind::Used, t2, s).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w2, t2).unwrap();
        (ProvIndex::build(&g), [d, t1, w1, t2, w2, s])
    }

    #[test]
    fn unbounded_matches_reference_both_directions() {
        let (idx, ids) = chain();
        for &v in &ids {
            for dir in [LineageDirection::Ancestors, LineageDirection::Descendants] {
                assert_eq!(
                    lineage_over(&idx, v, dir, LineageBound::Unbounded),
                    lineage_reference(&idx, v, dir),
                    "diverged at {v} {dir:?}"
                );
            }
        }
    }

    #[test]
    fn bounds_cut_the_walk_at_the_right_ring() {
        let (idx, [d, t1, w1, t2, w2, s]) = chain();
        let _ = t1;
        // Ancestors of w2: rings are {t2}, {w1, s}, {t1}, {d}.
        assert!(
            lineage_over(&idx, w2, LineageDirection::Ancestors, LineageBound::Within(0)).is_empty()
        );
        assert_eq!(
            lineage_over(&idx, w2, LineageDirection::Ancestors, LineageBound::Within(1)),
            vec![t2]
        );
        assert_eq!(
            lineage_over(&idx, w2, LineageDirection::Ancestors, LineageBound::Within(2)),
            vec![w1, t2, s]
        );
        assert_eq!(
            lineage_over(&idx, w2, LineageDirection::Ancestors, LineageBound::Within(4)),
            lineage_over(&idx, w2, LineageDirection::Ancestors, LineageBound::Unbounded)
        );
        assert_eq!(
            lineage_over(&idx, w2, LineageDirection::Ancestors, LineageBound::Exactly(2)),
            vec![w1, s]
        );
        assert_eq!(
            lineage_over(&idx, w2, LineageDirection::Ancestors, LineageBound::Exactly(4)),
            vec![d]
        );
        assert!(lineage_over(&idx, w2, LineageDirection::Ancestors, LineageBound::Exactly(5))
            .is_empty());
        // Downstream rings from d.
        assert_eq!(
            lineage_over(&idx, d, LineageDirection::Descendants, LineageBound::Exactly(1)),
            vec![t1]
        );
        assert_eq!(
            lineage_over(&idx, d, LineageDirection::Descendants, LineageBound::Exactly(2)),
            vec![w1]
        );
    }

    #[test]
    fn output_is_sorted_ascending_and_excludes_start() {
        let (idx, ids) = chain();
        for &v in &ids {
            for dir in [LineageDirection::Ancestors, LineageDirection::Descendants] {
                for bound in
                    [LineageBound::Unbounded, LineageBound::Within(3), LineageBound::Exactly(2)]
                {
                    let out = lineage_over(&idx, v, dir, bound);
                    assert!(out.windows(2).all(|w| w[0] < w[1]), "unsorted: {out:?}");
                    assert!(!out.contains(&v), "start leaked into {out:?}");
                }
            }
        }
    }

    #[test]
    fn epoch_reuse_across_many_calls_is_clean() {
        let (idx, [d, ..]) = chain();
        let expect = lineage_over(&idx, d, LineageDirection::Descendants, LineageBound::Unbounded);
        // Hundreds of traversals on one thread reuse the same stamps; every
        // answer must be identical (a stale stamp would drop vertices).
        for _ in 0..500 {
            assert_eq!(
                lineage_over(&idx, d, LineageDirection::Descendants, LineageBound::Unbounded),
                expect
            );
        }
    }

    #[test]
    fn scratch_wraparound_resets_stamps() {
        let mut s =
            LineageScratch { stamps: vec![7, u32::MAX], epoch: u32::MAX, ..Default::default() };
        s.begin(2);
        assert_eq!(s.epoch, 1);
        assert_eq!(s.stamps, vec![0, 0], "wraparound must clear stale stamps");
        assert!(s.mark(VertexId::new(0)));
        assert!(!s.mark(VertexId::new(0)));
    }

    #[test]
    fn out_of_range_start_is_empty_not_a_panic() {
        let (idx, _) = chain();
        assert!(lineage_over(
            &idx,
            VertexId::new(10_000),
            LineageDirection::Ancestors,
            LineageBound::Unbounded
        )
        .is_empty());
    }
}
