//! The columnar on-disk snapshot: a checksummed, whole-graph image written
//! by compaction so recovery replays only the WAL suffix.
//!
//! The format itself lives in [`super::column`]: a `PROVSEG1` image with a
//! CRC'd directory of per-column segments (interner, vertices, edges,
//! vprops, eprops, indexes), each independently offset/length/CRC-addressed
//! so recovery can range-read columns on demand. This module keeps the
//! stable whole-image entry points: [`encode`] writes the full image,
//! [`decode`] materializes every segment eagerly — any corrupted byte fails
//! the decode. The lazy path ([`super::column::recover_snapshot`] with
//! [`super::SnapshotDecode::Lazy`]) defers the property segments until
//! first touch.
//!
//! Decoding replays the columns through the ordinary [`ProvGraph`] mutators,
//! which rebuilds every derived structure (adjacency, kind/name indexes,
//! backfilled property indexes) and reproduces the graph exactly — the same
//! guarantee WAL replay gives, shared by construction.
//!
//! A snapshot is written atomically (temp file + rename), so a damaged
//! snapshot is never a torn write — decode failures are corruption
//! ([`crate::StoreError::CorruptLog`] upstream), not something to truncate.

use super::column;
use crate::graph::ProvGraph;

/// Encode `graph` (whose durable state ends at commit `seq`) as a snapshot
/// image.
pub fn encode(graph: &ProvGraph, seq: u64) -> Vec<u8> {
    column::encode(graph, seq)
}

/// Decode a snapshot image back into a graph (journaling off) and the commit
/// sequence number it covers, materializing every segment. Every failure
/// names the first malformed field.
pub fn decode(bytes: &[u8]) -> Result<(ProvGraph, u64), String> {
    column::decode_eager(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{EdgeId, EdgeKind, PropValue, VertexKind};

    fn rich_graph() -> ProvGraph {
        let mut g = ProvGraph::new();
        let data = g.add_entity("data-v1");
        let alice = g.add_agent("alice");
        let train = g.add_activity("train");
        let weights = g.add_vertex(VertexKind::Entity, None).unwrap(); // unnamed
        g.add_edge(EdgeKind::Used, train, data).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, weights, train).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, train, alice).unwrap();
        g.set_vprop(data, "filename", "data");
        g.set_vprop(data, "version", 1i64);
        g.set_vprop(weights, "acc", 0.75);
        g.set_vprop(weights, "keep", true);
        g.set_eprop(EdgeId::new(0), "role", "input");
        g.create_vprop_index(VertexKind::Entity, "filename");
        g.key("interned-but-unused");
        g
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let g = rich_graph();
        let bytes = encode(&g, 42);
        let (decoded, seq) = decode(&bytes).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(decoded, g);
        decoded.validate().unwrap();
        // Exactness includes interner ids and declared indexes.
        assert_eq!(decoded.key_id("interned-but-unused"), g.key_id("interned-but-unused"));
        assert_eq!(decoded.declared_vprop_indexes(), g.declared_vprop_indexes());
        // The backfilled index answers like the original.
        assert_eq!(
            decoded.find_by_prop(VertexKind::Entity, "filename", &PropValue::from("data")),
            g.find_by_prop(VertexKind::Entity, "filename", &PropValue::from("data")),
        );
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = ProvGraph::new();
        let bytes = encode(&g, 0);
        let (decoded, seq) = decode(&bytes).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(decoded, g);
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let g = rich_graph();
        let bytes = encode(&g, 7);
        // Flip one bit in every byte: magic, directory, and segment corruption
        // must all surface as decode errors, never as a silently different
        // graph.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match decode(&bad) {
                Err(_) => {}
                Ok((decoded, seq)) => {
                    panic!(
                        "flipping byte {i} went undetected (seq {seq}, {} vertices)",
                        decoded.vertex_count()
                    );
                }
            }
        }
        // Truncations too.
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "truncation at {cut} undetected");
        }
    }

    #[test]
    fn dangling_references_are_named() {
        let mut g = ProvGraph::new();
        g.add_entity("e");
        let mut bytes = encode(&g, 1);
        // Dangling ids inside a CRC-honest image are covered by the decoder
        // bounds checks (exercised by column.rs tests); here just check the
        // magic/short-input paths.
        bytes.truncate(4);
        assert!(decode(&bytes).unwrap_err().contains("too short"));
        assert!(decode(b"NOTASNAPxxxxxxxxyyyy").unwrap_err().contains("magic"));
    }
}
