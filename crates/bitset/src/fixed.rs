//! [`FixedBitSet`]: a plain bit set over a fixed universe (`java.util.BitSet`
//! analogue used by the paper's fast-set variant of CflrB and SimProvAlg).

use crate::traits::FastSet;

const WORD_BITS: usize = 64;

/// A fixed-universe bit set backed by `Vec<u64>`.
///
/// * `contains`/`insert`/`remove` are `O(1)`;
/// * `collect_missing`, `union_with` are `O(universe / 64)` word-parallel passes,
///   which is the `O(n / log n)` "method of four Russians"-style bulk behaviour
///   the CflrB complexity analysis assumes.
#[derive(Clone, PartialEq, Eq)]
pub struct FixedBitSet {
    words: Vec<u64>,
    nbits: usize,
    len: usize,
}

impl FixedBitSet {
    /// Create an empty set for ids `0..nbits`.
    pub fn new(nbits: usize) -> Self {
        FixedBitSet { words: vec![0; nbits.div_ceil(WORD_BITS)], nbits, len: 0 }
    }

    /// The universe size this set was created with.
    pub fn universe(&self) -> usize {
        self.nbits
    }

    #[inline]
    fn index(x: u32) -> (usize, u64) {
        ((x as usize) / WORD_BITS, 1u64 << ((x as usize) % WORD_BITS))
    }

    #[inline]
    fn check_bounds(&self, x: u32) {
        assert!((x as usize) < self.nbits, "FixedBitSet: id {x} out of universe 0..{}", self.nbits);
    }

    /// Iterate set bits in ascending order using word scans.
    pub fn ones(&self) -> Ones<'_> {
        Ones { words: &self.words, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &FixedBitSet) {
        let mut len = 0usize;
        for (w, ow) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= *ow;
            len += w.count_ones() as usize;
        }
        // Words beyond other's length are cleared (other is smaller universe).
        if self.words.len() > other.words.len() {
            for w in &mut self.words[other.words.len()..] {
                *w = 0;
            }
        }
        self.len = len;
    }

    /// In-place difference: remove every element of `other` from `self`.
    pub fn difference_with(&mut self, other: &FixedBitSet) {
        let mut len = 0usize;
        for (w, ow) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= !*ow;
        }
        for w in &self.words {
            len += w.count_ones() as usize;
        }
        self.len = len;
    }

    /// True when `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &FixedBitSet) -> bool {
        self.words.iter().zip(other.words.iter()).all(|(a, b)| a & b == 0)
    }

    /// Project this set through a surjection: insert `map[x]` into `out` for
    /// every element `x`. Batch primitive for quotient projections (PgSum's
    /// incremental merge rounds): `map` must cover the universe and its
    /// values must fit `out`'s universe.
    pub fn remap_into(&self, map: &[u32], out: &mut FixedBitSet) {
        for (i, &word) in self.words.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                out.insert(map[i * WORD_BITS + bit]);
            }
        }
    }

    /// First (smallest) element, if any.
    pub fn min_elem(&self) -> Option<u32> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some((i * WORD_BITS + w.trailing_zeros() as usize) as u32);
            }
        }
        None
    }
}

impl std::fmt::Debug for FixedBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.ones()).finish()
    }
}

/// Iterator over the set bits of a [`FixedBitSet`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some((self.word_idx * WORD_BITS + bit) as u32)
    }
}

impl FastSet for FixedBitSet {
    fn with_universe(universe: usize) -> Self {
        FixedBitSet::new(universe)
    }

    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn contains(&self, x: u32) -> bool {
        if (x as usize) >= self.nbits {
            return false;
        }
        let (w, m) = Self::index(x);
        self.words[w] & m != 0
    }

    #[inline]
    fn insert(&mut self, x: u32) -> bool {
        self.check_bounds(x);
        let (w, m) = Self::index(x);
        let newly = self.words[w] & m == 0;
        self.words[w] |= m;
        self.len += newly as usize;
        newly
    }

    #[inline]
    fn remove(&mut self, x: u32) -> bool {
        if (x as usize) >= self.nbits {
            return false;
        }
        let (w, m) = Self::index(x);
        let present = self.words[w] & m != 0;
        self.words[w] &= !m;
        self.len -= present as usize;
        present
    }

    fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    fn collect_missing(&self, other: &Self, out: &mut Vec<u32>) {
        for (i, &ow) in other.words.iter().enumerate() {
            let sw = self.words.get(i).copied().unwrap_or(0);
            let mut missing = ow & !sw;
            while missing != 0 {
                let bit = missing.trailing_zeros() as usize;
                missing &= missing - 1;
                out.push((i * WORD_BITS + bit) as u32);
            }
        }
    }

    fn union_with(&mut self, other: &Self) {
        assert!(
            other.nbits <= self.nbits,
            "FixedBitSet::union_with: incompatible universes ({} > {})",
            other.nbits,
            self.nbits
        );
        let mut len = 0usize;
        for (w, ow) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= *ow;
        }
        for w in &self.words {
            len += w.count_ones() as usize;
        }
        self.len = len;
    }

    fn insert_returning_new(&mut self, xs: &[u32], out: &mut Vec<u32>) {
        for &x in xs {
            self.check_bounds(x);
            let (w, m) = Self::index(x);
            if self.words[w] & m == 0 {
                self.words[w] |= m;
                self.len += 1;
                out.push(x);
            }
        }
    }

    fn for_each_elem(&self, f: &mut dyn FnMut(u32)) {
        for (i, &word) in self.words.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let bit = word.trailing_zeros();
                word &= word - 1;
                f((i * WORD_BITS) as u32 + bit);
            }
        }
    }

    fn iter_elems(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        Box::new(self.ones())
    }

    fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = FixedBitSet::new(200);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        assert!(!s.insert(199));
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_vec(), vec![0, 64, 199]);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_bounds_panics() {
        let mut s = FixedBitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn contains_out_of_bounds_is_false() {
        let s = FixedBitSet::new(10);
        assert!(!s.contains(1_000_000));
    }

    #[test]
    fn ones_iterates_in_order_across_words() {
        let mut s = FixedBitSet::new(300);
        for x in [5u32, 64, 65, 128, 256, 299] {
            s.insert(x);
        }
        assert_eq!(s.to_vec(), vec![5, 64, 65, 128, 256, 299]);
    }

    #[test]
    fn collect_missing_matches_naive() {
        let mut a = FixedBitSet::new(130);
        let mut b = FixedBitSet::new(130);
        for x in 0..130u32 {
            if x % 3 == 0 {
                a.insert(x);
            }
            if x % 2 == 0 {
                b.insert(x);
            }
        }
        let mut out = Vec::new();
        a.collect_missing(&b, &mut out);
        let expect: Vec<u32> = (0..130).filter(|x| x % 2 == 0 && x % 3 != 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn union_and_intersection_and_difference() {
        let mut a = FixedBitSet::new(100);
        let mut b = FixedBitSet::new(100);
        for x in [1u32, 2, 3, 50] {
            a.insert(x);
        }
        for x in [3u32, 50, 99] {
            b.insert(x);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3, 50, 99]);
        assert_eq!(u.len(), 5);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![3, 50]);
        assert_eq!(i.len(), 2);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 2]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn disjoint_and_min() {
        let mut a = FixedBitSet::new(64);
        let mut b = FixedBitSet::new(64);
        a.insert(10);
        b.insert(11);
        assert!(a.is_disjoint(&b));
        b.insert(10);
        assert!(!a.is_disjoint(&b));
        assert_eq!(a.min_elem(), Some(10));
        assert_eq!(FixedBitSet::new(8).min_elem(), None);
    }

    #[test]
    fn batch_insert_reports_only_fresh_elements() {
        let mut s = FixedBitSet::new(200);
        s.insert(64);
        let mut fresh = Vec::new();
        s.insert_returning_new(&[63, 64, 65, 63], &mut fresh);
        assert_eq!(fresh, vec![63, 65]);
        assert_eq!(s.len(), 3);
        let mut seen = Vec::new();
        s.for_each_elem(&mut |x| seen.push(x));
        assert_eq!(seen, vec![63, 64, 65]);
    }

    #[test]
    fn remap_into_projects_through_surjection() {
        let mut s = FixedBitSet::new(6);
        for x in [0u32, 2, 3, 5] {
            s.insert(x);
        }
        // 0,1 -> 0; 2,3 -> 1; 4,5 -> 2.
        let map = [0u32, 0, 1, 1, 2, 2];
        let mut out = FixedBitSet::new(3);
        s.remap_into(&map, &mut out);
        assert_eq!(out.to_vec(), vec![0, 1, 2]);
        // Collisions collapse (2 and 3 both map to 1) and len stays exact.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn clear_resets() {
        let mut s = FixedBitSet::new(64);
        s.insert(1);
        s.insert(2);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.to_vec(), Vec::<u32>::new());
    }
}
