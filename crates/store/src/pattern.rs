//! A small Cypher-flavoured pattern/path matching engine.
//!
//! The paper argues that the *standard graph query model* — basic pattern
//! matching (BPM) and regular path queries (RPQ) with path variables — is what
//! popular property graph databases offer, and that it is insufficient (and
//! catastrophically slow) for segmentation queries (Sec. I, III-B, Fig. 5(a)).
//! To reproduce that comparison honestly we implement the same facility our
//! store would offer a user: node patterns, variable-length relationship
//! patterns, and *materialized path variables* (every matching path is held,
//! exactly like Neo4j's `match p1=(b:E)<-[:U|G*]-(e1:E) with p1 ...` plan).
//!
//! The exponential blow-up of enumerate-then-join is intrinsic to this model,
//! which is precisely the paper's point; the [`Budget`] guard lets benchmarks
//! report DNF instead of hanging.

use crate::graph::ProvGraph;
use prov_model::{EdgeId, EdgeKind, PropValue, VertexId, VertexKind};

/// Node predicate of a pattern (`(x:Kind {key: value, ...})`).
///
/// Serializable so patterns can ride the wire `Query` envelope; every field
/// defaults so `{}` deserializes to the match-anything spec.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NodeSpec {
    /// Required vertex kind, if any.
    #[serde(default)]
    pub kind: Option<VertexKind>,
    /// Required vertex name, if any.
    #[serde(default)]
    pub name: Option<String>,
    /// Required property equalities.
    #[serde(default)]
    pub props: Vec<(String, PropValue)>,
    /// Restrict to these ids (`where id(x) in [...]`), if set.
    #[serde(default)]
    pub ids: Option<Vec<VertexId>>,
}

impl NodeSpec {
    /// Any vertex.
    pub fn any() -> Self {
        Self::default()
    }

    /// A vertex of `kind`.
    pub fn of_kind(kind: VertexKind) -> Self {
        NodeSpec { kind: Some(kind), ..Self::default() }
    }

    /// Restrict to explicit ids.
    pub fn with_ids(mut self, ids: Vec<VertexId>) -> Self {
        self.ids = Some(ids);
        self
    }

    /// Require a property equality.
    pub fn with_prop(mut self, key: &str, value: impl Into<PropValue>) -> Self {
        self.props.push((key.to_string(), value.into()));
        self
    }

    /// Evaluate the predicate on `v`.
    pub fn matches(&self, graph: &ProvGraph, v: VertexId) -> bool {
        if let Some(k) = self.kind {
            if graph.vertex_kind(v) != k {
                return false;
            }
        }
        if let Some(n) = &self.name {
            if graph.vertex_name(v) != Some(n.as_str()) {
                return false;
            }
        }
        if let Some(ids) = &self.ids {
            if !ids.contains(&v) {
                return false;
            }
        }
        self.props.iter().all(|(key, want)| graph.vprop(v, key) == Some(want))
    }
}

/// Edge traversal direction in a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PatternDir {
    /// `-[...]->` — follow stored orientation.
    Forward,
    /// `<-[...]-` — follow reversed orientation.
    Backward,
    /// `-[...]-` — either orientation.
    Either,
}

/// Relationship predicate with optional variable length
/// (`-[:U|G*min..max]->`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RelSpec {
    /// Allowed relationship kinds (empty = all kinds).
    pub kinds: Vec<EdgeKind>,
    /// Traversal direction.
    pub dir: PatternDir,
    /// Minimum number of hops (0 allows the empty expansion).
    pub min_hops: u32,
    /// Maximum number of hops (use [`RelSpec::UNBOUNDED`] for `*`).
    pub max_hops: u32,
}

impl RelSpec {
    /// Effectively unbounded hop count (`*` in Cypher). Bounded in practice by
    /// the DAG's longest path and the evaluation budget.
    pub const UNBOUNDED: u32 = u32::MAX;

    /// Single-hop relationship of the given kinds.
    pub fn one(kinds: &[EdgeKind], dir: PatternDir) -> Self {
        RelSpec { kinds: kinds.to_vec(), dir, min_hops: 1, max_hops: 1 }
    }

    /// Variable-length relationship (`*1..` when `max = UNBOUNDED`).
    pub fn star(kinds: &[EdgeKind], dir: PatternDir, min_hops: u32, max_hops: u32) -> Self {
        RelSpec { kinds: kinds.to_vec(), dir, min_hops, max_hops }
    }

    fn kind_ok(&self, kind: EdgeKind) -> bool {
        self.kinds.is_empty() || self.kinds.contains(&kind)
    }
}

/// A linear path pattern: `start (rel node)*`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PathPattern {
    /// Start node predicate.
    pub start: NodeSpec,
    /// Alternating relationship/node predicates.
    #[serde(default)]
    pub steps: Vec<(RelSpec, NodeSpec)>,
}

impl PathPattern {
    /// Pattern with only a start node.
    pub fn node(start: NodeSpec) -> Self {
        PathPattern { start, steps: Vec::new() }
    }

    /// Append a step.
    pub fn then(mut self, rel: RelSpec, node: NodeSpec) -> Self {
        self.steps.push((rel, node));
        self
    }
}

/// A materialized path (Cypher path variable): alternating vertex/edge ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedPath {
    /// Vertices in order (length = edges + 1).
    pub vertices: Vec<VertexId>,
    /// Edges in traversal order.
    pub edges: Vec<EdgeId>,
}

impl MaterializedPath {
    /// Number of hops.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for single-vertex paths.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The label word of the path: alternating vertex-kind and edge-kind
    /// letters including a direction sign for reversed traversals
    /// (used by the naive join in the Cypher baseline).
    pub fn label_word(&self, graph: &ProvGraph) -> String {
        let mut w = String::with_capacity(self.vertices.len() * 2);
        for (i, &v) in self.vertices.iter().enumerate() {
            w.push(graph.vertex_kind(v).letter());
            if i < self.edges.len() {
                let e = graph.edge(self.edges[i]);
                w.push(e.kind.letter());
                // Mark traversal orientation: '>' forward, '<' backward.
                w.push(if e.src == self.vertices[i] { '>' } else { '<' });
            }
        }
        w
    }
}

/// Evaluation budget: caps the number of expansions and materialized paths so
/// benchmarks can report DNF like the paper's ">12h" entries.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum number of search-tree node expansions.
    pub max_expansions: u64,
    /// Maximum number of materialized paths.
    pub max_paths: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget { max_expansions: 50_000_000, max_paths: 5_000_000 }
    }
}

/// Outcome of a pattern query.
#[derive(Debug, Clone)]
pub enum MatchOutcome {
    /// All matching paths, complete.
    Complete(Vec<MaterializedPath>),
    /// The budget was exhausted (paths found so far are returned).
    BudgetExhausted(Vec<MaterializedPath>),
}

impl MatchOutcome {
    /// Paths found (complete or not).
    pub fn paths(&self) -> &[MaterializedPath] {
        match self {
            MatchOutcome::Complete(p) | MatchOutcome::BudgetExhausted(p) => p,
        }
    }

    /// True when evaluation finished within budget.
    pub fn is_complete(&self) -> bool {
        matches!(self, MatchOutcome::Complete(_))
    }
}

/// Enumerate every path matching `pattern`, holding all of them in memory
/// (exactly the path-variable semantics the paper measured in Neo4j).
///
/// Paths may revisit vertices only when no cycle results (the provenance graph
/// is a DAG, and we additionally forbid repeating an *edge* within a single
/// variable-length expansion, matching Cypher's relationship-uniqueness rule).
pub fn match_paths(graph: &ProvGraph, pattern: &PathPattern, budget: Budget) -> MatchOutcome {
    let mut out = Vec::new();
    let mut expansions: u64 = 0;
    let starts: Vec<VertexId> = match &pattern.start.ids {
        Some(ids) => ids.clone(),
        None => graph.vertex_ids().collect(),
    };
    let mut exhausted = false;
    'outer: for s in starts {
        if !pattern.start.matches(graph, s) {
            continue;
        }
        let mut path = MaterializedPath { vertices: vec![s], edges: Vec::new() };
        if !extend(graph, pattern, 0, &mut path, &mut out, &mut expansions, budget) {
            exhausted = true;
            break 'outer;
        }
    }
    if exhausted {
        MatchOutcome::BudgetExhausted(out)
    } else {
        MatchOutcome::Complete(out)
    }
}

/// Recursive expansion of step `step_idx`; returns false when out of budget.
fn extend(
    graph: &ProvGraph,
    pattern: &PathPattern,
    step_idx: usize,
    path: &mut MaterializedPath,
    out: &mut Vec<MaterializedPath>,
    expansions: &mut u64,
    budget: Budget,
) -> bool {
    *expansions += 1;
    if *expansions > budget.max_expansions || out.len() >= budget.max_paths {
        return false;
    }
    if step_idx == pattern.steps.len() {
        out.push(path.clone());
        return true;
    }
    let (rel, node) = &pattern.steps[step_idx];
    expand_rel(graph, pattern, step_idx, rel, node, 0, path, out, expansions, budget)
}

#[allow(clippy::too_many_arguments)]
fn expand_rel(
    graph: &ProvGraph,
    pattern: &PathPattern,
    step_idx: usize,
    rel: &RelSpec,
    node: &NodeSpec,
    hops_done: u32,
    path: &mut MaterializedPath,
    out: &mut Vec<MaterializedPath>,
    expansions: &mut u64,
    budget: Budget,
) -> bool {
    *expansions += 1;
    if *expansions > budget.max_expansions || out.len() >= budget.max_paths {
        return false;
    }
    let here = *path.vertices.last().expect("path has a head");
    // Accept the current position as the step's endpoint when enough hops done.
    if hops_done >= rel.min_hops
        && node.matches(graph, here)
        && !extend(graph, pattern, step_idx + 1, path, out, expansions, budget)
    {
        return false;
    }
    if hops_done >= rel.max_hops {
        return true;
    }
    // Forward expansion.
    if matches!(rel.dir, PatternDir::Forward | PatternDir::Either) {
        for (eid, e) in graph.out_edges(here) {
            if rel.kind_ok(e.kind) && !path.edges.contains(&eid) {
                path.vertices.push(e.dst);
                path.edges.push(eid);
                let ok = expand_rel(
                    graph,
                    pattern,
                    step_idx,
                    rel,
                    node,
                    hops_done + 1,
                    path,
                    out,
                    expansions,
                    budget,
                );
                path.vertices.pop();
                path.edges.pop();
                if !ok {
                    return false;
                }
            }
        }
    }
    // Backward expansion.
    if matches!(rel.dir, PatternDir::Backward | PatternDir::Either) {
        for (eid, e) in graph.in_edges(here) {
            if rel.kind_ok(e.kind) && !path.edges.contains(&eid) {
                path.vertices.push(e.src);
                path.edges.push(eid);
                let ok = expand_rel(
                    graph,
                    pattern,
                    step_idx,
                    rel,
                    node,
                    hops_done + 1,
                    path,
                    out,
                    expansions,
                    budget,
                );
                path.vertices.pop();
                path.edges.pop();
                if !ok {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dataset <- train -> ...: the Fig. 2 shape in miniature.
    fn mini() -> (ProvGraph, VertexId, VertexId, VertexId, VertexId) {
        let mut g = ProvGraph::new();
        let d = g.add_entity("dataset");
        let m = g.add_entity("model");
        let t = g.add_activity("train");
        let w = g.add_entity("weights");
        g.add_edge(EdgeKind::Used, t, d).unwrap();
        g.add_edge(EdgeKind::Used, t, m).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
        (g, d, m, t, w)
    }

    #[test]
    fn node_spec_filters() {
        let (g, d, _, t, _) = mini();
        assert!(NodeSpec::of_kind(VertexKind::Entity).matches(&g, d));
        assert!(!NodeSpec::of_kind(VertexKind::Entity).matches(&g, t));
        let named = NodeSpec { name: Some("dataset".into()), ..NodeSpec::default() };
        assert!(named.matches(&g, d));
        let byid = NodeSpec::any().with_ids(vec![t]);
        assert!(byid.matches(&g, t) && !byid.matches(&g, d));
    }

    #[test]
    fn prop_predicates() {
        let (mut g, d, ..) = mini();
        g.set_vprop(d, "fmt", "csv");
        let spec = NodeSpec::any().with_prop("fmt", "csv");
        assert!(spec.matches(&g, d));
        let spec2 = NodeSpec::any().with_prop("fmt", "parquet");
        assert!(!spec2.matches(&g, d));
    }

    #[test]
    fn single_hop_match() {
        let (g, d, m, t, _) = mini();
        // (a:Activity)-[:U]->(e:Entity)
        let pat = PathPattern::node(NodeSpec::of_kind(VertexKind::Activity)).then(
            RelSpec::one(&[EdgeKind::Used], PatternDir::Forward),
            NodeSpec::of_kind(VertexKind::Entity),
        );
        let res = match_paths(&g, &pat, Budget::default());
        assert!(res.is_complete());
        let mut ends: Vec<VertexId> =
            res.paths().iter().map(|p| *p.vertices.last().unwrap()).collect();
        ends.sort();
        assert_eq!(ends, vec![d, m]);
        assert!(res.paths().iter().all(|p| p.vertices[0] == t));
    }

    #[test]
    fn variable_length_backward_match() {
        let (g, d, _, _, w) = mini();
        // match p = (b)<-[:U|G*]-(e) — ancestry paths INTO d, i.e. traversing
        // U/G edges backwards from d. weights-G->train-U->dataset gives the
        // 2-hop path from d backwards to w.
        let pat = PathPattern::node(NodeSpec::any().with_ids(vec![d])).then(
            RelSpec::star(
                &[EdgeKind::Used, EdgeKind::WasGeneratedBy],
                PatternDir::Backward,
                1,
                RelSpec::UNBOUNDED,
            ),
            NodeSpec::of_kind(VertexKind::Entity),
        );
        let res = match_paths(&g, &pat, Budget::default());
        assert!(res.is_complete());
        let ends: Vec<VertexId> = res.paths().iter().map(|p| *p.vertices.last().unwrap()).collect();
        assert!(ends.contains(&w), "2-hop backward path to weights expected, got {ends:?}");
    }

    #[test]
    fn label_word_marks_direction() {
        let (g, d, ..) = mini();
        let pat = PathPattern::node(NodeSpec::any().with_ids(vec![d])).then(
            RelSpec::star(&[EdgeKind::Used], PatternDir::Backward, 1, 1),
            NodeSpec::of_kind(VertexKind::Activity),
        );
        let res = match_paths(&g, &pat, Budget::default());
        assert_eq!(res.paths().len(), 1);
        assert_eq!(res.paths()[0].label_word(&g), "EU<A");
    }

    #[test]
    fn zero_hop_allows_identity() {
        let (g, d, ..) = mini();
        let pat = PathPattern::node(NodeSpec::any().with_ids(vec![d]))
            .then(RelSpec::star(&[], PatternDir::Either, 0, 0), NodeSpec::any());
        let res = match_paths(&g, &pat, Budget::default());
        assert_eq!(res.paths().len(), 1);
        assert!(res.paths()[0].is_empty());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let (g, ..) = mini();
        let pat = PathPattern::node(NodeSpec::any())
            .then(RelSpec::star(&[], PatternDir::Either, 0, RelSpec::UNBOUNDED), NodeSpec::any());
        let res = match_paths(&g, &pat, Budget { max_expansions: 3, max_paths: 10 });
        assert!(!res.is_complete());
    }
}
