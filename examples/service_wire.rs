//! The service layer end to end, entirely over serialized requests: ingest a
//! small training project, open an interactive PgSeg session, adjust it
//! (expand + restrict), summarize with PgSum, walk lineage, and export —
//! every step a JSON string through [`prov::api::ProvService::handle_json`],
//! exactly as a network transport would drive it.
//!
//! ```sh
//! cargo run --release --example service_wire
//! ```

use prov::api::ProvService;

/// Send one JSON request, print the exchange, return the raw response.
fn send(service: &mut ProvService, request: &str) -> String {
    let response = service.handle_json(request);
    let shown = if response.len() > 120 { &response[..120] } else { &response };
    println!("--> {request}");
    println!("<-- {shown}{}", if response.len() > 120 { "…" } else { "" });
    assert!(!response.starts_with("{\"Error\""), "request failed: {response}");
    response
}

fn main() {
    let mut service = ProvService::new();

    // ---- Ingest: agents, a dataset, three training iterations ----------
    println!("# ingest");
    send(&mut service, r#"{"AddAgent": {"name": "alice"}}"#);
    send(&mut service, r#"{"AddAgent": {"name": "bob"}}"#);
    send(&mut service, r#"{"AddArtifact": {"artifact": "data", "attributed_to": "alice"}}"#);
    for (step, agent, acc) in [(0, "alice", 0.61), (1, "alice", 0.68), (2, "bob", 0.74)] {
        let inputs = if step == 0 {
            r#"["data-v1"]"#.to_string()
        } else {
            format!(r#"["data-v1", "weights-v{step}"]"#)
        };
        send(
            &mut service,
            &format!(
                r#"{{"RecordActivity": {{
                     "command": "train --step {step}",
                     "agent": "{agent}",
                     "inputs": {inputs},
                     "outputs": [{{"artifact": "weights", "props": [["acc", {acc}]]}},
                                 {{"artifact": "log"}}],
                     "props": [["step", {step}]]}}}}"#
            ),
        );
    }

    // ---- Interactive segmentation: induce once, adjust repeatedly ------
    println!("\n# segment (interactive session)");
    let opened =
        send(&mut service, r#"{"OpenSession": {"src": ["weights-v1"], "dst": ["weights-v3"]}}"#);
    assert!(opened.contains("\"Session\""));

    // Adjust 1: pull the dataset's derivation context in (bx(Vx, k)).
    send(&mut service, r#"{"Expand": {"session": 0, "roots": ["weights-v1"], "k": 1}}"#);

    // Adjust 2: drop the agents — keep the data story only.
    let restricted = send(
        &mut service,
        r#"{"Restrict": {"session": 0,
             "boundary": {"vertex": [{"ExcludeKind": "Agent"}]}}}"#,
    );
    assert!(!restricted.contains("alice"), "agents were excluded");

    // A second, independent session over a different window: the registry
    // holds both, addressed by id.
    send(&mut service, r#"{"OpenSession": {"src": ["data-v1"], "dst": ["weights-v2"]}}"#);

    // ---- Summarize the two sessions' segments with PgSum ---------------
    println!("\n# summarize");
    let summary = send(&mut service, r#"{"Summarize": {"sessions": [0, 1]}}"#);
    assert!(summary.contains("\"segment_count\":2"));

    // ---- Lineage + interchange -----------------------------------------
    println!("\n# lineage & export");
    let lineage =
        send(&mut service, r#"{"Lineage": {"entity": "weights-v3", "direction": "Ancestors"}}"#);
    assert!(lineage.contains("\"Lineage\""));
    send(&mut service, r#"{"CloseSession": {"session": 0}}"#);
    let exported = send(&mut service, r#"{"Export": {}}"#);
    assert!(exported.contains("\"Document\""));

    println!("\nservice wire loop OK ({} live session)", service.session_count());
}
