//! Cross-crate pipeline tests on generated workloads: Pd graphs flow through
//! segmentation (all evaluators agreeing) into summarization, and survive the
//! JSON interchange.

use prov_bitset::SetBackend;
use prov_segment::{evaluate_similarity, MaskedGraph, PgSegOptions, PgSegQuery, SimilarEvaluator};
use prov_store::{ProvGraph, ProvIndex};
use prov_summary::{PgSumQuery, PropertyAggregation, SegmentRef};
use prov_workload::{generate_pd, generate_sd, standard_query, PdParams, SdParams};

#[test]
fn pd_graph_segmentation_evaluators_agree_at_scale() {
    let graph = generate_pd(&PdParams::with_size(800));
    let index = ProvIndex::build(&graph);
    let view = MaskedGraph::unmasked(&index);
    let (vsrc, vdst) = standard_query(&graph, 2);

    let mut answers = Vec::new();
    for evaluator in [
        SimilarEvaluator::CflrB(SetBackend::Bit),
        SimilarEvaluator::SimProvAlg(SetBackend::Bit),
        SimilarEvaluator::SimProvAlg(SetBackend::Compressed),
        SimilarEvaluator::SimProvTst,
    ] {
        let opts = PgSegOptions { evaluator, ..PgSegOptions::default() };
        answers.push((evaluator, evaluate_similarity(&view, &vsrc, &vdst, &opts).answer));
    }
    for w in answers.windows(2) {
        assert_eq!(w[0].1, w[1].1, "{:?} vs {:?}", w[0].0, w[1].0);
    }
    assert!(!answers[0].1.is_empty(), "standard query must connect");
}

#[test]
fn pd_end_to_end_segment_then_summarize() {
    let graph = generate_pd(&PdParams::with_size(400));
    let index = ProvIndex::build(&graph);
    let (vsrc, vdst) = standard_query(&graph, 2);
    let seg = prov_segment::pgseg(
        &graph,
        &index,
        PgSegQuery::between(vsrc, vdst),
        &PgSegOptions::default(),
    )
    .unwrap();
    assert!(seg.vertex_count() > 4);

    // Summarize the single segment against itself (degenerate but valid).
    let psg = prov_summary::pgsum(
        &graph,
        &[SegmentRef::from(&seg)],
        &PgSumQuery::new(PropertyAggregation::ignore_all(), 0),
    );
    assert!(psg.vertex_count() <= seg.vertex_count());
    assert!(psg.compaction_ratio() <= 1.0);
}

#[test]
fn sd_segments_summarize_with_correct_frequencies() {
    let out = generate_sd(&SdParams { num_segments: 6, n: 8, ..SdParams::default() });
    let segments: Vec<SegmentRef> =
        out.segments.iter().map(|s| SegmentRef::new(s.vertices.clone(), s.edges.clone())).collect();
    for seg in &segments {
        seg.validate(&out.graph).unwrap();
    }
    let psg = prov_summary::pgsum(
        &out.graph,
        &segments,
        &PgSumQuery::new(
            PropertyAggregation::ignore_all()
                .with_keys(prov_model::VertexKind::Activity, &["command"]),
            0,
        ),
    );
    assert_eq!(psg.segment_count, 6);
    for e in &psg.edges {
        let scaled = e.frequency * 6.0;
        assert!((scaled - scaled.round()).abs() < 1e-9, "γ multiples of 1/|S|");
    }
    // pSum never beats PgSum.
    let ps = prov_summary::psum_baseline(
        &out.graph,
        &segments,
        &PgSumQuery::new(PropertyAggregation::ignore_all(), 0),
    );
    assert!(psg.compaction_ratio() <= ps.compaction_ratio + 1e-12);
}

#[test]
fn pd_graph_survives_json_round_trip() {
    let graph = generate_pd(&PdParams::with_size(300));
    let json = prov_store::json::to_json_string(&graph);
    let back: ProvGraph = prov_store::json::from_json_string(&json).unwrap();
    assert_eq!(back.vertex_count(), graph.vertex_count());
    assert_eq!(back.edge_count(), graph.edge_count());
    // Segmentation answers identical on the round-tripped graph.
    let (vsrc, vdst) = standard_query(&graph, 2);
    let a = {
        let idx = ProvIndex::build(&graph);
        let view = MaskedGraph::unmasked(&idx);
        evaluate_similarity(&view, &vsrc, &vdst, &PgSegOptions::default()).answer
    };
    let b = {
        let idx = ProvIndex::build(&back);
        let view = MaskedGraph::unmasked(&idx);
        evaluate_similarity(&view, &vsrc, &vdst, &PgSegOptions::default()).answer
    };
    assert_eq!(a, b);
}

#[test]
fn early_stopping_saves_work_on_late_sources() {
    use prov_segment::{similar_tst, TstConfig};
    let graph = generate_pd(&PdParams::with_size(3000));
    let index = ProvIndex::build(&graph);
    let view = MaskedGraph::unmasked(&index);
    let (_, vdst) = standard_query(&graph, 2);
    let late_src = prov_workload::sources_at_percentile(&graph, 80.0, 2);
    let early_src = prov_workload::sources_at_percentile(&graph, 0.0, 2);

    let cfg_on = TstConfig { early_stop: true, max_levels: None, compressed_sets: false };
    let cfg_off = TstConfig { early_stop: false, max_levels: None, compressed_sets: false };
    // Late sources: pruned run does much less work.
    let late_on = similar_tst(&view, &late_src, &vdst, &cfg_on);
    let late_off = similar_tst(&view, &late_src, &vdst, &cfg_off);
    assert_eq!(late_on.answer, late_off.answer);
    assert!(late_on.stats.work <= late_off.stats.work);
    // Early sources: both explore roughly everything.
    let early_on = similar_tst(&view, &early_src, &vdst, &cfg_on);
    let early_off = similar_tst(&view, &early_src, &vdst, &cfg_off);
    assert_eq!(early_on.answer, early_off.answer);
}
