//! The seed Gauss–Seidel bitset simulation fixpoint, frozen as a reference.
//!
//! [`crate::simulation::simulation`] was rebuilt around a counting-based
//! Henzinger–Henzinger–Kopke worklist (ISSUE 4). This module preserves the
//! original sweep-until-stable implementation verbatim so that:
//!
//! * the differential property tests can assert the rewrite computes the
//!   byte-identical preorder on every input, and
//! * the `fig6` benchmark trajectory (`BENCH_fig6.json`) keeps a reference
//!   series to measure the rewrite against.
//!
//! Do not optimize this module — its value is being the fixed point the hot
//! path is compared to.

use crate::simulation::{SimDirection, SimRelation};
use crate::union::G0;
use prov_bitset::{FastSet, FixedBitSet};
use prov_store::hash::FxHashMap;

/// Compute the simulation preorder over `g0` with the seed sweep fixpoint.
#[allow(clippy::needless_range_loop)] // v indexes three parallel arrays
pub fn simulation_reference(g0: &G0, direction: SimDirection) -> SimRelation {
    let n = g0.len();
    let adj = match direction {
        SimDirection::Out => &g0.out_adj,
        SimDirection::In => &g0.in_adj,
    };

    // children_by_kind[v][kind] = bitset of v's children via edges of `kind`.
    const KINDS: usize = 5;
    let mut children_by_kind: Vec<[Option<Box<FixedBitSet>>; KINDS]> = Vec::with_capacity(n);
    for v in 0..n {
        let mut per: [Option<Box<FixedBitSet>>; KINDS] = Default::default();
        for &(k, c) in &adj[v] {
            per[k as usize].get_or_insert_with(|| Box::new(FixedBitSet::new(n))).insert(c);
        }
        children_by_kind.push(per);
    }

    // Init: sim[v] = all nodes with v's class.
    let mut by_class: FxHashMap<crate::union::ClassId, FixedBitSet> = FxHashMap::default();
    for v in 0..n as u32 {
        by_class.entry(g0.class(v)).or_insert_with(|| FixedBitSet::new(n)).insert(v);
    }
    let mut sim: Vec<FixedBitSet> = (0..n as u32).map(|v| by_class[&g0.class(v)].clone()).collect();

    // Fixpoint: strike u from sim[v] when some labeled child of v has no
    // simulating counterpart among u's equally-labeled children.
    let mut changed = true;
    let mut strike: Vec<u32> = Vec::new();
    while changed {
        changed = false;
        for v in 0..n {
            strike.clear();
            'candidates: for u in sim[v].ones() {
                if u as usize == v {
                    continue;
                }
                for &(k, c) in &adj[v] {
                    let ok = match &children_by_kind[u as usize][k as usize] {
                        None => false,
                        Some(uc) => !uc.is_disjoint(&sim[c as usize]),
                    };
                    if !ok {
                        strike.push(u);
                        continue 'candidates;
                    }
                }
            }
            if !strike.is_empty() {
                changed = true;
                for &u in &strike {
                    sim[v].remove(u);
                }
            }
        }
    }
    SimRelation::from_rows(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::PropertyAggregation;
    use crate::segment_ref::SegmentRef;
    use crate::union::build_g0;
    use prov_model::EdgeKind;
    use prov_store::ProvGraph;

    #[test]
    fn reference_keeps_the_seed_semantics() {
        // One segment: d <-U- t <-G- w ; second segment: d' <-U- t'.
        let mut g = ProvGraph::new();
        let d1 = g.add_entity("d");
        let t1 = g.add_activity("t");
        let w1 = g.add_entity("w");
        let e1 = g.add_edge(EdgeKind::Used, t1, d1).unwrap();
        let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
        let d2 = g.add_entity("d");
        let t2 = g.add_activity("t");
        let e3 = g.add_edge(EdgeKind::Used, t2, d2).unwrap();
        let s1 = SegmentRef::new(vec![d1, t1, w1], vec![e1, e2]);
        let s2 = SegmentRef::new(vec![d2, t2], vec![e3]);
        let g0 = build_g0(&g, &[s1, s2], &PropertyAggregation::ignore_all(), 0);
        let out = simulation_reference(&g0, SimDirection::Out);
        assert!(out.le(4, 1), "t2 ≤out t1");
        assert!(out.le(1, 4), "t1 ≤out t2");
        let inn = simulation_reference(&g0, SimDirection::In);
        assert!(inn.le(2, 0), "w1 (no in-edges) ≤in d1 vacuously");
        assert!(!inn.le(0, 2), "d1 (used by t1) not in-dominated by w1");
    }
}
