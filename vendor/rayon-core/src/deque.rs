//! Work-stealing deque used by the pool workers.
//!
//! Owner semantics are LIFO (`push`/`pop` operate on the back); thieves take
//! from the front (`steal`), so stolen work is the oldest — the classic
//! work-stealing discipline that keeps owners cache-hot while thieves pick up
//! coarse, long-lived tasks. The implementation is a mutex-guarded ring
//! buffer rather than a lock-free Chase-Lev deque: the workloads layered on
//! top push chunk-granularity jobs (hundreds of microseconds each), so the
//! uncontended lock is noise, and the mutex keeps the shim trivially sound
//! under ThreadSanitizer.

use std::collections::VecDeque;

use crate::sync::Mutex;

/// A deque with an owner end (back, LIFO) and a thief end (front, FIFO).
///
/// All methods take `&self`; any thread may act as owner or thief. The
/// owner/thief distinction is a usage convention enforced by the pool, not by
/// the type.
pub struct StealDeque<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> StealDeque<T> {
    pub fn new() -> Self {
        StealDeque { inner: Mutex::new(VecDeque::new()) }
    }

    /// Owner end: push onto the back.
    pub fn push(&self, value: T) {
        self.inner.lock().unwrap().push_back(value);
    }

    /// Owner end: pop the most recently pushed item (LIFO).
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_back()
    }

    /// Thief end: steal the oldest item (FIFO).
    pub fn steal(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_front()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }
}

impl<T> Default for StealDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}
