//! Embedded property graph store for provenance graphs.
//!
//! This crate is the Neo4j substitute of the reproduction (see `DESIGN.md` §1):
//! an in-memory, id-addressed property graph satisfying the backend assumptions
//! of the paper's query evaluation (Sec. III-B): constant-time vertex/edge
//! access by id and linear-time adjacency in both directions.
//!
//! * [`graph::ProvGraph`] — the mutable store (vertices, edges, schema-later
//!   properties, kind/name indexes, PROV validation).
//! * [`snapshot::ProvIndex`] — frozen CSR snapshot with per-relationship typed
//!   adjacency used by the query operators.
//! * [`pattern`] — Cypher-flavoured pattern/path matching with materialized
//!   path variables (the "standard graph query model" baseline).
//! * [`query`] — the composable query IR every read path compiles into:
//!   step pipelines over CSR snapshots with resumable cursors.
//! * [`json`] — PROV-JSON-style import/export.
//! * [`storage`] — the durable write-ahead log with snapshot compaction,
//!   crash recovery and deterministic fault injection.
//! * [`hash`], [`interner`] — supporting infrastructure.

pub mod error;
pub mod graph;
pub mod hash;
pub mod index;
pub mod interner;
pub mod json;
pub mod pattern;
pub mod query;
pub mod snapshot;
pub mod storage;

pub use error::{StoreError, StoreResult};
pub use graph::{DeltaCursor, EdgeRecord, GraphDelta, GraphStats, ProvGraph, VertexRecord, WalOp};
pub use pattern::{
    Budget, MatchOutcome, MaterializedPath, NodeSpec, PathPattern, PatternDir, RelSpec,
};
pub use query::{
    evaluate, evaluate_at, lower_pattern, paginate, Page, Pipeline, Plan, Project, PropFilter,
    QueryCursor, QueryOutput, QueryStats, StartSet, Step, Traverse,
};
pub use snapshot::{Csr, Direction, ProvIndex, SharedIndex};
pub use storage::{
    DurabilityCounters, DurabilityPolicy, FailpointIo, FaultPlan, Io, IoError, MemIo, Recovered,
    StdIo, Storage, WalStorage,
};
