//! Modeled doubles for the `std::sync` surface the executor uses.
//!
//! Every type here is a thin handle onto an object registered with the
//! current execution's scheduler: the data lives in an [`UnsafeCell`] guarded
//! by the *model's* mutual-exclusion invariant (the scheduler never grants a
//! `lock` on a held mutex), and every operation is a yield point the
//! scheduler interleaves exhaustively.
//!
//! All primitives must be created *inside* the model closure — object ids
//! are per-execution, and construction outside a model panics with a
//! diagnostic. `Ordering` arguments on atomics are accepted for source
//! compatibility and ignored: the model executes every atomic access
//! sequentially-consistently, which over-approximates nothing the checked
//! code relies on (the facade swap in `vendor/rayon-core` also upgrades its
//! orderings to `SeqCst` so the model and the real build agree).

use crate::exec::{self, ObjState, Op};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::LockResult;
use std::time::Duration;

pub use std::sync::Arc;

pub mod atomic;

/// Modeled mutex: locking is a scheduler decision, never an OS block.
pub struct Mutex<T> {
    id: usize,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler's baton protocol guarantees at most one thread
// executes between yield points, and a `lock` op is only ever granted on a
// free mutex — so `&mut T` handed out by the guard is exclusive.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            id: exec::register_object(ObjState::Mutex { locked: false }),
            data: UnsafeCell::new(value),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        exec::yield_point(Op::Lock(self.id));
        Ok(MutexGuard { lock: self })
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("id", &self.id).finish_non_exhaustive()
    }
}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the model mutex is held for the guard's whole lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; the guard is the unique accessor.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Unwinding through a yield point would double-panic and abort
            // the process; release the model mutex without a decision.
            exec::silent_unlock(self.lock.id);
        } else {
            exec::yield_point(Op::Unlock(self.lock.id));
        }
    }
}

/// Modeled condvar. `wait` leaves the candidate set entirely until a notify
/// re-arms the thread as a pending re-acquisition of its mutex; a *timed*
/// wait may additionally be released at quiescence (when no thread can run),
/// which models "the timeout is a safety net, never a correctness
/// dependency" — a schedule that needs the timeout to fire *earlier* than
/// total quiescence still deadlocks and fails the check.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { id: exec::register_object(ObjState::Condvar) }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        // The CvWait op releases the mutex atomically inside the scheduler;
        // the guard must not run its Unlock yield point.
        std::mem::forget(guard);
        exec::cv_wait(self.id, lock.id, false);
        Ok(MutexGuard { lock })
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let lock = guard.lock;
        std::mem::forget(guard);
        let timed_out = exec::cv_wait(self.id, lock.id, true);
        Ok((MutexGuard { lock }, WaitTimeoutResult(timed_out)))
    }

    pub fn notify_all(&self) {
        exec::yield_point(Op::CvNotify { cv: self.id, all: true });
    }

    pub fn notify_one(&self) {
        exec::yield_point(Op::CvNotify { cv: self.id, all: false });
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").field("id", &self.id).finish()
    }
}

/// Mirror of `std::sync::WaitTimeoutResult` (which is not constructible
/// outside std). The facade re-exports whichever one matches the build.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}
