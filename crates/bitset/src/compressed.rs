//! [`CompressedBitmap`]: a roaring-style compressed bitmap.
//!
//! The paper's `w CBM` variants swap the dense `BitSet` fact tables for
//! RoaringBitmap to keep the `O(n²)`-cell tables affordable on large graphs, at
//! the cost of slower random reads/writes (Sec. V(a)). Since RoaringBitmap itself
//! is not among the allowed dependencies, this module implements the same
//! two-level design from the Roaring paper (Lemire et al.):
//!
//! * the 32-bit id space is partitioned by the high 16 bits into *containers*;
//! * a container holding ≤ [`ARRAY_CONTAINER_MAX`] values stores a sorted
//!   `Vec<u16>` of the low bits (binary-searched);
//! * a denser container upgrades to a 1024-word / 65536-bit bitmap;
//! * containers downgrade back to arrays when they shrink below the threshold.

use crate::traits::FastSet;

/// Maximum cardinality of an array container before it upgrades to a bitmap
/// container (the canonical Roaring threshold).
pub const ARRAY_CONTAINER_MAX: usize = 4096;

const BITMAP_WORDS: usize = 65536 / 64;

#[derive(Clone, Debug)]
enum Container {
    /// Sorted low-16-bit values.
    Array(Vec<u16>),
    /// 65536-bit bitmap plus cardinality.
    Bitmap(Box<[u64; BITMAP_WORDS]>, u32),
}

impl Container {
    fn len(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitmap(_, n) => *n as usize,
        }
    }

    fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(v) => v.binary_search(&low).is_ok(),
            Container::Bitmap(w, _) => w[(low as usize) / 64] & (1u64 << (low % 64)) != 0,
        }
    }

    fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    v.insert(pos, low);
                    if v.len() > ARRAY_CONTAINER_MAX {
                        *self = Self::bitmap_from_sorted(v);
                    }
                    true
                }
            },
            Container::Bitmap(w, n) => {
                let (i, m) = ((low as usize) / 64, 1u64 << (low % 64));
                let newly = w[i] & m == 0;
                w[i] |= m;
                *n += newly as u32;
                newly
            }
        }
    }

    fn remove(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(pos) => {
                    v.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap(w, n) => {
                let (i, m) = ((low as usize) / 64, 1u64 << (low % 64));
                let present = w[i] & m != 0;
                w[i] &= !m;
                *n -= present as u32;
                if present && (*n as usize) <= ARRAY_CONTAINER_MAX / 2 {
                    *self = Self::array_from_bitmap(w, *n);
                }
                present
            }
        }
    }

    fn bitmap_from_sorted(values: &[u16]) -> Container {
        let mut words = Box::new([0u64; BITMAP_WORDS]);
        for &v in values {
            words[(v as usize) / 64] |= 1u64 << (v % 64);
        }
        Container::Bitmap(words, values.len() as u32)
    }

    fn array_from_bitmap(words: &[u64; BITMAP_WORDS], card: u32) -> Container {
        let mut out = Vec::with_capacity(card as usize);
        for (i, &w) in words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                out.push((i * 64 + bit) as u16);
            }
        }
        Container::Array(out)
    }

    fn for_each(&self, mut f: impl FnMut(u16)) {
        match self {
            Container::Array(v) => v.iter().copied().for_each(&mut f),
            Container::Bitmap(words, _) => {
                for (i, &w) in words.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        let bit = w.trailing_zeros() as usize;
                        w &= w - 1;
                        f((i * 64 + bit) as u16);
                    }
                }
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Container::Array(v) => v.capacity() * 2,
            Container::Bitmap(..) => BITMAP_WORDS * 8,
        }
    }
}

/// A roaring-style compressed set of `u32` ids.
#[derive(Clone, Debug, Default)]
pub struct CompressedBitmap {
    /// `(high16, container)` pairs sorted by key.
    containers: Vec<(u16, Container)>,
    len: usize,
}

impl CompressedBitmap {
    /// Create an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(x: u32) -> (u16, u16) {
        ((x >> 16) as u16, (x & 0xFFFF) as u16)
    }

    fn container_idx(&self, high: u16) -> Result<usize, usize> {
        self.containers.binary_search_by_key(&high, |(h, _)| *h)
    }

    /// Number of containers currently allocated (exposed for tests/benches).
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// True when the container holding `x` (if any) is in bitmap form.
    pub fn is_bitmap_container(&self, x: u32) -> bool {
        let (high, _) = Self::split(x);
        match self.container_idx(high) {
            Ok(i) => matches!(self.containers[i].1, Container::Bitmap(..)),
            Err(_) => false,
        }
    }
}

impl FastSet for CompressedBitmap {
    fn with_universe(_universe: usize) -> Self {
        Self::new()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn contains(&self, x: u32) -> bool {
        let (high, low) = Self::split(x);
        match self.container_idx(high) {
            Ok(i) => self.containers[i].1.contains(low),
            Err(_) => false,
        }
    }

    fn insert(&mut self, x: u32) -> bool {
        let (high, low) = Self::split(x);
        let newly = match self.container_idx(high) {
            Ok(i) => self.containers[i].1.insert(low),
            Err(pos) => {
                self.containers.insert(pos, (high, Container::Array(vec![low])));
                true
            }
        };
        self.len += newly as usize;
        newly
    }

    fn remove(&mut self, x: u32) -> bool {
        let (high, low) = Self::split(x);
        match self.container_idx(high) {
            Ok(i) => {
                let present = self.containers[i].1.remove(low);
                if present {
                    self.len -= 1;
                    if self.containers[i].1.len() == 0 {
                        self.containers.remove(i);
                    }
                }
                present
            }
            Err(_) => false,
        }
    }

    fn clear(&mut self) {
        self.containers.clear();
        self.len = 0;
    }

    fn collect_missing(&self, other: &Self, out: &mut Vec<u32>) {
        for (high, cont) in &other.containers {
            let base = (*high as u32) << 16;
            match self.container_idx(*high) {
                Err(_) => cont.for_each(|low| out.push(base | low as u32)),
                Ok(i) => {
                    let mine = &self.containers[i].1;
                    match (mine, cont) {
                        (Container::Bitmap(mw, _), Container::Bitmap(ow, _)) => {
                            for (wi, (&m, &o)) in mw.iter().zip(ow.iter()).enumerate() {
                                let mut missing = o & !m;
                                while missing != 0 {
                                    let bit = missing.trailing_zeros() as usize;
                                    missing &= missing - 1;
                                    out.push(base | (wi * 64 + bit) as u32);
                                }
                            }
                        }
                        _ => cont.for_each(|low| {
                            if !mine.contains(low) {
                                out.push(base | low as u32);
                            }
                        }),
                    }
                }
            }
        }
    }

    fn union_with(&mut self, other: &Self) {
        for (high, cont) in &other.containers {
            let base = (*high as u32) << 16;
            cont.for_each(|low| {
                self.insert(base | low as u32);
            });
        }
    }

    fn insert_returning_new(&mut self, xs: &[u32], out: &mut Vec<u32>) {
        // A run of ids sharing the same high 16 bits hits one container; cache
        // its index so the batch pays one binary search per run, not per id.
        let mut cached: Option<(u16, usize)> = None;
        for &x in xs {
            let (high, low) = Self::split(x);
            let at = match cached {
                Some((h, i)) if h == high => i,
                _ => {
                    let i = match self.container_idx(high) {
                        Ok(i) => i,
                        Err(pos) => {
                            self.containers.insert(pos, (high, Container::Array(Vec::new())));
                            pos
                        }
                    };
                    cached = Some((high, i));
                    i
                }
            };
            if self.containers[at].1.insert(low) {
                self.len += 1;
                out.push(x);
            }
        }
    }

    fn for_each_elem(&self, f: &mut dyn FnMut(u32)) {
        for (high, cont) in &self.containers {
            let base = (*high as u32) << 16;
            cont.for_each(|low| f(base | low as u32));
        }
    }

    fn iter_elems(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        let mut all = Vec::with_capacity(self.len);
        for (high, cont) in &self.containers {
            let base = (*high as u32) << 16;
            cont.for_each(|low| all.push(base | low as u32));
        }
        Box::new(all.into_iter())
    }

    fn heap_bytes(&self) -> usize {
        self.containers.capacity() * std::mem::size_of::<(u16, Container)>()
            + self.containers.iter().map(|(_, c)| c.heap_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_across_containers() {
        let mut s = CompressedBitmap::new();
        assert!(s.insert(1));
        assert!(s.insert(0x1_0000)); // second container
        assert!(s.insert(0xFFFF_FFFF));
        assert!(!s.insert(1));
        assert_eq!(s.len(), 3);
        assert_eq!(s.container_count(), 3);
        assert!(s.contains(0x1_0000));
        assert!(!s.contains(2));
        assert_eq!(s.to_vec(), vec![1, 0x1_0000, 0xFFFF_FFFF]);
    }

    #[test]
    fn remove_drops_empty_container() {
        let mut s = CompressedBitmap::new();
        s.insert(7);
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert_eq!(s.container_count(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn array_upgrades_to_bitmap_and_back() {
        let mut s = CompressedBitmap::new();
        for x in 0..=(ARRAY_CONTAINER_MAX as u32) {
            s.insert(x * 2); // spread within one container (max 8192 < 65536)
        }
        assert!(s.is_bitmap_container(0));
        assert_eq!(s.len(), ARRAY_CONTAINER_MAX + 1);
        // Remove until below half threshold: downgrades to array.
        for x in 0..=(ARRAY_CONTAINER_MAX as u32) {
            if s.len() <= ARRAY_CONTAINER_MAX / 2 {
                break;
            }
            s.remove(x * 2);
        }
        assert!(!s.is_bitmap_container(0));
        // Contents still correct.
        let v = s.to_vec();
        assert_eq!(v.len(), s.len());
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn collect_missing_mixed_containers() {
        let mut a = CompressedBitmap::new();
        let mut b = CompressedBitmap::new();
        // Make b's first container a bitmap, a's an array.
        for x in 0..5000u32 {
            b.insert(x);
        }
        for x in 0..5000u32 {
            if x % 2 == 0 {
                a.insert(x);
            }
        }
        b.insert(0x2_0000);
        let mut out = Vec::new();
        a.collect_missing(&b, &mut out);
        let expect: Vec<u32> =
            (0..5000u32).filter(|x| x % 2 == 1).chain(std::iter::once(0x2_0000)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn collect_missing_bitmap_bitmap() {
        let mut a = CompressedBitmap::new();
        let mut b = CompressedBitmap::new();
        for x in 0..9000u32 {
            if x % 3 != 0 {
                a.insert(x);
            }
            b.insert(x);
        }
        assert!(a.is_bitmap_container(0) && b.is_bitmap_container(0));
        let mut out = Vec::new();
        a.collect_missing(&b, &mut out);
        let expect: Vec<u32> = (0..9000u32).filter(|x| x % 3 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn union_with_merges() {
        let mut a = CompressedBitmap::new();
        let mut b = CompressedBitmap::new();
        a.insert(1);
        a.insert(0x3_0001);
        b.insert(2);
        b.insert(0x3_0001);
        a.union_with(&b);
        assert_eq!(a.to_vec(), vec![1, 2, 0x3_0001]);
    }

    #[test]
    fn batch_insert_spans_containers_and_reports_fresh() {
        let mut s = CompressedBitmap::new();
        s.insert(5);
        let mut fresh = Vec::new();
        // Two runs: container 0 (5 stale, 6/7 fresh) then container 1.
        s.insert_returning_new(&[5, 6, 7, 0x1_0000, 0x1_0001, 0x1_0000], &mut fresh);
        assert_eq!(fresh, vec![6, 7, 0x1_0000, 0x1_0001]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.container_count(), 2);
        let mut seen = Vec::new();
        s.for_each_elem(&mut |x| seen.push(x));
        assert_eq!(seen, s.to_vec());
    }

    #[test]
    fn batch_insert_upgrades_to_bitmap_like_single_inserts() {
        let xs: Vec<u32> = (0..=(ARRAY_CONTAINER_MAX as u32)).map(|x| x * 2).collect();
        let mut batch = CompressedBitmap::new();
        let mut fresh = Vec::new();
        batch.insert_returning_new(&xs, &mut fresh);
        assert_eq!(fresh, xs);
        assert!(batch.is_bitmap_container(0));
        let mut single = CompressedBitmap::new();
        for &x in &xs {
            single.insert(x);
        }
        assert_eq!(batch.to_vec(), single.to_vec());
    }

    #[test]
    fn heap_bytes_reflects_compression() {
        // A sparse set should take far less memory compressed than dense.
        let mut sparse = CompressedBitmap::new();
        for i in 0..100u32 {
            sparse.insert(i * 0x10_000); // one element per container
        }
        // 100 array containers of 1 element each; well under bitmap cost.
        assert!(sparse.heap_bytes() < 100 * BITMAP_WORDS * 8);
    }
}
