//! The execution engine: one cooperative scheduler driving modeled threads.
//!
//! A *model* runs the same closure many times, once per schedule. Modeled
//! threads are real OS threads, but a baton protocol guarantees at most one
//! of them executes user code at any instant: every operation on a modeled
//! primitive first *pauses* the thread at a yield point and asks the
//! scheduler who commits next. The scheduler therefore sees every
//! interleaving of primitive operations as an explicit decision sequence,
//! which it explores by depth-first search:
//!
//! * **Replay determinism** — given the same decision prefix, an execution
//!   is bit-identical (only one thread runs at a time, and every scheduling
//!   input is recorded). The driver re-runs the model from scratch for each
//!   schedule, replaying the shared prefix and diverging at the deepest
//!   decision with unexplored alternatives.
//! * **Bounded preemption** — switching away from a thread that could have
//!   continued costs one unit of a preemption budget (CHESS-style). With the
//!   budget exhausted, only the running thread may be chosen while it stays
//!   enabled. Most concurrency bugs manifest within 2–3 preemptions, so a
//!   small bound explores the high-yield corner of an otherwise exponential
//!   tree. `None` disables the bound (full exhaustion).
//! * **Sleep sets (DPOR-style)** — after fully exploring choice `t` at a
//!   node, `t` *sleeps* in the sibling subtrees until some scheduled
//!   operation is dependent with `t`'s pending operation (same object, at
//!   least one write). A node whose every enabled choice sleeps is provably
//!   a reordering of an explored schedule and is pruned.
//!
//! Blocking is modeled by *enabledness*, not by OS blocking: a thread whose
//! pending operation cannot commit (lock of a held mutex, join of a live
//! thread) is simply never chosen; a condvar waiter leaves the candidate set
//! entirely until a notify re-arms it as a mutex re-acquisition. If no
//! thread is enabled and none can time out, the schedule is a deadlock and
//! the checker reports it with the full trace — which is exactly how a lost
//! wakeup surfaces. Timed waits only fire their timeout at quiescence (when
//! nothing else can run), modeling "the timeout is a safety net, never a
//! correctness dependency".

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

pub(crate) type Tid = usize;

/// A pending primitive operation — the label on a scheduler decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// First scheduling of a thread (commits nothing).
    Start,
    /// Explicit `yield_now` (commits nothing).
    Yield,
    Lock(usize),
    Unlock(usize),
    CvWait { cv: usize, mutex: usize, timed: bool },
    CvNotify { cv: usize, all: bool },
    Load(usize),
    Store(usize, u64),
    Rmw(usize, RmwKind, u64),
    Join(Tid),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RmwKind {
    Add,
    Sub,
    Swap,
    Or,
    And,
}

impl Op {
    /// `(object, is_write)` footprint, for the dependency relation.
    fn accesses(self) -> [Option<(usize, bool)>; 2] {
        match self {
            Op::Start | Op::Yield | Op::Join(_) => [None, None],
            Op::Lock(m) | Op::Unlock(m) => [Some((m, true)), None],
            Op::CvWait { cv, mutex, .. } => [Some((cv, true)), Some((mutex, true))],
            Op::CvNotify { cv, .. } => [Some((cv, true)), None],
            Op::Load(a) => [Some((a, false)), None],
            Op::Store(a, _) | Op::Rmw(a, ..) => [Some((a, true)), None],
        }
    }
}

/// Two operations are dependent when they touch a common object and at
/// least one writes it. Commuting independent operations yields an
/// equivalent execution, which is what sleep-set pruning exploits.
fn dependent(a: Op, b: Op) -> bool {
    for (oa, wa) in a.accesses().into_iter().flatten() {
        for (ob, wb) in b.accesses().into_iter().flatten() {
            if oa == ob && (wa || wb) {
                return true;
            }
        }
    }
    false
}

#[derive(Debug)]
pub(crate) enum ObjState {
    Mutex { locked: bool },
    Condvar,
    Atomic { value: u64 },
}

pub(crate) enum TState {
    /// At a yield point, waiting to be granted its pending op.
    Paused(Op),
    /// Currently holding the baton, executing user code.
    Running,
    /// Committed a `CvWait`; leaves the candidate set until notified.
    CvWaiting { cv: usize, mutex: usize, timed: bool },
    Finished,
}

pub(crate) struct ThreadSlot {
    pub(crate) state: TState,
    pub(crate) name: Option<String>,
    /// Result of the thread closure, for `JoinHandle::join`.
    pub(crate) result: Option<Box<dyn Any + Send>>,
    /// Value produced by the last committed op (atomic load/rmw result).
    pub(crate) op_result: u64,
    /// Set when a timed wait was released by the quiescence timeout.
    pub(crate) timed_out: bool,
    pub(crate) os: Option<std::thread::JoinHandle<()>>,
}

/// One decision point of the schedule tree, persisted across executions.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Enabled threads at this node (ascending tid), with their pending ops.
    pub(crate) candidates: Vec<(Tid, Op)>,
    /// Sleep set on entry.
    pub(crate) sleep: Vec<Tid>,
    /// Choices whose subtrees are fully explored.
    pub(crate) explored: Vec<Tid>,
    pub(crate) chosen: Tid,
    /// Thread that was running immediately before this node (preemption
    /// accounting: choosing someone else while it stays enabled costs one).
    pub(crate) arriving: Option<Tid>,
    pub(crate) preemptions_before: usize,
}

impl Node {
    fn op_of(&self, t: Tid) -> Op {
        self.candidates.iter().find(|(c, _)| *c == t).map(|(_, op)| *op).expect("candidate op")
    }

    /// Candidate list after the preemption-bound restriction.
    pub(crate) fn restricted(&self, bound: usize) -> Vec<Tid> {
        if self.preemptions_before >= bound {
            if let Some(a) = self.arriving {
                if self.candidates.iter().any(|(t, _)| *t == a) {
                    return vec![a];
                }
            }
        }
        self.candidates.iter().map(|(t, _)| *t).collect()
    }
}

#[derive(Debug, Clone)]
pub(crate) struct TraceEvent {
    pub(crate) tid: Tid,
    pub(crate) what: String,
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadSlot>,
    pub(crate) objects: Vec<ObjState>,
    /// The DFS path: prefix replayed, suffix appended as discovered.
    pub(crate) plan: Vec<Node>,
    /// Nodes processed so far this execution.
    pub(crate) step: usize,
    pub(crate) cur_sleep: Vec<Tid>,
    pub(crate) preemptions: usize,
    pub(crate) bound: usize,
    pub(crate) max_steps: usize,
    pub(crate) active: Option<Tid>,
    pub(crate) last_running: Option<Tid>,
    pub(crate) trace: Vec<TraceEvent>,
    pub(crate) failure: Option<String>,
    pub(crate) pruned: bool,
    pub(crate) aborting: bool,
    pub(crate) exited: usize,
}

pub(crate) struct Shared {
    pub(crate) m: Mutex<ExecState>,
    pub(crate) cv: Condvar,
}

/// Panic payload used to unwind modeled threads when an execution aborts
/// (failure or sleep-set prune). Swallowed by the thread wrappers and by the
/// process panic hook.
pub(crate) struct AbortToken;

thread_local! {
    static CTX: RefCell<Option<(Arc<Shared>, Tid)>> = const { RefCell::new(None) };
}

pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Shared>, Tid) -> R) -> R {
    CTX.with(|c| {
        let ctx = c.borrow();
        let (shared, tid) = ctx
            .as_ref()
            .expect("loom-lite primitive used outside a model — wrap the code in loom_lite::model");
        f(shared, *tid)
    })
}

pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn lock_state(shared: &Shared) -> MutexGuard<'_, ExecState> {
    // The scheduler lock may be poisoned by an aborting thread unwinding
    // through it; the state stays consistent (every mutation is complete
    // before any panic), so poisoning is ignored.
    shared.m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ExecState {
    fn enabled(&self, op: Op) -> bool {
        match op {
            Op::Lock(m) => !matches!(self.objects[m], ObjState::Mutex { locked: true }),
            Op::Join(t) => matches!(self.threads[t].state, TState::Finished),
            _ => true,
        }
    }

    fn candidates(&self) -> Vec<(Tid, Op)> {
        self.threads
            .iter()
            .enumerate()
            .filter_map(|(tid, slot)| match slot.state {
                TState::Paused(op) if self.enabled(op) => Some((tid, op)),
                _ => None,
            })
            .collect()
    }

    fn thread_label(&self, tid: Tid) -> String {
        match &self.threads[tid].name {
            Some(n) => format!("t{tid}({n})"),
            None => format!("t{tid}"),
        }
    }

    fn push_trace(&mut self, tid: Tid, what: String) {
        self.trace.push(TraceEvent { tid, what });
    }

    pub(crate) fn format_trace(&self) -> String {
        let mut out = String::new();
        out.push_str("schedule trace (one committed op per line):\n");
        for (i, ev) in self.trace.iter().enumerate() {
            out.push_str(&format!("  #{:04} {:<14} {}\n", i, self.thread_label(ev.tid), ev.what));
        }
        out
    }

    fn describe_op(&self, op: Op) -> String {
        match op {
            Op::Start => "start".into(),
            Op::Yield => "yield".into(),
            Op::Lock(m) => format!("lock(obj{m})"),
            Op::Unlock(m) => format!("unlock(obj{m})"),
            Op::CvWait { cv, mutex, timed } => {
                format!("cv{}.wait(obj{mutex}){}", cv, if timed { " [timed]" } else { "" })
            }
            Op::CvNotify { cv, all } => {
                format!("cv{}.notify_{}", cv, if all { "all" } else { "one" })
            }
            Op::Load(a) => format!("load(obj{a})"),
            Op::Store(a, v) => format!("store(obj{a}, {v})"),
            Op::Rmw(a, k, v) => format!("{k:?}(obj{a}, {v})").to_lowercase(),
            Op::Join(t) => format!("join(t{t})"),
        }
    }

    /// Record a failure and begin aborting the execution.
    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(format!("{msg}\n{}", self.format_trace()));
        }
        self.aborting = true;
    }

    fn live_summary(&self) -> String {
        let mut out = String::new();
        for (tid, slot) in self.threads.iter().enumerate() {
            let state = match &slot.state {
                TState::Paused(op) => format!("paused, wants {}", self.describe_op(*op)),
                TState::Running => "running".into(),
                TState::CvWaiting { cv, timed, .. } => {
                    format!("waiting on cv{cv}{}", if *timed { " [timed]" } else { "" })
                }
                TState::Finished => "finished".into(),
            };
            out.push_str(&format!("  {:<14} {state}\n", self.thread_label(tid)));
        }
        out
    }

    /// Apply the effect of `op` for `chosen`. Returns true when the thread
    /// keeps the baton (runs user code next), false when the commit puts it
    /// to sleep (condvar wait).
    fn commit(&mut self, chosen: Tid, op: Op) -> bool {
        let what = self.describe_op(op);
        self.push_trace(chosen, what);
        match op {
            Op::Start | Op::Yield | Op::Join(_) => true,
            Op::Lock(m) => {
                let ObjState::Mutex { locked } = &mut self.objects[m] else {
                    unreachable!("lock on non-mutex object")
                };
                debug_assert!(!*locked, "scheduled a lock on a held mutex");
                *locked = true;
                true
            }
            Op::Unlock(m) => {
                let ObjState::Mutex { locked } = &mut self.objects[m] else {
                    unreachable!("unlock on non-mutex object")
                };
                *locked = false;
                true
            }
            Op::CvWait { cv, mutex, timed } => {
                // Atomically release the mutex and sleep on the condvar —
                // the thread leaves the candidate set until a notify (or the
                // quiescence timeout, when timed) re-arms it.
                let ObjState::Mutex { locked } = &mut self.objects[mutex] else {
                    unreachable!("cv wait with non-mutex object")
                };
                *locked = false;
                self.threads[chosen].timed_out = false;
                self.threads[chosen].state = TState::CvWaiting { cv, mutex, timed };
                false
            }
            Op::CvNotify { cv, all } => {
                // Waiters become pending re-acquisitions of their mutex.
                // `notify_one` wakes the lowest-tid waiter (deterministic
                // shim policy; the checked code only uses `notify_all`).
                let mut woken = Vec::new();
                for (tid, slot) in self.threads.iter().enumerate() {
                    if let TState::CvWaiting { cv: c, mutex, .. } = slot.state {
                        if c == cv {
                            woken.push((tid, mutex));
                            if !all {
                                break;
                            }
                        }
                    }
                }
                for (tid, mutex) in woken {
                    self.threads[tid].state = TState::Paused(Op::Lock(mutex));
                }
                true
            }
            Op::Load(a) => {
                let ObjState::Atomic { value } = self.objects[a] else {
                    unreachable!("load on non-atomic object")
                };
                self.threads[chosen].op_result = value;
                true
            }
            Op::Store(a, v) => {
                let ObjState::Atomic { value } = &mut self.objects[a] else {
                    unreachable!("store on non-atomic object")
                };
                *value = v;
                true
            }
            Op::Rmw(a, kind, operand) => {
                let ObjState::Atomic { value } = &mut self.objects[a] else {
                    unreachable!("rmw on non-atomic object")
                };
                let old = *value;
                *value = match kind {
                    RmwKind::Add => old.wrapping_add(operand),
                    RmwKind::Sub => old.wrapping_sub(operand),
                    RmwKind::Swap => operand,
                    RmwKind::Or => old | operand,
                    RmwKind::And => old & operand,
                };
                self.threads[chosen].op_result = old;
                true
            }
        }
    }
}

/// The scheduling decision loop. Called (with the state lock held) whenever
/// the active thread pauses or finishes; commits pending operations until
/// some thread is granted the baton, the execution completes, or it aborts.
pub(crate) fn advance(st: &mut ExecState) {
    loop {
        if st.aborting {
            return;
        }
        if st.step >= st.max_steps {
            st.fail(format!(
                "schedule exceeded {} steps — livelock or runaway model",
                st.max_steps
            ));
            return;
        }
        let cands = st.candidates();
        if cands.is_empty() {
            if st.threads.iter().all(|t| matches!(t.state, TState::Finished)) {
                // Execution complete; driver notices via the exit count.
                st.active = None;
                return;
            }
            // Quiescence: fire timed waits before declaring deadlock — a
            // timeout may only ever fire when nothing else can run, so a
            // schedule that *needs* it to fire sooner still deadlocks here
            // unless the timeout genuinely restores progress.
            let timed: Vec<(Tid, usize)> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(tid, s)| match s.state {
                    TState::CvWaiting { timed: true, mutex, .. } => Some((tid, mutex)),
                    _ => None,
                })
                .collect();
            if !timed.is_empty() {
                for (tid, mutex) in timed {
                    st.threads[tid].timed_out = true;
                    st.threads[tid].state = TState::Paused(Op::Lock(mutex));
                    st.push_trace(tid, "wait timeout fires (quiescence)".into());
                }
                continue;
            }
            let summary = st.live_summary();
            st.fail(format!(
                "deadlock: no thread is runnable and none can time out\n{summary}"
            ));
            return;
        }

        // Decision point: replay the stored choice or open a new node.
        let chosen = if st.step < st.plan.len() {
            let node = &st.plan[st.step];
            if node.candidates != cands {
                let stored = node.candidates.clone();
                st.fail(format!(
                    "non-deterministic replay at step {}: stored candidates {stored:?}, \
                     recomputed {cands:?} — the model must be deterministic given the schedule",
                    st.step
                ));
                return;
            }
            node.chosen
        } else {
            let probe = Node {
                candidates: cands.clone(),
                sleep: st.cur_sleep.clone(),
                explored: Vec::new(),
                chosen: 0,
                arriving: st.last_running,
                preemptions_before: st.preemptions,
            };
            let avail: Vec<Tid> = probe
                .restricted(st.bound)
                .into_iter()
                .filter(|t| !st.cur_sleep.contains(t))
                .collect();
            let Some(&first) = avail.first() else {
                // Every enabled choice sleeps: this schedule is a reordering
                // of one already explored. Prune.
                st.pruned = true;
                st.aborting = true;
                return;
            };
            let mut node = probe;
            node.chosen = first;
            st.plan.push(node);
            first
        };

        let op = st.plan[st.step].op_of(chosen);
        // Preemption accounting (replay recomputes the same values).
        if let Some(arr) = st.last_running {
            if arr != chosen && cands.iter().any(|(t, _)| *t == arr) {
                st.preemptions += 1;
            }
        }
        // Child sleep set: siblings explored before this choice join the
        // inherited set; anything dependent with the chosen op wakes up.
        let mut sleep: Vec<Tid> = st.plan[st.step].sleep.clone();
        for &t in &st.plan[st.step].explored {
            if !sleep.contains(&t) {
                sleep.push(t);
            }
        }
        sleep.retain(|&t| {
            t != chosen
                && match st.threads[t].state {
                    // A sleeper's pending op wakes it when the chosen op is
                    // dependent with it; a sleeper that somehow lost its
                    // pending op (no longer paused) is dropped outright.
                    TState::Paused(top) => !dependent(top, op),
                    _ => false,
                }
        });
        st.cur_sleep = sleep;
        st.step += 1;

        if st.commit(chosen, op) {
            st.threads[chosen].state = TState::Running;
            st.active = Some(chosen);
            st.last_running = Some(chosen);
            return;
        }
        // Commit put the thread to sleep (cv wait): decide again.
        st.last_running = None;
    }
}

/// Block the calling modeled thread until it holds the baton.
fn park_until_granted(shared: &Shared, tid: Tid) {
    let mut st = lock_state(shared);
    loop {
        if st.aborting {
            drop(st);
            panic::panic_any(AbortToken);
        }
        if st.active == Some(tid) {
            return;
        }
        st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Pause at a yield point with `op` pending; returns the op's result value
/// once the scheduler has committed it and granted the thread the baton.
pub(crate) fn yield_point(op: Op) -> u64 {
    if std::thread::panicking() {
        // An op issued while unwinding (a `Drop` impl touching a modeled
        // primitive) cannot pause: re-raising `AbortToken` here would nest a
        // panic and abort the process. Apply it best-effort instead.
        return silent_op(op);
    }
    with_ctx(|shared, tid| {
        {
            let mut st = lock_state(shared);
            if st.aborting {
                drop(st);
                panic::panic_any(AbortToken);
            }
            st.threads[tid].state = TState::Paused(op);
            st.active = None;
            st.last_running = Some(tid);
            advance(&mut st);
            if st.active == Some(tid) {
                return st.threads[tid].op_result;
            }
            shared.cv.notify_all();
        }
        park_until_granted(shared, tid);
        let st = lock_state(shared);
        st.threads[tid].op_result
    })
}

/// Commit a condvar wait (atomically releasing `mutex`); returns once the
/// thread has been notified (or timed out at quiescence) *and* re-acquired
/// the mutex. The returned flag reports whether the quiescence timeout fired.
pub(crate) fn cv_wait(cv: usize, mutex: usize, timed: bool) -> bool {
    if std::thread::panicking() {
        // Treat a wait during unwind as an immediate spurious wake.
        return false;
    }
    with_ctx(|shared, tid| {
        {
            let mut st = lock_state(shared);
            if st.aborting {
                drop(st);
                panic::panic_any(AbortToken);
            }
            st.threads[tid].state = TState::Paused(Op::CvWait { cv, mutex, timed });
            st.active = None;
            st.last_running = Some(tid);
            advance(&mut st);
            debug_assert_ne!(st.active, Some(tid), "cv wait cannot grant immediately");
            shared.cv.notify_all();
        }
        park_until_granted(shared, tid);
        let st = lock_state(shared);
        st.threads[tid].timed_out
    })
}

/// Best-effort unlock without a scheduling decision, used when a mutex guard
/// drops during a panic unwind (a nested panic from a yield point would
/// abort the process). The missed interleaving point is harmless: aborts
/// discard the execution, and assertion-failure unwinds already carry their
/// schedule in the trace.
pub(crate) fn silent_unlock(mutex: usize) {
    silent_op(Op::Unlock(mutex));
}

/// Apply an op's effect without a scheduling decision — only ever reached
/// while the calling thread is unwinding, where mutual-exclusion invariants
/// no longer matter (the execution is being discarded, or its failure and
/// trace are already recorded).
fn silent_op(op: Op) -> u64 {
    if !in_model() {
        return 0;
    }
    with_ctx(|shared, _tid| {
        let mut st = lock_state(shared);
        let value = match op {
            Op::Lock(m) => {
                if let ObjState::Mutex { locked } = &mut st.objects[m] {
                    *locked = true;
                }
                0
            }
            Op::Unlock(m) => {
                if let ObjState::Mutex { locked } = &mut st.objects[m] {
                    *locked = false;
                }
                0
            }
            Op::Store(a, v) => {
                if let ObjState::Atomic { value } = &mut st.objects[a] {
                    *value = v;
                }
                0
            }
            Op::Load(a) => match st.objects[a] {
                ObjState::Atomic { value } => value,
                _ => 0,
            },
            Op::Rmw(a, kind, operand) => {
                if let ObjState::Atomic { value } = &mut st.objects[a] {
                    let old = *value;
                    *value = match kind {
                        RmwKind::Add => old.wrapping_add(operand),
                        RmwKind::Sub => old.wrapping_sub(operand),
                        RmwKind::Swap => operand,
                        RmwKind::Or => old | operand,
                        RmwKind::And => old & operand,
                    };
                    old
                } else {
                    0
                }
            }
            Op::CvNotify { cv, all } => {
                let mut woken = Vec::new();
                for (tid, slot) in st.threads.iter().enumerate() {
                    if let TState::CvWaiting { cv: c, mutex, .. } = slot.state {
                        if c == cv {
                            woken.push((tid, mutex));
                            if !all {
                                break;
                            }
                        }
                    }
                }
                for (tid, mutex) in woken {
                    st.threads[tid].state = TState::Paused(Op::Lock(mutex));
                }
                0
            }
            Op::Start | Op::Yield | Op::Join(_) | Op::CvWait { .. } => 0,
        };
        drop(st);
        shared.cv.notify_all();
        value
    })
}

/// Allocate a primitive object in the current execution.
pub(crate) fn register_object(obj: ObjState) -> usize {
    with_ctx(|shared, _tid| {
        let mut st = lock_state(shared);
        st.objects.push(obj);
        st.objects.len() - 1
    })
}

/// Register a modeled thread and spawn its OS carrier. Not a decision point:
/// the child simply joins the candidate set at the parent's next yield.
pub(crate) fn spawn_thread(
    name: Option<String>,
    body: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>,
) -> Tid {
    with_ctx(|shared, parent| {
        let tid = {
            let mut st = lock_state(shared);
            st.threads.push(ThreadSlot {
                state: TState::Paused(Op::Start),
                name,
                result: None,
                op_result: 0,
                timed_out: false,
                os: None,
            });
            let tid = st.threads.len() - 1;
            let label = st.thread_label(tid);
            st.push_trace(parent, format!("spawn {label}"));
            tid
        };
        let shared2 = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("loom-lite-{tid}"))
            .spawn(move || run_modeled(shared2, tid, body))
            .expect("failed to spawn modeled thread");
        lock_state(shared).threads[tid].os = Some(handle);
        tid
    })
}

/// Body of every modeled OS thread (including tid 0, the model closure).
pub(crate) fn run_modeled(
    shared: Arc<Shared>,
    tid: Tid,
    body: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>,
) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&shared), tid)));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        park_until_granted(&shared, tid);
        body()
    }));
    let mut st = lock_state(&shared);
    match outcome {
        Ok(result) => {
            st.threads[tid].result = Some(result);
            st.threads[tid].state = TState::Finished;
            st.push_trace(tid, "finish".into());
            st.active = None;
            st.last_running = None;
            advance(&mut st);
        }
        Err(payload) => {
            if payload.downcast_ref::<AbortToken>().is_none() {
                let msg = panic_message(payload.as_ref());
                let label = st.thread_label(tid);
                st.fail(format!("modeled thread {label} panicked: {msg}"));
            }
            st.threads[tid].state = TState::Finished;
            st.aborting = true;
        }
    }
    st.exited += 1;
    drop(st);
    shared.cv.notify_all();
    CTX.with(|c| *c.borrow_mut() = None);
}

pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Join a modeled thread and take its closure result.
pub(crate) fn join_thread(tid: Tid) -> Box<dyn Any + Send> {
    yield_point(Op::Join(tid));
    with_ctx(|shared, _me| {
        let mut st = lock_state(shared);
        st.threads[tid].result.take().expect("modeled thread joined twice")
    })
}

/// Advance the DFS to the next unexplored schedule. Returns false when the
/// tree is exhausted.
pub(crate) fn next_schedule(plan: &mut Vec<Node>, bound: usize) -> bool {
    while let Some(node) = plan.last_mut() {
        node.explored.push(node.chosen);
        let next = node
            .restricted(bound)
            .into_iter()
            .find(|t| !node.explored.contains(t) && !node.sleep.contains(t));
        if let Some(t) = next {
            node.chosen = t;
            return true;
        }
        plan.pop();
    }
    false
}
