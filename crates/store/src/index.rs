//! Secondary property indexes (the Neo4j "schema index" analogue).
//!
//! `find_by_prop` on [`crate::ProvGraph`] scans a kind's vertices; for
//! interactive lookups ("all entities with filename = model") a maintained
//! index turns that into a hash probe. Indexes are declared per
//! `(vertex kind, property key)` and kept in sync by `set_vprop`.

use crate::hash::FxHashMap;
use prov_model::{PropKeyId, PropValue, VertexId, VertexKind};

/// One secondary index: property value → sorted vertex ids.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PropIndex {
    entries: FxHashMap<PropValue, Vec<VertexId>>,
}

impl PropIndex {
    /// Vertices whose indexed property equals `value`.
    pub fn get(&self, value: &PropValue) -> &[VertexId] {
        self.entries.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct indexed values.
    pub fn value_count(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn insert(&mut self, value: PropValue, v: VertexId) {
        let slot = self.entries.entry(value).or_default();
        if let Err(pos) = slot.binary_search(&v) {
            slot.insert(pos, v);
        }
    }

    pub(crate) fn remove(&mut self, value: &PropValue, v: VertexId) {
        if let Some(slot) = self.entries.get_mut(value) {
            if let Ok(pos) = slot.binary_search(&v) {
                slot.remove(pos);
            }
            if slot.is_empty() {
                self.entries.remove(value);
            }
        }
    }
}

/// The index registry carried by the store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexRegistry {
    by_key: FxHashMap<(VertexKind, PropKeyId), PropIndex>,
}

impl IndexRegistry {
    /// Is `(kind, key)` indexed?
    pub fn has(&self, kind: VertexKind, key: PropKeyId) -> bool {
        self.by_key.contains_key(&(kind, key))
    }

    /// The index for `(kind, key)`, if declared.
    pub fn get(&self, kind: VertexKind, key: PropKeyId) -> Option<&PropIndex> {
        self.by_key.get(&(kind, key))
    }

    pub(crate) fn get_mut(&mut self, kind: VertexKind, key: PropKeyId) -> Option<&mut PropIndex> {
        self.by_key.get_mut(&(kind, key))
    }

    pub(crate) fn declare(&mut self, kind: VertexKind, key: PropKeyId) -> &mut PropIndex {
        self.by_key.entry((kind, key)).or_default()
    }

    /// Every declared `(kind, key)` pair, sorted — the deterministic listing
    /// a columnar snapshot persists so recovery can re-declare (and backfill)
    /// the same indexes.
    pub fn declared(&self) -> Vec<(VertexKind, PropKeyId)> {
        let mut pairs: Vec<(VertexKind, PropKeyId)> = self.by_key.keys().copied().collect();
        pairs.sort();
        pairs
    }

    /// Number of declared indexes.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True when no index is declared.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop_index_insert_remove() {
        let mut idx = PropIndex::default();
        let v1 = VertexId::new(1);
        let v2 = VertexId::new(2);
        idx.insert("model".into(), v2);
        idx.insert("model".into(), v1);
        idx.insert("model".into(), v1); // idempotent
        assert_eq!(idx.get(&"model".into()), &[v1, v2]);
        assert_eq!(idx.value_count(), 1);
        idx.remove(&"model".into(), v1);
        assert_eq!(idx.get(&"model".into()), &[v2]);
        idx.remove(&"model".into(), v2);
        assert_eq!(idx.value_count(), 0);
        assert!(idx.get(&"model".into()).is_empty());
    }

    #[test]
    fn registry_declares_per_kind_and_key() {
        let mut reg = IndexRegistry::default();
        assert!(reg.is_empty());
        reg.declare(VertexKind::Entity, PropKeyId::new(0));
        assert!(reg.has(VertexKind::Entity, PropKeyId::new(0)));
        assert!(!reg.has(VertexKind::Activity, PropKeyId::new(0)));
        assert_eq!(reg.len(), 1);
    }
}
