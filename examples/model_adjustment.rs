//! Similar-path induction on the Fig. 3 repetitive model-adjustment loop.
//!
//! The user asks how the final comparison plot `p4` relates to the model
//! version `m3`. The direct path covers only round 2 (`m3 → train-2 → l3 →
//! plot-2 → p3 → compare → p4`), but PgSeg's `L(SimProv)` heuristic also
//! induces round 1's vertices — they contribute to `p4` *in the same way*
//! (same path shape), which is exactly what the analyst wants to see for a
//! back-and-forth adjustment workflow.
//!
//! ```sh
//! cargo run --release --example model_adjustment
//! ```

use prov_core::fig3;
use prov_segment::{Categories, PgSegOptions, PgSegQuery};
use prov_store::ProvIndex;

fn main() {
    let ex = fig3::build();
    let index = ProvIndex::build(&ex.graph);

    let query = PgSegQuery::between(vec![ex.v("m3")], vec![ex.v("p4")]);
    let seg = prov_segment::pgseg(&ex.graph, &index, query, &PgSegOptions::default()).unwrap();

    println!("PgSeg(Vsrc = {{m3}}, Vdst = {{p4}}) over the Fig. 3 adjustment loop\n");
    println!("{:<12} {:<14} on similar path?", "vertex", "categories");
    for (&v, cat) in seg.vertices.iter().zip(seg.categories.iter()) {
        println!(
            "{:<12} {:<14} {}",
            ex.graph.display_name(v),
            cat.tags(),
            if cat.contains(Categories::SIMILAR) { "yes" } else { "" }
        );
    }

    // Round 2 is on the direct path.
    for name in ["m3", "train-2", "l3", "plot-2", "p3", "compare", "p4"] {
        assert!(
            seg.category(ex.v(name)).unwrap().contains(Categories::DIRECT)
                || seg.category(ex.v(name)).unwrap().contains(Categories::SRC)
                || seg.category(ex.v(name)).unwrap().contains(Categories::DST),
            "{name} should be on the direct path"
        );
    }
    // Round 1 mirrors it: induced as similar-path vertices although the user
    // never mentioned them.
    for name in ["m2", "train-1", "l2", "plot-1", "p2"] {
        assert!(
            seg.category(ex.v(name)).map(|c| c.contains(Categories::SIMILAR)).unwrap_or(false),
            "{name} should be induced on a similar path"
        );
    }
    // Sibling outputs of on-path activities (the weights) come in via VC3.
    assert!(seg.category(ex.v("w3")).unwrap().contains(Categories::SIBLING));

    println!("\nround 1 (m2/train-1/l2/plot-1/p2) induced as similar paths ✓");
    println!("sibling weights picked up via VC3 ✓");
    println!("\nDOT:\n{}", seg.to_dot(&ex.graph));
}
