//! Offline stand-in for the real `serde` crate.
//!
//! The workspace vendors this shim because the build environment has no
//! access to a crates.io registry. It is **not** the visitor-based serde data
//! model: `Serialize`/`Deserialize` go through an owned [`Content`] tree
//! (a JSON-shaped value), which is all `serde_json`-style round-tripping
//! needs. The derive macros in `serde_derive` understand the attribute
//! subset used by this workspace: `transparent`, `untagged`, `default`,
//! `skip_serializing_if = "path"`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped value tree used as the serialization protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integral number (JSON numbers without a fraction or exponent).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object; insertion-ordered so struct fields serialize in declaration
    /// order (matching `serde_json`'s struct serializer).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Look up an object key.
    pub fn get_field(&self, key: &str) -> Option<&Content> {
        self.as_map().and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Human-readable name of the JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::I64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything printable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Content`] tree.
pub trait Serialize {
    /// Convert to the value tree.
    fn ser(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Convert from the value tree.
    fn de(content: &Content) -> Result<Self, Error>;
}

fn int_from(content: &Content, what: &str, min: i64, max: i64) -> Result<i64, Error> {
    match content {
        Content::I64(i) if (min..=max).contains(i) => Ok(*i),
        _ => Err(Error::msg(format!("expected {what}, found {}", content.type_name()))),
    }
}

macro_rules! int_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn ser(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn de(content: &Content) -> Result<Self, Error> {
                int_from(content, stringify!($ty), <$ty>::MIN as i64, <$ty>::MAX as i64)
                    .map(|i| i as $ty)
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, u8, u16, u32);

impl Serialize for u64 {
    fn ser(&self) -> Content {
        Content::I64(i64::try_from(*self).expect("u64 too large for the shim's i64 numbers"))
    }
}

impl Deserialize for u64 {
    fn de(content: &Content) -> Result<Self, Error> {
        int_from(content, "u64", 0, i64::MAX).map(|i| i as u64)
    }
}

impl Serialize for usize {
    fn ser(&self) -> Content {
        (*self as u64).ser()
    }
}

impl Deserialize for usize {
    fn de(content: &Content) -> Result<Self, Error> {
        u64::de(content).map(|i| i as usize)
    }
}

impl Serialize for f64 {
    fn ser(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn de(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(f) => Ok(*f),
            Content::I64(i) => Ok(*i as f64),
            _ => Err(Error::msg(format!("expected f64, found {}", content.type_name()))),
        }
    }
}

impl Serialize for f32 {
    fn ser(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn de(content: &Content) -> Result<Self, Error> {
        f64::de(content).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn ser(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn de(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::msg(format!("expected bool, found {}", content.type_name()))),
        }
    }
}

impl Serialize for String {
    fn ser(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn de(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg(format!("expected string, found {}", content.type_name()))),
        }
    }
}

impl Serialize for str {
    fn ser(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for Arc<str> {
    fn ser(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for Arc<str> {
    fn de(content: &Content) -> Result<Self, Error> {
        String::de(content).map(|s| Arc::from(s.as_str()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Content {
        (**self).ser()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Content {
        match self {
            Some(v) => v.ser(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::de(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::de).collect(),
            _ => Err(Error::msg(format!("expected array, found {}", content.type_name()))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn ser(&self) -> Content {
        Content::Seq(vec![self.0.ser(), self.1.ser()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn de(content: &Content) -> Result<Self, Error> {
        match content.as_seq() {
            Some([a, b]) => Ok((A::de(a)?, B::de(b)?)),
            _ => Err(Error::msg("expected a 2-element array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn ser(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.ser())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn de(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::de(v)?)))
                .collect(),
            _ => Err(Error::msg(format!("expected object, found {}", content.type_name()))),
        }
    }
}
