//! Incremental-refresh differential tests (ISSUE 5 acceptance): a
//! [`ProvIndex`] maintained through `refresh_in_place`/`refreshed` across
//! random ingest/query interleavings must stay `==` to a full
//! [`ProvIndex::build`] of the same graph — identical CSRs (offsets, targets,
//! edge ids), kind tables, ranks, births, and counts, which is exactly what
//! the derived `PartialEq` compares.
//!
//! The generator grows a random PROV-typed graph in batches (every edge kind,
//! edges landing on arbitrarily old vertices so frozen CSR rows must shift,
//! interleaved property writes that must NOT age the snapshot), and after
//! each batch "queries" the maintained snapshot by comparing it against the
//! reference build. Both refresh flavors — in place (sole owner) and
//! clone-extend (pinned by sessions) — take the same merge path and are
//! exercised alternately; a second snapshot refreshed only at the end covers
//! multi-batch deltas.

use proptest::prelude::*;
use prov_model::{EdgeKind, VertexKind};
use prov_store::{ProvGraph, ProvIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One randomized mutation; invalid endpoint draws fall back to inserts so
/// every step mutates something.
fn mutate(g: &mut ProvGraph, rng: &mut StdRng, step: usize) {
    let pick = |g: &ProvGraph, rng: &mut StdRng, kind: VertexKind| {
        let of_kind = g.vertices_of_kind(kind);
        if of_kind.is_empty() {
            None
        } else {
            Some(of_kind[rng.gen_range(0..of_kind.len())])
        }
    };
    match rng.gen_range(0..10u32) {
        0 => {
            g.add_entity(&format!("e{step}"));
        }
        1 => {
            g.add_activity(&format!("a{step}"));
        }
        2 => {
            g.add_agent(&format!("u{step}"));
        }
        // Property writes: must leave the delta cursor (and thus snapshot
        // freshness) untouched.
        3 => {
            if let Some(v) = pick(g, rng, VertexKind::Entity) {
                g.set_vprop(v, "tag", format!("t{step}"));
            }
        }
        4 => match (pick(g, rng, VertexKind::Activity), pick(g, rng, VertexKind::Entity)) {
            (Some(a), Some(e)) => {
                g.add_edge(EdgeKind::Used, a, e).unwrap();
            }
            _ => {
                g.add_activity(&format!("a{step}"));
            }
        },
        5 => match (pick(g, rng, VertexKind::Entity), pick(g, rng, VertexKind::Activity)) {
            (Some(e), Some(a)) => {
                g.add_edge(EdgeKind::WasGeneratedBy, e, a).unwrap();
            }
            _ => {
                g.add_entity(&format!("e{step}"));
            }
        },
        6 => match (pick(g, rng, VertexKind::Activity), pick(g, rng, VertexKind::Agent)) {
            (Some(a), Some(u)) => {
                g.add_edge(EdgeKind::WasAssociatedWith, a, u).unwrap();
            }
            _ => {
                g.add_agent(&format!("u{step}"));
            }
        },
        7 => match (pick(g, rng, VertexKind::Entity), pick(g, rng, VertexKind::Agent)) {
            (Some(e), Some(u)) => {
                g.add_edge(EdgeKind::WasAttributedTo, e, u).unwrap();
            }
            _ => {
                g.add_agent(&format!("u{step}"));
            }
        },
        _ => match (pick(g, rng, VertexKind::Entity), pick(g, rng, VertexKind::Entity)) {
            (Some(d1), Some(d2)) => {
                g.add_edge(EdgeKind::WasDerivedFrom, d1, d2).unwrap();
            }
            _ => {
                g.add_entity(&format!("e{step}"));
            }
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-batch refresh (alternating in-place and clone-extend) plus one
    /// end-of-run refresh over the whole accumulated delta, both `==` to the
    /// reference full build at every query point.
    #[test]
    fn refresh_equals_build_on_random_interleavings(
        seed in 0u64..100_000,
        batches in 1usize..9,
        batch_size in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = ProvGraph::new();
        // A tiny seed population so early edge draws can land.
        let e0 = g.add_entity("seed-e");
        g.add_activity("seed-a");
        g.add_agent("seed-u");
        g.add_edge(EdgeKind::WasAttributedTo, e0, g.vertex_by_name("seed-u").unwrap()).unwrap();

        let mut maintained = ProvIndex::build(&g);
        let pinned_at_start = maintained.clone();

        let mut step = 0usize;
        for batch in 0..batches {
            for _ in 0..batch_size {
                mutate(&mut g, &mut rng, step);
                step += 1;
            }
            // Query point: the maintained snapshot must equal the reference.
            if batch % 2 == 0 {
                maintained.refresh_in_place(&g);
            } else {
                maintained = maintained.refreshed(&g);
            }
            let reference = ProvIndex::build(&g);
            prop_assert_eq!(&maintained, &reference, "batch {} diverged", batch);
            prop_assert!(maintained.is_fresh(&g));
            // Structural invariants hold at every query point, for both the
            // mutable store and the incrementally maintained snapshot.
            prop_assert!(g.validate().is_ok(), "store invariants: {:?}", g.validate());
            prop_assert!(
                maintained.validate().is_ok(),
                "snapshot invariants: {:?}",
                maintained.validate()
            );
        }

        // Multi-batch delta in one refresh: same answer.
        let late = pinned_at_start.refreshed(&g);
        prop_assert_eq!(&late, &ProvIndex::build(&g));
        // The pinned original is untouched by the clone-extend path.
        prop_assert_eq!(pinned_at_start.vertex_count(), 3);
    }
}
