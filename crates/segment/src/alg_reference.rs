//! The seed `VecDeque`-of-tuples SimProvAlg loop, frozen as a reference.
//!
//! [`crate::alg::similar_alg`] was rebuilt around a flat pair-encoded
//! worklist (ISSUE 3). This module preserves the original implementation
//! verbatim so that:
//!
//! * the worklist-equivalence property tests can assert the rewrite derives
//!   byte-identical fact tables under every configuration, and
//! * the benchmark trajectory (`BENCH_fig5.json`) keeps a "seed loop" series
//!   to measure the rewrite against.
//!
//! Do not optimize this module — its value is being the fixed point the hot
//! path is compared to.

use crate::alg::AlgConfig;
use crate::outcome::{EvalStats, SimilarOutcome};
use crate::view::MaskedGraph;
use prov_bitset::{CompressedBitmap, FastSet, FixedBitSet};
use prov_model::{VertexId, VertexKind};
use std::collections::VecDeque;
use std::time::Instant;

/// A pair relation over a dense rank universe, row- and column-indexed
/// (the seed's private fact-table layout).
struct PairRel<S: FastSet> {
    rows: Vec<Option<S>>,
    cols: Vec<Option<S>>,
    universe: usize,
    len: usize,
}

impl<S: FastSet> PairRel<S> {
    fn new(universe: usize) -> Self {
        PairRel {
            rows: (0..universe).map(|_| None).collect(),
            cols: (0..universe).map(|_| None).collect(),
            universe,
            len: 0,
        }
    }

    fn insert(&mut self, i: u32, j: u32) -> bool {
        let u = self.universe;
        let row = self.rows[i as usize].get_or_insert_with(|| S::with_universe(u));
        if !row.insert(j) {
            return false;
        }
        self.cols[j as usize].get_or_insert_with(|| S::with_universe(u)).insert(i);
        self.len += 1;
        true
    }

    fn partners(&self, r: u32, out: &mut Vec<u32>) {
        if let Some(row) = &self.rows[r as usize] {
            out.extend(row.iter_elems());
        }
        if let Some(col) = &self.cols[r as usize] {
            out.extend(col.iter_elems());
        }
        out.sort_unstable();
        out.dedup();
    }

    fn heap_bytes(&self) -> usize {
        self.rows
            .iter()
            .chain(self.cols.iter())
            .filter_map(|s| s.as_ref().map(|s| s.heap_bytes()))
            .sum()
    }
}

/// The seed `VecDeque` evaluation of `L(SimProv)`-reachability, kept only as
/// a differential/benchmark reference for [`crate::alg::similar_alg`].
pub fn similar_alg_reference<S: FastSet>(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
) -> SimilarOutcome {
    let t0 = Instant::now();
    let idx = view.index();
    let entities = idx.kind_members(VertexKind::Entity);
    let activities = idx.kind_members(VertexKind::Activity);
    let (ne, na) = (entities.len(), activities.len());

    let mut ee: PairRel<S> = PairRel::new(ne);
    let mut aa: PairRel<S> = PairRel::new(na);
    // Worklist entries: (is_ee, lo_rank, hi_rank).
    let mut worklist: VecDeque<(bool, u32, u32)> = VecDeque::new();
    let mut pops: u64 = 0;

    let min_src_birth: Option<u64> = vsrc
        .iter()
        .filter(|&&s| s.index() < idx.vertex_count() && view.vertex_ok(s))
        .map(|&s| idx.birth(s))
        .min()
        .filter(|_| cfg.early_stop);

    let canon = |i: u32, j: u32| if i <= j { (i, j) } else { (j, i) };

    // Init: Ee(vj, vj) anchors.
    for &vj in vdst {
        if vj.index() < idx.vertex_count()
            && view.vertex_ok(vj)
            && idx.kind(vj) == VertexKind::Entity
        {
            let r = idx.kind_rank(vj);
            if ee.insert(r, r) {
                worklist.push_back((true, r, r));
            }
        }
    }

    let mut scratch: Vec<(u32, u32)> = Vec::new();
    while let Some((is_ee, lo, hi)) = worklist.pop_front() {
        pops += 1;
        if is_ee {
            let (e1, e2) = (entities[lo as usize], entities[hi as usize]);
            if let Some(minb) = min_src_birth {
                if idx.birth(e1) < minb && idx.birth(e2) < minb {
                    continue; // early stop: both older than every source
                }
            }
            scratch.clear();
            for a1 in view.generators_of(e1) {
                for a2 in view.generators_of(e2) {
                    if let Some(table) = &cfg.constraint {
                        if table.fp(a1) != table.fp(a2) {
                            continue; // σ(a1, p0) ≠ σ(a2, p0)
                        }
                    }
                    let (r1, r2) = (idx.kind_rank(a1), idx.kind_rank(a2));
                    let pair = if cfg.symmetric_prune { canon(r1, r2) } else { (r1, r2) };
                    scratch.push(pair);
                    if !cfg.symmetric_prune && r1 != r2 {
                        scratch.push((r2, r1));
                    }
                }
            }
            for &(i, j) in &scratch {
                if aa.insert(i, j) {
                    worklist.push_back((false, i, j));
                }
            }
        } else {
            let (a1, a2) = (activities[lo as usize], activities[hi as usize]);
            if let Some(minb) = min_src_birth {
                if idx.birth(a1) < minb && idx.birth(a2) < minb {
                    continue;
                }
            }
            scratch.clear();
            for e1 in view.inputs_of(a1) {
                for e2 in view.inputs_of(a2) {
                    if let Some(table) = &cfg.constraint {
                        if table.fp(e1) != table.fp(e2) {
                            continue;
                        }
                    }
                    let (r1, r2) = (idx.kind_rank(e1), idx.kind_rank(e2));
                    let pair = if cfg.symmetric_prune { canon(r1, r2) } else { (r1, r2) };
                    scratch.push(pair);
                    if !cfg.symmetric_prune && r1 != r2 {
                        scratch.push((r2, r1));
                    }
                }
            }
            for &(i, j) in &scratch {
                if ee.insert(i, j) {
                    worklist.push_back((true, i, j));
                }
            }
        }
    }

    // Answer: partners of each source in the Ee relation.
    let mut marks = vec![false; idx.vertex_count()];
    let mut buf: Vec<u32> = Vec::new();
    for &src in vsrc {
        if src.index() >= idx.vertex_count()
            || !view.vertex_ok(src)
            || idx.kind(src) != VertexKind::Entity
        {
            continue;
        }
        buf.clear();
        ee.partners(idx.kind_rank(src), &mut buf);
        for &r in &buf {
            marks[entities[r as usize].index()] = true;
        }
    }
    let answer = crate::outcome::marks_to_vec(&marks);
    let mem = ee.heap_bytes() + aa.heap_bytes();
    SimilarOutcome {
        answer,
        vc2: None,
        stats: EvalStats {
            elapsed: t0.elapsed(),
            work: pops + (ee.len + aa.len) as u64,
            memory_bytes: mem,
            dnf: false,
        },
    }
}

/// Reference loop with `FixedBitSet` fact tables.
pub fn similar_alg_reference_bitset(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
) -> SimilarOutcome {
    similar_alg_reference::<FixedBitSet>(view, vsrc, vdst, cfg)
}

/// Reference loop with compressed-bitmap fact tables.
pub fn similar_alg_reference_cbm(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
) -> SimilarOutcome {
    similar_alg_reference::<CompressedBitmap>(view, vsrc, vdst, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::EdgeKind;
    use prov_store::{ProvGraph, ProvIndex};

    #[test]
    fn reference_still_finds_similar_siblings() {
        // d <-U- t1 <-G- m1 ; d <-U- t2 <-G- m2 ; {m1,m2} <-U- t3 <-G- w
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let m1 = g.add_entity("m1");
        let t2 = g.add_activity("t2");
        let m2 = g.add_entity("m2");
        let t3 = g.add_activity("t3");
        let w = g.add_entity("w");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m1, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m2, t2).unwrap();
        g.add_edge(EdgeKind::Used, t3, m1).unwrap();
        g.add_edge(EdgeKind::Used, t3, m2).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t3).unwrap();
        let idx = ProvIndex::build(&g);
        let view = MaskedGraph::unmasked(&idx);
        let out = similar_alg_reference_bitset(&view, &[m1], &[w], &AlgConfig::default());
        assert_eq!(out.answer, vec![m1, m2]);
        let cbm = similar_alg_reference_cbm(&view, &[m1], &[w], &AlgConfig::default());
        assert_eq!(cbm.answer, out.answer);
    }
}
