//! `pSum` baseline: answer-graph summarization via two-way bisimulation.
//!
//! The paper compares PgSum against pSum (Wu et al., "Summarizing answer
//! graphs induced by keyword queries", VLDB'13), adapted to segments by
//! introducing a conceptual `(start, end)` keyword pair connected to all
//! 0-in-degree / 0-out-degree vertices (Sec. V). The original implementation
//! is unavailable; per DESIGN.md we reimplement its grouping as the quotient
//! under *forward+backward bisimulation* anchored at the virtual keywords —
//! a path-preserving partition that is strictly more conservative than
//! PgSum's Lemma-5 simulation merging. Consequently
//! `cr(PgSum) ≤ cr(pSum)` on every input, which is the qualitative
//! relationship Fig. 5(e)–(h) reports (PgSum ≈ half the pSum size).

use crate::union::G0;
use prov_store::hash::FxHashMap;

/// Result of the pSum baseline.
#[derive(Debug, Clone)]
pub struct PsumResult {
    /// Block id per g0 node.
    pub block_of: Vec<u32>,
    /// Number of blocks (over real nodes; virtual anchors excluded).
    pub block_count: usize,
    /// Compaction ratio `|blocks| / |g0|`.
    pub compaction_ratio: f64,
    /// Refinement iterations until fixpoint.
    pub iterations: usize,
}

/// A refinement signature: (own block, out-(kind, block) set, in-(kind, block) set).
type BlockSignature = (u32, Vec<(u8, u32)>, Vec<(u8, u32)>);

/// Run the pSum baseline on `g0`.
pub fn psum(g0: &G0) -> PsumResult {
    let n = g0.len();
    if n == 0 {
        return PsumResult {
            block_of: Vec::new(),
            block_count: 0,
            compaction_ratio: 1.0,
            iterations: 0,
        };
    }
    // Virtual anchors: start = n, end = n + 1.
    let start = n;
    let end = n + 1;
    let total = n + 2;
    let mut out_adj: Vec<Vec<(u8, u32)>> = vec![Vec::new(); total];
    let mut in_adj: Vec<Vec<(u8, u32)>> = vec![Vec::new(); total];
    for (v, adj) in g0.out_adj.iter().enumerate() {
        for &(k, d) in adj {
            out_adj[v].push((k, d));
            in_adj[d as usize].push((k, v as u32));
        }
    }
    const VIRT: u8 = 255;
    for v in 0..n {
        if g0.in_adj[v].is_empty() {
            out_adj[start].push((VIRT, v as u32));
            in_adj[v].push((VIRT, start as u32));
        }
        if g0.out_adj[v].is_empty() {
            out_adj[v].push((VIRT, end as u32));
            in_adj[end].push((VIRT, v as u32));
        }
    }

    // Initial partition: class labels; anchors get unique blocks.
    let mut block: Vec<u32> = (0..total)
        .map(|v| {
            if v == start {
                u32::MAX - 1
            } else if v == end {
                u32::MAX
            } else {
                g0.class(v as u32).0
            }
        })
        .collect();
    // Densify initial ids.
    let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
    for b in block.iter_mut() {
        let next = remap.len() as u32;
        *b = *remap.entry(*b).or_insert(next);
    }

    // Refinement: signature = (block, sorted out (kind, child block),
    // sorted in (kind, parent block)); split until stable.
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut sigs: Vec<BlockSignature> = Vec::with_capacity(total);
        for v in 0..total {
            let mut outs: Vec<(u8, u32)> =
                out_adj[v].iter().map(|&(k, d)| (k, block[d as usize])).collect();
            outs.sort_unstable();
            outs.dedup();
            let mut ins: Vec<(u8, u32)> =
                in_adj[v].iter().map(|&(k, p)| (k, block[p as usize])).collect();
            ins.sort_unstable();
            ins.dedup();
            sigs.push((block[v], outs, ins));
        }
        let mut sig_ids: FxHashMap<&BlockSignature, u32> = FxHashMap::default();
        let mut next_block: Vec<u32> = Vec::with_capacity(total);
        for sig in &sigs {
            let next = sig_ids.len() as u32;
            next_block.push(*sig_ids.entry(sig).or_insert(next));
        }
        if next_block == block {
            break;
        }
        block = next_block;
    }

    // Count blocks over real nodes only. Ids are dense after the last
    // refinement pass, so a marker array beats a tree set.
    let total_blocks = block.iter().max().map_or(0, |&b| b as usize + 1);
    let mut seen = vec![false; total_blocks];
    let mut block_count = 0usize;
    for &b in block.iter().take(n) {
        if !std::mem::replace(&mut seen[b as usize], true) {
            block_count += 1;
        }
    }
    PsumResult {
        block_of: block[..n].to_vec(),
        block_count,
        compaction_ratio: block_count as f64 / n as f64,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::PropertyAggregation;
    use crate::merge::merge;
    use crate::segment_ref::SegmentRef;
    use crate::union::build_g0;
    use prov_model::EdgeKind;
    use prov_store::ProvGraph;

    fn twins(n_segments: usize) -> G0 {
        let mut g = ProvGraph::new();
        let mut segs = Vec::new();
        for i in 0..n_segments {
            let d = g.add_entity(&format!("d{i}"));
            let t = g.add_activity("t");
            let w = g.add_entity(&format!("w{i}"));
            let e1 = g.add_edge(EdgeKind::Used, t, d).unwrap();
            let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
            segs.push(SegmentRef::new(vec![d, t, w], vec![e1, e2]));
        }
        build_g0(&g, &segs, &PropertyAggregation::ignore_all(), 1)
    }

    #[test]
    fn identical_segments_fully_merge() {
        let g0 = twins(4);
        let res = psum(&g0);
        assert_eq!(res.block_count, 3);
        assert!((res.compaction_ratio - 3.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn bisimulation_is_finer_than_pgsum() {
        // Mixed shapes: add a truncated segment.
        let mut g = ProvGraph::new();
        let mut segs = Vec::new();
        for i in 0..2 {
            let d = g.add_entity(&format!("d{i}"));
            let t = g.add_activity("t");
            let w = g.add_entity(&format!("w{i}"));
            let e1 = g.add_edge(EdgeKind::Used, t, d).unwrap();
            let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
            segs.push(SegmentRef::new(vec![d, t, w], vec![e1, e2]));
        }
        let d = g.add_entity("dx");
        let t = g.add_activity("t");
        let e1 = g.add_edge(EdgeKind::Used, t, d).unwrap();
        segs.push(SegmentRef::new(vec![d, t], vec![e1]));
        let g0 = build_g0(&g, &segs, &PropertyAggregation::ignore_all(), 0);

        let ps = psum(&g0);
        let pg = merge(&g0);
        assert!(
            pg.members.len() <= ps.block_count,
            "PgSum ({}) must compact at least as well as pSum ({})",
            pg.members.len(),
            ps.block_count
        );
    }

    #[test]
    fn blocks_respect_classes() {
        let g0 = twins(3);
        let res = psum(&g0);
        for v in 0..g0.len() as u32 {
            for u in 0..g0.len() as u32 {
                if res.block_of[v as usize] == res.block_of[u as usize] {
                    assert_eq!(g0.class(v), g0.class(u));
                }
            }
        }
    }

    #[test]
    fn empty_input() {
        let g = ProvGraph::new();
        let g0 = build_g0(&g, &[], &PropertyAggregation::ignore_all(), 1);
        let res = psum(&g0);
        assert_eq!(res.block_count, 0);
        assert_eq!(res.compaction_ratio, 1.0);
    }

    #[test]
    fn anchor_positioning_distinguishes_roots_from_interior() {
        // Chain d <- t <- w  vs  lone entity x: x touches both anchors.
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t = g.add_activity("t");
        let w = g.add_entity("w");
        let e1 = g.add_edge(EdgeKind::Used, t, d).unwrap();
        let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
        let x = g.add_entity("x");
        let s1 = SegmentRef::new(vec![d, t, w], vec![e1, e2]);
        let s2 = SegmentRef::new(vec![x], vec![]);
        let g0 = build_g0(&g, &[s1, s2], &PropertyAggregation::ignore_all(), 0);
        let res = psum(&g0);
        // x (both 0-in and 0-out) cannot share a block with d or w.
        let (bx, bd, bw) = (res.block_of[3], res.block_of[0], res.block_of[2]);
        assert_ne!(bx, bd);
        assert_ne!(bx, bw);
    }
}
