//! Boundary criteria `B` of a PgSeg query (Sec. III-A.3).
//!
//! Boundaries come in two flavours:
//!
//! * **Exclusion constraints** — boolean functions `bv : V → {0,1}`,
//!   `be : E → {0,1}`. A vertex/edge failing any exclusion predicate is mapped
//!   to the empty word `ε`, i.e. removed from every path the similarity
//!   language can use. Expressed here as composable [`VertexPred`] /
//!   [`EdgePred`] values covering the paper's examples (ownership/who, time
//!   intervals/when, project steps/where, plus custom closures), compiled once
//!   per query into a dense [`Mask`].
//! * **Expansion specifications** — `Bx = {bx(Vx, k)}`: include the ancestry
//!   paths within `k` activities (2k hops over `G⁻¹`/`U⁻¹`) of the given
//!   entities ([`Expansion`]); evaluated in the adjust step.

use prov_model::{EdgeId, EdgeKind, PropValue, VertexId, VertexKind};
use prov_store::ProvGraph;
use std::sync::Arc;

/// Custom vertex predicate function type.
pub type VertexFn = Arc<dyn Fn(&ProvGraph, VertexId) -> bool + Send + Sync>;

/// Custom edge predicate function type.
pub type EdgeFn = Arc<dyn Fn(&ProvGraph, EdgeId) -> bool + Send + Sync>;

/// A vertex exclusion predicate (`bv`). Vertices *failing* any predicate are
/// excluded (label mapped to ε).
#[derive(Clone)]
pub enum VertexPred {
    /// Keep only vertices whose birth lies in `[from, to)` — the "when"
    /// boundary (time intervals).
    BirthIn {
        /// Inclusive lower bound.
        from: u64,
        /// Exclusive upper bound.
        to: u64,
    },
    /// Keep only vertices whose property `key` equals `value` — the "where"
    /// boundary (project steps, versions, file path patterns).
    PropEq {
        /// Property key name.
        key: String,
        /// Required value.
        value: PropValue,
    },
    /// Keep only vertices whose name starts with the prefix.
    NamePrefix(String),
    /// Drop vertices of this kind.
    ExcludeKind(VertexKind),
    /// Arbitrary predicate (true = keep).
    Custom(VertexFn),
}

impl std::fmt::Debug for VertexPred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VertexPred::BirthIn { from, to } => write!(f, "BirthIn[{from},{to})"),
            VertexPred::PropEq { key, value } => write!(f, "PropEq({key}={value})"),
            VertexPred::NamePrefix(p) => write!(f, "NamePrefix({p})"),
            VertexPred::ExcludeKind(k) => write!(f, "ExcludeKind({k:?})"),
            VertexPred::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl VertexPred {
    /// Evaluate: true = keep the vertex.
    pub fn keep(&self, graph: &ProvGraph, v: VertexId) -> bool {
        match self {
            VertexPred::BirthIn { from, to } => {
                let b = graph.vertex(v).birth;
                *from <= b && b < *to
            }
            VertexPred::PropEq { key, value } => graph.vprop(v, key) == Some(value),
            VertexPred::NamePrefix(p) => {
                graph.vertex_name(v).is_some_and(|n| n.starts_with(p.as_str()))
            }
            VertexPred::ExcludeKind(k) => graph.vertex_kind(v) != *k,
            VertexPred::Custom(f) => f(graph, v),
        }
    }
}

/// An edge exclusion predicate (`be`).
#[derive(Clone)]
pub enum EdgePred {
    /// Drop edges of this kind (e.g. Q1/Q2 exclude `A` and `D` edges).
    ExcludeKind(EdgeKind),
    /// Keep only edges whose property `key` equals `value`.
    PropEq {
        /// Property key name.
        key: String,
        /// Required value.
        value: PropValue,
    },
    /// Arbitrary predicate (true = keep).
    Custom(EdgeFn),
}

impl std::fmt::Debug for EdgePred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgePred::ExcludeKind(k) => write!(f, "ExcludeKind({k:?})"),
            EdgePred::PropEq { key, value } => write!(f, "PropEq({key}={value})"),
            EdgePred::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl EdgePred {
    /// Evaluate: true = keep the edge.
    pub fn keep(&self, graph: &ProvGraph, e: EdgeId) -> bool {
        match self {
            EdgePred::ExcludeKind(k) => graph.edge(e).kind != *k,
            EdgePred::PropEq { key, value } => graph.eprop(e, key) == Some(value),
            EdgePred::Custom(f) => f(graph, e),
        }
    }
}

/// An expansion specification `bx(Vx, k)`: include ancestry within `k`
/// activities (2k hops) of the entities in `roots`.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// Entities to expand from (must already be in the segment to matter).
    pub roots: Vec<VertexId>,
    /// Number of activities away (2k edge hops over ancestry edges).
    pub k: u32,
}

/// The boundary criteria `B` of a PgSeg query.
#[derive(Debug, Clone, Default)]
pub struct Boundary {
    /// Vertex exclusion predicates (`Bv`), conjunctive.
    pub vertex_preds: Vec<VertexPred>,
    /// Edge exclusion predicates (`Be`), conjunctive.
    pub edge_preds: Vec<EdgePred>,
    /// Expansion specifications (`Bx`).
    pub expansions: Vec<Expansion>,
}

impl Boundary {
    /// No boundary: everything included, nothing expanded.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a vertex predicate.
    pub fn with_vertex_pred(mut self, p: VertexPred) -> Self {
        self.vertex_preds.push(p);
        self
    }

    /// Add an edge predicate.
    pub fn with_edge_pred(mut self, p: EdgePred) -> Self {
        self.edge_preds.push(p);
        self
    }

    /// Exclude edge kinds (convenience for the common `exclude: A, D` case).
    pub fn without_edge_kinds(mut self, kinds: &[EdgeKind]) -> Self {
        for &k in kinds {
            self.edge_preds.push(EdgePred::ExcludeKind(k));
        }
        self
    }

    /// Add an expansion `bx(Vx, k)`.
    pub fn expand(mut self, roots: Vec<VertexId>, k: u32) -> Self {
        self.expansions.push(Expansion { roots, k });
        self
    }

    /// True when no exclusion predicate is present (mask compilation can be
    /// skipped entirely).
    pub fn has_exclusions(&self) -> bool {
        !self.vertex_preds.is_empty() || !self.edge_preds.is_empty()
    }

    /// Compile the exclusion predicates into a dense [`Mask`].
    pub fn compile(&self, graph: &ProvGraph) -> Mask {
        let vertex_ok = graph
            .vertex_ids()
            .map(|v| self.vertex_preds.iter().all(|p| p.keep(graph, v)))
            .collect();
        let edge_ok =
            graph.edge_ids().map(|e| self.edge_preds.iter().all(|p| p.keep(graph, e))).collect();
        Mask { vertex_ok, edge_ok }
    }
}

/// Compiled exclusion boundary: the label functions `Fv`/`Fe` of Sec. III-A.3
/// in dense boolean form (false = label mapped to ε).
#[derive(Debug, Clone)]
pub struct Mask {
    /// Per-vertex keep flag.
    pub vertex_ok: Vec<bool>,
    /// Per-edge keep flag.
    pub edge_ok: Vec<bool>,
}

impl Mask {
    /// A mask keeping everything (identity label function).
    pub fn keep_all(graph: &ProvGraph) -> Mask {
        Mask {
            vertex_ok: vec![true; graph.vertex_count()],
            edge_ok: vec![true; graph.edge_count()],
        }
    }

    /// Is vertex `v` kept?
    #[inline]
    pub fn vertex(&self, v: VertexId) -> bool {
        self.vertex_ok[v.index()]
    }

    /// Is edge `e` kept?
    #[inline]
    pub fn edge(&self, e: EdgeId) -> bool {
        self.edge_ok[e.index()]
    }

    /// Conjoin another mask into this one: keep only what both keep.
    /// Exclusion criteria accumulate across adjust steps this way. Both
    /// masks must be compiled against the same graph.
    pub fn intersect(&mut self, other: &Mask) {
        debug_assert_eq!(self.vertex_ok.len(), other.vertex_ok.len());
        debug_assert_eq!(self.edge_ok.len(), other.edge_ok.len());
        for (slot, ok) in self.vertex_ok.iter_mut().zip(&other.vertex_ok) {
            *slot &= ok;
        }
        for (slot, ok) in self.edge_ok.iter_mut().zip(&other.edge_ok) {
            *slot &= ok;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (ProvGraph, VertexId, VertexId, VertexId, EdgeId, EdgeId) {
        let mut g = ProvGraph::new();
        let d = g.add_entity("dataset-v1");
        let t = g.add_activity("train-v1");
        let w = g.add_entity("weights-v1");
        let a = g.add_agent("alice");
        g.set_vprop(t, "command", "train");
        let e_used = g.add_edge(EdgeKind::Used, t, d).unwrap();
        let e_attr = g.add_edge(EdgeKind::WasAttributedTo, d, a).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
        (g, d, t, w, e_used, e_attr)
    }

    #[test]
    fn birth_window_predicate() {
        let (g, d, t, w, ..) = sample();
        let p = VertexPred::BirthIn { from: 1, to: 3 };
        assert!(!p.keep(&g, d)); // birth 0
        assert!(p.keep(&g, t)); // birth 1
        assert!(p.keep(&g, w)); // birth 2
    }

    #[test]
    fn prop_and_name_predicates() {
        let (g, d, t, ..) = sample();
        let p = VertexPred::PropEq { key: "command".into(), value: "train".into() };
        assert!(p.keep(&g, t));
        assert!(!p.keep(&g, d));
        let n = VertexPred::NamePrefix("dataset".into());
        assert!(n.keep(&g, d));
        assert!(!n.keep(&g, t));
    }

    #[test]
    fn edge_kind_exclusion_compiles_to_mask() {
        let (g, _, _, _, e_used, e_attr) = sample();
        let b = Boundary::none().without_edge_kinds(&[EdgeKind::WasAttributedTo]);
        let mask = b.compile(&g);
        assert!(mask.edge(e_used));
        assert!(!mask.edge(e_attr));
        assert!(mask.vertex_ok.iter().all(|&x| x));
    }

    #[test]
    fn custom_predicates_apply() {
        let (g, d, ..) = sample();
        let b = Boundary::none().with_vertex_pred(VertexPred::Custom(Arc::new(|g, v| {
            g.vertex_name(v) != Some("dataset-v1")
        })));
        let mask = b.compile(&g);
        assert!(!mask.vertex(d));
    }

    #[test]
    fn conjunction_of_predicates() {
        let (g, ..) = sample();
        let b = Boundary::none()
            .with_vertex_pred(VertexPred::ExcludeKind(VertexKind::Agent))
            .with_vertex_pred(VertexPred::BirthIn { from: 0, to: 2 });
        let mask = b.compile(&g);
        // Only d (birth 0, entity) and t (birth 1, activity) survive.
        assert_eq!(mask.vertex_ok, vec![true, true, false, false]);
    }

    #[test]
    fn mask_intersection_accumulates_exclusions() {
        let (g, d, t, _, e_used, e_attr) = sample();
        let mut a = Boundary::none()
            .with_vertex_pred(VertexPred::ExcludeKind(VertexKind::Agent))
            .compile(&g);
        let b = Boundary::none().without_edge_kinds(&[EdgeKind::WasAttributedTo]).compile(&g);
        a.intersect(&b);
        assert!(a.vertex(d) && a.vertex(t));
        assert!(!a.edge(e_attr), "edge exclusion folded in");
        assert!(a.edge(e_used));
    }

    #[test]
    fn keep_all_mask_and_expansion_builder() {
        let (g, d, ..) = sample();
        let mask = Mask::keep_all(&g);
        assert!(mask.vertex(d));
        let b = Boundary::none().expand(vec![d], 2);
        assert_eq!(b.expansions.len(), 1);
        assert_eq!(b.expansions[0].k, 2);
        assert!(!b.has_exclusions());
        assert!(Boundary::none().without_edge_kinds(&[EdgeKind::Used]).has_exclusions());
    }
}
