//! The unified query error type of the service layer.
//!
//! Every fallible path through [`crate::ProvService`] funnels into
//! [`ApiError`], and every `ApiError` maps onto a wire-stable
//! [`ErrorCode`] so clients can branch without parsing messages.

use crate::envelope::SessionId;
use prov_store::StoreError;
use serde::{Deserialize, Serialize};

/// Wire-stable error discriminant carried by error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request body failed to parse or validate.
    MalformedRequest,
    /// The query was well-formed JSON but semantically invalid
    /// (e.g. non-entity PgSeg query vertices, expansions in a restrict).
    InvalidQuery,
    /// An edge violated the PROV domain/range rules during ingest.
    InvalidEdge,
    /// A vertex id was out of range.
    UnknownVertex,
    /// An edge id was out of range.
    UnknownEdge,
    /// A versioned name resolved to no vertex.
    UnknownEntity,
    /// No live session has the given id.
    UnknownSession,
    /// The graph would become cyclic.
    Cycle,
    /// JSON interchange import failed.
    Import,
    /// The store's dense id space is exhausted.
    CapacityExceeded,
    /// The durable storage engine cannot accept commits (I/O failure or a
    /// poisoned engine after one); reopen the database to recover.
    StorageUnavailable,
    /// The on-disk log or snapshot is corrupt (checksum-valid bytes that do
    /// not decode or replay) — recovery refused to guess.
    CorruptLog,
}

/// Everything that can go wrong while serving a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The embedded store rejected the operation.
    Store(StoreError),
    /// No live session has this id.
    UnknownSession(SessionId),
    /// An [`crate::EntityRef`] name resolved to no vertex.
    UnknownEntity(String),
    /// The request body itself was unusable (parse failure, bad shape).
    Malformed(String),
}

impl ApiError {
    /// The wire discriminant for this error.
    pub fn code(&self) -> ErrorCode {
        match self {
            ApiError::Store(StoreError::InvalidEdge(_)) => ErrorCode::InvalidEdge,
            ApiError::Store(StoreError::UnknownVertex(_)) => ErrorCode::UnknownVertex,
            ApiError::Store(StoreError::UnknownEdge(_)) => ErrorCode::UnknownEdge,
            ApiError::Store(StoreError::CycleDetected { .. }) => ErrorCode::Cycle,
            ApiError::Store(StoreError::Import(_)) => ErrorCode::Import,
            ApiError::Store(StoreError::InvalidQuery(_)) => ErrorCode::InvalidQuery,
            ApiError::Store(StoreError::CapacityExceeded { .. }) => ErrorCode::CapacityExceeded,
            ApiError::Store(StoreError::StorageUnavailable(_)) => ErrorCode::StorageUnavailable,
            ApiError::Store(StoreError::CorruptLog(_)) => ErrorCode::CorruptLog,
            ApiError::UnknownSession(_) => ErrorCode::UnknownSession,
            ApiError::UnknownEntity(_) => ErrorCode::UnknownEntity,
            ApiError::Malformed(_) => ErrorCode::MalformedRequest,
        }
    }

    /// Shorthand for an invalid-query error.
    pub fn invalid_query(msg: impl Into<String>) -> ApiError {
        ApiError::Store(StoreError::InvalidQuery(msg.into()))
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::Store(e) => write!(f, "{e}"),
            ApiError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ApiError::UnknownEntity(name) => write!(f, "unknown entity {name:?}"),
            ApiError::Malformed(msg) => write!(f, "malformed request: {msg}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<StoreError> for ApiError {
    fn from(e: StoreError) -> Self {
        ApiError::Store(e)
    }
}

/// Service result alias.
pub type ApiResult<T> = Result<T, ApiError>;

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::VertexId;

    #[test]
    fn codes_classify_store_errors() {
        let e: ApiError = StoreError::InvalidQuery("bad".into()).into();
        assert_eq!(e.code(), ErrorCode::InvalidQuery);
        let e: ApiError = StoreError::UnknownVertex(VertexId::new(9)).into();
        assert_eq!(e.code(), ErrorCode::UnknownVertex);
        let e: ApiError = StoreError::CapacityExceeded { what: "vertex" }.into();
        assert_eq!(e.code(), ErrorCode::CapacityExceeded);
        let e: ApiError = StoreError::StorageUnavailable("fsync failed".into()).into();
        assert_eq!(e.code(), ErrorCode::StorageUnavailable);
        let e: ApiError = StoreError::CorruptLog("bad seq".into()).into();
        assert_eq!(e.code(), ErrorCode::CorruptLog);
        assert_eq!(ApiError::UnknownSession(SessionId::new(1)).code(), ErrorCode::UnknownSession);
        assert_eq!(ApiError::UnknownEntity("x".into()).code(), ErrorCode::UnknownEntity);
        assert_eq!(ApiError::Malformed("{".into()).code(), ErrorCode::MalformedRequest);
    }

    #[test]
    fn display_carries_context() {
        assert!(ApiError::UnknownEntity("model-v9".into()).to_string().contains("model-v9"));
        assert!(ApiError::invalid_query("vsrc empty").to_string().contains("invalid query"));
    }
}
