//! Serde round-trip coverage for the wire envelope: every [`Request`] and
//! [`Response`] variant must survive `to_string` → `from_str` losslessly,
//! and the wire shape must be externally tagged so transports can route on
//! the variant name.

use prov_api::*;
use prov_model::{EdgeId, EdgeKind, VertexId, VertexKind};

fn roundtrip_request(req: Request) -> Request {
    let json = serde_json::to_string(&req).unwrap();
    let back: Request = serde_json::from_str(&json).unwrap();
    assert_eq!(back, req, "lossy request round trip through {json}");
    back
}

fn roundtrip_response(resp: Response) -> Response {
    let json = serde_json::to_string(&resp).unwrap();
    let back: Response = serde_json::from_str(&json).unwrap();
    assert_eq!(back, resp, "lossy response round trip through {json}");
    back
}

fn full_boundary() -> BoundarySpec {
    BoundarySpec::none()
        .with_vertex(VertexPredSpec::BirthIn(BirthWindow { from: 2, to: 9 }))
        .with_vertex(VertexPredSpec::PropEq(PropMatch {
            key: "command".into(),
            value: "train".into(),
        }))
        .with_vertex(VertexPredSpec::NamePrefix("model".into()))
        .with_vertex(VertexPredSpec::ExcludeKind(VertexKind::Agent))
        .with_edge(EdgePredSpec::ExcludeKind(EdgeKind::WasAttributedTo))
        .with_edge(EdgePredSpec::PropEq(PropMatch { key: "step".into(), value: 3i64.into() }))
        .with_expansion(vec![EntityRef::Id(VertexId::new(4)), "dataset-v1".into()], 2)
}

fn stats() -> Stats {
    Stats {
        elapsed_micros: 120,
        vertices: 7,
        edges: 9,
        snapshot: SnapshotActivity { reuses: 40, refreshes: 2, rebuilds: 1 },
        query: QueryActivity { steps: 3, rows_scanned: 250, frontier_peak: 17, resumptions: 2 },
        durability: DurabilityActivity {
            wal_appends: 31,
            fsyncs: 33,
            recoveries: 1,
            truncated_tail_bytes: 11,
            snapshots_written: 2,
            batches_replayed: 5,
            group_flushes: 12,
            group_flushed_batches: 31,
            lazy_segments_deferred: 2,
            lazy_deferred_bytes: 4096,
            lazy_segment_loads: 2,
            lazy_bytes_loaded: 4096,
        },
    }
}

#[test]
fn every_request_variant_round_trips() {
    roundtrip_request(Request::AddAgent(AddAgentRequest { name: "alice".into() }));
    roundtrip_request(Request::AddArtifact(AddArtifactRequest {
        artifact: "dataset".into(),
        attributed_to: Some("alice".into()),
    }));
    roundtrip_request(Request::RecordActivity(RecordActivityRequest {
        command: "train -gpu".into(),
        agent: Some(EntityRef::Id(VertexId::new(0))),
        inputs: vec!["dataset-v1".into(), EntityRef::Id(VertexId::new(3))],
        outputs: vec![OutputSpecDto {
            artifact: "weights".into(),
            props: vec![("acc".into(), 0.75.into()), ("gpu".into(), true.into())],
        }],
        props: vec![("lr".into(), 0.1.into()), ("epochs".into(), 20i64.into())],
    }));
    roundtrip_request(Request::Segment(SegmentRequest {
        src: vec!["dataset-v1".into()],
        dst: vec!["weights-v2".into()],
        boundary: full_boundary(),
        options: SegmentOptions {
            evaluator: Some(EvaluatorSpec::AlgCompressed),
            early_stop: Some(false),
            symmetric_prune: Some(true),
        },
    }));
    roundtrip_request(Request::OpenSession(OpenSessionRequest {
        src: vec![EntityRef::Id(VertexId::new(1))],
        dst: vec![EntityRef::Id(VertexId::new(8))],
        boundary: BoundarySpec::none(),
        options: SegmentOptions::default(),
    }));
    roundtrip_request(Request::Expand(ExpandRequest {
        session: SessionId::new(3),
        roots: vec!["model-v2".into()],
        k: 2,
    }));
    roundtrip_request(Request::Restrict(RestrictRequest {
        session: SessionId::new(3),
        boundary: BoundarySpec::none().with_vertex(VertexPredSpec::ExcludeKind(VertexKind::Agent)),
    }));
    roundtrip_request(Request::CloseSession(CloseSessionRequest { session: SessionId::new(3) }));
    roundtrip_request(Request::Summarize(SummarizeRequest {
        sessions: vec![SessionId::new(0), SessionId::new(1)],
        k: Some(2),
        entity_keys: vec!["filename".into()],
        activity_keys: vec!["command".into()],
    }));
    roundtrip_request(Request::Lineage(LineageRequest {
        entity: "weights-v3".into(),
        direction: LineageDir::Ancestors,
        max_hops: None,
    }));
    roundtrip_request(Request::Lineage(LineageRequest {
        entity: EntityRef::Id(VertexId::new(3)),
        direction: LineageDir::Descendants,
        max_hops: Some(4),
    }));
    roundtrip_request(Request::Query(QueryRequest {
        query: QuerySpec::Pipeline(
            prov_store::Pipeline::from_ids(vec![VertexId::new(4)])
                .traverse(
                    &[
                        (EdgeKind::WasGeneratedBy, prov_store::Direction::Out),
                        (EdgeKind::Used, prov_store::Direction::Out),
                    ],
                    1,
                    prov_store::Traverse::UNBOUNDED,
                )
                .filter(prov_store::PropFilter::of_kind(VertexKind::Entity))
                .limit(100),
        ),
        session: Some(SessionId::new(2)),
        page_size: Some(25),
        cursor: Some(prov_store::QueryCursor { vertices: 40, edges: 55, after: 12 }),
        max_expansions: None,
        max_paths: None,
    }));
    roundtrip_request(Request::Query(QueryRequest {
        query: QuerySpec::Pattern(
            prov_store::PathPattern::node(
                prov_store::NodeSpec::of_kind(VertexKind::Entity).with_ids(vec![VertexId::new(7)]),
            )
            .then(
                prov_store::RelSpec::star(
                    &[EdgeKind::Used, EdgeKind::WasGeneratedBy],
                    prov_store::PatternDir::Forward,
                    0,
                    3,
                ),
                prov_store::NodeSpec::any().with_prop("acc", 0.7),
            ),
        ),
        session: None,
        page_size: None,
        cursor: None,
        max_expansions: Some(10_000),
        max_paths: Some(500),
    }));
    roundtrip_request(Request::Export(ExportRequest {}));
    roundtrip_request(Request::Import(ImportRequest { json: "{\"entity\":{}}".into() }));
}

#[test]
fn every_response_variant_round_trips() {
    roundtrip_response(Response::Error(ErrorResponse {
        code: ErrorCode::UnknownSession,
        message: "unknown session s9".into(),
    }));
    roundtrip_response(Response::Vertex(VertexResponse {
        id: VertexId::new(5),
        name: Some("dataset-v1".into()),
        stats: stats(),
    }));
    roundtrip_response(Response::Activity(ActivityResponse {
        activity: VertexId::new(6),
        outputs: vec![VertexId::new(7), VertexId::new(8)],
        stats: stats(),
    }));
    let segment = SegmentDto {
        vsrc: vec![VertexId::new(0)],
        vdst: vec![VertexId::new(4)],
        vertices: vec![
            SegmentVertexDto {
                id: VertexId::new(0),
                name: Some("dataset-v1".into()),
                kind: VertexKind::Entity,
                tags: "src|vc1".into(),
            },
            SegmentVertexDto {
                id: VertexId::new(2),
                name: None,
                kind: VertexKind::Activity,
                tags: "vc1".into(),
            },
        ],
        edges: vec![SegmentEdgeDto {
            id: EdgeId::new(0),
            src: VertexId::new(2),
            dst: VertexId::new(0),
            kind: EdgeKind::Used,
        }],
    };
    roundtrip_response(Response::Segment(SegmentResponse {
        segment: segment.clone(),
        stats: stats(),
    }));
    roundtrip_response(Response::Session(SessionResponse {
        session: SessionId::new(1),
        segment,
        stats: stats(),
    }));
    roundtrip_response(Response::Closed(ClosedResponse {
        session: SessionId::new(1),
        stats: stats(),
    }));
    roundtrip_response(Response::Summary(SummaryResponse {
        summary: PsgDto {
            vertices: vec![PsgVertexDto {
                label: "dataset [E:2]".into(),
                kind: VertexKind::Entity,
                members: vec![(0, VertexId::new(0)), (1, VertexId::new(9))],
            }],
            edges: vec![PsgEdgeDto {
                src: 0,
                dst: 0,
                kind: EdgeKind::WasDerivedFrom,
                frequency: 0.5,
            }],
            segment_count: 2,
            input_vertex_count: 11,
            compaction_ratio: 0.27,
        },
        stats: stats(),
    }));
    roundtrip_response(Response::Lineage(LineageResponse {
        entity: VertexId::new(4),
        vertices: vec![VertexId::new(0), VertexId::new(2)],
        stats: stats(),
    }));
    roundtrip_response(Response::Query(QueryResponse {
        rows: vec![VertexId::new(1), VertexId::new(5)],
        count: 9,
        is_complete: false,
        cursor: Some(prov_store::QueryCursor { vertices: 12, edges: 20, after: 5 }),
        stats: stats(),
    }));
    roundtrip_response(Response::Document(DocumentResponse {
        json: "{\"entity\":{}}".into(),
        stats: stats(),
    }));
    roundtrip_response(Response::Imported(ImportedResponse { stats: stats() }));
}

#[test]
fn wire_shape_is_externally_tagged() {
    let json = serde_json::to_string(&Request::AddAgent(AddAgentRequest { name: "alice".into() }))
        .unwrap();
    assert!(json.starts_with("{\"AddAgent\":"), "got {json}");
    let json = serde_json::to_string(&Response::Closed(ClosedResponse {
        session: SessionId::new(2),
        stats: Stats::default(),
    }))
    .unwrap();
    assert!(json.starts_with("{\"Closed\":"), "got {json}");
    // SessionId is transparent and EntityRef untagged: ids are numbers,
    // names are strings.
    let json = serde_json::to_string(&Request::Expand(ExpandRequest {
        session: SessionId::new(7),
        roots: vec![EntityRef::Id(VertexId::new(3)), "model-v2".into()],
        k: 1,
    }))
    .unwrap();
    assert!(json.contains("\"session\":7"), "got {json}");
    assert!(json.contains("[3,\"model-v2\"]"), "got {json}");
}

#[test]
fn optional_request_fields_may_be_omitted() {
    // Hand-written client JSON: defaults fill boundary/options/props.
    let req: Request =
        serde_json::from_str(r#"{"Segment": {"src": ["dataset-v1"], "dst": [4]}}"#).unwrap();
    match &req {
        Request::Segment(r) => {
            assert!(r.boundary.is_empty());
            assert_eq!(r.options, SegmentOptions::default());
            assert_eq!(r.src, vec![EntityRef::Name("dataset-v1".into())]);
            assert_eq!(r.dst, vec![EntityRef::Id(VertexId::new(4))]);
        }
        other => panic!("parsed wrong variant: {other:?}"),
    }
    let req: Request = serde_json::from_str(r#"{"RecordActivity": {"command": "train"}}"#).unwrap();
    match &req {
        Request::RecordActivity(r) => {
            assert!(r.agent.is_none() && r.inputs.is_empty() && r.outputs.is_empty());
        }
        other => panic!("parsed wrong variant: {other:?}"),
    }
}

#[test]
fn unknown_variant_is_rejected_not_misrouted() {
    let err = serde_json::from_str::<Request>(r#"{"DropTables": {}}"#).unwrap_err();
    assert!(err.to_string().contains("DropTables"), "got {err}");
}

#[test]
fn storage_error_codes_round_trip() {
    for code in [ErrorCode::StorageUnavailable, ErrorCode::CorruptLog] {
        let resp = Response::Error(ErrorResponse { code, message: "disk on fire".into() });
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains(&format!("{code:?}")), "got {json}");
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }
}

#[test]
fn stats_without_durability_field_deserialize_to_zero() {
    // An old-wire Stats (pre-durability) must still parse, with all-zero
    // durability counters.
    let json = r#"{"elapsed_micros": 5, "vertices": 1, "edges": 2}"#;
    let stats: Stats = serde_json::from_str(json).unwrap();
    assert_eq!(stats.durability, DurabilityActivity::default());
    assert_eq!(stats.vertices, 1);
}
