//! Offline stand-in for `proptest`.
//!
//! Implements the API subset the workspace's property tests use — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, range and
//! tuple strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`sample::Index`], [`arbitrary::any`], weighted [`prop_oneof!`], and
//! `ProptestConfig::with_cases` — over a deterministic per-test RNG.
//!
//! Failing cases are reported by panic with the sampled inputs, but there is
//! **no shrinking**: the failure you see is the raw sampled case.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Mirror of the real crate's `prop` re-export module.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// `cases` times with freshly sampled arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let mut __case_desc = String::new();
                    $(
                        __case_desc.push_str(concat!("\n  ", stringify!($arg), " = "));
                        __case_desc.push_str(&format!("{:?}", &$arg));
                    )*
                    let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed with inputs:{}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __case_desc
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Assert within a property test (panics; no shrink machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Pick among strategies, optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}
