//! Workspace smoke test: the root crate's re-export surface must resolve, so
//! downstream users can reach every subsystem through `prov::…` without
//! depending on the member crates directly.

use prov::api::{AddAgentRequest, ProvService, Request, Response};
use prov::bitset::{FastSet, FixedBitSet, SetBackend};
use prov::cfl::{Grammar, Symbol, Terminal};
use prov::core_api::{ActivityRecord, OutputSpec, ProvDb};
use prov::model::{EdgeKind, PropValue, VertexId, VertexKind};
use prov::segment::{PgSegOptions, PgSegQuery};
use prov::store::graph::ProvGraph;
use prov::summary::PgSumQuery;
use prov::workload::dist::ZipfTable;

#[test]
fn reexport_surface_resolves_and_is_usable() {
    // prov::model — the vocabulary.
    assert_eq!(VertexKind::ALL.len(), 3);
    assert_eq!(EdgeKind::ALL.len(), 5);
    assert_eq!(VertexId::new(3).to_string(), "v3");
    assert_eq!(PropValue::from(0.75).as_float(), Some(0.75));

    // prov::bitset — fast sets.
    let mut set = FixedBitSet::with_universe(64);
    assert!(set.insert(7));
    assert!(set.contains(7));
    let _ = SetBackend::Bit;

    // prov::store — the graph store.
    let mut g = ProvGraph::new();
    let d = g.add_entity("dataset");
    let t = g.add_activity("train");
    g.add_edge(EdgeKind::Used, t, d).unwrap();
    assert_eq!(g.vertex_count(), 2);

    // prov::cfl — grammar machinery.
    let mut grammar = Grammar::new();
    let s = grammar.nonterminal("S");
    grammar.rule(s, vec![Symbol::T(Terminal::fwd(EdgeKind::Used))]);
    grammar.set_start(s);
    assert_eq!(grammar.name(grammar.start()), "S");

    // prov::workload — samplers.
    assert_eq!(ZipfTable::new(10, 1.5).capacity(), 10);

    // prov::core_api — end-to-end ProvDb tour exercising segment + summary
    // through the re-exports.
    let mut db = ProvDb::new();
    let alice = db.add_agent("alice").unwrap();
    let data = db.add_artifact_version("dataset", Some(alice)).unwrap();
    let run = db
        .record_activity(ActivityRecord {
            command: "train".into(),
            agent: Some(alice),
            inputs: vec![data],
            outputs: vec![OutputSpec::named("weights").with("acc", 0.7)],
            props: vec![],
        })
        .unwrap();

    let seg = db
        .segment(PgSegQuery::between(vec![data], vec![run.outputs[0]]), &PgSegOptions::default())
        .unwrap();
    assert!(seg.contains(run.activity));

    // prov::segment / prov::summary types are nameable and constructible.
    let _q: PgSumQuery = PgSumQuery::default();

    // prov::api — the service layer answers a serialized request.
    let mut service = ProvService::new();
    let response = service.handle(&Request::AddAgent(AddAgentRequest { name: "alice".into() }));
    assert!(matches!(response, Response::Vertex(_)));
    assert!(service.handle_json(r#"{"AddAgent": {"name": "bob"}}"#).contains("\"Vertex\""));
}
