//! Benchmark harness for the Fig. 5 reproduction and the summarization
//! sweeps (see `DESIGN.md` §4).
//!
//! * [`harness`] — one function per subplot, printable as text tables, plus
//!   the worklist ablation (`wl`), the summarization runtime sweeps
//!   (`6a`–`6c`: pSum vs seed PgSum vs the counting/quotient-incremental
//!   rewrite), and the shared [`PdCache`] / [`SdCache`] so a batch run
//!   freezes each workload once;
//! * [`report`] — the `BENCH_fig5.json` / `BENCH_fig6.json` document model
//!   and the >2× regression gate CI applies against the committed baselines;
//! * `src/bin/figure.rs` — CLI that regenerates any figure
//!   (`cargo run -p prov-bench --release --bin figure -- 5a`) and the JSON
//!   bench mode (`cargo run -p prov-bench --release -- --quick --json
//!   BENCH_fig5.json`);
//! * `benches/` — Criterion micro-benchmarks over the same kernels.

pub mod harness;
pub mod report;

pub use harness::{
    run_figure, run_figure_cached, run_figure_with_caches, FigureResult, PdCache, Point, Scale,
    SdCache, Series, ALL_FIGURES, BENCH_FIGURES, FIG6_FIGURES,
};
pub use report::{BenchReport, REGRESSION_FACTOR, REGRESSION_FLOOR_SECS};
